//! # grape6 — facade crate
//!
//! Re-exports the whole GRAPE-6 reproduction under one roof so examples and
//! downstream users can depend on a single crate.  See the individual crates
//! for the real documentation:
//!
//! * [`arith`] — hardware number formats (fixed point, pipeline floats,
//!   block floating point)
//! * [`nbody`] — N-body substrate (particles, units, initial conditions,
//!   reference f64 kernels, diagnostics)
//! * [`fault`] — seeded fault plans, self-test bookkeeping, degraded-
//!   operation counters and reports
//! * [`chip`] — the GRAPE-6 processor chip (force + predictor pipelines)
//! * [`system`] — modules, boards, network boards, clusters
//! * [`ckpt`] — versioned, digest-guarded checkpoints for bitwise resume
//! * [`core`] — the host library and the Hermite block-timestep integrator
//! * [`farm`] — the multi-tenant farm: admission control, fair-share
//!   scheduling, checkpoint eviction/resume, fault-aware board rotation
//! * [`net`] — the simulated Gigabit-Ethernet interconnect
//! * [`parallel`] — the copy / ring / 2-D grid / multi-cluster algorithms
//! * [`model`] — the analytic performance model of the SC'03 paper
//! * [`trace`] — virtual-time spans, measured breakdowns, Chrome-trace
//!   export
//! * [`tree`] — the Barnes–Hut treecode baseline of §5
//! * [`g4`] — the GRAPE-4 predecessor machine, §3's comparison foil

pub use bh_tree as tree;
pub use grape4 as g4;
pub use grape6_arith as arith;
pub use grape6_chip as chip;
pub use grape6_ckpt as ckpt;
pub use grape6_core as core;
pub use grape6_farm as farm;
pub use grape6_fault as fault;
pub use grape6_model as model;
pub use grape6_net as net;
pub use grape6_parallel as parallel;
pub use grape6_system as system;
pub use grape6_trace as trace;
pub use nbody_core as nbody;
