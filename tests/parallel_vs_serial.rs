//! The parallel algorithms against the serial reference, end to end.

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::force::{direct_all, DirectEngine, ForceEngine};
use grape6::nbody::ic::plummer::plummer_model;
use grape6::net::LinkProfile;
use grape6::parallel::copy_algo::{run_copy_parallel, CopyConfig};
use grape6::parallel::{grid2d_forces, ring_forces};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn copy_algorithm_bitwise_across_rank_counts() {
    let n = 36;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(200));
    let cfg = CopyConfig::default();
    let mut serial = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.integ);
    serial.run_until(0.2);
    let want = serial.particles().clone();
    for p in [2usize, 4, 5] {
        let got = run_copy_parallel(&set, p, 0.2, &cfg);
        assert_eq!(got.set.pos, want.pos, "p={p}: positions differ");
        assert_eq!(got.set.vel, want.vel, "p={p}: velocities differ");
        assert_eq!(
            got.stats.blocksteps,
            serial.stats().blocksteps,
            "p={p}: schedules differ"
        );
    }
}

#[test]
fn ring_and_grid_forces_match_direct_summation() {
    let n = 70;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(201));
    let eps2 = 1e-4;
    let want = direct_all(&set.mass, &set.pos, &set.vel, eps2);
    let (ring, _) = ring_forces(
        &set.mass,
        &set.pos,
        &set.vel,
        eps2,
        4,
        LinkProfile::ideal(),
        0.0,
    );
    let (grid, _) = grid2d_forces(
        &set.mass,
        &set.pos,
        &set.vel,
        eps2,
        3,
        LinkProfile::ideal(),
        0.0,
    );
    for i in 0..n {
        assert!((ring[i].acc - want[i].acc).norm() < 1e-11, "ring i={i}");
        assert!((grid[i].acc - want[i].acc).norm() < 1e-11, "grid i={i}");
        assert!((ring[i].pot - want[i].pot).abs() < 1e-11);
        assert!((grid[i].pot - want[i].pot).abs() < 1e-11);
    }
}

#[test]
fn more_ranks_more_wire_traffic_same_physics() {
    // The copy algorithm's defining cost: every update crosses the wire to
    // every other rank, so total bytes grow with p while the physics does
    // not change at all.
    let n = 30;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(202));
    let cfg = CopyConfig::default();
    let r2 = run_copy_parallel(&set, 2, 0.1, &cfg);
    let r4 = run_copy_parallel(&set, 4, 0.1, &cfg);
    assert_eq!(r2.set.pos, r4.set.pos);
    let b2: u64 = r2.bytes_sent.iter().sum();
    let b4: u64 = r4.bytes_sent.iter().sum();
    assert!(
        b4 > b2,
        "4 ranks should move more total bytes than 2 ({b4} vs {b2})"
    );
}

#[test]
fn midrun_hardware_deaths_leave_trajectories_bitwise_identical() {
    // §3.4's reproducibility property as a fault-tolerance oracle: kill a
    // module and then a whole board *mid-integration* and the trajectory
    // must stay bitwise identical to the healthy machine — the engine
    // redistributes the j-particles over the survivors and the block-FP
    // reduction makes the new partitioning invisible.
    use grape6::core::Grape6Engine;
    use grape6::fault::FaultPlan;
    use grape6::system::MachineConfig;

    let n = 48;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(204));
    let cfg = IntegratorConfig::default();
    let machine = MachineConfig {
        boards: 3,
        modules_per_board: 2,
        chips_per_module: 2,
        ..MachineConfig::test_small()
    };
    let plan = FaultPlan::none()
        .with_midrun_death(vec![1, 0], 3) // module [1,0] dies at pass 3
        .with_midrun_death(vec![2], 6) // board [2] dies at pass 6
        .with_reduction_glitches(vec![5, 9]); // two transient glitches
    let run_faulty = || {
        let engine = Grape6Engine::with_fault_plan(&machine, n, &plan).unwrap();
        let mut it = HermiteIntegrator::new(engine, set.clone(), cfg);
        it.run_until(0.125);
        it
    };
    let clean_engine = Grape6Engine::try_new(&machine, n).unwrap();
    let mut clean = HermiteIntegrator::new(clean_engine, set.clone(), cfg);
    clean.run_until(0.125);
    let faulty = run_faulty();

    assert_eq!(faulty.particles().pos, clean.particles().pos);
    assert_eq!(faulty.particles().vel, clean.particles().vel);
    // The failures really happened...
    let report = faulty.engine().fault_report();
    assert_eq!(report.counters.scheduled_deaths, 2);
    assert_eq!(report.counters.units_masked, 2);
    assert!(report.counters.reduction_glitches >= 2);
    assert_eq!(report.alive_chips, 6);
    assert_eq!(report.total_chips, 12);
    // ...and they cost virtual time: fewer chips on the critical path plus
    // recomputed passes.
    assert!(faulty.engine().hardware_cycles() > clean.engine().hardware_cycles());
    // The counters surface through the integrator's RunStats too.
    assert_eq!(faulty.stats().faults, faulty.engine().fault_counters());
    // Same plan ⇒ the same fault story, event for event.
    let again = run_faulty();
    assert_eq!(again.engine().fault_report(), report);
}

#[test]
fn grid2d_communication_advantage_over_copy() {
    // §3.2's reason for the 2-D layout: per-node communication O(N/r)
    // instead of O(N).  Compare the wire bytes of a full force round.
    let n = 120;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(203));
    let link = LinkProfile::ideal();
    // Ring with 4 ranks moves every block O(p) times.
    let (_, ring_clocks) = ring_forces(&set.mass, &set.pos, &set.vel, 0.0, 4, link, 1e-8);
    // Grid with r=2 (4 ranks) reduces locally.
    let (_, grid_clocks) = grid2d_forces(&set.mass, &set.pos, &set.vel, 0.0, 2, link, 1e-8);
    // Both finish; on an ideal link the compute dominates and the grid's
    // slowest rank must not exceed the ring's by much.
    let ring_t = ring_clocks.iter().cloned().fold(0.0, f64::max);
    let grid_t = grid_clocks.iter().cloned().fold(0.0, f64::max);
    assert!(grid_t < ring_t * 1.5, "grid {grid_t} vs ring {ring_t}");
}
