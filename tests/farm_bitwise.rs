//! Acceptance: multi-tenancy must not change a single bit.
//!
//! Four tenants share a two-board farm, so sessions are continually
//! checkpoint-evicted and resumed (often onto the *other* board).  A
//! second scenario injects both kinds of board fault — a power-on
//! self-test failure and a mid-run module death — on an oversubscribed
//! farm, so sessions additionally ride the recovery ladder, the retry
//! backoff, and a board rotation.  In every case each tenant's final
//! particle state must be **bitwise identical** to a dedicated
//! single-tenant run on a healthy board: admission control, fair-share
//! scheduling, eviction, migration and replay are all invisible in the
//! §3.4 force bits.

use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6_farm::{Farm, FarmConfig, FarmError, Job, RetryAfter, SessionId, TenantSpec};
use grape6_fault::FaultPlan;
use grape6_system::machine::MachineConfig;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One pool unit: 2 modules × 2 chips × 16 j-slots = 64 particle slots.
fn unit() -> MachineConfig {
    MachineConfig::builder()
        .boards(1)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity(16)
        .build()
        .unwrap()
}

fn ic(n: usize, seed: u64) -> ParticleSet {
    plummer_model(n, &mut StdRng::seed_from_u64(seed))
}

fn bits_equal(a: &ParticleSet, b: &ParticleSet) -> bool {
    a.n() == b.n()
        && a.pos == b.pos
        && a.vel == b.vel
        && a.acc == b.acc
        && a.jerk == b.jerk
        && (0..a.n()).all(|i| a.t[i].to_bits() == b.t[i].to_bits())
        && (0..a.n()).all(|i| a.dt[i].to_bits() == b.dt[i].to_bits())
}

/// The reference: the same job on a dedicated healthy board, never
/// evicted, never migrated.
fn dedicated(n: usize, seed: u64, t_end: f64) -> ParticleSet {
    let engine = Grape6Engine::try_new(&unit(), n).unwrap();
    let mut it = HermiteIntegrator::new(engine, ic(n, seed), IntegratorConfig::default());
    it.run_until(t_end);
    it.particles().clone()
}

#[test]
fn four_tenants_on_two_boards_match_dedicated_runs_bitwise() {
    let n = 24;
    let t_end = 0.125;
    let cfg = FarmConfig::builder(unit())
        .boards(2)
        .quantum(4)
        .ckpt_every(4)
        .build()
        .unwrap();
    let mut farm = Farm::open(cfg).unwrap();

    let mut sessions: Vec<(SessionId, u64)> = Vec::new();
    for t in 0..4u64 {
        let tid = farm.register(TenantSpec::new(1 + (t as u32 % 2))).unwrap();
        let seed = 1000 + t;
        let job = Job::builder(ic(n, seed))
            .t_end(t_end)
            .label(format!("tenant {t}"))
            .build()
            .unwrap();
        let sid = farm.submit(tid, job).unwrap();
        sessions.push((sid, seed));
    }

    let report = farm.run().unwrap();
    assert!(
        report.all_completed(),
        "not all sessions completed: {:?}",
        report.stats
    );
    // Four sessions over two boards: the scheduler must have evicted and
    // resumed at least two sessions mid-run.
    assert!(
        report.stats.evictions >= 2,
        "expected eviction churn, stats: {:?}",
        report.stats
    );
    assert!(report.stats.resumes >= 2, "stats: {:?}", report.stats);

    for (sid, seed) in sessions {
        let got = farm.take_result(sid).expect("session completed");
        assert!(
            bits_equal(&got.particles, &dedicated(n, seed, t_end)),
            "tenant session {sid} diverged from its dedicated single-tenant run"
        );
        assert_eq!(got.session, sid);
    }
}

#[test]
fn oversubscribed_farm_with_injected_faults_completes_every_admission_bitwise() {
    // The ISSUE acceptance scenario: more tenants than board capacity
    // plus injected board faults.  Board 1 flunks power-on self-test
    // (dead module: 32 < 48 slots), board 2 dies mid-run.  Jobs beyond
    // the ceiling get typed rejections; every admitted session must
    // still complete, bitwise equal to its dedicated run.
    let n = 48;
    let t_end = 0.0625;
    let cfg = FarmConfig::builder(unit())
        .boards(3)
        .board_plans(vec![
            None,
            Some(FaultPlan::none().with_dead_module(0, 0)),
            Some(FaultPlan::none().with_midrun_death(vec![0, 1], 5)),
        ])
        .max_live_sessions(4)
        .queue_depth(1)
        .quantum(4)
        .ckpt_every(4)
        .build()
        .unwrap();
    let mut farm = Farm::open(cfg).unwrap();

    let tenants: Vec<_> = (0..6)
        .map(|_| farm.register(TenantSpec::new(1)).unwrap())
        .collect();
    let mut admitted: Vec<(SessionId, u64)> = Vec::new();
    let mut saturated = 0;
    for (t, &tid) in tenants.iter().enumerate() {
        let seed = 2000 + t as u64;
        let job = Job::builder(ic(n, seed))
            .t_end(t_end)
            .label(format!("tenant {t}"))
            .build()
            .unwrap();
        match farm.submit(tid, job) {
            Ok(sid) => admitted.push((sid, seed)),
            Err(FarmError::Saturated { retry_after }) => {
                assert!(retry_after.is_positive(), "retry hint must be positive");
                assert!(
                    matches!(retry_after, RetryAfter::Blocksteps(_)),
                    "the in-process farm hints in blocksteps"
                );
                saturated += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert_eq!(admitted.len(), 4, "ceiling admits exactly four");
    assert_eq!(saturated, 2, "the two extra tenants get typed backpressure");

    let report = farm.run().unwrap();
    assert!(
        report.all_completed(),
        "board faults must stall nobody: {:?}",
        report.stats
    );
    assert!(
        report.stats.board_rotations >= 2,
        "both faulted boards rotate out: {:?}",
        report.stats
    );
    assert!(report.stats.resumes >= 1, "stats: {:?}", report.stats);

    for (sid, seed) in admitted {
        let got = farm.take_result(sid).expect("session completed");
        assert!(
            bits_equal(&got.particles, &dedicated(n, seed, t_end)),
            "session {sid} diverged despite faults/evictions/migration"
        );
    }
}
