//! Property-based tests (proptest) on the core invariants.

// The offline `proptest` stub type-checks but swallows the `proptest!`
// body, so in that environment rustc sees the imports and strategy
// helpers below as unused.
#![allow(unused_imports, dead_code)]

use grape6::arith::blockfp::BlockAccum;
use grape6::arith::fixed::PosFix;
use grape6::arith::pfloat::quantize_sig;
use grape6::nbody::blockstep::{block_dt, is_aligned, TimeGrid};
use grape6::nbody::force::pair_force;
use grape6::nbody::ic::kepler::{elements_to_cartesian, solve_kepler, OrbitalElements};
use grape6::nbody::Vec3;
use proptest::prelude::*;

proptest! {
    /// Block floating point: any permutation of any value set gives the
    /// same mantissa — the §3.4 reproducibility property.
    #[test]
    fn blockfp_permutation_invariant(
        mut vals in prop::collection::vec(-1.0e3f64..1.0e3, 2..40),
        seed in 0u64..1000,
    ) {
        let exp = 14; // window ±16384, plenty for the magnitudes above
        let sum = |vs: &[f64]| -> i64 {
            let mut acc = BlockAccum::new(exp);
            for &v in vs {
                acc.add(v).unwrap();
            }
            acc.mant()
        };
        let reference = sum(&vals);
        // Fisher–Yates with a toy LCG so the permutation depends on `seed`.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..vals.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            vals.swap(i, j);
        }
        prop_assert_eq!(sum(&vals), reference);
    }

    /// Block floating point: any 2-way partition merges to the same
    /// mantissa as the whole.
    #[test]
    fn blockfp_partition_invariant(
        vals in prop::collection::vec(-100.0f64..100.0, 2..40),
        split_frac in 0.0f64..1.0,
    ) {
        let exp = 12;
        let split = ((vals.len() as f64 * split_frac) as usize).min(vals.len());
        let mut whole = BlockAccum::new(exp);
        for &v in &vals {
            whole.add(v).unwrap();
        }
        let mut left = BlockAccum::new(exp);
        let mut right = BlockAccum::new(exp);
        for &v in &vals[..split] {
            left.add(v).unwrap();
        }
        for &v in &vals[split..] {
            right.add(v).unwrap();
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(left.mant(), whole.mant());
    }

    /// Fixed-point roundtrip: |from_f64(x).to_f64() − x| ≤ resolution/2.
    #[test]
    fn fix64_roundtrip_within_half_ulp(x in -60.0f64..60.0) {
        let f = PosFix::from_f64(x);
        prop_assert!((f.to_f64() - x).abs() <= PosFix::RESOLUTION);
    }

    /// Fixed-point differences are exact for representable values.
    #[test]
    fn fix64_difference_exactness(a in -50.0f64..50.0, d in -1.0e-6f64..1.0e-6) {
        let fa = PosFix::from_f64(a);
        let fb = fa.offset_f64(d);
        let delta = fa.exact_delta_to(fb);
        // The offset rounds once to the grid; the recovered delta matches
        // that rounded displacement to resolution accuracy.
        prop_assert!((delta - d).abs() <= PosFix::RESOLUTION);
    }

    /// quantize_sig is idempotent and within half an ulp of the input.
    #[test]
    fn quantize_idempotent_and_close(x in -1.0e12f64..1.0e12, sig in 4u32..53) {
        let q = quantize_sig(x, sig);
        prop_assert_eq!(quantize_sig(q, sig), q);
        if x != 0.0 {
            let rel = ((q - x) / x).abs();
            prop_assert!(rel <= 2f64.powi(-(sig as i32)));
        }
    }

    /// block_dt returns the floor power of two.
    #[test]
    fn block_dt_floor_pow2(dt in 1.0e-12f64..1.0e3) {
        let b = block_dt(dt);
        prop_assert!(b <= dt);
        prop_assert!(b * 2.0 > dt);
        let l = b.log2();
        prop_assert_eq!(l, l.round());
    }

    /// The grid's next_step always lands on an aligned power of two within
    /// bounds, and never more than doubles.
    #[test]
    fn next_step_invariants(
        t_idx in 0u32..1024,
        dt_exp in -20i32..-2,
        want in 1.0e-9f64..1.0,
    ) {
        let grid = TimeGrid::default();
        let dt_old = 2f64.powi(dt_exp);
        let t = t_idx as f64 * dt_old; // t is a multiple of dt_old
        let next = grid.next_step(t, dt_old, want);
        prop_assert!(next >= grid.dt_min && next <= grid.dt_max);
        prop_assert!(next <= dt_old * 2.0);
        let l = next.log2();
        prop_assert_eq!(l, l.round());
        if next > dt_old {
            prop_assert!(is_aligned(t, next));
        }
    }

    /// Kepler solver residual is at machine precision for any (M, e).
    #[test]
    fn kepler_residual(m in -20.0f64..20.0, e in 0.0f64..0.95) {
        let big_e = solve_kepler(m, e);
        let resid = big_e - e * big_e.sin() - m.rem_euclid(std::f64::consts::TAU);
        prop_assert!(resid.abs() < 1e-10);
    }

    /// Orbital elements → Cartesian preserves the vis-viva relation and
    /// the angular-momentum magnitude for any elements.
    #[test]
    fn kepler_state_invariants(
        a in 0.1f64..10.0,
        e in 0.0f64..0.9,
        inc in 0.0f64..3.0,
        node in 0.0f64..6.28,
        peri in 0.0f64..6.28,
        ma in 0.0f64..6.28,
    ) {
        let el = OrbitalElements { a, e, inc, node, peri, mean_anomaly: ma };
        let mu = 1.0;
        let (r, v) = elements_to_cartesian(&el, mu);
        let vis_viva = mu * (2.0 / r.norm() - 1.0 / a);
        prop_assert!((v.norm2() - vis_viva).abs() < 1e-9);
        let h = r.cross(v).norm();
        let want = (mu * a * (1.0 - e * e)).sqrt();
        prop_assert!((h - want).abs() < 1e-9);
    }

    /// Newton's third law at the kernel level: the force i←j is equal and
    /// opposite to j←i scaled by the mass ratio.
    #[test]
    fn pairwise_forces_antisymmetric(
        dx in -10.0f64..10.0, dy in -10.0f64..10.0, dz in -10.0f64..10.0,
        vx in -1.0f64..1.0, vy in -1.0f64..1.0, vz in -1.0f64..1.0,
        mi in 0.01f64..10.0, mj in 0.01f64..10.0,
    ) {
        prop_assume!(dx * dx + dy * dy + dz * dz > 1e-6);
        let dr = Vec3::new(dx, dy, dz);
        let dv = Vec3::new(vx, vy, vz);
        let (a_ij, j_ij, _) = pair_force(dr, dv, mj, 0.0);
        let (a_ji, j_ji, _) = pair_force(-dr, -dv, mi, 0.0);
        // momentum change rates: m_i·a_ij = −m_j·a_ji
        prop_assert!((a_ij * mi + a_ji * mj).norm() < 1e-9 * (a_ij.norm() * mi).max(1e-30));
        prop_assert!((j_ij * mi + j_ji * mj).norm() < 1e-9 * (j_ij.norm() * mi).max(1e-12));
    }
}

proptest! {
    /// Pipeline-float addition and multiplication are commutative (each
    /// operation rounds, but rounding a commutative f64 op is commutative).
    #[test]
    fn pipefloat_ops_commute(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        use grape6::arith::pfloat::PipeFloat;
        let x = PipeFloat::new(a);
        let y = PipeFloat::new(b);
        prop_assert_eq!((x + y).get(), (y + x).get());
        prop_assert_eq!((x * y).get(), (y * x).get());
    }

    /// The table-driven x^(-3/2) unit stays within its error budget for
    /// arbitrary in-range arguments.
    #[test]
    fn rsqrt_unit_error_budget(x in 1.0e-8f64..1.0e8) {
        use grape6::arith::rsqrt::RsqrtCubedUnit;
        let u = RsqrtCubedUnit::default();
        let got = u.eval_pow_m32(x);
        let want = x.powf(-1.5);
        prop_assert!(((got - want) / want).abs() < 2f64.powi(-24));
    }

    /// GRAPE-4's float summation: different board counts give different
    /// bits but physically identical forces (bounded by pipeline rounding
    /// accumulated over N summands).
    #[test]
    fn grape4_partitions_agree_physically(boards in 1usize..5, seed in 0u64..100) {
        use grape6::g4::machine::{Grape4Config, Grape4Machine};
        use grape6::chip::pipeline::HwIParticle;
        use grape6::nbody::force::JParticle;
        let n = 60;
        let mk = |b: usize| -> grape6::nbody::force::ForceResult {
            let mut m = Grape4Machine::new(Grape4Config {
                boards: b,
                ..Grape4Config::test_small()
            });
            for k in 0..n {
                let a = (k as u64 * 37 + seed) as f64 * 0.17;
                m.load_j(k, &JParticle {
                    mass: 0.01,
                    pos: Vec3::new(a.sin(), (1.3 * a).cos(), 0.1 * (k % 7) as f64),
                    vel: Vec3::new(0.01 * a.cos(), 0.0, 0.0),
                    ..Default::default()
                });
            }
            m.set_time(0.0);
            let probe = HwIParticle::from_host(Vec3::new(0.02, 0.01, 0.0), Vec3::ZERO, 1e-3);
            m.compute_block(&[probe])[0]
        };
        let one = mk(1);
        let many = mk(boards);
        let rel = (one.acc - many.acc).norm() / one.acc.norm().max(1e-12);
        prop_assert!(rel < 1e-4, "boards={boards}: rel diff {rel:e}");
    }
}
