//! Integration tests of the later-phase components: GRAPE-4, the 2-D
//! hardware grid, the quadrupole treecode, snapshots and the Ahmad–Cohen
//! scheme — all exercised through the workspace-level public API.

use grape6::core::neighbor::{AcConfig, AcHermiteIntegrator};
use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::g4::{Grape4Config, Grape4Engine};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::force::{DirectEngine, ForceEngine, ForceResult, IParticle, JParticle};
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::io::Snapshot;
use grape6::nbody::softening::Softening;
use grape6::tree::{tree_forces_ord, MultipoleOrder, Octree, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn grape4_and_grape6_agree_physically_not_bitwise() {
    // Both machines compute the same gravity in the same word lengths;
    // their *summation architectures* differ.  Same probe, both engines:
    // close physically, generally different bits.
    use grape6::core::engine::Grape6Engine;
    use grape6::system::machine::MachineConfig;
    let n = 150;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(600));
    let mut g6 = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
    let mut g4 = Grape4Engine::new(&Grape4Config::test_small(), n);
    for i in 0..n {
        let j = JParticle {
            mass: set.mass[i],
            t0: 0.0,
            pos: set.pos[i],
            vel: set.vel[i],
            ..Default::default()
        };
        g6.set_j_particle(i, &j);
        g4.set_j_particle(i, &j);
    }
    g6.set_time(0.0);
    g4.set_time(0.0);
    let probes: Vec<IParticle> = (0..16)
        .map(|k| IParticle {
            pos: set.pos[k],
            vel: set.vel[k],
            eps2: 2.4e-4,
        })
        .collect();
    let mut f6 = vec![ForceResult::default(); 16];
    let mut f4 = vec![ForceResult::default(); 16];
    g6.compute(&probes, &mut f6);
    g4.compute(&probes, &mut f4);
    for k in 0..16 {
        let rel = (f6[k].acc - f4[k].acc).norm() / f6[k].acc.norm();
        assert!(rel < 1e-4, "k={k}: generations disagree by {rel:e}");
    }
}

#[test]
fn snapshot_checkpoints_an_integration() {
    // Run → checkpoint → restore → continue; energy stays conserved
    // through the checkpoint boundary.
    let n = 64;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(601));
    let eps2 = Softening::Constant.epsilon2(n);
    let e0 = energy(&set, eps2);
    let mut first = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    first.run_until(0.125);
    let snap = Snapshot::capture(&first.synchronized_snapshot(), first.time(), "checkpoint");
    // Restore into a brand-new integrator (cold restart: derivatives are
    // re-derived by initialisation).
    let restored = snap.restore();
    let mut second =
        HermiteIntegrator::new(DirectEngine::new(n), restored, IntegratorConfig::default());
    second.run_until(0.125);
    let e1 = energy(&second.synchronized_snapshot(), eps2);
    let err = ((e1.total() - e0.total()) / e0.total()).abs();
    assert!(err < 1e-4, "energy across checkpoint boundary: {err:e}");
}

#[test]
fn quadrupole_traversal_improves_forces_at_workspace_level() {
    let n = 800;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(602));
    let tree = Octree::build(&set.mass, &set.pos, &TreeConfig::default());
    let exact = grape6::nbody::force::direct_all(&set.mass, &set.pos, &set.vel, 1e-4);
    let rms = |order: MultipoleOrder| -> f64 {
        let (acc, _, _) = tree_forces_ord(&tree, 0.8, 1e-4, order);
        let mut s = 0.0;
        for i in 0..n {
            let rel = (acc[i] - exact[i].acc).norm() / exact[i].acc.norm();
            s += rel * rel;
        }
        (s / n as f64).sqrt()
    };
    assert!(rms(MultipoleOrder::Quadrupole) < rms(MultipoleOrder::Monopole));
}

#[test]
fn ahmad_cohen_on_simulated_grape_hardware() {
    use grape6::core::engine::Grape6Engine;
    use grape6::system::machine::MachineConfig;
    let n = 64;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(603));
    let eps2 = Softening::Constant.epsilon2(n);
    let e0 = energy(&set, eps2);
    let engine = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
    let mut ac = AcHermiteIntegrator::new(engine, set, AcConfig::default());
    ac.run_until(0.2);
    let e1 = energy(&ac.synchronized_snapshot(), eps2);
    let err = ((e1.total() - e0.total()) / e0.total()).abs();
    assert!(err < 1e-4, "AC-on-GRAPE energy error {err:e}");
    assert!(ac.regular_evals() > 0 && ac.irregular_evals() > ac.regular_evals() / 2);
}
