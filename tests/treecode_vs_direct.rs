//! The §5 baseline against the direct codes: accuracy, scaling, and the
//! shared-vs-individual timestep argument.

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::force::{direct_all, DirectEngine};
use grape6::nbody::ic::plummer::plummer_model;
use grape6::tree::integrate::LeapfrogIntegrator;
use grape6::tree::traverse::tree_forces;
use grape6::tree::tree::{Octree, TreeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tree_accuracy_at_standard_theta() {
    let n = 2000;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(400));
    let eps2 = 1e-4;
    let tree = Octree::build(&set.mass, &set.pos, &TreeConfig::default());
    let (acc, _, stats) = tree_forces(&tree, 0.5, eps2);
    let want = direct_all(&set.mass, &set.pos, &set.vel, eps2);
    let mut rms = 0.0;
    for i in 0..n {
        let rel = (acc[i] - want[i].acc).norm() / want[i].acc.norm();
        rms += rel * rel;
    }
    let rms = (rms / n as f64).sqrt();
    assert!(rms < 5e-3, "θ=0.5 rms force error {rms:e}");
    // And it must be doing less work than direct (the advantage is modest
    // at N = 2000 with a strict θ = 0.5; it widens with N — see the
    // treecode crate's own scaling test).
    assert!(
        stats.total() < (n * n) as u64 * 3 / 5,
        "tree did {} interactions vs {} direct",
        stats.total(),
        n * n
    );
}

#[test]
fn treecode_energy_drift_bounded() {
    let n = 512;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(401));
    let eps2 = 1e-4;
    let e0 = energy(&set, eps2);
    let mut lf = LeapfrogIntegrator::new(set, 0.5, eps2, 1.0 / 512.0);
    lf.run_until(0.25);
    let e1 = energy(&lf.set, eps2);
    let err = ((e1.total() - e0.total()) / e0.total()).abs();
    assert!(err < 1e-3, "treecode energy drift {err:e}");
}

#[test]
fn shared_timestep_pays_a_large_step_factor() {
    // §5: "If we use shared timestep, we need at least 100 times more
    // particle steps."  At small N the factor is tens; it grows with N.
    let n = 1024;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(402));
    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    it.run_until(0.25);
    let st = it.stats();
    let individual = st.particle_steps as f64;
    let shared = n as f64 * 0.25 / st.dt_min;
    let factor = shared / individual;
    assert!(
        factor > 20.0,
        "shared/individual step factor only {factor:.1} at N={n}"
    );
}

#[test]
fn tree_and_grape_style_forces_agree() {
    // Close the loop: the θ→0 tree, the f64 direct code, and the monopole
    // traversal all describe the same gravity.
    let n = 300;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(403));
    let eps2 = 4e-4;
    let tree = Octree::build(&set.mass, &set.pos, &TreeConfig::default());
    let (acc_exact, pot_exact, _) = tree_forces(&tree, 0.0, eps2);
    let want = direct_all(&set.mass, &set.pos, &set.vel, eps2);
    for i in 0..n {
        assert!((acc_exact[i] - want[i].acc).norm() < 1e-11);
        assert!((pot_exact[i] - want[i].pot).abs() < 1e-11);
    }
}
