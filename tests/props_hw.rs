//! Property-based tests of the hardware simulator layer.
// The offline `proptest` stub type-checks but swallows the `proptest!`
// body, so in that environment rustc sees the imports and strategy
// helpers below as unused.
#![allow(unused_imports, dead_code)]

use grape6::chip::chip::{Chip, ChipConfig};
use grape6::chip::kernel::KernelMode;
use grape6::chip::pipeline::{ExpSet, HwIParticle};
use grape6::nbody::force::{pair_force, JParticle};
use grape6::nbody::Vec3;
use grape6::system::ensemble::Ensemble;
use grape6::system::unit::{ChipUnit, GrapeUnit};
use proptest::prelude::*;

/// Strategy: a bounded particle well inside the fixed-point box.
fn particle_strategy() -> impl Strategy<Value = JParticle> {
    (
        0.001f64..1.0,
        prop::array::uniform3(-8.0f64..8.0),
        prop::array::uniform3(-2.0f64..2.0),
    )
        .prop_map(|(mass, pos, vel)| JParticle {
            mass,
            t0: 0.0,
            pos: Vec3::from_array(pos),
            vel: Vec3::from_array(vel),
            ..Default::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The chip's force agrees with the f64 kernel to pipeline precision
    /// for arbitrary particle sets and probes.
    #[test]
    fn chip_force_matches_f64_kernel(
        particles in prop::collection::vec(particle_strategy(), 1..24),
        probe in particle_strategy(),
        eps2 in 1e-6f64..1e-2,
    ) {
        let mut chip = Chip::new(ChipConfig::default());
        for (k, p) in particles.iter().enumerate() {
            chip.load_j(k, p);
        }
        chip.set_time(0.0);
        let ip = HwIParticle::from_host(probe.pos, probe.vel, eps2);
        // Reference in f64.
        let mut want_acc = Vec3::ZERO;
        let mut want_pot = 0.0;
        for p in &particles {
            let (a, _, po) = pair_force(p.pos - probe.pos, p.vel - probe.vel, p.mass, eps2);
            want_acc += a;
            want_pot += po;
        }
        let exps = [ExpSet::from_magnitudes(
            want_acc.norm().max(1e-3),
            1e3,
            want_pot.abs().max(1e-3),
        )];
        let got = chip.compute_block(&[ip], &exps).unwrap()[0].to_force_result();
        let scale = want_acc.norm().max(1e-9);
        prop_assert!(
            (got.acc - want_acc).norm() / scale < 1e-3,
            "acc {:?} vs {:?}",
            got.acc,
            want_acc
        );
        prop_assert!((got.pot - want_pot).abs() / want_pot.abs().max(1e-9) < 1e-3);
    }

    /// Any split of the j-set over any number of chips is bit-identical to
    /// the single-chip result (the §3.4 property, randomised).
    #[test]
    fn ensemble_partition_bit_invariant(
        particles in prop::collection::vec(particle_strategy(), 2..40),
        n_chips in 2usize..6,
        probe in particle_strategy(),
    ) {
        let mut single = ChipUnit::new(Chip::new(ChipConfig::default()));
        let chips: Vec<ChipUnit> = (0..n_chips)
            .map(|_| ChipUnit::new(Chip::new(ChipConfig::default())))
            .collect();
        let mut group = Ensemble::new(chips);
        for (k, p) in particles.iter().enumerate() {
            single.load_j(k, p).unwrap();
            group.load_j(k, p).unwrap();
        }
        single.set_time(0.0);
        group.set_time(0.0);
        let ip = [HwIParticle::from_host(probe.pos, probe.vel, 1e-4)];
        let exps = [ExpSet::from_magnitudes(100.0, 1000.0, 100.0)];
        let a = single.compute_block(&ip, &exps).unwrap();
        let b = group.compute_block(&ip, &exps).unwrap();
        for c in 0..3 {
            prop_assert_eq!(a[0].acc[c].mant(), b[0].acc[c].mant());
            prop_assert_eq!(a[0].jerk[c].mant(), b[0].jerk[c].mant());
        }
        prop_assert_eq!(a[0].pot.mant(), b[0].pot.mant());
    }

    /// The batched SoA kernel and the runtime-dispatched SIMD-lane kernel
    /// land on the scalar oracle's exact bits — forces *and* neighbour
    /// lists — for arbitrary particle sets, including a probe coincident
    /// with a j-particle (a softening-only self-interaction when
    /// `eps2 > 0`, an `r = 0` hardware drop when `eps2 == 0`).
    #[test]
    fn batched_kernel_bitwise_matches_scalar_oracle(
        particles in prop::collection::vec(particle_strategy(), 1..40),
        probe in particle_strategy(),
        eps2 in prop_oneof![Just(0.0f64), 1e-6f64..1e-2],
        h2 in 1e-4f64..0.5,
    ) {
        let mut scalar_chip = Chip::new(ChipConfig::default());
        scalar_chip.set_kernel_mode(KernelMode::Scalar);
        for (k, p) in particles.iter().enumerate() {
            scalar_chip.load_j(k, p);
        }
        scalar_chip.set_time(0.0);
        let i_regs = [
            HwIParticle::from_host(particles[0].pos, particles[0].vel, eps2),
            HwIParticle::from_host(probe.pos, probe.vel, eps2),
        ];
        let exps = [ExpSet::from_magnitudes(100.0, 1000.0, 100.0); 2];
        let h2v = [h2; 2];
        let mut nb_s = Vec::new();
        let a = scalar_chip.compute_block_nb(&i_regs, &exps, &h2v, &mut nb_s).unwrap();
        for mode in [KernelMode::Batched, KernelMode::Simd] {
            let mut chip = Chip::new(ChipConfig::default());
            chip.set_kernel_mode(mode);
            for (k, p) in particles.iter().enumerate() {
                chip.load_j(k, p);
            }
            chip.set_time(0.0);
            let mut nb_b = Vec::new();
            let b = chip.compute_block_nb(&i_regs, &exps, &h2v, &mut nb_b).unwrap();
            for i in 0..2 {
                for c in 0..3 {
                    prop_assert_eq!(a[i].acc[c].mant(), b[i].acc[c].mant(), "acc[{}][{}]", i, c);
                    prop_assert_eq!(a[i].jerk[c].mant(), b[i].jerk[c].mant(), "jerk[{}][{}]", i, c);
                }
                prop_assert_eq!(a[i].pot.mant(), b[i].pot.mant(), "pot[{}]", i);
            }
            prop_assert_eq!(&nb_s, &nb_b, "neighbour lists diverged ({:?})", mode);
        }
    }

    /// The SIMD lane quantiser agrees bitwise with the scalar pipeline
    /// quantiser on arbitrary 64-bit patterns — NaN payloads, subnormals,
    /// infinities, everything — at every significand width the pipeline
    /// uses, including ragged tails.
    #[test]
    fn lane_quantizer_matches_scalar_on_arbitrary_bits(
        bits in prop::collection::vec(any::<u64>(), 1..64),
        sig in prop_oneof![Just(24u32), Just(11u32), Just(50u32)],
    ) {
        use grape6::arith::pfloat::quantize_sig;
        use grape6::arith::simd::quantize_slice;
        let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut out = vec![0.0f64; xs.len()];
        if quantize_slice(&xs, &mut out, sig).is_none() {
            // No SIMD level on this host/environment: nothing to compare.
            return Ok(());
        }
        for (k, (&x, &got)) in xs.iter().zip(&out).enumerate() {
            let want = quantize_sig(x, sig);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "k={} x={:e} sig={}", k, x, sig);
        }
    }

    /// The gathered SIMD rsqrt evaluation agrees bitwise with the scalar
    /// table unit on arbitrary 64-bit patterns (specials fall back to the
    /// scalar path inside the lane, so the contract is total).
    #[test]
    fn lane_rsqrt_gather_matches_scalar_on_arbitrary_bits(
        bits in prop::collection::vec(any::<u64>(), 1..48),
    ) {
        use grape6::arith::rsqrt::RsqrtCubedUnit;
        let unit = RsqrtCubedUnit::default();
        let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut out32 = vec![0.0f64; xs.len()];
        let mut out12 = vec![0.0f64; xs.len()];
        if unit.eval_both_slice(&xs, &mut out32, &mut out12).is_none() {
            // No SIMD level on this host/environment: nothing to compare.
            return Ok(());
        }
        for (k, &x) in xs.iter().enumerate() {
            let (w32, w12) = unit.eval_both(x);
            prop_assert_eq!(out32[k].to_bits(), w32.to_bits(), "x^-3/2 at k={} x={:e}", k, x);
            prop_assert_eq!(out12[k].to_bits(), w12.to_bits(), "x^-1/2 at k={} x={:e}", k, x);
        }
    }

    /// The batched SoA predictor is bit-identical to the per-particle
    /// predictor for arbitrary polynomials and times.
    #[test]
    fn predict_batch_bitwise_matches_predict(
        particles in prop::collection::vec(particle_strategy(), 1..80),
        acc in prop::array::uniform3(-1.0f64..1.0),
        jerk in prop::array::uniform3(-1.0f64..1.0),
        dt in 0.0f64..0.25,
    ) {
        use grape6::chip::jmem::HwJParticle;
        use grape6::chip::predictor::{predict, predict_batch};
        let stream: Vec<HwJParticle> = particles
            .iter()
            .map(|p| HwJParticle::from_host(&JParticle {
                acc: Vec3::from_array(acc),
                jerk: Vec3::from_array(jerk),
                ..*p
            }))
            .collect();
        let t = stream[0].t0 + dt;
        let mut got = Vec::new();
        predict_batch(&stream, t, &mut got);
        prop_assert_eq!(got.len(), stream.len());
        for (k, (g, p)) in got.iter().zip(&stream).enumerate() {
            let want = predict(p, t);
            prop_assert_eq!(g.pos, want.pos, "pos k={}", k);
            for c in 0..3 {
                prop_assert_eq!(g.vel[c].to_bits(), want.vel[c].to_bits(), "vel k={} c={}", k, c);
            }
            prop_assert_eq!(g.mass.to_bits(), want.mass.to_bits(), "mass k={}", k);
        }
    }

    /// The on-chip predictor is consistent with the f64 predictor for any
    /// polynomial and any in-range Δt.
    #[test]
    fn hw_predictor_tracks_f64(
        p in particle_strategy(),
        acc in prop::array::uniform3(-1.0f64..1.0),
        jerk in prop::array::uniform3(-1.0f64..1.0),
        dt in 0.0f64..0.25,
    ) {
        use grape6::chip::jmem::HwJParticle;
        use grape6::chip::predictor::predict;
        use grape6::nbody::force::predict_j;
        let j = JParticle {
            acc: Vec3::from_array(acc),
            jerk: Vec3::from_array(jerk),
            ..p
        };
        let hw = HwJParticle::from_host(&j);
        let pred = predict(&hw, j.t0 + dt);
        let (x_ref, v_ref) = predict_j(&j, j.t0 + dt);
        let x = pred.pos.to_f64();
        for c in 0..3 {
            // Absolute tolerance: displacements are O(vel·dt) ≲ 0.5 and the
            // pipeline rounds at 2^-24 relative per operation.
            prop_assert!((x[c] - x_ref[c]).abs() < 3e-6, "c={c}: {} vs {}", x[c], x_ref[c]);
            prop_assert!((pred.vel[c] - v_ref[c]).abs() < 3e-6);
        }
    }
}
