//! End-to-end fault injection: seeded plans, self-test masking, degraded
//! operation, unreliable fabric — with §3.4 bitwise reproducibility as the
//! correctness oracle throughout.

use grape6::core::Grape6Engine;
use grape6::fault::{FaultConfig, FaultPlan, MachineGeometry, NetFaultPlan};
use grape6::nbody::force::{ForceEngine, ForceResult, IParticle, JParticle};
use grape6::nbody::Vec3;
use grape6::net::collectives::{allgather_measured, barrier_measured};
use grape6::net::fabric::run_ranks_faulty;
use grape6::net::{EndpointStats, LinkProfile};
use grape6::system::MachineConfig;

fn machine() -> MachineConfig {
    MachineConfig {
        boards: 2,
        modules_per_board: 2,
        chips_per_module: 2,
        ..MachineConfig::test_small()
    }
}

fn geometry(cfg: &MachineConfig) -> MachineGeometry {
    MachineGeometry {
        boards: cfg.boards,
        modules_per_board: cfg.modules_per_board,
        chips_per_module: cfg.chips_per_module,
    }
}

fn particles(n: usize) -> Vec<JParticle> {
    (0..n)
        .map(|k| {
            let a = k as f64 * 0.57;
            JParticle {
                mass: 1.0 / n as f64,
                t0: 0.0,
                pos: Vec3::new(a.cos(), (1.3 * a).sin(), 0.4 * (2.1 * a).cos()),
                vel: Vec3::new(-0.1 * a.sin(), 0.1 * a.cos(), 0.0),
                ..Default::default()
            }
        })
        .collect()
}

fn probes(m: usize) -> Vec<IParticle> {
    (0..m)
        .map(|k| IParticle {
            pos: Vec3::new(0.03 * k as f64 - 0.8, 0.25, -0.15),
            vel: Vec3::new(0.0, 0.02, 0.0),
            eps2: 1e-4,
        })
        .collect()
}

#[test]
fn seeded_plan_masks_units_and_forces_stay_bitwise_identical() {
    let cfg = machine();
    // Default config: one dead chip, one dead pipeline, one stuck j-memory
    // bit, scattered by the seed.
    let plan = FaultPlan::generate(2024, &FaultConfig::default(), geometry(&cfg));
    assert!(!plan.is_empty());

    let n = 100;
    let js = particles(n);
    let ps = probes(60);

    let mut faulty = Grape6Engine::with_fault_plan(&cfg, n, &plan).unwrap();
    let mut clean = Grape6Engine::try_new(&cfg, n).unwrap();

    // The self-test caught every injected power-on fault (they are all
    // constructed to be detectable) and masked k > 0 units.
    let st = faulty.self_test_report().unwrap();
    assert!(!st.all_passed());
    let masked = st.masked.len();
    assert!(masked > 0, "self-test must mask something");
    assert!(faulty.alive_chips() < clean.alive_chips());

    for (k, j) in js.iter().enumerate() {
        faulty.set_j_particle(k, j);
        clean.set_j_particle(k, j);
    }
    faulty.set_time(0.03125);
    clean.set_time(0.03125);
    let mut got = vec![ForceResult::default(); ps.len()];
    let mut want = vec![ForceResult::default(); ps.len()];
    faulty.compute(&ps, &mut got);
    clean.compute(&ps, &mut want);

    // The §3.4 oracle: the degraded machine returns bit-identical forces.
    assert_eq!(got, want);

    // The run completed with nonzero fault counters and a longer virtual
    // time (self-test passes + fewer chips on the critical path).
    let report = faulty.fault_report();
    assert!(report.counters.selftest_failures > 0);
    assert_eq!(report.counters.units_masked as usize, masked);
    assert!(report.availability() < 1.0);
    assert!(faulty.hardware_cycles() > clean.hardware_cycles());
}

#[test]
fn same_seed_same_event_log_exactly() {
    let cfg = machine();
    let geom = geometry(&cfg);
    let plan_a = FaultPlan::generate(7, &FaultConfig::default(), geom);
    let plan_b = FaultPlan::generate(7, &FaultConfig::default(), geom);
    assert_eq!(plan_a, plan_b, "plan generation is deterministic");
    // A different seed gives a different plan (with overwhelming odds).
    assert_ne!(
        plan_a,
        FaultPlan::generate(8, &FaultConfig::default(), geom)
    );

    let n = 64;
    let js = particles(n);
    let ps = probes(50);
    let run = |plan: &FaultPlan| {
        let mut e = Grape6Engine::with_fault_plan(&cfg, n, plan).unwrap();
        for (k, j) in js.iter().enumerate() {
            e.set_j_particle(k, j);
        }
        e.set_time(0.0);
        let mut out = vec![ForceResult::default(); ps.len()];
        e.compute(&ps, &mut out);
        (e.fault_report(), e.hardware_cycles(), out)
    };
    let (report_a, cycles_a, out_a) = run(&plan_a);
    let (report_b, cycles_b, out_b) = run(&plan_b);
    assert_eq!(report_a, report_b, "event logs must replay exactly");
    assert_eq!(cycles_a, cycles_b);
    assert_eq!(out_a, out_b);
}

#[test]
fn degraded_engine_slows_down_in_the_timing_model_too() {
    use grape6::model::calib::GrapeTiming;
    let cfg = machine();
    let plan = FaultPlan::none().with_dead_module(0, 0);
    let engine = Grape6Engine::with_fault_plan(&cfg, 16, &plan).unwrap();
    assert_eq!(engine.alive_chips(), 6);
    // Feed the surviving chip count into the analytic model: passes
    // stretch by the lost parallelism.
    let full = GrapeTiming {
        chips_per_host: cfg.total_chips(),
        ..GrapeTiming::paper_host()
    };
    let degraded = full.degraded(engine.alive_chips());
    assert!(degraded.pass_time(6000) > full.pass_time(6000));
    assert!(degraded.peak_flops() < full.peak_flops());
}

#[test]
fn lossy_fabric_completes_collectives_with_deterministic_retries() {
    let link = LinkProfile {
        latency: 60.0e-6,
        bandwidth: 1.0e8,
        overhead: 15.0e-6,
    };
    // 20% drops, generous retry budget: everything completes, retries and
    // backoff show up in the measured costs, clocks replay exactly.
    let plan = NetFaultPlan::lossy(99, 200, 32, 1e-4);
    let p = 4;
    let round = || {
        run_ranks_faulty::<u64, (Vec<u64>, f64, EndpointStats), _>(p, link, plan, |mut ep| {
            let me = ep.rank() as u64;
            let mut gathered = Vec::new();
            for _ in 0..5 {
                barrier_measured(&mut ep).expect("retry budget is generous");
                let (all, _cost) =
                    allgather_measured(&mut ep, me, 8).expect("retry budget is generous");
                gathered = all;
            }
            (gathered, ep.clock(), ep.stats())
        })
    };
    let a = round();
    for (r, (all, _, _)) in a.iter().enumerate() {
        assert_eq!(*all, vec![0, 1, 2, 3], "rank {r} allgather wrong");
    }
    let retransmits: u64 = a.iter().map(|(_, _, s)| s.retransmits).sum();
    assert!(retransmits > 0, "a 20%-lossy fabric must retransmit");
    let backoff: f64 = a.iter().map(|(_, _, s)| s.backoff_seconds).sum();
    assert!(backoff > 0.0);
    assert_eq!(a.iter().filter(|(_, _, s)| s.timeouts > 0).count(), 0);
    // Deterministic replay, clock for clock and counter for counter.
    let b = round();
    for r in 0..p {
        assert_eq!(a[r].1, b[r].1, "rank {r} clock differs across runs");
        assert_eq!(a[r].2, b[r].2, "rank {r} stats differ across runs");
    }
}

#[test]
fn dead_link_times_out_with_typed_error() {
    // 100% loss and a tiny retry budget: the receiver gets a LinkError
    // carrying the flow coordinates, and the timeout burned virtual time.
    let plan = NetFaultPlan::lossy(3, 1000, 4, 5e-5);
    let out = run_ranks_faulty::<u8, Option<(usize, usize, u64, u32, f64)>, _>(
        2,
        LinkProfile::ideal(),
        plan,
        |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 77, 32);
                None
            } else {
                let err = match ep.recv_checked(0).unwrap_err() {
                    grape6::net::RecvError::Lost(le) => le,
                    other => panic!("expected a lost link, got {other:?}"),
                };
                Some((err.from, err.to, err.seq, err.attempts, ep.clock()))
            }
        },
    );
    let (from, to, seq, attempts, clock) = out[1].unwrap();
    assert_eq!((from, to, seq, attempts), (0, 1, 0, 4));
    // 4 attempts of exponential backoff: (1+2+4+8) × 5e-5 = 7.5e-4 s.
    assert!((clock - 7.5e-4).abs() < 1e-12, "clock {clock}");
}
