//! Acceptance: bitwise-identical resume from a checkpoint.
//!
//! An integration interrupted at an arbitrary blockstep and restored from
//! its checkpoint must match the uninterrupted run's positions,
//! velocities and block-FP force sums **byte for byte** for at least 100
//! subsequent blocksteps — on a single host, and on a 2×2 multi-cluster
//! layout (4 ranks under the copy algorithm, the way GRAPE-6 spans
//! clusters in §4.3 of the paper).
//!
//! This is the §3.4 reproducibility property turned into a recovery
//! guarantee: because the block-FP force sums are order-independent, a
//! restored engine whose j-memory was reloaded from the checkpoint
//! produces the same bits as one that never stopped.

use grape6_ckpt::{Checkpoint, TraceState, CKPT_VERSION};
use grape6_core::checkpoint::{capture, integrator_state, particles_from_state, restore};
use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6_parallel::{run_copy_parallel, run_copy_parallel_segment, CopyConfig, CopySegment};
use grape6_system::machine::MachineConfig;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Byte-level equality of everything the acceptance criterion names:
/// positions, velocities, the block-FP force sums (acc/jerk as read back
/// from the engine), and the per-particle schedule that drives all
/// subsequent blocksteps.
fn assert_bits_equal(a: &ParticleSet, b: &ParticleSet, what: &str) {
    assert_eq!(a.n(), b.n());
    for i in 0..a.n() {
        for k in 0..3 {
            assert_eq!(
                a.pos[i][k].to_bits(),
                b.pos[i][k].to_bits(),
                "{what}: pos[{i}][{k}] differs"
            );
            assert_eq!(
                a.vel[i][k].to_bits(),
                b.vel[i][k].to_bits(),
                "{what}: vel[{i}][{k}] differs"
            );
            assert_eq!(
                a.acc[i][k].to_bits(),
                b.acc[i][k].to_bits(),
                "{what}: force sum acc[{i}][{k}] differs"
            );
            assert_eq!(
                a.jerk[i][k].to_bits(),
                b.jerk[i][k].to_bits(),
                "{what}: force sum jerk[{i}][{k}] differs"
            );
        }
        assert_eq!(a.t[i].to_bits(), b.t[i].to_bits(), "{what}: t[{i}] differs");
        assert_eq!(
            a.dt[i].to_bits(),
            b.dt[i].to_bits(),
            "{what}: dt[{i}] differs"
        );
    }
}

#[test]
fn single_host_resume_is_bitwise_for_100_blocksteps() {
    let n = 24;
    let machine = MachineConfig::test_small();
    let icfg = IntegratorConfig::default();
    let set = plummer_model(n, &mut StdRng::seed_from_u64(9));

    // The uninterrupted run, paused at an arbitrary blockstep (13).
    let mut gold = HermiteIntegrator::new(Grape6Engine::try_new(&machine, n).unwrap(), set, icfg);
    for _ in 0..13 {
        gold.step();
    }

    // Interrupt: checkpoint, push through the wire format, restore.
    let ckpt = capture(&gold, "resume acceptance");
    let bytes = ckpt.to_bytes();
    let loaded = Checkpoint::from_bytes(&bytes).expect("round-trip");
    assert_eq!(
        loaded.to_bytes(),
        bytes,
        "wire encoding must be byte-for-byte stable"
    );
    let mut resumed = restore(&machine, None, icfg, &loaded).expect("restore");

    // Both runs continue; every one of the next 120 blocksteps must agree
    // on every byte of particle state.
    for step in 0..120 {
        let (tg, _) = gold.step();
        let (tr, _) = resumed.step();
        assert_eq!(tg.to_bits(), tr.to_bits(), "block time at step {step}");
        assert_bits_equal(
            gold.particles(),
            resumed.particles(),
            &format!("blockstep {step} after resume"),
        );
    }
    assert_eq!(gold.stats().blocksteps, resumed.stats().blocksteps);
}

#[test]
fn four_rank_cluster_resume_is_bitwise_for_100_blocksteps() {
    // A 2×2 multi-cluster layout: 4 ranks under the copy algorithm (the
    // inter-cluster parallelisation of §4.3).
    let n = 32;
    let ranks = 4;
    let t_end = 0.25;
    let cfg = CopyConfig::default();
    let set = plummer_model(n, &mut StdRng::seed_from_u64(17));
    let interrupt_at = 9u64;

    // Reference: the uninterrupted 4-rank run.
    let gold = run_copy_parallel(&set, ranks, t_end, &cfg);
    assert!(
        gold.stats.blocksteps >= interrupt_at + 100,
        "need ≥100 blocksteps after the interruption, run had {}",
        gold.stats.blocksteps
    );

    // Interrupted: stop after 9 blocksteps, capture the (rank-identical)
    // state into the checkpoint wire format, bring it back, continue.
    let first = run_copy_parallel_segment(
        &set,
        ranks,
        CopySegment {
            resume_from: None,
            max_blocksteps: Some(interrupt_at),
            t_end,
        },
        &cfg,
    );
    assert_eq!(first.stats.blocksteps, interrupt_at);
    // The last block time is the max particle time (stepped particles
    // carry it); checkpoints for engine-less parallel runs store it.
    let t_mid = first.set.t.iter().cloned().fold(0.0f64, f64::max);
    let eps = cfg.integ.softening.epsilon(n);
    let ckpt = Checkpoint {
        version: CKPT_VERSION,
        label: "cluster resume acceptance".into(),
        blockstep: first.stats.blocksteps,
        engine: None,
        integrator: integrator_state(&first.set, t_mid, eps, &first.stats),
        net: Vec::new(),
        trace: TraceState {
            vt: 0f64.to_bits(),
            active: false,
        },
    };
    let bytes = ckpt.to_bytes();
    let loaded = Checkpoint::from_bytes(&bytes).expect("round-trip");
    assert_eq!(loaded.to_bytes(), bytes);

    let restored_set = particles_from_state(&loaded.integrator);
    let second = run_copy_parallel_segment(
        &restored_set,
        ranks,
        CopySegment {
            resume_from: Some(f64::from_bits(loaded.integrator.t)),
            max_blocksteps: None,
            t_end,
        },
        &cfg,
    );

    assert_bits_equal(
        &gold.set,
        &second.set,
        "4-rank resumed run vs uninterrupted run",
    );
    assert_eq!(
        first.stats.blocksteps + second.stats.blocksteps,
        gold.stats.blocksteps,
        "the two segments must cover exactly the reference schedule"
    );

    // And the whole stitched run still matches the serial driver bitwise
    // (transitively proving resume changed nothing).
    let mut serial =
        HermiteIntegrator::new(nbody_core::force::DirectEngine::new(n), set, cfg.integ);
    serial.run_until(t_end);
    assert_bits_equal(serial.particles(), &second.set, "serial vs stitched");
}

#[test]
fn snapshot_v2_resumes_a_host_run_bitwise() {
    // The snapshot-format counterpart of the checkpoint tests: format v2
    // carries the full Hermite derivative state (snap, crackle, pot), so
    // a run restored from a *snapshot file* continues warm — bitwise
    // identical on host arithmetic, with no cold-start re-initialisation.
    use grape6::nbody::io::Snapshot;
    let n = 32;
    let icfg = IntegratorConfig::default();
    let set = plummer_model(n, &mut StdRng::seed_from_u64(41));

    let mut gold = HermiteIntegrator::new(nbody_core::force::DirectEngine::new(n), set, icfg);
    for _ in 0..11 {
        gold.step();
    }

    let snap = Snapshot::capture(gold.particles(), gold.time(), "v2 warm resume");
    let parsed = Snapshot::from_json(&snap.to_json()).expect("snapshot round-trip");
    let mut resumed = HermiteIntegrator::resume(
        nbody_core::force::DirectEngine::new(n),
        parsed.restore(),
        icfg,
        parsed.time,
        gold.stats().clone(),
    );

    for step in 0..120 {
        let (tg, _) = gold.step();
        let (tr, _) = resumed.step();
        assert_eq!(tg.to_bits(), tr.to_bits(), "block time at step {step}");
        assert_bits_equal(
            gold.particles(),
            resumed.particles(),
            &format!("blockstep {step} after snapshot resume"),
        );
    }
}
