//! Acceptance: losing a rank mid-run must not change a single bit.
//!
//! Kill 1 of 4 ranks of a copy-algorithm cluster run mid-integration:
//! the survivors must detect the death by missed heartbeats, redistribute
//! the dead rank's share among themselves, and produce final particle
//! state **bitwise identical** to a fault-free run — with the detection
//! and redistribution cost visible in [`RunStats::recovery`] and, for
//! supervised single-host recovery, in the paper's six-term time
//! breakdown.

use grape6_core::{
    CheckpointPolicy, Grape6Engine, HermiteIntegrator, IntegratorConfig, RunSupervisor,
    SupervisorConfig,
};
use grape6_fault::{FaultConfig, FaultPlan, MachineGeometry};
use grape6_parallel::{run_failover_parallel, FailoverConfig, RankDeath};
use grape6_system::machine::MachineConfig;
use grape6_trace::span::Phase;
use grape6_trace::{MeasuredBlockTime, Tracer};
use nbody_core::force::DirectEngine;
use nbody_core::ic::plummer::plummer_model;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn killing_one_of_four_ranks_is_detected_redistributed_and_bitwise_clean() {
    let n = 32;
    let ranks = 4;
    let t_end = 0.25;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(23));

    let cfg = FailoverConfig {
        deaths: vec![RankDeath {
            rank: 2,
            at_blockstep: 6,
        }],
        ..Default::default()
    };
    let faulted = run_failover_parallel(&set, ranks, t_end, &cfg);

    // Detection: the monitor saw rank 2 stop heartbeating at blockstep 6,
    // and the survivor group re-formed without it.
    assert_eq!(faulted.deaths_detected, vec![(2, 6)]);
    assert_eq!(faulted.survivors, vec![0, 1, 3]);
    assert!(faulted.clocks[2].is_none(), "the dead rank has no clock");
    assert!(faulted.clocks[0].is_some() && faulted.clocks[1].is_some());

    // Redistribution and its cost are on the books: the heartbeat
    // timeout the survivors waited out is charged as recovery time.
    assert_eq!(faulted.stats.recovery.redistributions, 1);
    assert!(
        faulted.stats.recovery.recovery_seconds > 0.0,
        "death detection must cost virtual time"
    );

    // Bitwise: the failed-over run equals a fault-free cluster run…
    let clean = run_failover_parallel(&set, ranks, t_end, &FailoverConfig::default());
    assert_eq!(faulted.set.pos, clean.set.pos, "positions diverged");
    assert_eq!(faulted.set.vel, clean.set.vel, "velocities diverged");
    assert_eq!(faulted.set.acc, clean.set.acc, "force sums diverged");
    assert_eq!(faulted.set.dt, clean.set.dt, "schedules diverged");

    // …and both equal the serial driver (the §3.4 property end to end).
    let mut serial = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    serial.run_until(t_end);
    assert_eq!(faulted.set.pos, serial.particles().pos);
    assert_eq!(faulted.set.vel, serial.particles().vel);
    assert_eq!(faulted.stats.blocksteps, serial.stats().blocksteps);
}

#[test]
fn recovery_work_lands_in_the_six_term_breakdown() {
    // A supervised single-host run on hardware that loses a module
    // mid-integration: the supervisor's recovery actions (checkpoint
    // writes, re-self-test, j-memory reloads) must show up as spans that
    // fold into the six-term breakdown — Ckpt→host, Selftest→grape,
    // Reload→interface.
    let n = 24;
    let machine = MachineConfig::single_board();
    let faults = FaultConfig {
        midrun_module_deaths: 1,
        midrun_pass_range: (2, 20),
        ..FaultConfig::default()
    };
    let seed = 5u64;
    let plan = FaultPlan::generate(
        seed,
        &faults,
        MachineGeometry {
            boards: machine.boards,
            modules_per_board: machine.modules_per_board,
            chips_per_module: machine.chips_per_module,
        },
    );
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let engine = Grape6Engine::with_fault_plan(&machine, n, &plan).expect("capacity");
    let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
    it.set_tracer(Tracer::enabled());
    // Recovery spans are recorded on the engine's timeline (they are
    // hardware-side work), so the engine tracer must be live too.
    it.engine_mut().set_tracer(Tracer::enabled());
    let mut scfg = SupervisorConfig::for_machine(machine);
    scfg.policy = CheckpointPolicy {
        every_blocksteps: Some(8),
        every_virtual_seconds: None,
    };
    scfg.plan = Some(plan);
    let mut sup = RunSupervisor::new(it, scfg);
    sup.run_until(0.125).expect("supervised run survives");
    // Operator controls drive the remaining rungs explicitly (the engine
    // absorbs a scheduled module death internally, so the supervised run
    // itself only exercises masking + checkpoints): prove the hardware,
    // then rebalance the j-partitioning over the survivors.
    sup.reselftest().expect("re-self-test on masked hardware");
    sup.redistribute().expect("explicit redistribution");
    sup.run_until(0.25).expect("run continues after the rungs");

    let stats = sup.integrator().stats().clone();
    assert!(stats.recovery.reselftests > 0);
    assert!(stats.recovery.checkpoints_taken > 0);
    assert!(stats.recovery.recovery_seconds > 0.0);
    assert!(stats.faults.units_masked > 0, "the dead module was masked");

    let spans = sup.integrator_mut().take_spans();
    let ckpt_t: f64 = span_time(&spans, Phase::Ckpt);
    let selftest_t: f64 = span_time(&spans, Phase::Selftest);
    let reload_t: f64 = span_time(&spans, Phase::Reload);
    assert!(ckpt_t > 0.0, "checkpoint writes must be traced");
    assert!(selftest_t > 0.0, "the re-self-test must be traced");
    assert!(reload_t > 0.0, "the j-memory reload must be traced");

    // The six-term aggregation accounts for every recovery span: host
    // picks up checkpoint writes, grape the self-test passes, interface
    // the reloads.
    let bt = MeasuredBlockTime::from_spans(&spans);
    assert!(bt.host >= ckpt_t);
    assert!(bt.grape >= selftest_t);
    assert!(bt.interface >= reload_t);
    // And the recovery account matches what was traced.
    let traced_recovery = ckpt_t + selftest_t + reload_t;
    assert!(
        (stats.recovery.recovery_seconds - traced_recovery).abs()
            <= 1e-12 * traced_recovery.max(1.0),
        "recovery account {} != traced recovery spans {}",
        stats.recovery.recovery_seconds,
        traced_recovery
    );
}

fn span_time(spans: &[grape6_trace::span::Span], phase: Phase) -> f64 {
    spans
        .iter()
        .filter(|s| s.phase == phase)
        .map(|s| s.t1 - s.t0)
        .sum()
}
