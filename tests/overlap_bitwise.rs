//! Acceptance: the three execution schedules — serial board walk with
//! blocking blocksteps, rayon-parallel board walk with blocking
//! blocksteps, and rayon-parallel board walk with split-phase overlapped
//! blocksteps — produce **bitwise-identical** trajectories over 100+
//! blocksteps.
//!
//! This is the §3.4 reproducibility property extended to the execution
//! schedule: the block floating-point force accumulation is exact, so it
//! is order- and partition-independent across chips and boards, and the
//! overlapped corrector reads only each particle's own pre-step state —
//! no schedule can change a single bit.  The property must also survive
//! an active [`FaultPlan`] (degraded board array, §3.4 oracle) and a
//! checkpoint/restore cycle in the middle of an overlapped run.
//!
//! The same matrix is crossed with the force-kernel selector
//! ([`KernelMode`]): the batched SoA kernel and the runtime-dispatched
//! SIMD-lane kernel must land on the same bits as the scalar oracle on
//! every schedule, on a degraded machine, and across a
//! checkpoint/restore that switches kernels mid-run.

use grape6::fault::{FaultConfig, FaultPlan, MachineGeometry};
use grape6_ckpt::Checkpoint;
use grape6_core::checkpoint::{capture, restore};
use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig, KernelMode};
use grape6_system::machine::MachineConfig;
use nbody_core::ic::plummer::plummer_model;
use nbody_core::particle::ParticleSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn machine() -> MachineConfig {
    MachineConfig::builder()
        .boards(2)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity(MachineConfig::test_small().chip.jmem_capacity)
        .build()
        .unwrap()
}

/// Byte-level equality of the full integration state.
fn assert_bits_equal(a: &ParticleSet, b: &ParticleSet, what: &str) {
    assert_eq!(a.n(), b.n());
    for i in 0..a.n() {
        for k in 0..3 {
            assert_eq!(
                a.pos[i][k].to_bits(),
                b.pos[i][k].to_bits(),
                "{what}: pos[{i}][{k}] differs"
            );
            assert_eq!(
                a.vel[i][k].to_bits(),
                b.vel[i][k].to_bits(),
                "{what}: vel[{i}][{k}] differs"
            );
            assert_eq!(
                a.acc[i][k].to_bits(),
                b.acc[i][k].to_bits(),
                "{what}: force sum acc[{i}][{k}] differs"
            );
            assert_eq!(
                a.jerk[i][k].to_bits(),
                b.jerk[i][k].to_bits(),
                "{what}: force sum jerk[{i}][{k}] differs"
            );
        }
        assert_eq!(a.t[i].to_bits(), b.t[i].to_bits(), "{what}: t[{i}] differs");
        assert_eq!(
            a.dt[i].to_bits(),
            b.dt[i].to_bits(),
            "{what}: dt[{i}] differs"
        );
    }
}

/// Build an integrator for one schedule (optionally on a degraded
/// machine) and run `blocksteps` blocksteps through the auto dispatcher.
fn run_schedule(
    n: usize,
    seed: u64,
    blocksteps: usize,
    board_parallel: bool,
    overlap: bool,
    kernel: KernelMode,
    plan: Option<&FaultPlan>,
) -> (Vec<u64>, ParticleSet) {
    let cfg = machine();
    let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
    let mut engine = match plan {
        Some(plan) => Grape6Engine::with_fault_plan(&cfg, n, plan).unwrap(),
        None => Grape6Engine::try_new(&cfg, n).unwrap(),
    };
    engine.set_board_parallel(board_parallel);
    engine.set_kernel_mode(kernel);
    let icfg = IntegratorConfig {
        overlap,
        ..IntegratorConfig::default()
    };
    let mut it = HermiteIntegrator::new(engine, set, icfg);
    let mut times = Vec::with_capacity(blocksteps);
    for _ in 0..blocksteps {
        let (t, _) = it.try_step_auto().expect("healthy schedule");
        times.push(t.to_bits());
    }
    (times, it.particles().clone())
}

#[test]
fn three_schedules_are_bitwise_identical_over_100_blocksteps() {
    // The reference is the most conservative combination: serial blocking
    // walk on the scalar oracle.  Every other (schedule × kernel)
    // combination must land on its exact bits.
    let n = 64;
    let steps = 110;
    let (t_ref, reference) = run_schedule(n, 5, steps, false, false, KernelMode::Scalar, None);
    for (label, board_parallel, overlap, kernel) in [
        ("overlapped / scalar", true, true, KernelMode::Scalar),
        ("serial / batched", false, false, KernelMode::Batched),
        ("parallel / batched", true, false, KernelMode::Batched),
        ("overlapped / batched", true, true, KernelMode::Batched),
        ("serial / simd", false, false, KernelMode::Simd),
        ("overlapped / simd", true, true, KernelMode::Simd),
    ] {
        let (t, set) = run_schedule(n, 5, steps, board_parallel, overlap, kernel, None);
        assert_eq!(t_ref, t, "{label}: block-time sequence diverged");
        assert_bits_equal(&reference, &set, label);
    }
}

#[test]
fn schedules_stay_bitwise_identical_under_an_active_fault_plan() {
    // Degrade the board array with a seeded plan (dead chip, dead
    // pipeline, stuck j-memory bit) and re-run all three schedules: the
    // §3.4 oracle says the surviving units still produce the exact bits
    // of the healthy serial machine.
    let cfg = machine();
    let plan = FaultPlan::generate(
        2024,
        &FaultConfig::default(),
        MachineGeometry {
            boards: cfg.boards,
            modules_per_board: cfg.modules_per_board,
            chips_per_module: cfg.chips_per_module,
        },
    );
    assert!(!plan.is_empty());
    let n = 64;
    let steps = 100;
    let (t_clean, clean) = run_schedule(n, 5, steps, false, false, KernelMode::Scalar, None);
    for (label, board_parallel, overlap, kernel) in [
        ("degraded serial / scalar", false, false, KernelMode::Scalar),
        (
            "degraded parallel / batched",
            true,
            false,
            KernelMode::Batched,
        ),
        (
            "degraded overlapped / batched",
            true,
            true,
            KernelMode::Batched,
        ),
        ("degraded overlapped / simd", true, true, KernelMode::Simd),
    ] {
        let (t, set) = run_schedule(n, 5, steps, board_parallel, overlap, kernel, Some(&plan));
        assert_eq!(t_clean, t, "{label}: block-time sequence diverged");
        assert_bits_equal(&clean, &set, label);
    }
}

#[test]
fn overlapped_run_resumes_bitwise_across_checkpoint_restore() {
    // Interrupt an *overlapped* run mid-flight, push the checkpoint
    // through the wire format, restore, and continue overlapped: every
    // one of the next 100+ blocksteps matches the uninterrupted
    // overlapped run — and the final state matches the serial blocking
    // schedule, closing the loop between all three properties.
    //
    // The gold run uses the batched kernel; the resumed run is switched
    // to the scalar oracle, then to the SIMD kernel mid-run.
    // `KernelMode` is deliberately not checkpoint state — it must be
    // bitwise-invisible, so a restore (or a live run) may change it
    // freely.
    let n = 48;
    let cfg = machine();
    let icfg = IntegratorConfig {
        overlap: true,
        ..IntegratorConfig::default()
    };
    let set = plummer_model(n, &mut StdRng::seed_from_u64(23));

    let mut gold = HermiteIntegrator::new(
        {
            let mut e = Grape6Engine::try_new(&cfg, n).unwrap();
            e.set_board_parallel(true);
            e.set_kernel_mode(KernelMode::Batched);
            e
        },
        set.clone(),
        icfg,
    );
    for _ in 0..13 {
        gold.try_step_auto().expect("healthy hardware");
    }

    let ckpt = capture(&gold, "overlap resume acceptance");
    let bytes = ckpt.to_bytes();
    let loaded = Checkpoint::from_bytes(&bytes).expect("round-trip");
    let mut resumed = restore(&cfg, None, icfg, &loaded).expect("restore");
    resumed.engine_mut().set_board_parallel(true);
    resumed.engine_mut().set_kernel_mode(KernelMode::Scalar);

    for step in 0..110 {
        if step == 55 {
            // Kernel switches are legal at any blockstep boundary.
            resumed.engine_mut().set_kernel_mode(KernelMode::Simd);
        }
        let (tg, _) = gold.try_step_auto().expect("healthy hardware");
        let (tr, _) = resumed.try_step_auto().expect("healthy hardware");
        assert_eq!(tg.to_bits(), tr.to_bits(), "block time at step {step}");
        assert_bits_equal(
            gold.particles(),
            resumed.particles(),
            &format!("blockstep {step} after overlapped resume"),
        );
    }

    // The stitched overlapped run also matches a serial blocking run of
    // the same length — schedule and interruption both invisible.
    let mut serial = HermiteIntegrator::new(
        Grape6Engine::try_new(&cfg, n).unwrap(),
        set,
        IntegratorConfig::default(),
    );
    for _ in 0..123 {
        serial.try_step_auto().expect("healthy hardware");
    }
    assert_bits_equal(
        serial.particles(),
        resumed.particles(),
        "serial blocking vs resumed overlapped",
    );
}
