//! End-to-end cross-engine validation: the simulated GRAPE-6 must agree
//! with the double-precision reference through the full integration stack,
//! and machines of different sizes must agree with each other exactly
//! (§3.4 of the paper).

use grape6::core::engine::Grape6Engine;
use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::{energy, ConservationTracker};
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::softening::Softening;
use grape6::system::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn grape_trajectories_track_f64_through_integration() {
    let n = 64;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(100));
    let cfg = IntegratorConfig::default();
    let mut f64_run = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg);
    let mut hw_run = HermiteIntegrator::new(
        Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap(),
        set,
        cfg,
    );
    f64_run.run_until(0.125);
    hw_run.run_until(0.125);
    let a = f64_run.synchronized_snapshot();
    let b = hw_run.synchronized_snapshot();
    let mut worst = 0.0f64;
    for i in 0..n {
        worst = worst.max((a.pos[i] - b.pos[i]).norm());
    }
    assert!(
        worst < 5e-5,
        "hardware arithmetic diverged from f64 by {worst:e} after 0.125 units"
    );
}

#[test]
fn grape_energy_conservation_one_fifth_time_unit() {
    let n = 96;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(101));
    let eps2 = Softening::Constant.epsilon2(n);
    let mut tracker = ConservationTracker::new(&set, eps2);
    let mut it = HermiteIntegrator::new(
        Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap(),
        set,
        IntegratorConfig::default(),
    );
    it.run_until(0.2);
    let err = tracker.record(&it.synchronized_snapshot(), eps2);
    assert!(err < 5e-5, "GRAPE energy error {err:e}");
}

#[test]
fn different_machine_sizes_identical_trajectories() {
    // The full §3.4 claim, at integration level: run the same cluster on a
    // 1-board and a 4-board machine — every position bit must match at
    // every output time, because the block-FP forces are identical.
    let n = 48;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(102));
    let cfg = IntegratorConfig::default();
    let small = MachineConfig {
        boards: 1,
        ..MachineConfig::test_small()
    };
    let large = MachineConfig {
        boards: 4,
        ..MachineConfig::test_small()
    };
    let mut run_a =
        HermiteIntegrator::new(Grape6Engine::try_new(&small, n).unwrap(), set.clone(), cfg);
    let mut run_b = HermiteIntegrator::new(Grape6Engine::try_new(&large, n).unwrap(), set, cfg);
    for k in 1..=4 {
        let t = k as f64 * 0.03125;
        run_a.run_until(t);
        run_b.run_until(t);
        let a = run_a.particles();
        let b = run_b.particles();
        for i in 0..n {
            assert_eq!(a.pos[i], b.pos[i], "t={t} i={i}: positions diverged");
            assert_eq!(a.vel[i], b.vel[i], "t={t} i={i}: velocities diverged");
            assert_eq!(a.dt[i], b.dt[i], "t={t} i={i}: timesteps diverged");
        }
    }
    assert_eq!(
        run_a.stats().particle_steps,
        run_b.stats().particle_steps,
        "identical forces must give identical schedules"
    );
}

#[test]
fn all_three_softenings_run_and_conserve() {
    let n = 64;
    for soft in Softening::PAPER_CHOICES {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(103));
        let eps2 = soft.epsilon2(n);
        let e0 = energy(&set, eps2);
        let cfg = IntegratorConfig {
            softening: soft,
            ..Default::default()
        };
        let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
        it.run_until(0.25);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        assert!(err < 1e-4, "{}: energy error {err:e}", soft.label());
    }
}

#[test]
fn smaller_softening_resolves_shorter_timescales() {
    // The fig. 15 mechanism at the integration level: ε = 4/N produces a
    // finer timestep floor than ε = 1/64 on the same realisation.  That
    // only holds where 4/N < 1/64, i.e. N > 256.
    let n = 512;
    let dt_min_for = |soft: Softening| -> f64 {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(104));
        let cfg = IntegratorConfig {
            softening: soft,
            ..Default::default()
        };
        let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
        it.run_until(0.25);
        it.stats().dt_min
    };
    let coarse = dt_min_for(Softening::Constant);
    let fine = dt_min_for(Softening::CloseEncounter);
    assert!(
        fine <= coarse,
        "eps=4/N dt_min {fine:e} should not exceed eps=1/64 dt_min {coarse:e}"
    );
}

/// Long-haul validation: a full paper-style benchmark unit (1 Heggie time
/// unit) on the bit-level hardware simulator.  Several minutes of CPU —
/// run explicitly with `cargo test --release -- --ignored`.
#[test]
#[ignore = "long: ~minutes; run with -- --ignored"]
fn full_time_unit_on_simulated_hardware() {
    let n = 128;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(2003));
    let eps2 = Softening::Constant.epsilon2(n);
    let mut tracker = ConservationTracker::new(&set, eps2);
    let mut it = HermiteIntegrator::new(
        Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap(),
        set,
        IntegratorConfig::default(),
    );
    it.run_until(1.0);
    let err = tracker.record(&it.synchronized_snapshot(), eps2);
    assert!(err < 2e-4, "energy error over a full time unit: {err:e}");
    assert!(it.stats().particle_steps > 10_000);
}
