//! The analytic performance model against the executable simulators —
//! the reproduction's version of the paper's dashed-curve-vs-solid-curve
//! validation.

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::model::blockstats::BlockStatsModel;
use grape6::model::calib::NicProfile;
use grape6::model::perf::{MachineLayout, PerfModel};
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::softening::Softening;
use grape6::net::collectives::barrier;
use grape6::net::fabric::run_ranks;
use grape6::net::LinkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measure real block statistics at one size.
fn measure(n: usize, soft: Softening) -> (f64, f64) {
    let set = plummer_model(n, &mut StdRng::seed_from_u64(300 + n as u64));
    let cfg = IntegratorConfig {
        softening: soft,
        ..Default::default()
    };
    let duration = 0.125;
    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
    it.run_until(duration);
    (
        it.stats().particle_steps as f64 / duration,
        it.stats().blocksteps as f64 / duration,
    )
}

#[test]
fn blockstats_model_tracks_real_runs_constant_softening() {
    let model = BlockStatsModel::constant_softening();
    for n in [512usize, 1024, 2048] {
        let (steps, blocks) = measure(n, Softening::Constant);
        let steps_model = model.total_steps(n as f64);
        let blocks_model = model.blocks_per_unit(n as f64);
        // The defaults are a fit of exactly this experiment — they must
        // track within a factor ~1.6 despite realisation noise.
        let rs = steps / steps_model;
        let rb = blocks / blocks_model;
        assert!((0.6..1.7).contains(&rs), "N={n}: steps ratio {rs}");
        assert!((0.6..1.7).contains(&rb), "N={n}: blocks ratio {rb}");
    }
}

#[test]
fn mean_block_grows_roughly_linearly_with_n() {
    // §4.2: "the number of particles integrated in one blockstep is
    // roughly proportional to N" — measured, not assumed.
    let (s1, b1) = measure(512, Softening::Constant);
    let (s2, b2) = measure(2048, Softening::Constant);
    let nb1 = s1 / b1;
    let nb2 = s2 / b2;
    let exponent = (nb2 / nb1).ln() / 4f64.ln();
    assert!(
        (0.55..1.1).contains(&exponent),
        "mean-block growth exponent {exponent}"
    );
}

#[test]
fn butterfly_barrier_model_matches_fabric_measurement() {
    // The model charges stages·(rtt + sw); the fabric executes the real
    // message pattern.  They must agree within a factor ~2 across NICs
    // and rank counts (they are independent codepaths).
    let cases = [
        (NicProfile::ns83820(), LinkProfile::ns83820()),
        (NicProfile::intel_82540em(), LinkProfile::intel_82540em()),
    ];
    for (nic, link) in cases {
        for p in [4usize, 16] {
            let model_t = nic.butterfly_barrier(p);
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                barrier(&mut ep).expect("lossless fabric");
                ep.clock()
            });
            let measured = clocks.iter().cloned().fold(0.0, f64::max);
            let ratio = model_t / measured;
            assert!(
                (0.5..3.0).contains(&ratio),
                "{} p={p}: model {model_t:e} vs fabric {measured:e}",
                nic.name
            );
        }
    }
}

#[test]
fn mean_block_model_tracks_block_by_block_simulation() {
    // The harness's strongest consistency check: charge the timing model
    // for every blockstep of a *real* integration (actual block sizes)
    // and compare with the mean-block workload model.  They are
    // independent paths to the same figure and must agree within ~15 %.
    use grape6::core::{HermiteIntegrator as HI, IntegratorConfig as IC};
    let model = PerfModel::default();
    let layout = MachineLayout::SingleHost;
    let stats = BlockStatsModel::constant_softening();
    for n in [512usize, 2048] {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(42));
        let mut it = HI::new(DirectEngine::new(n), set, IC::default());
        let mut t_virtual = 0.0;
        let mut steps = 0u64;
        while it.time() < 0.125 {
            let (_, n_b) = it.step();
            t_virtual += model.block_time(layout, n, n_b).total();
            steps += n_b as u64;
        }
        let s_real = 57.0 * n as f64 * steps as f64 / t_virtual;
        let s_model = model.speed(layout, n, &stats);
        let ratio = s_real / s_model;
        assert!(
            (0.8..1.25).contains(&ratio),
            "N={n}: block-by-block {s_real:.3e} vs mean-block {s_model:.3e} (ratio {ratio:.3})"
        );
    }
}

#[test]
fn figure_anchor_single_host_above_1tflops() {
    let m = PerfModel::default();
    let s = m.speed(
        MachineLayout::SingleHost,
        200_000,
        &BlockStatsModel::constant_softening(),
    );
    assert!(s > 1.0e12, "fig. 13 anchor: {s:e}");
}

#[test]
fn figure_anchor_crossovers_ordered() {
    // fig. 15: constant-ε crossover ≪ ε=4/N crossover;
    // fig. 17: multi-cluster crossover ≈ 1e5.
    let m = PerfModel::default();
    let find = |a: MachineLayout, b: MachineLayout, st: &BlockStatsModel| -> f64 {
        let mut n = 256usize;
        while n <= 8 << 20 {
            if m.speed(b, n, st) > m.speed(a, n, st) {
                return n as f64;
            }
            n = (n as f64 * 1.1) as usize + 1;
        }
        f64::INFINITY
    };
    let const_soft = BlockStatsModel::constant_softening();
    let close = BlockStatsModel::close_encounter_softening();
    let c_const = find(
        MachineLayout::SingleHost,
        MachineLayout::Cluster { hosts: 2 },
        &const_soft,
    );
    let c_close = find(
        MachineLayout::SingleHost,
        MachineLayout::Cluster { hosts: 2 },
        &close,
    );
    assert!(
        (1.0e3..1.0e4).contains(&c_const),
        "constant-ε 2-node crossover {c_const:e} (paper ≈ 3e3)"
    );
    assert!(
        (8.0e3..1.0e5).contains(&c_close),
        "ε=4/N crossover {c_close:e} (paper ≈ 3e4)"
    );
    let c_multi = find(
        MachineLayout::Cluster { hosts: 4 },
        MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        },
        &const_soft,
    );
    assert!(
        (4.0e4..6.0e5).contains(&c_multi),
        "multi-cluster crossover {c_multi:e} (paper ≈ 1e5)"
    );
}

#[test]
fn measured_breakdown_terms_track_model_within_25_percent() {
    // The tentpole validation: run real traced integrations on the
    // bit-level simulator (and, for the network layouts, the
    // discrete-event fabric), fold the recorded spans into the six-term
    // blockstep breakdown, and compare *term by term* against the
    // analytic model charged for the same blockstep sequence.  The two
    // sides are independent codepaths — the spans come out of the
    // engine/fabric clocks, the model out of closed-form charges — so
    // per-term agreement is a strong consistency check on both.
    use grape6_bench::breakdown::{measure_breakdown, timing_for};
    let machine = grape6::system::machine::MachineConfig::test_small();
    let model = PerfModel {
        grape: timing_for(&machine),
        ..PerfModel::default()
    };
    // N large enough that the GRAPE pass dwarfs the fixed ensemble
    // reduction latency the model does not charge for (at tiny N that
    // latency alone pushes the grape term past the tolerance).
    let n = 256;
    let t_end = 0.03125;
    for layout in [
        MachineLayout::SingleHost,
        MachineLayout::MultiCluster {
            clusters: 2,
            hosts_per_cluster: 2,
        },
    ] {
        let run = measure_breakdown(&model, &machine, layout, n, t_end, 2003);
        assert!(run.blocksteps > 10, "{layout:?}: degenerate run");
        let m = run.measured;
        let b = run.model;
        for (term, got, want) in [
            ("host", m.host, b.host),
            ("dma", m.dma, b.dma),
            ("interface", m.interface, b.interface),
            ("grape", m.grape, b.grape),
            ("sync", m.sync, b.sync),
            ("exchange", m.exchange, b.exchange),
            ("total", m.total(), b.total()),
        ] {
            if want == 0.0 {
                // Terms the model says this layout does not pay
                // (sync/exchange on one host) must also measure zero.
                assert!(
                    got == 0.0,
                    "{layout:?}/{term}: measured {got:e} where model has no charge"
                );
            } else {
                let ratio = got / want;
                assert!(
                    (0.75..1.25).contains(&ratio),
                    "{layout:?}/{term}: measured {got:e} vs model {want:e} (ratio {ratio:.3})"
                );
            }
        }
    }
}

#[test]
fn measured_breakdown_terms_track_model_within_25_percent_overlapped() {
    // The same six-term gate, run in *overlapped* mode: split-phase
    // blocksteps with the host corrector hidden behind the GRAPE pass.
    // The term sums are schedule-invariant (the same spans are recorded,
    // only the timeline layout changes), so the 25 % per-term agreement
    // must hold unchanged — and on top of it the *wall* (timeline
    // extent) must shrink below the term sum on both the measured and
    // the analytic side, by amounts that agree.
    use grape6::trace::OverlapMode;
    use grape6_bench::breakdown::{measure_single_host_mode, timing_for};
    let machine = grape6::system::machine::MachineConfig::test_small();
    let model = PerfModel {
        grape: timing_for(&machine),
        ..PerfModel::default()
    };
    let n = 256;
    let t_end = 0.03125;
    let run = measure_single_host_mode(&model, &machine, n, t_end, 2003, OverlapMode::Overlapped);
    assert!(run.blocksteps > 10, "degenerate run");
    let m = run.measured;
    let b = run.model;
    for (term, got, want) in [
        ("host", m.host, b.host),
        ("dma", m.dma, b.dma),
        ("interface", m.interface, b.interface),
        ("grape", m.grape, b.grape),
        ("total", m.total(), b.total()),
    ] {
        let ratio = got / want;
        assert!(
            (0.75..1.25).contains(&ratio),
            "overlapped/{term}: measured {got:e} vs model {want:e} (ratio {ratio:.3})"
        );
    }
    // The overlap is real on both sides: wall < term sum, and the
    // measured wall sits *between* the analytic ideal and the blocking
    // sum.  `BlockTime::wall(Overlapped)` is the perfect-overlap bound
    // `max(host, grape-side)`; the chunk-pipelined schedule cannot hide
    // the predictor half or the fixed per-block host work, so it lands
    // above the bound but strictly below the sequential sum.
    assert!(m.wall < m.total(), "measured wall did not shrink");
    assert!(
        run.model_wall < b.total(),
        "analytic wall did not shrink: {:e} vs {:e}",
        run.model_wall,
        b.total()
    );
    let ratio = m.wall / run.model_wall;
    assert!(
        (0.95..2.0).contains(&ratio),
        "overlapped wall: measured {:e} vs ideal bound {:e} (ratio {ratio:.3})",
        m.wall,
        run.model_wall
    );
    // And the blocking run of the same system pays the full sum.
    let seq = measure_single_host_mode(&model, &machine, n, t_end, 2003, OverlapMode::Sequential);
    assert!(
        (seq.measured.wall - seq.measured.total()).abs() < 1e-9 * seq.measured.total(),
        "sequential wall must equal the term sum"
    );
}

#[test]
fn tracing_does_not_perturb_the_integration() {
    // The observability layer must be read-only: a traced run and an
    // untraced run of the same system must agree bit for bit — positions,
    // velocities, timesteps, and the engine's own hardware cycle counter.
    use grape6::core::Grape6Engine;
    use grape6::system::machine::MachineConfig;
    use grape6::trace::{HostRates, Tracer};
    let machine = MachineConfig::test_small();
    let n = 64;
    let run = |traced: bool| {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(7));
        let engine = Grape6Engine::try_new(&machine, n).unwrap();
        let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        if traced {
            it.engine_mut()
                .set_timebase(PerfModel::default().grape.engine_timebase());
            it.engine_mut().set_tracer(Tracer::enabled());
            it.set_tracer(Tracer::enabled());
            it.set_host_rates(HostRates {
                t_block_fixed: 55.0e-6,
                t_step: 1.0e-6,
            });
        }
        it.run_until(0.0625);
        let cycles = it.engine().hardware_cycles();
        let spans = it.take_spans();
        if traced {
            assert!(!spans.is_empty(), "traced run recorded no spans");
        } else {
            assert!(spans.is_empty(), "untraced run recorded spans");
        }
        (it.particles().clone(), cycles)
    };
    let (plain, cycles_plain) = run(false);
    let (traced, cycles_traced) = run(true);
    assert_eq!(
        cycles_plain, cycles_traced,
        "tracing changed hardware cycles"
    );
    assert_eq!(plain.pos, traced.pos, "tracing changed positions");
    assert_eq!(plain.vel, traced.vel, "tracing changed velocities");
    assert_eq!(plain.dt, traced.dt, "tracing changed timesteps");
}

#[test]
fn figure_anchor_tuned_speed_at_1_8m() {
    // fig. 19 / §5: ≈ 36 Tflops at 1.8M on the tuned 16-node system.
    let m = PerfModel::tuned();
    let s = m.speed(
        MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        },
        1_800_000,
        &BlockStatsModel::constant_softening(),
    );
    let tflops = s / 1e12;
    assert!(
        (25.0..55.0).contains(&tflops),
        "S(1.8M) = {tflops:.1} Tflops, paper 36.0"
    );
}
