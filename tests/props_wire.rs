//! Property-based tests (proptest) on the farm wire protocol.
//!
//! The farm frames carry particle bits end to end, so the encoding must
//! be a bitwise bijection on everything it accepts: decode(encode(f))
//! re-encodes to the exact original bytes for *any* field values —
//! including NaN payloads, infinities and negative zero in the f64
//! lanes — and every strict prefix of every encoding is a typed
//! [`WireError`], never a panic or a wrong frame.

// The offline `proptest` stub type-checks but swallows the `proptest!`
// body, so in that environment rustc sees the imports and strategy
// helpers below as unused.
#![allow(unused_imports, dead_code)]

use grape6::farm::{DenyReason, FarmFrame, RetryAfter, SessionPhase, SessionStatus, TenantSpec};
use grape6::farm::{SessionId, TenantReport};
use grape6::nbody::particle::ParticleSet;
use grape6::nbody::Vec3;
use proptest::prelude::*;

/// A particle set whose every f64 lane is an arbitrary bit pattern.
fn particles(bits: &[u64]) -> ParticleSet {
    let n = (bits.len() / 3).max(2);
    let f = |k: usize| f64::from_bits(bits[k % bits.len()]);
    let v = |k: usize| Vec3::new(f(k), f(k + 1), f(k + 2));
    let mut s = ParticleSet::with_capacity(n);
    for i in 0..n {
        s.push(f(i), v(i + 1), v(i + 4));
    }
    for i in 0..n {
        s.pot[i] = f(i + 7);
        s.t[i] = f(i + 8);
        s.dt[i] = f(i + 9);
        s.acc[i] = v(i + 10);
        s.jerk[i] = v(i + 13);
        s.snap[i] = v(i + 16);
        s.crackle[i] = v(i + 19);
    }
    s
}

fn retry(unit: bool, x: u64) -> RetryAfter {
    if unit {
        RetryAfter::Blocksteps(x)
    } else {
        RetryAfter::Millis(x)
    }
}

fn deny(tag: u8, a: u64, s: String) -> DenyReason {
    match tag % 11 {
        0 => DenyReason::Saturated {
            retry_after: retry(a.is_multiple_of(2), a),
        },
        1 => DenyReason::QueueFull { depth: a },
        2 => DenyReason::JobTooLarge {
            n: a,
            capacity: a / 2,
        },
        3 => DenyReason::InvalidJob { reason: s },
        4 => DenyReason::InvalidSpec { reason: s },
        5 => DenyReason::BadHello { reason: s },
        6 => DenyReason::UnknownSession,
        7 => DenyReason::NotReady,
        8 => DenyReason::JobFailed { reason: s },
        9 => DenyReason::Shutdown,
        _ => DenyReason::Internal { reason: s },
    }
}

fn phase(tag: u8) -> SessionPhase {
    [
        SessionPhase::Queued,
        SessionPhase::Resident,
        SessionPhase::Parked,
        SessionPhase::Detached,
        SessionPhase::Done,
        SessionPhase::Failed,
    ][tag as usize % 6]
}

/// decode(encode(f)) must re-encode to the original bytes, and every
/// strict prefix must be a typed error.
fn roundtrips_bitwise(frame: &FarmFrame) {
    let bytes = frame.encode();
    let back = FarmFrame::decode(&bytes);
    assert!(back.is_ok(), "own encoding rejected: {back:?}");
    assert_eq!(
        back.unwrap().encode(),
        bytes,
        "re-encode is not bitwise identical"
    );
    for cut in 0..bytes.len() {
        assert!(
            FarmFrame::decode(&bytes[..cut]).is_err(),
            "torn prefix of {cut} bytes decoded as a frame"
        );
    }
}

proptest! {
    /// Submit and Result — the frames that carry physics — round-trip
    /// bitwise for arbitrary f64 bit patterns in every particle lane.
    #[test]
    fn particle_frames_roundtrip_any_bits(
        bits in prop::collection::vec(any::<u64>(), 6..24),
        seq in any::<u64>(),
        t_end in any::<u64>(),
        label in ".{0,24}",
        tenant in any::<u32>(),
        index in any::<u32>(),
    ) {
        let set = particles(&bits);
        roundtrips_bitwise(&FarmFrame::Submit {
            seq,
            t_end,
            label,
            set: set.clone(),
        });
        let mut report = TenantReport::default();
        report.weight = tenant.max(1);
        report.grants = seq;
        report.blocksteps = t_end;
        report.breakdown.host = f64::from_bits(bits[0]);
        report.recovery.restores = bits[1 % bits.len()];
        roundtrips_bitwise(&FarmFrame::Result {
            session: SessionId { tenant, index },
            particles: set,
            report,
        });
    }

    /// The control-plane frames round-trip for arbitrary field values,
    /// every deny reason and every session phase included.
    #[test]
    fn control_frames_roundtrip(
        nonce in any::<u64>(),
        weight in 1u32..u32::MAX,
        cap in proptest::option::of(any::<u64>()),
        deadline in proptest::option::of(any::<u64>()),
        tenant in any::<u32>(),
        index in any::<u32>(),
        a in any::<u64>(),
        tag in any::<u8>(),
        text in ".{0,40}",
    ) {
        let mut spec = TenantSpec::new(weight);
        if let Some(c) = cap {
            spec = spec.queue_cap(c as usize);
        }
        if let Some(d) = deadline {
            spec = spec.deadline_grants(d);
        }
        let session = SessionId { tenant, index };
        for frame in [
            FarmFrame::Hello { proto: tag as u32, nonce, spec },
            FarmFrame::HelloAck { proto: tag as u32, tenant },
            FarmFrame::Ticket { seq: a, session },
            FarmFrame::Query { session },
            FarmFrame::Status {
                status: SessionStatus {
                    session,
                    phase: phase(tag),
                    blocksteps: a,
                    resumes: nonce,
                },
            },
            FarmFrame::Fetch { session },
            FarmFrame::Cancel { session },
            FarmFrame::Deny { seq: a, reason: deny(tag, nonce, text) },
            FarmFrame::Beat { epoch: a },
            FarmFrame::Bye,
        ] {
            roundtrips_bitwise(&frame);
        }
    }
}
