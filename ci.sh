#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q --locked"
cargo test -q --locked

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

echo "==> cargo doc --no-deps --locked (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --locked --quiet

echo "==> example smoke tests (release)"
cargo run --release --locked --example quickstart
cargo run --release --locked --example fault_tour

echo "==> chaos soak: seeded fault schedules against the recovery stack"
cargo run --release --locked -p grape6-bench --bin chaos_soak

echo "==> ci.sh: all green"
