#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
