#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q --locked"
cargo test -q --locked

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

echo "==> ci.sh: all green"
