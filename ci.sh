#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q --locked"
cargo test -q --locked

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

echo "==> cargo doc --no-deps --locked (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --locked --quiet

echo "==> schedule bitwise suite across the rayon thread matrix"
# The §3.4 reproducibility gate must hold for any worker count: pin one
# thread, then repeat with the environment default (all cores — a no-op
# under the offline sequential rayon stub, the real matrix on CI hosts).
RAYON_NUM_THREADS=1 cargo test -q --locked --test overlap_bitwise
cargo test -q --locked --test overlap_bitwise

echo "==> overlap bench smoke (release): serial vs parallel vs overlapped"
# Verifies the three schedules are bitwise identical (exit 1 otherwise)
# and emits BENCH_overlap.json with the per-schedule walls.
cargo run --release --locked -p grape6-bench --bin overlap_bench -- 96 16 2

echo "==> SIMD dispatch fallback: kernel A/B + bitwise suite with lanes forced off"
# GRAPE6_FORCE_SCALAR=1 disables runtime SIMD dispatch, so KernelMode::Simd
# drops to the batched scalar path.  The whole bitwise matrix and a kernel
# A/B pass must still hold — same bits, no panics — proving the fallback
# is a first-class citizen, not dead code.  Runs *before* the real kernel
# matrix so the final BENCH_kernel.json reflects the SIMD-enabled machine.
GRAPE6_FORCE_SCALAR=1 RAYON_NUM_THREADS=1 cargo test -q --locked --test overlap_bitwise
GRAPE6_FORCE_SCALAR=1 cargo run --release --locked -p grape6-bench --bin kernel_bench -- 8 2 128

echo "==> force-kernel matrix (release): scalar vs batched vs SIMD lanes"
# Runs every kernel variant the host supports (scalar, batched, simd-avx2,
# simd-avx512 where detected) at N=256 and N=512, asserts all land on
# bitwise-identical state over a whole integration (exit 1 otherwise) and
# emits BENCH_kernel.json.  The relational regression guard: the batched
# kernel must never be slower than the oracle it replaces, and the best
# SIMD variant must never be slower than the batched kernel it replaces.
cargo run --release --locked -p grape6-bench --bin kernel_bench -- 16 2 256 512
python3 - <<'EOF'
import json
with open("BENCH_kernel.json") as f:
    r = json.load(f)
if not r["bitwise_identical"]:
    raise SystemExit("REGRESSION: kernel variants diverged bitwise")
for entry in r["entries"]:
    n = entry["n"]
    if not entry["bitwise_identical"]:
        raise SystemExit(f"REGRESSION: N={n}: kernel variants diverged bitwise")
    by = {v["label"]: v["interactions_per_sec"] for v in entry["variants"]}
    scalar, batched = by["scalar"], by["batched"]
    simd = {k: v for k, v in by.items() if k.startswith("simd")}
    row = ", ".join(f"{k} {v:.3e}" for k, v in by.items())
    print(f"kernel guard: N={n}: {row} inter/s")
    if batched < scalar:
        raise SystemExit(f"REGRESSION: N={n}: batched kernel slower than the scalar oracle")
    if simd and max(simd.values()) < batched:
        raise SystemExit(f"REGRESSION: N={n}: best SIMD variant slower than the batched kernel")
EOF

echo "==> crossover bench smoke (release): 1-16 nodes x 3 network schedules"
# Verifies the chained wave digests are identical across virtual /
# split-phase / TCP / UDS backends (exit 1 otherwise) and emits
# BENCH_crossover.json.  The guard: the coalesced + overlapped schedule's
# 4-node network share must beat the committed sequential baseline from
# BENCH_breakdown.json.
cargo run --release --locked -p grape6-bench --bin crossover_bench -- 128 0.03125
python3 - <<'EOF'
import json
with open("BENCH_crossover.json") as f:
    r = json.load(f)
if not r["bitwise"]["identical"]:
    raise SystemExit("REGRESSION: wave digests diverged across transports/schedules")
with open("BENCH_breakdown.json") as f:
    b = json.load(f)
base = next(e for e in b if e["layout"] == "4-node cluster")
base_share = (base["measured"]["sync"] + base["measured"]["exchange"]) / base["measured"]["total"]
ovl = r["four_node"]["coalesced_overlapped_share"]
seq = r["four_node"]["sequential_share"]
print(f"crossover guard: 4-node net share baseline {base_share:.3f}, "
      f"sequential {seq:.3f}, coalesced+overlapped {ovl:.3f}")
if ovl >= base_share:
    raise SystemExit("REGRESSION: coalesced+overlapped schedule no longer beats "
                     "the committed sequential network share")
EOF

echo "==> example smoke tests (release)"
cargo run --release --locked --example quickstart
cargo run --release --locked --example fault_tour
cargo run --release --locked --example farm_tour

echo "==> farm service smoke (release): one server, two client processes"
# The wire-protocol happy path without fault injection: a farm_server on
# TCP and on UDS, two farm_client tenants each submitting one job and
# checking its digest; the server drains, idles out, and exits 0.
cargo build --release --locked -p grape6-bench --bin farm_server --bin farm_client
for kind in tcp uds; do
  smoke_dir=$(mktemp -d "${TMPDIR:-/tmp}/farm_smoke_${kind}.XXXXXX")
  ./target/release/farm_server "$smoke_dir" "$kind" --nonce=0xc1 --boards=2 \
    --max-live=2 --idle-exit-ms=1500 --max-wall-ms=60000 &
  server_pid=$!
  ./target/release/farm_client "$smoke_dir" "$kind" --nonce=0xc1 --mode=run \
    --jobs=1 --n=32 --t-end=0.03125 --seed=21 &
  client_a=$!
  ./target/release/farm_client "$smoke_dir" "$kind" --nonce=0xc1 --mode=run \
    --jobs=1 --n=32 --t-end=0.03125 --seed=22 &
  client_b=$!
  wait "$client_a"
  wait "$client_b"
  wait "$server_pid"
  rm -rf "$smoke_dir"
  echo "farm service smoke ($kind): ok"
done

echo "==> chaos soak: seeded fault schedules against the recovery stack"
cargo run --release --locked -p grape6-bench --bin chaos_soak

echo "==> cluster chaos: SIGKILL + SIGSTOP real rank processes mid-run"
# Four supervised cluster_node processes on loopback TCP: one rank is
# killed mid-wave and respawned from its coordinated checkpoint, another
# is stalled past the read-deadline budget, shrunk, and evicted on wake.
# The binary exits 1 unless every finisher prints the unfaulted digest
# and both recovery modes ran; the guard re-checks from BENCH_chaos.json.
cargo build --release --locked -p grape6-bench --bin cluster_node
cargo run --release --locked -p grape6-bench --bin cluster_chaos
python3 - <<'EOF'
import json
with open("BENCH_chaos.json") as f:
    r = json.load(f)
if r["violations"]:
    raise SystemExit(f"REGRESSION: cluster chaos violations: {r['violations']}")
if not r["digests_match"]:
    raise SystemExit("REGRESSION: a recovered rank diverged from the clean digest")
if r["recoveries"] < 2:
    raise SystemExit("REGRESSION: kill+stall schedule ran fewer than 2 recoveries")
finishers = [n for n in r["nodes"] if n["exit"] == 0]
if any(n["digest"] != r["clean_digest"] for n in finishers):
    raise SystemExit("REGRESSION: finisher digest mismatch in BENCH_chaos.json")
if not any(n["respawned"] for n in finishers):
    raise SystemExit("REGRESSION: the respawned rank did not finish")
stalled = [n for n in r["nodes"] if n["rank"] == r["schedule"]["stall_rank"]]
if not any(n["exit"] == 4 for n in stalled):
    raise SystemExit("REGRESSION: the stalled rank was not evicted (exit 4)")
cost = r["recovery_cost"]
if cost["term"] != "sync" or cost["recover_seconds"] <= 0:
    raise SystemExit("REGRESSION: recovery cost not recorded under the sync term")
print(f"chaos guard: {len(finishers)} finishers on digest {r['clean_digest']}, "
      f"{r['recoveries']} recoveries, {cost['recover_seconds']:.3f} s sync-term "
      f"recovery cost — ok")
EOF

echo "==> farm soak: multi-tenant scenarios against the shared board pool"
# Oversubscribed seeded runs with two injected board faults.  The binary
# exits 1 on any missed rejection/rotation, incomplete session, bitwise
# divergence, or scheduler stall (the deadlock signal), and emits
# BENCH_farm.json; the guard re-checks the invariants from the JSON.
cargo run --release --locked -p grape6-bench --bin farm_soak
python3 - <<'EOF'
import json
with open("BENCH_farm.json") as f:
    r = json.load(f)
if not r["bitwise_ok"]:
    raise SystemExit("REGRESSION: a farm session diverged from its dedicated run")
for run in r["runs"]:
    seed = run["seed"]
    if run["completed"] != run["admitted"]:
        raise SystemExit(f"REGRESSION: seed {seed}: admitted session did not complete")
    if run["rejected_saturated"] + run["rejected_queue_full"] == 0:
        raise SystemExit(f"REGRESSION: seed {seed}: backpressure never fired")
    if run["board_rotations"] < 2:
        raise SystemExit(f"REGRESSION: seed {seed}: a faulted board was not rotated out")
    if run["evictions"] < 1 or run["resumes"] < 1:
        raise SystemExit(f"REGRESSION: seed {seed}: no eviction/resume traffic")
    print(f"farm guard: seed {seed}: {run['completed']}/{run['admitted']} done, "
          f"{run['board_rotations']} rotations, {run['evictions']} evictions — ok")
EOF

echo "==> farm net soak: the farm behind a socket, clients as processes"
# The full acceptance scenario on both transports: an oversubscribed
# farm_server with two injected board faults, a SIGKILLed client whose
# session is detached, torn-frame + mid-handshake vandal connections,
# and two surviving workers whose fetched results must be bitwise
# identical to dedicated in-process runs.  The binary exits 1 on any
# violation and emits BENCH_farm_net.json; the guard re-checks the JSON.
cargo run --release --locked -p grape6-bench --bin farm_net_soak
python3 - <<'EOF'
import json
with open("BENCH_farm_net.json") as f:
    r = json.load(f)
if not r["bitwise_ok"]:
    raise SystemExit("REGRESSION: a wire-fetched result diverged from its dedicated run")
for run in r["runs"]:
    kind = run["kind"]
    if not run["ok"]:
        raise SystemExit(f"REGRESSION: {kind}: run-level invariants failed")
    if run["digests_ok"] != run["jobs_done"] or run["jobs_done"] < 4:
        raise SystemExit(f"REGRESSION: {kind}: {run['digests_ok']}/{run['jobs_done']} "
                         "bitwise results (want 4/4)")
    if run["saturated_denials"] < 1:
        raise SystemExit(f"REGRESSION: {kind}: backpressure never crossed the wire")
    if run["torn_frames"] < 1:
        raise SystemExit(f"REGRESSION: {kind}: the torn frame was not classified")
    if run["client_deaths"] < 1:
        raise SystemExit(f"REGRESSION: {kind}: no client death was detected")
    if run["detached"] < 1:
        raise SystemExit(f"REGRESSION: {kind}: the killed client's session "
                         "was not detached")
    if run["completed"] < 4:
        raise SystemExit(f"REGRESSION: {kind}: fewer than 4 sessions completed")
    if run["board_rotations"] < 2:
        raise SystemExit(f"REGRESSION: {kind}: a faulted board was not rotated out")
    print(f"farm net guard: {kind}: {run['digests_ok']}/{run['jobs_done']} bitwise, "
          f"{run['saturated_denials']} saturated denials, {run['torn_frames']} torn, "
          f"{run['client_deaths']} deaths, {run['detached']} detached, "
          f"{run['board_rotations']} rotations — ok")
EOF

echo "==> ci.sh: all green"
