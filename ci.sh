#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q --locked"
cargo test -q --locked

echo "==> cargo clippy --all-targets --locked -- -D warnings"
cargo clippy --all-targets --locked -- -D warnings

echo "==> cargo doc --no-deps --locked (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --locked --quiet

echo "==> schedule bitwise suite across the rayon thread matrix"
# The §3.4 reproducibility gate must hold for any worker count: pin one
# thread, then repeat with the environment default (all cores — a no-op
# under the offline sequential rayon stub, the real matrix on CI hosts).
RAYON_NUM_THREADS=1 cargo test -q --locked --test overlap_bitwise
cargo test -q --locked --test overlap_bitwise

echo "==> overlap bench smoke (release): serial vs parallel vs overlapped"
# Verifies the three schedules are bitwise identical (exit 1 otherwise)
# and emits BENCH_overlap.json with the per-schedule walls.
cargo run --release --locked -p grape6-bench --bin overlap_bench -- 96 16 2

echo "==> force-kernel A/B smoke (release): scalar oracle vs batched SoA"
# Verifies the two kernels land on bitwise-identical state over a whole
# integration (exit 1 otherwise) and emits BENCH_kernel.json.  The
# regression guard: the batched kernel must never be slower than the
# oracle it replaces on the hot path.
cargo run --release --locked -p grape6-bench --bin kernel_bench -- 256 16 2
python3 - <<'EOF'
import json
with open("BENCH_kernel.json") as f:
    r = json.load(f)
scalar = r["scalar"]["interactions_per_sec"]
batched = r["batched"]["interactions_per_sec"]
print(f"kernel guard: scalar {scalar:.3e} inter/s, batched {batched:.3e} inter/s")
if batched < scalar:
    raise SystemExit("REGRESSION: batched kernel slower than the scalar oracle")
EOF

echo "==> example smoke tests (release)"
cargo run --release --locked --example quickstart
cargo run --release --locked --example fault_tour

echo "==> chaos soak: seeded fault schedules against the recovery stack"
cargo run --release --locked -p grape6-bench --bin chaos_soak

echo "==> ci.sh: all green"
