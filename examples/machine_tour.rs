//! A tour of the simulated hardware — the §2/§3 architecture, executable.
//!
//! ```text
//! cargo run --release --example machine_tour
//! ```
//!
//! Walks through the machine hierarchy (chip → module → board → host →
//! system), then demonstrates the two §3.4 design properties that make
//! GRAPE-6 GRAPE-6:
//!
//! 1. **partition independence** — the same force computed on a 1-board
//!    and a 4-board machine is *bit-identical* (block floating point);
//! 2. **exponent retries** — a cold-started window overflows, the library
//!    widens it and repeats, exactly as the paper describes.

use grape6::chip::chip::ChipConfig;
use grape6::core::engine::Grape6Engine;
use grape6::nbody::force::{ForceEngine, ForceResult, IParticle, JParticle};
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::Vec3;
use grape6::system::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- the hierarchy ---------------------------------------------------
    let chip = ChipConfig::default();
    println!("processor chip : {} pipelines x {}-way VMP @ {} MHz  => {:.2} Gflops, {} i-particles in parallel",
        chip.pipelines, chip.vmp_ways, chip.clock_hz / 1e6, chip.peak_flops() / 1e9, chip.i_parallelism());

    let host = MachineConfig::paper_host();
    println!(
        "host slice     : {} boards x 8 modules x 4 chips = {} chips => {:.2} Tflops, {} j-particles",
        host.boards,
        host.total_chips(),
        host.peak_flops() / 1e12,
        host.capacity()
    );
    println!(
        "full system    : 16 hosts (4 clusters x 4) => {:.2} Tflops peak  (paper: 63.04 Tflops)",
        16.0 * host.peak_flops() / 1e12
    );

    // --- partition independence ------------------------------------------
    let n = 300;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(99));
    let mut small = Grape6Engine::try_new(
        &MachineConfig {
            boards: 1,
            ..MachineConfig::test_small()
        },
        n,
    )
    .unwrap();
    let mut big = Grape6Engine::try_new(
        &MachineConfig {
            boards: 4,
            ..MachineConfig::test_small()
        },
        n,
    )
    .unwrap();
    for i in 0..n {
        let j = JParticle {
            mass: set.mass[i],
            t0: 0.0,
            pos: set.pos[i],
            vel: set.vel[i],
            ..Default::default()
        };
        small.set_j_particle(i, &j);
        big.set_j_particle(i, &j);
    }
    small.set_time(0.0);
    big.set_time(0.0);
    let probes: Vec<IParticle> = (0..48)
        .map(|k| IParticle {
            pos: set.pos[k],
            vel: set.vel[k],
            eps2: (1.0f64 / 64.0).powi(2),
        })
        .collect();
    let mut fa = vec![ForceResult::default(); 48];
    let mut fb = vec![ForceResult::default(); 48];
    small.compute(&probes, &mut fa);
    big.compute(&probes, &mut fb);
    let identical = fa
        .iter()
        .zip(&fb)
        .all(|(a, b)| a.acc == b.acc && a.jerk == b.jerk && a.pot == b.pot);
    println!("\npartition independence: 1-board vs 4-board forces bit-identical? {identical}");
    assert!(identical, "§3.4 reproducibility property violated");

    // --- exponent retry ----------------------------------------------------
    let mut cold = Grape6Engine::try_new(&MachineConfig::test_small(), 2).unwrap();
    cold.set_j_particle(
        0,
        &JParticle {
            mass: 5000.0, // absurdly heavy: the unit-magnitude guess fails
            t0: 0.0,
            pos: Vec3::new(1e-3, 0.0, 0.0),
            ..Default::default()
        },
    );
    cold.set_time(0.0);
    let mut out = [ForceResult::default()];
    cold.compute(
        &[IParticle {
            pos: Vec3::ZERO,
            vel: Vec3::ZERO,
            eps2: 0.0,
        }],
        &mut out,
    );
    println!(
        "exponent retries on a cold start with a 5000-mass intruder: {} (paper: \"we\nsometimes need to repeat the force calculation a few times\")",
        cold.exponent_retries()
    );
    println!(
        "recovered acceleration: {:.4e} (exact: {:.4e})",
        out[0].acc.x,
        5000.0 / 1e-6
    );
}
