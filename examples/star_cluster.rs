//! Star-cluster evolution — the collisional workload GRAPE was built for.
//!
//! ```text
//! cargo run --release --example star_cluster -- [N] [t_end]
//! ```
//!
//! Integrates a Plummer cluster with the reference (f64) engine and prints
//! a diagnostic row per half time unit: energy error, virial ratio,
//! Lagrangian radii (10/50/90 % mass), and the blockstep statistics whose
//! scaling drives every performance figure of the paper.  Defaults:
//! N = 512, t_end = 2 (≈ 0.7 crossing times).

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::{core_radius, energy, ConservationTracker};
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::particle::ParticleSet;
use grape6::nbody::softening::Softening;
use grape6::nbody::units;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lagrangian_radii(set: &ParticleSet, fractions: &[f64]) -> Vec<f64> {
    let com = set.center_of_mass();
    let mut radii: Vec<f64> = set.pos.iter().map(|&p| (p - com).norm()).collect();
    radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = set.total_mass();
    let m_each = total / set.n() as f64; // equal masses
    fractions
        .iter()
        .map(|&f| {
            let k = ((f * total / m_each).ceil() as usize).clamp(1, set.n()) - 1;
            radii[k]
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let t_end: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.0);

    let set = plummer_model(n, &mut StdRng::seed_from_u64(7));
    let eps2 = Softening::Constant.epsilon2(n);
    let mut tracker = ConservationTracker::new(&set, eps2);
    println!(
        "N = {n}, eps = 1/64, t_end = {t_end} (crossing time = {:.2}, t_rh ≈ {:.0})",
        units::CROSSING_TIME,
        units::relaxation_time(n)
    );
    println!(
        "\n{:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "t", "|dE/E|", "Q", "r_core", "r10%", "r50%", "r90%", "steps", "<n_b>"
    );

    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    let mut t_report = 0.0;
    while t_report < t_end {
        t_report += 0.5;
        it.run_until(t_report);
        let snap = it.synchronized_snapshot();
        let err = tracker.record(&snap, eps2);
        let e = energy(&snap, eps2);
        let lr = lagrangian_radii(&snap, &[0.1, 0.5, 0.9]);
        let st = it.stats();
        println!(
            "{:>6.2} {:>10.2e} {:>8.4} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>8.1}",
            it.time(),
            err,
            e.virial_ratio(),
            core_radius(&snap),
            lr[0],
            lr[1],
            lr[2],
            st.particle_steps,
            st.mean_block()
        );
    }
    println!(
        "\nworst energy error: {:.2e}; angular-momentum drift: {:.2e}",
        tracker.max_energy_error, tracker.max_l_drift
    );
    println!("a virialised cluster should hold Q ≈ 0.5 and nearly static Lagrangian radii");
    println!("over a few crossing times; relaxation-driven evolution needs t ≳ t_rh.");
}
