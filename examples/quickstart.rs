//! Quickstart: integrate a small star cluster on the simulated GRAPE-6.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 256-particle Plummer model in standard units, attaches a
//! single-board GRAPE-6, runs the Hermite block-timestep integrator for a
//! quarter of a time unit, and reports what the paper's users cared about:
//! energy conservation, step statistics, and the hardware counters.

use grape6::core::engine::Grape6Engine;
use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::force::ForceEngine;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::softening::Softening;
use grape6::system::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 256;
    let t_end = 0.25;

    // 1. Initial conditions: an equal-mass Plummer sphere, E = −1/4.
    let set = plummer_model(n, &mut StdRng::seed_from_u64(42));
    let eps2 = Softening::Constant.epsilon2(n);
    let e0 = energy(&set, eps2);
    println!(
        "initial energy: {:+.6} (standard units fix −0.25)",
        e0.total()
    );

    // 2. The machine: one processor board = 32 chips ≈ 0.99 Tflops peak.
    let machine = MachineConfig::single_board();
    println!(
        "machine: {} chips, {:.2} Tflops peak, capacity {} particles",
        machine.total_chips(),
        machine.peak_flops() / 1e12,
        machine.capacity()
    );
    let engine = Grape6Engine::try_new(&machine, n).unwrap();

    // 3. Integrate.
    let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
    it.run_until(t_end);

    // 4. Report.
    let snap = it.synchronized_snapshot();
    let e1 = energy(&snap, eps2);
    let st = it.stats();
    println!(
        "\nintegrated to t = {} ({} blocksteps, {} particle steps)",
        it.time(),
        st.blocksteps,
        st.particle_steps
    );
    println!("mean block size: {:.1} of N = {n}", st.mean_block());
    println!("block-time spacing: {:.2e} .. {:.2e}", st.dt_min, st.dt_max);
    println!(
        "relative energy error: {:.2e}",
        ((e1.total() - e0.total()) / e0.total()).abs()
    );
    println!("\nhardware counters:");
    println!("  pairwise interactions: {}", it.engine().interactions());
    println!(
        "  pipeline cycles (critical path): {} ({:.3} virtual seconds at 90 MHz)",
        it.engine().hardware_cycles(),
        it.engine().hardware_cycles() as f64 / 90.0e6
    );
    println!(
        "  block-FP exponent retries: {}",
        it.engine().exponent_retries()
    );
    println!("\nflops represented (paper eq. 9): {:.3e}", st.flops(n));
}
