//! A tour of the fault-injection and graceful-degradation subsystem.
//!
//! ```text
//! cargo run --release --example fault_tour -- [seed]
//! ```
//!
//! A 2048-chip machine never has all 2048 chips working — the real GRAPE-6
//! lived with dead pipelines, stuck memory bits and flaky reduction
//! networks, and survived them through a startup self-test plus the §3.4
//! property that block floating-point summation makes the force *bitwise
//! independent* of which chips computed it.  This example walks the whole
//! story on the simulated machine:
//!
//! 1. generate a seeded, reproducible [`FaultPlan`];
//! 2. power on: the known-answer self-test finds and masks the broken
//!    units;
//! 3. integrate a Plummer model while a module dies mid-run — the engine
//!    redistributes the j-particles over the survivors;
//! 4. compare against the healthy machine: identical positions, more
//!    virtual cycles;
//! 5. print the fault report and the degraded timing model.

use grape6::core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6::fault::{FaultConfig, FaultPlan, MachineGeometry};
use grape6::model::GrapeTiming;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::system::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);

    // A 3-board laboratory machine: 12 chips.
    let machine = MachineConfig {
        boards: 3,
        modules_per_board: 2,
        chips_per_module: 2,
        ..MachineConfig::test_small()
    };
    println!(
        "machine: {} boards x {} modules x {} chips = {} chips",
        machine.boards,
        machine.modules_per_board,
        machine.chips_per_module,
        machine.total_chips()
    );

    // 1. A seeded plan: power-on faults plus one scheduled mid-run death.
    let geom = MachineGeometry {
        boards: machine.boards,
        modules_per_board: machine.modules_per_board,
        chips_per_module: machine.chips_per_module,
    };
    let fault_cfg = FaultConfig {
        midrun_module_deaths: 1,
        ..FaultConfig::default()
    };
    let plan = FaultPlan::generate(seed, &fault_cfg, geom);
    println!("\nfault plan (seed {seed}):");
    for (path, f) in &plan.chip_faults {
        println!("  power-on {f:?} at chip {path:?}");
    }
    for d in &plan.midrun_deaths {
        println!(
            "  scheduled death of unit {:?} at pass {}",
            d.path, d.at_pass
        );
    }

    // 2. Power on both machines; the faulty one self-tests and masks.
    let n = 128;
    let set = plummer_model(n, &mut StdRng::seed_from_u64(7));
    let faulty_engine =
        Grape6Engine::with_fault_plan(&machine, n, &plan).expect("survivors can hold the system");
    let st = faulty_engine.self_test_report().expect("self-test ran");
    println!(
        "\nself-test: {} units probed, {} failed, worst healthy rel err {:.1e}",
        st.units_tested,
        st.failures.len(),
        st.worst_healthy_rel_err
    );
    for f in &st.failures {
        println!(
            "  unit {:?} failed (rel err {:.2e}) -> masked",
            f.path, f.rel_err
        );
    }

    // 3. Integrate on both machines.
    let cfg = IntegratorConfig::default();
    let mut faulty = HermiteIntegrator::new(faulty_engine, set.clone(), cfg);
    let mut clean = HermiteIntegrator::new(Grape6Engine::try_new(&machine, n).unwrap(), set, cfg);
    faulty.run_until(0.25);
    clean.run_until(0.25);

    // 4. The oracle: bitwise identical trajectories, more virtual cycles.
    let identical = faulty.particles().pos == clean.particles().pos
        && faulty.particles().vel == clean.particles().vel;
    println!("\nafter t = 0.25: trajectories bitwise identical to healthy machine: {identical}");
    assert!(identical, "degraded operation must not change the physics");
    println!(
        "virtual cycles: faulty {} vs healthy {} (+{:.1}%)",
        faulty.engine().hardware_cycles(),
        clean.engine().hardware_cycles(),
        100.0
            * (faulty.engine().hardware_cycles() as f64 / clean.engine().hardware_cycles() as f64
                - 1.0)
    );

    // 5. The fault report and the timing-model view.
    let report = faulty.engine().fault_report();
    println!("\n{report}");
    let full = GrapeTiming {
        chips_per_host: machine.total_chips(),
        ..GrapeTiming::paper_host()
    };
    let degraded = full.degraded(report.alive_chips);
    println!(
        "timing model: pass over {} j-particles {:.2} us healthy -> {:.2} us degraded",
        n,
        full.pass_time(n) * 1e6,
        degraded.pass_time(n) * 1e6
    );
}
