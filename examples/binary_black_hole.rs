//! Binary-black-hole hardening — a scaled version of the paper's second
//! production application (§5: two 0.5 %-mass point masses in a 2M-star
//! Plummer model, 36 time units).
//!
//! ```text
//! cargo run --release --example binary_black_hole -- [N_field] [t_end]
//! ```
//!
//! The black holes sink by dynamical friction, pair up, and harden by
//! ejecting field stars — the timestep hierarchy gets steeper as the
//! binary shrinks, which is exactly the workload regime that forces
//! individual timesteps.  Defaults: N = 512 field stars, t_end = 4.

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::binary_bh::binary_bh_model;
use grape6::nbody::softening::Softening;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_field: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(512);
    let t_end: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4.0);

    let set = binary_bh_model(n_field, 0.005, 0.3, &mut StdRng::seed_from_u64(13));
    let n = set.n();
    let eps2 = Softening::Constant.epsilon2(n);
    let e0 = energy(&set, eps2);
    let m_bh = set.mass[0];
    println!("{n_field} field stars + 2 BHs of mass {m_bh} each, starting at r = ±0.3");

    let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
    println!(
        "\n{:>6} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "t", "BH sep", "BH E_bind", "|dE/E|", "steps", "dt_min"
    );
    let mut t_report = 0.0;
    while t_report < t_end {
        t_report += t_end / 8.0;
        it.run_until(t_report);
        let snap = it.synchronized_snapshot();
        let sep = (snap.pos[0] - snap.pos[1]).norm();
        // Two-body binding energy of the BH pair (negative once bound).
        let vrel2 = (snap.vel[0] - snap.vel[1]).norm2();
        let e_bind = 0.5 * (m_bh / 2.0) * vrel2 - m_bh * m_bh / sep;
        let e1 = energy(&snap, eps2);
        println!(
            "{:>6.2} {:>10.4} {:>12.3e} {:>10.2e} {:>10} {:>8.1e}",
            it.time(),
            sep,
            e_bind,
            ((e1.total() - e0.total()) / e0.total()).abs(),
            it.stats().particle_steps,
            it.stats().dt_min
        );
    }
    println!("\nexpected behaviour: the separation decays from 0.6 towards the hard-binary");
    println!("scale while dt_min plunges — the 'wildly different orbital timescales' of §1");
    println!("that rule out shared timesteps and motivate the GRAPE architecture.");
}
