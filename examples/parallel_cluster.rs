//! The copy-algorithm parallel integrator on the virtual cluster.
//!
//! ```text
//! cargo run --release --example parallel_cluster -- [N] [ranks] [t_end]
//! ```
//!
//! Runs the same cluster serially and on `ranks` simulated hosts connected
//! by the paper's Gigabit Ethernet (Intel 82540EM profile), verifies the
//! trajectories are **bit-identical** (§3.2/§3.4), and prints the
//! virtual-time accounting — compute vs communication — that drives
//! figs. 17/18.

use grape6::core::HermiteIntegrator;
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::net::LinkProfile;
use grape6::parallel::copy_algo::{run_copy_parallel, CopyConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(96);
    let ranks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let t_end: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let set = plummer_model(n, &mut StdRng::seed_from_u64(2026));
    println!("N = {n}, {ranks} ranks, t_end = {t_end}, NIC = Intel 82540EM\n");

    // Serial reference.
    let cfg = CopyConfig::default();
    let mut serial = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.integ);
    serial.run_until(t_end);

    // Parallel run.
    let out = run_copy_parallel(&set, ranks, t_end, &cfg);

    let identical = out.set.pos == serial.particles().pos && out.set.vel == serial.particles().vel;
    println!("bit-identical to the serial driver? {identical}");
    assert!(
        identical,
        "copy algorithm must reproduce the serial run exactly"
    );

    println!(
        "\nblocksteps: {}   particle steps: {}",
        out.stats.blocksteps, out.stats.particle_steps
    );
    println!("per-rank virtual clocks [ms]:");
    for (r, c) in out.clocks.iter().enumerate() {
        println!(
            "  rank {r}: {:8.3}   ({} bytes sent)",
            c * 1e3,
            out.bytes_sent[r]
        );
    }
    let slowest = out.clocks.iter().cloned().fold(0.0, f64::max);
    let sync_floor = out.stats.blocksteps as f64 * LinkProfile::intel_82540em().latency;
    println!(
        "\nslowest rank: {:.3} ms; pure-latency floor ({} blocks x one-way latency): {:.3} ms",
        slowest * 1e3,
        out.stats.blocksteps,
        sync_floor * 1e3
    );
    println!("— at this N the per-blockstep synchronisation dominates: the fig. 17/18 regime.");
}
