//! Planetesimal-disk evolution — a scaled version of the paper's first
//! production application (§5: "the evolution of early Kuiper belt
//! region … We used 1.8M particles").
//!
//! ```text
//! cargo run --release --example kuiper_belt -- [N_disk] [t_end]
//! ```
//!
//! A star plus a cold ring of planetesimals; gravitational scattering
//! between the planetesimals slowly pumps the eccentricity/inclination
//! dispersions (viscous stirring) — the physics the production run
//! followed for 21120 dynamical times.  Defaults: N = 1000, t_end = 3
//! (≈ half an orbit at a = 1.25).

use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::force::DirectEngine;
use grape6::nbody::ic::disk::{planetesimal_disk, DiskParams};
use grape6::nbody::particle::ParticleSet;
use grape6::nbody::softening::Softening;
use grape6::nbody::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// RMS eccentricity and inclination of the disk particles (star = index 0),
/// from instantaneous orbital elements about the star.
fn dispersions(set: &ParticleSet) -> (f64, f64) {
    let star_pos = set.pos[0];
    let star_vel = set.vel[0];
    let mu = set.mass[0];
    let mut e2 = 0.0;
    let mut i2 = 0.0;
    let n_disk = set.n() - 1;
    for k in 1..set.n() {
        let r = set.pos[k] - star_pos;
        let v = set.vel[k] - star_vel;
        let h = r.cross(v);
        let rn = r.norm();
        // Laplace–Runge–Lenz eccentricity vector.
        let ev = v.cross(h) / mu - r / rn;
        e2 += ev.norm2();
        let inc = (h.z / h.norm()).clamp(-1.0, 1.0).acos();
        i2 += inc * inc;
    }
    ((e2 / n_disk as f64).sqrt(), (i2 / n_disk as f64).sqrt())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_disk: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let t_end: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);

    let params = DiskParams {
        disk_mass: 3e-3, // a heavy disk stirs visibly in a short run
        ..DiskParams::default()
    };
    let set = planetesimal_disk(n_disk, &params, &mut StdRng::seed_from_u64(9));
    let eps = 2.0e-4; // planetesimal radius scale
    let e0 = energy(&set, eps * eps);
    let (e_rms0, i_rms0) = dispersions(&set);
    println!(
        "star + {n_disk} planetesimals, disk mass {}, annulus {}..{}",
        params.disk_mass, params.a_in, params.a_out
    );
    println!("initial dispersions: e_rms = {e_rms0:.4}, i_rms = {i_rms0:.4}");

    let cfg = IntegratorConfig {
        softening: Softening::Fixed(eps),
        ..Default::default()
    };
    let mut it = HermiteIntegrator::new(DirectEngine::new(set.n()), set, cfg);
    println!(
        "\n{:>6} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "t", "e_rms", "i_rms", "|dE/E|", "steps", "<n_b>"
    );
    let mut t_report = 0.0;
    while t_report < t_end {
        t_report += t_end / 6.0;
        it.run_until(t_report);
        let snap = it.synchronized_snapshot();
        let (e_rms, i_rms) = dispersions(&snap);
        let e1 = energy(&snap, eps * eps);
        println!(
            "{:>6.2} {:>9.4} {:>9.4} {:>10.2e} {:>10} {:>8.1}",
            it.time(),
            e_rms,
            i_rms,
            ((e1.total() - e0.total()) / e0.total()).abs(),
            it.stats().particle_steps,
            it.stats().mean_block()
        );
    }
    let (e_rms, i_rms) = dispersions(&it.synchronized_snapshot());
    println!(
        "\nstirring: e_rms {} (×{:.2}), i_rms {} (×{:.2}) — mutual scattering heats the disk;",
        e_rms,
        e_rms / e_rms0,
        i_rms,
        i_rms / i_rms0
    );
    println!("the production run followed exactly this process at N = 1.8M for 21120 units.");
    let _ = Vec3::ZERO; // keep the import obviously used in all cfg combinations
}
