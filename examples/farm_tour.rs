//! A tour of the multi-tenant GRAPE farm.
//!
//! ```text
//! cargo run --release --example farm_tour -- [seed]
//! ```
//!
//! A shared GRAPE installation serves many groups at once: jobs arrive
//! faster than boards free up, some boards are broken on arrival, and
//! some break mid-run.  The farm service multiplexes sessions over a
//! board pool with admission control, fair-share scheduling,
//! checkpoint-based eviction, and fault-aware board rotation — and
//! because of the §3.4 block floating-point property, none of that
//! churn changes a single bit of any tenant's physics.  This example
//! walks the whole story:
//!
//! 1. build a 3-board farm where one board flunks power-on self-test
//!    and another is scheduled to die mid-run;
//! 2. register tenants with different fair-share weights and submit
//!    more jobs than the farm will admit — the excess gets *typed*
//!    rejections with a retry hint, not a hang;
//! 3. run to completion: sessions are time-sliced, evicted to
//!    checkpoints, resumed on whatever healthy board is free, and the
//!    broken boards rotate out of service;
//! 4. print the farm counters and each tenant's six-term breakdown;
//! 5. verify a tenant's final state is bitwise identical to a
//!    dedicated single-tenant run on a healthy board.

use grape6::core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
use grape6::farm::{Farm, FarmConfig, FarmError, Job, SessionId, TenantSpec};
use grape6::fault::FaultPlan;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::system::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let n = 48;
    let t_end = 0.0625;

    // One pool board: 2 modules x 2 chips x 16 j-slots = 64 slots, so a
    // 48-particle job fits only if both modules work.
    let board = MachineConfig::builder()
        .boards(1)
        .modules_per_board(2)
        .chips_per_module(2)
        .jmem_capacity(16)
        .build()
        .unwrap();

    // 1. Three boards: #1 healthy, #2 has a dead module (self-test will
    //    mask it, leaving too few slots), #3 dies mid-run.
    let cfg = FarmConfig::builder(board)
        .boards(3)
        .board_plans(vec![
            None,
            Some(FaultPlan::none().with_dead_module(0, 0)),
            Some(FaultPlan::none().with_midrun_death(vec![0, 1], 5)),
        ])
        .max_live_sessions(4)
        .queue_depth(1)
        .quantum(4)
        .ckpt_every(4)
        .seed(seed)
        .build()
        .unwrap();
    let mut farm = Farm::open(cfg).unwrap();
    println!("farm: 3 boards (1 healthy, 1 dead module, 1 mid-run death), ceiling 4 sessions");

    // 2. Six tenants race for four session slots.  Weights 2:1 — the
    //    even tenants get twice the scheduler bandwidth.
    let mut admitted: Vec<(SessionId, u64)> = Vec::new();
    println!("\nsubmissions:");
    for t in 0..6u64 {
        let tid = farm
            .register(TenantSpec::new(if t % 2 == 0 { 2 } else { 1 }))
            .unwrap();
        let ic_seed = 100 * seed + t;
        let job = Job::builder(plummer_model(n, &mut StdRng::seed_from_u64(ic_seed)))
            .t_end(t_end)
            .label(format!("group {t}"))
            .build()
            .unwrap();
        match farm.submit(tid, job) {
            Ok(sid) => {
                println!("  tenant {tid}: admitted as session {sid}");
                admitted.push((sid, ic_seed));
            }
            Err(FarmError::Saturated { retry_after }) => {
                println!("  tenant {tid}: REJECTED Saturated, retry after {retry_after}");
            }
            Err(e) => println!("  tenant {tid}: REJECTED {e}"),
        }
    }

    // 3. Run the whole farm to completion.
    let report = farm.run().expect("no scheduler stall");
    let s = &report.stats;
    println!("\nfarm counters:");
    println!("  admitted {} / submitted {}", s.admitted, s.submitted);
    println!(
        "  completed {}  failed {}  (rounds {}, grants {})",
        s.completed, s.failed, s.rounds, s.grants
    );
    println!(
        "  evictions {}  resumes {}  board rotations {}",
        s.evictions, s.resumes, s.board_rotations
    );
    println!(
        "  grant retries {}  backoff {:.2e} s",
        s.grant_retries, s.backoff_seconds
    );
    assert!(report.all_completed(), "every admitted session must finish");
    assert!(s.board_rotations >= 2, "both broken boards rotate out");

    // 4. Per-tenant accounting: fair-share grants and the six-term
    //    measured breakdown (recovery phases included).
    println!("\nper-tenant report:");
    for (tid, t) in &report.tenants {
        println!(
            "  tenant {tid}: weight {}, grants {:>3}, blocksteps {:>4}, busy {:.3e} s, \
             retries {}, restores {}",
            t.weight,
            t.grants,
            t.blocksteps,
            t.breakdown.total(),
            t.recovery.step_retries,
            t.recovery.restores
        );
    }

    // 5. The oracle: multi-tenancy is bitwise invisible.
    let (sid, ic_seed) = admitted[0];
    let mut dedicated = HermiteIntegrator::new(
        Grape6Engine::try_new(&board, n).unwrap(),
        plummer_model(n, &mut StdRng::seed_from_u64(ic_seed)),
        IntegratorConfig::default(),
    );
    dedicated.run_until(t_end);
    let farm_res = farm.take_result(sid).unwrap();
    let farm_set = &farm_res.particles;
    let identical =
        farm_set.pos == dedicated.particles().pos && farm_set.vel == dedicated.particles().vel;
    println!("\nsession {sid} vs dedicated single-tenant run: bitwise identical = {identical}");
    assert!(identical, "farm scheduling must not change the physics");
}
