//! The Ahmad–Cohen neighbour scheme in action.
//!
//! ```text
//! cargo run --release --example neighbor_scheme -- [N] [t_end]
//! ```
//!
//! Runs the same cluster with the plain Hermite driver and with the
//! Ahmad–Cohen scheme (the paper's integrator reference [10]) on the
//! simulated GRAPE-6, and compares: energy error, full-force (GRAPE)
//! evaluations, and the hardware cycle counters — showing why the
//! production codes bothered with the extra bookkeeping.

use grape6::core::engine::Grape6Engine;
use grape6::core::neighbor::{AcConfig, AcHermiteIntegrator};
use grape6::core::{HermiteIntegrator, IntegratorConfig};
use grape6::nbody::diagnostics::energy;
use grape6::nbody::ic::plummer::plummer_model;
use grape6::nbody::softening::Softening;
use grape6::system::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(192);
    let t_end: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let set = plummer_model(n, &mut StdRng::seed_from_u64(1992));
    let eps2 = Softening::Constant.epsilon2(n);
    let e0 = energy(&set, eps2);
    println!("N = {n}, t_end = {t_end}, simulated single-board GRAPE-6\n");

    // Plain Hermite.
    let mut plain = HermiteIntegrator::new(
        Grape6Engine::try_new(&MachineConfig::single_board(), n).unwrap(),
        set.clone(),
        IntegratorConfig::default(),
    );
    plain.run_until(t_end);
    let e_plain = energy(&plain.synchronized_snapshot(), eps2);
    println!("plain Hermite:");
    println!(
        "  particle steps (= full GRAPE evals): {}",
        plain.stats().particle_steps
    );
    println!("  hardware cycles: {}", plain.engine().hardware_cycles());
    println!(
        "  |dE/E| = {:.2e}",
        ((e_plain.total() - e0.total()) / e0.total()).abs()
    );

    // Ahmad–Cohen.
    let mut ac = AcHermiteIntegrator::new(
        Grape6Engine::try_new(&MachineConfig::single_board(), n).unwrap(),
        set,
        AcConfig::default(),
    );
    ac.run_until(t_end);
    let e_ac = energy(&ac.synchronized_snapshot(), eps2);
    println!("\nAhmad-Cohen Hermite:");
    println!(
        "  irregular (host) evals: {}   regular (GRAPE) evals: {}",
        ac.irregular_evals(),
        ac.regular_evals()
    );
    println!("  mean neighbour count: {:.1}", ac.mean_neighbours());
    println!("  hardware cycles: {}", ac.engine().hardware_cycles());
    println!(
        "  |dE/E| = {:.2e}",
        ((e_ac.total() - e0.total()) / e0.total()).abs()
    );
    println!(
        "\nGRAPE work saved: {:.1}x fewer full-force evaluations, {:.1}x fewer pipeline cycles",
        plain.stats().particle_steps as f64 / ac.regular_evals() as f64,
        plain.engine().hardware_cycles() as f64 / ac.engine().hardware_cycles().max(1) as f64
    );
}
