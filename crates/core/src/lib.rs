//! # grape6-core — the host library and the block-timestep Hermite driver
//!
//! This is the layer a GRAPE-6 user actually links against.  The paper's
//! division of labour (§1): "The GRAPE hardware performs the evaluation of
//! the interaction.  The frontend processors perform all other operations,
//! such as the time integration of the orbits of particles, I/O, on-the-fly
//! analysis etc."
//!
//! * [`engine`] — [`engine::Grape6Engine`] wraps the simulated board array
//!   behind the same [`nbody_core::ForceEngine`] interface the reference
//!   f64 engine implements: it chunks i-particle blocks into 48-wide chip
//!   passes, guesses the block floating-point exponents from the previous
//!   results, and retries with widened windows on overflow (§3.4: "we
//!   sometimes need to repeat the force calculation a few times until we
//!   have a good guess for the exponent");
//! * [`integrator`] — the individual block-timestep Hermite integrator
//!   (predict → GRAPE force → correct → Aarseth step), generic over the
//!   engine so the identical driver runs on the hardware simulator, the
//!   f64 reference, or a remote rank of the parallel algorithms;
//! * [`api`] — a facade mimicking the classic `g6_...` C library entry
//!   points, for readers coming from the original software stack; its
//!   [`api::G6`] session is genuinely split-phase (`calc_firsthalf`
//!   starts the pass on a worker thread, `calc_lasthalf` collects it)
//!   with typed [`api::SessionError`]s for protocol misuse;
//! * [`neighbor`] — the Ahmad–Cohen neighbour scheme of the paper's
//!   reference \[10\], splitting the force into a frequently-updated
//!   neighbour part (host) and a rarely-updated distant part (GRAPE);
//! * [`stats`] — per-run counters (particle steps, blocksteps, block-size
//!   histogram, exponent retries, fault/recovery events) that the benchmark
//!   harness converts into virtual time via `grape6-model`.
//!
//! Fault injection and degraded operation: build the engine with
//! [`engine::Grape6Engine::with_fault_plan`] and a seeded
//! [`grape6_fault::FaultPlan`] — the startup self-test masks broken units,
//! mid-run deaths redistribute j-particles over the survivors, and the
//! block floating-point reduction keeps the forces bitwise identical to the
//! healthy machine throughout (§3.4).

pub mod api;
pub mod checkpoint;
pub mod engine;
pub mod integrator;
pub mod neighbor;
pub mod stats;
pub mod supervisor;

pub use api::{SessionError, G6};
pub use checkpoint::{capture, restore, restore_migrate, RestoreError};
pub use engine::Grape6Engine;
pub use grape6_chip::kernel::KernelMode;
pub use integrator::{HermiteIntegrator, IntegratorConfig};
pub use neighbor::{AcConfig, AcHermiteIntegrator};
pub use stats::{RecoveryStats, RunStats};
pub use supervisor::{CheckpointPolicy, RunSupervisor, SupervisorConfig, SupervisorError};
