//! Run statistics: what the benchmark harness needs from an integration.

use grape6_fault::FaultCounters;

/// Counters accumulated over one integration run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total individual particle steps (the `n_steps` of paper eq. 9).
    pub particle_steps: u64,
    /// Total blocksteps executed.
    pub blocksteps: u64,
    /// Largest block seen.
    pub max_block: usize,
    /// Histogram of block sizes in powers of two: `hist[k]` counts blocks
    /// with `2^k ≤ n_b < 2^(k+1)`.
    pub block_hist: Vec<u64>,
    /// Smallest spacing between consecutive block times (equals the
    /// smallest active particle timestep whenever that particle steps
    /// repeatedly).
    pub dt_min: f64,
    /// Largest spacing between consecutive block times.
    pub dt_max: f64,
    /// Fault/recovery counters mirrored from the engine (self-test
    /// failures, masked units, reduction glitches, exponent retries, …).
    /// All-zero for healthy hardware and host-side engines.
    pub faults: FaultCounters,
    /// Supervisor-level recovery work: checkpoints, restores, ladder
    /// actions and the virtual seconds they cost.  All-zero for
    /// unsupervised runs.
    pub recovery: RecoveryStats,
}

/// What a run supervisor did to keep the run alive, and what it cost.
///
/// The four ladder counters (`step_retries`, `reselftests`,
/// `redistributions`, `restores`) attribute every recovery to the rung
/// that performed it, so a fleet operator can tell "this session burned
/// retries" from "this session's board had to be re-proven".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Plain blockstep recomputes (recovery ladder rung 1): the step was
    /// simply tried again on the same hardware.
    pub step_retries: u64,
    /// Restores from a checkpoint (recovery ladder rung 4).
    pub restores: u64,
    /// Mid-run re-self-tests (rung 2).
    pub reselftests: u64,
    /// Mirror-based j-redistributions (rung 3).
    pub redistributions: u64,
    /// Virtual seconds charged to recovery work (checkpoint writes,
    /// self-test passes, j-reloads, restores) — the availability tax the
    /// timing model adds on top of the six-term breakdown.
    pub recovery_seconds: f64,
}

impl RunStats {
    /// Fresh counters.
    pub fn new() -> Self {
        Self {
            dt_min: f64::INFINITY,
            dt_max: 0.0,
            ..Default::default()
        }
    }

    /// Record one blockstep of `n_b` particles at step `dt`.
    pub fn record_block(&mut self, n_b: usize, dt: f64) {
        self.particle_steps += n_b as u64;
        self.blocksteps += 1;
        self.max_block = self.max_block.max(n_b);
        let bucket = (usize::BITS - 1 - n_b.max(1).leading_zeros()) as usize;
        if self.block_hist.len() <= bucket {
            self.block_hist.resize(bucket + 1, 0);
        }
        self.block_hist[bucket] += 1;
        self.dt_min = self.dt_min.min(dt);
        self.dt_max = self.dt_max.max(dt);
    }

    /// Mean block size.
    pub fn mean_block(&self) -> f64 {
        if self.blocksteps == 0 {
            0.0
        } else {
            self.particle_steps as f64 / self.blocksteps as f64
        }
    }

    /// Flops represented by this run under the paper's eq. 9 convention
    /// (57 operations per interaction, N interactions per particle step).
    pub fn flops(&self, n: usize) -> f64 {
        57.0 * n as f64 * self.particle_steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_summaries() {
        let mut s = RunStats::new();
        s.record_block(1, 0.25);
        s.record_block(3, 0.125);
        s.record_block(8, 0.125);
        assert_eq!(s.particle_steps, 12);
        assert_eq!(s.blocksteps, 3);
        assert_eq!(s.max_block, 8);
        assert_eq!(s.mean_block(), 4.0);
        assert_eq!(s.dt_min, 0.125);
        assert_eq!(s.dt_max, 0.25);
        // Histogram: bucket 0 (n=1), bucket 1 (n=3), bucket 3 (n=8).
        assert_eq!(s.block_hist, vec![1, 1, 0, 1]);
    }

    #[test]
    fn flops_accounting_is_eq9() {
        let mut s = RunStats::new();
        s.record_block(10, 0.5);
        assert_eq!(s.flops(1000), 57.0 * 1000.0 * 10.0);
    }

    #[test]
    fn empty_stats_safe() {
        let s = RunStats::new();
        assert_eq!(s.mean_block(), 0.0);
        assert_eq!(s.flops(100), 0.0);
    }
}
