//! The Ahmad–Cohen neighbour scheme (Makino & Aarseth 1992).
//!
//! The paper's §4 benchmark uses the "standard Hermite integrator \[10\]" —
//! reference \[10\] being *"On a Hermite integrator with Ahmad–Cohen scheme
//! for gravitational many-body problems"*.  The scheme splits the force on
//! particle `i` into
//!
//! * an **irregular** part from the ≲ few dozen neighbours inside radius
//!   `h_i` — rapidly fluctuating, re-evaluated every (short) irregular
//!   step on the *host* (cheap: O(n_nb) pairs), and
//! * a **regular** part from everything else — slowly varying,
//!   re-evaluated only every (long) regular step on the *GRAPE* (full
//!   O(N) sum minus the neighbour sum), and Taylor-extrapolated between.
//!
//! The payoff is the ratio `dt_reg/dt_irr` (typically ~10): the expensive
//! full-N force is needed that much less often, which on a GRAPE system
//! translates directly into less pipeline and interface traffic.  The
//! tests measure exactly that: engine interactions drop by a large factor
//! relative to the plain Hermite driver at matched accuracy.
//!
//! This implementation keeps both force components to full Hermite order
//! (position/velocity predicted with the summed polynomial, each component
//! corrected with its own reconstructed derivatives) and adapts the
//! neighbour radius to hold the list near a target size.

use nbody_core::blockstep::{is_aligned, TimeGrid};
use nbody_core::force::{pair_force, ForceEngine, ForceResult, IParticle};
use nbody_core::hermite::{aarseth_dt, correct, predict, HermiteState};
use nbody_core::particle::ParticleSet;
use nbody_core::Vec3;

use crate::integrator::IntegratorConfig;
use crate::stats::RunStats;

/// Configuration of the neighbour scheme on top of the base integrator.
#[derive(Clone, Copy, Debug)]
pub struct AcConfig {
    /// Base accuracy/scheduling parameters (η applies to irregular steps).
    pub base: IntegratorConfig,
    /// Accuracy parameter for the regular (distant) force — larger than
    /// the irregular η because the regular force is smooth.
    pub eta_reg: f64,
    /// Target neighbour count.
    pub n_nb_target: usize,
}

impl Default for AcConfig {
    fn default() -> Self {
        Self {
            base: IntegratorConfig::default(),
            eta_reg: 0.04,
            n_nb_target: 16,
        }
    }
}

/// Per-particle state of the two-component force.
#[derive(Clone, Debug, Default)]
struct AcParticle {
    /// Irregular (neighbour) force at the particle time.
    acc_irr: Vec3,
    jerk_irr: Vec3,
    snap_irr: Vec3,
    crackle_irr: Vec3,
    /// Regular (distant) force at `t_reg`.
    acc_reg: Vec3,
    jerk_reg: Vec3,
    snap_reg: Vec3,
    crackle_reg: Vec3,
    /// Time of the last regular evaluation and the regular step.
    t_reg: f64,
    dt_reg: f64,
    /// Neighbour list (indices) and radius.
    neighbours: Vec<u32>,
    h: f64,
}

/// Ahmad–Cohen Hermite driver over any [`ForceEngine`].
pub struct AcHermiteIntegrator<E: ForceEngine> {
    engine: E,
    set: ParticleSet,
    ac: Vec<AcParticle>,
    cfg: AcConfig,
    eps: f64,
    eps2: f64,
    t: f64,
    stats: RunStats,
    /// Regular (full-N, engine) force evaluations performed.
    regular_evals: u64,
    /// Irregular (neighbour, host) force evaluations performed.
    irregular_evals: u64,
}

impl<E: ForceEngine> AcHermiteIntegrator<E> {
    /// Initialise: full forces, neighbour lists, and both timesteps.
    pub fn new(mut engine: E, mut set: ParticleSet, cfg: AcConfig) -> Self {
        let n = set.n();
        assert!(n >= 2);
        let eps = cfg.base.softening.epsilon(n);
        let eps2 = eps * eps;
        for i in 0..n {
            set.t[i] = 0.0;
            engine.set_j_particle(i, &j_of(&set, i));
        }
        engine.set_time(0.0);
        // Total forces from the engine.
        let iparts: Vec<IParticle> = (0..n)
            .map(|i| IParticle {
                pos: set.pos[i],
                vel: set.vel[i],
                eps2,
            })
            .collect();
        let mut tot = vec![ForceResult::default(); n];
        engine.compute(&iparts, &mut tot);
        // Initial neighbour radius from the mean interparticle spacing of
        // the inner system (standard-units half-mass radius ≈ 0.77).
        let h0 = 1.5 * (cfg.n_nb_target as f64 / n as f64).cbrt();
        let mut ac: Vec<AcParticle> = (0..n)
            .map(|_| AcParticle {
                h: h0,
                ..Default::default()
            })
            .collect();
        // Split forces and set steps.
        let grid = cfg.base.grid;
        for i in 0..n {
            let (nb, f_irr) = neighbour_force(&set, i, ac[i].h, eps2);
            ac[i].neighbours = nb;
            ac[i].acc_irr = f_irr.acc;
            ac[i].jerk_irr = f_irr.jerk;
            ac[i].acc_reg = tot[i].acc - f_irr.acc;
            ac[i].jerk_reg = tot[i].jerk - f_irr.jerk;
            ac[i].t_reg = 0.0;
            set.acc[i] = tot[i].acc;
            set.jerk[i] = tot[i].jerk;
            set.pot[i] = corrected_pot(tot[i].pot, set.mass[i], eps);
            // Startup steps: irregular from the total force ratio (the
            // dominant fluctuation), regular 4x longer to start.
            let a = set.acc[i].norm();
            let j = set.jerk[i].norm().max(1e-300);
            let dt = grid.quantize(cfg.base.eta_start * a / j);
            set.dt[i] = dt;
            ac[i].dt_reg = grid.quantize(dt * 4.0);
        }
        Self {
            engine,
            set,
            ac,
            cfg,
            eps,
            eps2,
            t: 0.0,
            stats: RunStats::new(),
            regular_evals: 0,
            irregular_evals: 0,
        }
    }

    /// Current system time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Particle state.
    pub fn particles(&self) -> &ParticleSet {
        &self.set
    }

    /// Run statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The engine (counters).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Full-N (engine) force evaluations so far.
    pub fn regular_evals(&self) -> u64 {
        self.regular_evals
    }

    /// Neighbour-sum (host) force evaluations so far.
    pub fn irregular_evals(&self) -> u64 {
        self.irregular_evals
    }

    /// Mean neighbour count right now.
    pub fn mean_neighbours(&self) -> f64 {
        self.ac.iter().map(|p| p.neighbours.len()).sum::<usize>() as f64 / self.ac.len() as f64
    }

    /// Regular force (and derivative) extrapolated to time `t`.
    fn regular_at(&self, i: usize, t: f64) -> (Vec3, Vec3) {
        let p = &self.ac[i];
        let dt = t - p.t_reg;
        let a = p.acc_reg
            + p.jerk_reg * dt
            + p.snap_reg * (dt * dt / 2.0)
            + p.crackle_reg * (dt * dt * dt / 6.0);
        let j = p.jerk_reg + p.snap_reg * dt + p.crackle_reg * (dt * dt / 2.0);
        (a, j)
    }

    /// Execute one (irregular) blockstep; regular updates fire for block
    /// members whose regular time has come due.
    pub fn step(&mut self) -> (f64, usize) {
        let n = self.set.n();
        let t_next = self.set.min_next_time();
        debug_assert!(t_next > self.t);
        let block: Vec<usize> = (0..n)
            .filter(|&i| self.set.t[i] + self.set.dt[i] == t_next)
            .collect();

        // Predict every particle once (neighbour sums need predicted
        // sources; an O(N) pass per block, same as the plain driver's
        // engine-side prediction).
        let mut pred_pos = vec![Vec3::ZERO; n];
        let mut pred_vel = vec![Vec3::ZERO; n];
        for i in 0..n {
            let s = HermiteState {
                pos: self.set.pos[i],
                vel: self.set.vel[i],
                acc: self.set.acc[i],
                jerk: self.set.jerk[i],
            };
            let (pp, pv) = predict(&s, self.set.snap[i], t_next - self.set.t[i]);
            pred_pos[i] = pp;
            pred_vel[i] = pv;
        }

        // Batch the regular (full-N) evaluations: every block member whose
        // regular time is due goes into ONE engine call, so the GRAPE's
        // 48-wide i-parallelism is used exactly as the production codes
        // use it for regular blocks (per-particle calls would waste the
        // pipelines — a single i-particle costs a full memory pass).
        let due: Vec<usize> = block
            .iter()
            .copied()
            .filter(|&i| {
                let p = &self.ac[i];
                t_next >= p.t_reg + p.dt_reg - 1e-15
            })
            .collect();
        let mut f_tot_batch: std::collections::HashMap<usize, ForceResult> =
            std::collections::HashMap::with_capacity(due.len());
        if !due.is_empty() {
            self.engine.set_time(t_next);
            let ip: Vec<IParticle> = due
                .iter()
                .map(|&i| IParticle {
                    pos: pred_pos[i],
                    vel: pred_vel[i],
                    eps2: self.eps2,
                })
                .collect();
            let mut out = vec![ForceResult::default(); due.len()];
            self.engine.compute(&ip, &mut out);
            self.regular_evals += due.len() as u64;
            for (&i, f) in due.iter().zip(&out) {
                f_tot_batch.insert(i, *f);
            }
        }

        for &i in &block {
            let dt = t_next - self.set.t[i];
            // --- irregular update (always) -------------------------------
            let (f_irr_new, _) = neighbour_force_predicted(
                &self.set,
                &self.ac[i].neighbours,
                i,
                &pred_pos,
                &pred_vel,
                self.eps2,
            );
            self.irregular_evals += 1;
            // Jerk-truncated prediction of the irregular component alone,
            // for its own corrector.
            let s_irr = HermiteState {
                pos: self.set.pos[i],
                vel: self.set.vel[i],
                acc: self.ac[i].acc_irr,
                jerk: self.ac[i].jerk_irr,
            };
            let (pp_irr, pv_irr) = predict(&s_irr, Vec3::ZERO, dt);
            let c_irr = correct(&s_irr, pp_irr, pv_irr, &f_irr_new, dt);

            let due_regular = f_tot_batch.contains_key(&i);
            if due_regular {
                // --- regular update (force from the batched engine call) --
                let f_tot = f_tot_batch[&i];
                // The regular corrector must difference forces under a
                // CONSISTENT split: both endpoints of [t_reg, t_next] use
                // the *old* neighbour list.  (Differencing across a list
                // change reconstructs the membership jump as a huge force
                // derivative and collapses the timestep.)
                let f_reg_old_def = ForceResult {
                    acc: f_tot.acc - f_irr_new.acc,
                    jerk: f_tot.jerk - f_irr_new.jerk,
                    pot: f_tot.pot,
                };
                let dt_reg = t_next - self.ac[i].t_reg;
                let s_reg = HermiteState {
                    pos: self.set.pos[i],
                    vel: self.set.vel[i],
                    acc: self.ac[i].acc_reg,
                    jerk: self.ac[i].jerk_reg,
                };
                let (ppr, pvr) = predict(&s_reg, Vec3::ZERO, dt_reg);
                let c_reg = correct(&s_reg, ppr, pvr, &f_reg_old_def, dt_reg);
                self.set.pot[i] = corrected_pot(f_tot.pot, self.set.mass[i], self.eps);
                // New regular step from the smooth (old-definition)
                // component, BEFORE the definition switch.
                let want = aarseth_dt(
                    f_reg_old_def.acc,
                    f_reg_old_def.jerk,
                    c_reg.snap,
                    c_reg.crackle,
                    self.cfg.eta_reg,
                );
                // Refresh the neighbour list around the predicted position
                // and adapt the radius towards the target count, then
                // switch the split definition ATOMICALLY at t_next: both
                // components are re-derived from the same f_tot and the
                // same new list, so their sum is continuous and each
                // component is self-consistent from here on.
                let (nb, _) = neighbour_list(&pred_pos, i, self.ac[i].h);
                let (f_irr_new_def, _) =
                    neighbour_force_predicted(&self.set, &nb, i, &pred_pos, &pred_vel, self.eps2);
                self.irregular_evals += 1;
                let p = &mut self.ac[i];
                let ratio = (self.cfg.n_nb_target as f64 + 1.0) / (nb.len() as f64 + 1.0);
                p.h *= ratio.cbrt().clamp(0.75, 1.35);
                p.neighbours = nb;
                p.acc_reg = f_tot.acc - f_irr_new_def.acc;
                p.jerk_reg = f_tot.jerk - f_irr_new_def.jerk;
                // Higher derivatives carry over from the old definition —
                // the moved contributions live near the sphere boundary
                // where they are small (standard NBODY practice).
                p.snap_reg = c_reg.snap;
                p.crackle_reg = c_reg.crackle;
                p.t_reg = t_next;
                p.dt_reg = regular_step(&self.cfg.base.grid, t_next, p.dt_reg, want);
                p.acc_irr = f_irr_new_def.acc;
                p.jerk_irr = f_irr_new_def.jerk;
                p.snap_irr = c_irr.snap;
                p.crackle_irr = c_irr.crackle;
            }

            // --- combine the two components ------------------------------
            // After a regular update the stored components are already the
            // new-definition pair at t_next; otherwise combine the fresh
            // irregular force with the extrapolated regular one.  Either
            // way the *total* is continuous.
            let (a_reg, j_reg) = self.regular_at(i, t_next);
            let (a_irr_c, j_irr_c) = if due_regular {
                (self.ac[i].acc_irr, self.ac[i].jerk_irr)
            } else {
                (f_irr_new.acc, f_irr_new.jerk)
            };
            let s_tot = HermiteState {
                pos: self.set.pos[i],
                vel: self.set.vel[i],
                acc: self.set.acc[i],
                jerk: self.set.jerk[i],
            };
            let (pp_tot, pv_tot) = predict(&s_tot, Vec3::ZERO, dt);
            let f_tot_new = ForceResult {
                acc: a_irr_c + a_reg,
                jerk: j_irr_c + j_reg,
                pot: self.set.pot[i],
            };
            let c_tot = correct(&s_tot, pp_tot, pv_tot, &f_tot_new, dt);
            self.set.pos[i] = c_tot.pos;
            self.set.vel[i] = c_tot.vel;
            self.set.acc[i] = f_tot_new.acc;
            self.set.jerk[i] = f_tot_new.jerk;
            self.set.snap[i] = c_tot.snap;
            self.set.crackle[i] = c_tot.crackle;
            self.set.t[i] = t_next;
            if !due_regular {
                // (A regular update already stored the new-definition
                // irregular force above.)
                self.ac[i].acc_irr = f_irr_new.acc;
                self.ac[i].jerk_irr = f_irr_new.jerk;
                self.ac[i].snap_irr = c_irr.snap;
                self.ac[i].crackle_irr = c_irr.crackle;
            }
            // Irregular step from the fluctuating component (fall back to
            // the total when the neighbour list is empty).
            let (a_c, j_c, s_c, c_c) = if self.ac[i].neighbours.is_empty() {
                (f_tot_new.acc, f_tot_new.jerk, c_tot.snap, c_tot.crackle)
            } else {
                (
                    self.ac[i].acc_irr,
                    self.ac[i].jerk_irr,
                    self.ac[i].snap_irr,
                    self.ac[i].crackle_irr,
                )
            };
            let want = aarseth_dt(a_c, j_c, s_c, c_c, self.cfg.base.eta);
            // NBODY-style scheduling: the regular update fires at the first
            // irregular step that *crosses* the regular time (the
            // `due_regular` test above), so the irregular step needs no
            // clamping — the regular interval is then "at least dt_reg" and
            // the corrector uses the actual elapsed span.
            self.set.dt[i] = self.cfg.base.grid.next_step(t_next, dt, want);
            self.engine.set_j_particle(i, &j_of(&self.set, i));
        }
        self.stats.record_block(block.len(), t_next - self.t);
        self.t = t_next;
        (t_next, block.len())
    }

    /// Advance until `t_end`.
    pub fn run_until(&mut self, t_end: f64) {
        while self.t < t_end {
            self.step();
        }
    }

    /// All particles predicted to the current time.
    pub fn synchronized_snapshot(&self) -> ParticleSet {
        let mut snap = self.set.clone();
        for i in 0..snap.n() {
            let s = HermiteState {
                pos: snap.pos[i],
                vel: snap.vel[i],
                acc: snap.acc[i],
                jerk: snap.jerk[i],
            };
            let (pp, pv) = predict(&s, snap.snap[i], self.t - snap.t[i]);
            snap.pos[i] = pp;
            snap.vel[i] = pv;
            snap.t[i] = self.t;
        }
        snap
    }
}

/// A regular step: power of two, ≥ the current irregular grid, aligned,
/// growth-limited — same rules as the base grid but with its own target.
fn regular_step(grid: &TimeGrid, t: f64, dt_old: f64, want: f64) -> f64 {
    let q = grid.quantize(want);
    if q <= dt_old {
        return q.max(grid.dt_min);
    }
    let doubled = (dt_old * 2.0).min(grid.dt_max);
    if doubled > dt_old && is_aligned(t, doubled) {
        doubled
    } else {
        dt_old
    }
}

/// Neighbour list of particle `i` within radius `h` of `pos[i]`.
fn neighbour_list(pos: &[Vec3], i: usize, h: f64) -> (Vec<u32>, f64) {
    let h2 = h * h;
    let mut nb = Vec::new();
    for j in 0..pos.len() {
        if j != i && (pos[j] - pos[i]).norm2() < h2 {
            nb.push(j as u32);
        }
    }
    (nb, h)
}

/// Neighbour force at stored (unpredicted) positions — initialisation.
fn neighbour_force(set: &ParticleSet, i: usize, h: f64, eps2: f64) -> (Vec<u32>, ForceResult) {
    let (nb, _) = neighbour_list(&set.pos, i, h);
    let mut f = ForceResult::default();
    for &j in &nb {
        let j = j as usize;
        let (a, jr, p) = pair_force(
            set.pos[j] - set.pos[i],
            set.vel[j] - set.vel[i],
            set.mass[j],
            eps2,
        );
        f.acc += a;
        f.jerk += jr;
        f.pot += p;
    }
    (nb, f)
}

/// Neighbour force at predicted positions (the per-step irregular sum).
fn neighbour_force_predicted(
    set: &ParticleSet,
    nb: &[u32],
    i: usize,
    pred_pos: &[Vec3],
    pred_vel: &[Vec3],
    eps2: f64,
) -> (ForceResult, usize) {
    let mut f = ForceResult::default();
    for &j in nb {
        let j = j as usize;
        let (a, jr, p) = pair_force(
            pred_pos[j] - pred_pos[i],
            pred_vel[j] - pred_vel[i],
            set.mass[j],
            eps2,
        );
        f.acc += a;
        f.jerk += jr;
        f.pot += p;
    }
    (f, nb.len())
}

#[inline]
fn j_of(set: &ParticleSet, i: usize) -> nbody_core::force::JParticle {
    nbody_core::force::JParticle {
        mass: set.mass[i],
        t0: set.t[i],
        pos: set.pos[i],
        vel: set.vel[i],
        acc: set.acc[i],
        jerk: set.jerk[i],
        snap: set.snap[i],
    }
}

#[inline]
fn corrected_pot(pot: f64, m_i: f64, eps: f64) -> f64 {
    if eps > 0.0 {
        pot + m_i / eps
    } else {
        pot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::HermiteIntegrator;
    use nbody_core::diagnostics::energy;
    use nbody_core::force::DirectEngine;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::softening::Softening;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plummer(n: usize, seed: u64) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn conserves_energy() {
        let n = 128;
        let set = plummer(n, 500);
        let eps2 = Softening::Constant.epsilon2(n);
        let e0 = energy(&set, eps2);
        let mut it = AcHermiteIntegrator::new(DirectEngine::new(n), set, AcConfig::default());
        it.run_until(0.5);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        assert!(err < 5e-5, "Ahmad–Cohen energy error {err:e}");
    }

    #[test]
    fn saves_full_force_evaluations() {
        // The scheme's entire point: far fewer engine (full-N) evaluations
        // than the plain Hermite driver over the same interval.
        let n = 128;
        let set = plummer(n, 501);
        let mut plain = HermiteIntegrator::new(
            DirectEngine::new(n),
            set.clone(),
            IntegratorConfig::default(),
        );
        plain.run_until(0.25);
        let plain_evals = plain.stats().particle_steps; // 1 engine eval each
        let mut ac = AcHermiteIntegrator::new(DirectEngine::new(n), set, AcConfig::default());
        ac.run_until(0.25);
        let ratio = plain_evals as f64 / ac.regular_evals() as f64;
        assert!(
            ratio > 1.8,
            "AC scheme should cut full-force evaluations: plain {plain_evals} vs regular {} (ratio {ratio:.2})",
            ac.regular_evals()
        );
        // And it does real irregular work in exchange.
        assert!(ac.irregular_evals() >= ac.regular_evals());
    }

    #[test]
    fn tracks_plain_hermite_trajectories() {
        let n = 64;
        let set = plummer(n, 502);
        let mut plain = HermiteIntegrator::new(
            DirectEngine::new(n),
            set.clone(),
            IntegratorConfig::default(),
        );
        let mut ac = AcHermiteIntegrator::new(DirectEngine::new(n), set, AcConfig::default());
        plain.run_until(0.125);
        ac.run_until(0.125);
        let a = plain.synchronized_snapshot();
        let b = ac.synchronized_snapshot();
        let mut worst = 0.0f64;
        for i in 0..n {
            worst = worst.max((a.pos[i] - b.pos[i]).norm());
        }
        // Different truncation structure ⇒ not identical, but close on a
        // short stretch.
        assert!(worst < 1e-3, "AC diverged from plain Hermite by {worst:e}");
    }

    #[test]
    fn neighbour_lists_adapt_towards_target() {
        let n = 256;
        let set = plummer(n, 503);
        let cfg = AcConfig {
            n_nb_target: 12,
            ..Default::default()
        };
        let mut ac = AcHermiteIntegrator::new(DirectEngine::new(n), set, cfg);
        ac.run_until(0.25);
        let mean = ac.mean_neighbours();
        assert!(
            mean > 2.0 && mean < 60.0,
            "mean neighbour count {mean} should be near the target 12"
        );
    }

    #[test]
    fn time_advances_and_blocks_nonempty() {
        let n = 48;
        let set = plummer(n, 504);
        let mut ac = AcHermiteIntegrator::new(DirectEngine::new(n), set, AcConfig::default());
        let mut prev = 0.0;
        for _ in 0..50 {
            let (t, nb) = ac.step();
            assert!(t > prev);
            assert!(nb >= 1);
            prev = t;
        }
    }
}
