//! A facade mimicking the classic GRAPE-6 host library.
//!
//! The original machine was driven through a small C API (`g6_open`,
//! `g6_set_ti`, `g6_set_j_particle`, `g6calc_firsthalf`,
//! `g6calc_lasthalf`, …).  This module offers the same call shapes over the
//! simulator so that code translated from legacy GRAPE applications maps
//! one-to-one — including the property the paper's tuning story hinges on:
//! the two-phase force call is **genuinely split-phase**.  `calc_firsthalf`
//! ships the i-particles and starts the pipelines on a worker thread;
//! `calc_lasthalf` joins it and collects the results.  Between the two the
//! host is free to run its own predictor/corrector arithmetic while the
//! simulated GRAPE is busy, exactly like the real host library overlapped
//! its integration work with the hardware.
//!
//! # Session state machine
//!
//! A [`G6`] handle is always in one of two states:
//!
//! ```text
//!            ┌────────────────── calc_firsthalf ──────────────────┐
//!            │                                                    ▼
//!        ┌──────┐                                             ┌──────┐
//!        │ Idle │                                             │ Busy │
//!        └──────┘                                             └──────┘
//!            ▲                                                    │
//!            └────────────────── calc_lasthalf ───────────────────┘
//! ```
//!
//! * **Idle** — the engine is attached to the handle; j-particle writes
//!   ([`G6::set_j_particle`]) and time updates ([`G6::set_ti`]) are
//!   allowed, [`G6::calc_firsthalf`] starts a pass.
//! * **Busy** — the engine is owned by the worker computing the pass.
//!   Only [`G6::calc_lasthalf`] is valid; every other call returns a
//!   typed [`SessionError`] instead of corrupting the in-flight pass
//!   (the hardware's j-memory and predictor time must not change under a
//!   running pipeline pass — same rule as the real boards).
//!
//! Misuse is a typed error, never a panic: `calc_lasthalf` without a
//! matching `calc_firsthalf` returns [`SessionError::NoActivePass`], a
//! second `calc_firsthalf` while one is in flight returns
//! [`SessionError::PassAlreadyActive`] (and leaves the active pass
//! undisturbed), mismatched position/velocity buffers return
//! [`SessionError::LengthMismatch`], bad j-writes (out-of-range address,
//! coordinate outside the ±64 fixed-point box) come back as typed
//! [`EngineError`]s, and hardware failures surface as
//! [`SessionError::Engine`].  A multi-tenant host (see `grape6-farm`) can
//! therefore never be panicked by a misbehaving client.

use std::thread::JoinHandle;

use nbody_core::force::{EngineError, ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::Vec3;

use crate::engine::Grape6Engine;
use grape6_chip::kernel::KernelMode;
use grape6_system::machine::MachineConfig;

/// Misuse of the split-phase session protocol, or a hardware failure
/// surfaced through it.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// `calc_lasthalf` was called with no pass in flight.
    NoActivePass,
    /// `calc_firsthalf` (or a j/t write) was called while a pass is in
    /// flight; the active pass is left running.
    PassAlreadyActive,
    /// `calc_firsthalf` was given position and velocity slices of
    /// different lengths.
    LengthMismatch {
        /// Number of positions supplied.
        xi: usize,
        /// Number of velocities supplied.
        vi: usize,
    },
    /// The engine failed while computing the pass.
    Engine(EngineError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoActivePass => {
                write!(f, "calc_lasthalf without a preceding calc_firsthalf")
            }
            SessionError::PassAlreadyActive => write!(
                f,
                "a force pass is already in flight; collect it with calc_lasthalf first"
            ),
            SessionError::LengthMismatch { xi, vi } => write!(
                f,
                "calc_firsthalf needs one velocity per position: got {xi} positions, {vi} velocities"
            ),
            SessionError::Engine(e) => write!(f, "engine error during split-phase pass: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}

/// What the worker thread hands back at join time: the engine (so the
/// session can return to `Idle`) and the pass outcome.
type PassHandle = JoinHandle<(Box<Grape6Engine>, Result<Vec<ForceResult>, EngineError>)>;

/// The two session states (plus a transient placeholder that exists only
/// inside a state transition; it is never observable from outside).
enum State {
    Idle(Box<Grape6Engine>),
    Busy(PassHandle),
    Moving,
}

/// A GRAPE-6 "device" handle, in the style of the original library.
///
/// See the [module docs](self) for the Idle ⇄ Busy state machine.
pub struct G6 {
    state: State,
}

impl G6 {
    /// `g6_open`: acquire the hardware attached to this host.
    ///
    /// Fails with [`EngineError::InsufficientCapacity`] if the machine's
    /// j-memory cannot hold `max_particles`.
    pub fn open(cfg: &MachineConfig, max_particles: usize) -> Result<Self, EngineError> {
        Ok(Self::from_engine(Grape6Engine::try_new(
            cfg,
            max_particles,
        )?))
    }

    /// Wrap an already-constructed engine (e.g. one built with
    /// [`Grape6Engine::with_fault_plan`]) in a session handle.
    pub fn from_engine(engine: Grape6Engine) -> Self {
        Self {
            state: State::Idle(Box::new(engine)),
        }
    }

    /// `g6_npipes`: how many i-particles one call can serve in parallel.
    pub fn npipes(&self) -> usize {
        48
    }

    /// Whether a pass is currently in flight (Busy state).
    pub fn is_busy(&self) -> bool {
        matches!(self.state, State::Busy(_))
    }

    /// `g6_set_ti`: set the system time for the predictor pipelines.
    ///
    /// Only valid while Idle — the on-chip predictors must not be retimed
    /// under a running pass.
    pub fn set_ti(&mut self, ti: f64) -> Result<(), SessionError> {
        match &mut self.state {
            State::Idle(engine) => {
                engine.set_time(ti);
                Ok(())
            }
            State::Busy(_) => Err(SessionError::PassAlreadyActive),
            State::Moving => unreachable!("transient state"),
        }
    }

    /// Select the force-pass kernel (runtime-dispatched SIMD default,
    /// batched SoA, or the scalar oracle) on the whole machine.
    /// Bitwise-invisible in every mode.
    ///
    /// Only valid while Idle — the pass in flight owns the engine.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) -> Result<(), SessionError> {
        match &mut self.state {
            State::Idle(engine) => {
                engine.set_kernel_mode(mode);
                Ok(())
            }
            State::Busy(_) => Err(SessionError::PassAlreadyActive),
            State::Moving => unreachable!("transient state"),
        }
    }

    /// `g6_set_j_particle`: write one particle's predictor polynomial.
    ///
    /// Only valid while Idle — j-memory must not change under a running
    /// pass.
    #[allow(clippy::too_many_arguments)]
    pub fn set_j_particle(
        &mut self,
        address: usize,
        tj: f64,
        mass: f64,
        a2by18: Vec3, // snap/18 in the historical interface; we take snap
        a1by6: Vec3,  // jerk/6 historically; we take jerk
        aby2: Vec3,   // acc/2 historically; we take acc
        v: Vec3,
        x: Vec3,
    ) -> Result<(), SessionError> {
        // The historical interface pre-scaled the derivatives to save
        // pipeline multipliers; the simulator takes them unscaled, so this
        // facade simply forwards (parameter names keep the old order).
        match &mut self.state {
            State::Idle(engine) => engine
                .try_set_j_particle_checked(
                    address,
                    &JParticle {
                        mass,
                        t0: tj,
                        pos: x,
                        vel: v,
                        acc: aby2,
                        jerk: a1by6,
                        snap: a2by18,
                    },
                )
                .map_err(SessionError::Engine),
            State::Busy(_) => Err(SessionError::PassAlreadyActive),
            State::Moving => unreachable!("transient state"),
        }
    }

    /// `g6calc_firsthalf`: ship the i-particles and start the pipelines
    /// on a worker thread.  Returns immediately; the host is free to do
    /// its own work until [`G6::calc_lasthalf`].
    pub fn calc_firsthalf(
        &mut self,
        xi: &[Vec3],
        vi: &[Vec3],
        eps2: f64,
    ) -> Result<(), SessionError> {
        if xi.len() != vi.len() {
            return Err(SessionError::LengthMismatch {
                xi: xi.len(),
                vi: vi.len(),
            });
        }
        if matches!(self.state, State::Busy(_)) {
            return Err(SessionError::PassAlreadyActive);
        }
        let State::Idle(mut engine) = std::mem::replace(&mut self.state, State::Moving) else {
            unreachable!("transient state");
        };
        let ip: Vec<IParticle> = xi
            .iter()
            .zip(vi)
            .map(|(&pos, &vel)| IParticle { pos, vel, eps2 })
            .collect();
        let handle = std::thread::spawn(move || {
            let mut out = vec![ForceResult::default(); ip.len()];
            let r = engine.try_compute(&ip, &mut out).map(|()| out);
            (engine, r)
        });
        self.state = State::Busy(handle);
        Ok(())
    }

    /// `g6calc_lasthalf`: wait for the pipelines and read the results.
    ///
    /// Returns acceleration, jerk and potential per i-particle.  Whether
    /// the pass succeeded or failed, the engine returns to the handle and
    /// the session is Idle again afterwards.
    pub fn calc_lasthalf(&mut self) -> Result<Vec<ForceResult>, SessionError> {
        match std::mem::replace(&mut self.state, State::Moving) {
            State::Idle(engine) => {
                self.state = State::Idle(engine);
                Err(SessionError::NoActivePass)
            }
            State::Busy(handle) => {
                let (engine, result) = handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
                self.state = State::Idle(engine);
                result.map_err(SessionError::Engine)
            }
            State::Moving => unreachable!("transient state"),
        }
    }

    /// Access the underlying engine (cycle counters etc.).  `None` while
    /// a pass is in flight — the worker owns the engine then.
    pub fn engine(&self) -> Option<&Grape6Engine> {
        match &self.state {
            State::Idle(engine) => Some(engine),
            _ => None,
        }
    }

    /// Mutable engine access (tracer/timebase installation).  `None`
    /// while a pass is in flight.
    pub fn engine_mut(&mut self) -> Option<&mut Grape6Engine> {
        match &mut self.state {
            State::Idle(engine) => Some(engine),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::{DirectEngine, ForceEngine};

    #[test]
    fn two_phase_call_matches_reference() {
        let n = 16;
        let mut g6 = G6::open(&MachineConfig::test_small(), n).unwrap();
        let mut reference = DirectEngine::new(n);
        for k in 0..n {
            let a = k as f64;
            let x = Vec3::new((a * 0.3).sin(), (a * 0.7).cos(), 0.1 * a - 0.8);
            let v = Vec3::new(0.01 * a, -0.02, 0.0);
            g6.set_j_particle(
                k,
                0.0,
                1.0 / n as f64,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                v,
                x,
            )
            .unwrap();
            reference.set_j_particle(
                k,
                &JParticle {
                    mass: 1.0 / n as f64,
                    t0: 0.0,
                    pos: x,
                    vel: v,
                    ..Default::default()
                },
            );
        }
        g6.set_ti(0.0).unwrap();
        reference.set_time(0.0);
        let xi = vec![Vec3::new(0.2, 0.2, 0.2), Vec3::new(-0.5, 0.0, 0.4)];
        let vi = vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0)];
        g6.calc_firsthalf(&xi, &vi, 1e-4).unwrap();
        let got = g6.calc_lasthalf().unwrap();
        let ip: Vec<IParticle> = xi
            .iter()
            .zip(&vi)
            .map(|(&pos, &vel)| IParticle {
                pos,
                vel,
                eps2: 1e-4,
            })
            .collect();
        let mut want = vec![ForceResult::default(); 2];
        reference.compute(&ip, &mut want);
        for k in 0..2 {
            assert!((got[k].acc - want[k].acc).norm() < 1e-4 * want[k].acc.norm());
        }
        assert_eq!(g6.npipes(), 48);
    }

    #[test]
    fn split_phase_matches_blocking_bitwise() {
        // The worker-thread pass must return exactly what a blocking
        // compute on the same engine would — same hardware walk, same
        // block-FP reduction (§3.4).
        let n = 64;
        let cfg = MachineConfig::test_small();
        let mut g6 = G6::open(&cfg, n).unwrap();
        let mut blocking = Grape6Engine::try_new(&cfg, n).unwrap();
        for k in 0..n {
            let a = k as f64 * 0.613;
            let x = Vec3::new(a.cos(), (1.7 * a).sin(), 0.3 * (0.9 * a).cos());
            let v = Vec3::new(-a.sin() * 0.2, a.cos() * 0.2, 0.0);
            g6.set_j_particle(
                k,
                0.0,
                1.0 / n as f64,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                v,
                x,
            )
            .unwrap();
            blocking.set_j_particle(
                k,
                &JParticle {
                    mass: 1.0 / n as f64,
                    t0: 0.0,
                    pos: x,
                    vel: v,
                    ..Default::default()
                },
            );
        }
        g6.set_ti(0.0625).unwrap();
        blocking.set_time(0.0625);
        // 60 probes = two 48-wide chip passes.
        let xi: Vec<Vec3> = (0..60)
            .map(|k| Vec3::new(0.02 * k as f64 - 0.5, 0.3, -0.1))
            .collect();
        let vi = vec![Vec3::new(0.0, 0.05, 0.0); 60];
        g6.calc_firsthalf(&xi, &vi, 1e-4).unwrap();
        assert!(g6.is_busy());
        assert!(g6.engine().is_none());
        let got = g6.calc_lasthalf().unwrap();
        assert!(!g6.is_busy());
        let ip: Vec<IParticle> = xi
            .iter()
            .zip(&vi)
            .map(|(&pos, &vel)| IParticle {
                pos,
                vel,
                eps2: 1e-4,
            })
            .collect();
        let mut want = vec![ForceResult::default(); 60];
        blocking.try_compute(&ip, &mut want).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn lasthalf_without_firsthalf_is_a_typed_error() {
        let mut g6 = G6::open(&MachineConfig::test_small(), 4).unwrap();
        assert_eq!(g6.calc_lasthalf(), Err(SessionError::NoActivePass));
        // The session stays usable afterwards.
        assert!(g6.engine().is_some());
    }

    #[test]
    fn double_firsthalf_and_busy_writes_are_typed_errors() {
        let n = 8;
        let mut g6 = G6::open(&MachineConfig::test_small(), n).unwrap();
        for k in 0..n {
            g6.set_j_particle(
                k,
                0.0,
                1.0 / n as f64,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::new(0.1 * k as f64 - 0.3, 0.0, 0.0),
            )
            .unwrap();
        }
        g6.set_ti(0.0).unwrap();
        let xi = vec![Vec3::new(0.5, 0.0, 0.0)];
        let vi = vec![Vec3::ZERO];
        g6.calc_firsthalf(&xi, &vi, 1e-2).unwrap();
        // Double-start: rejected, the first pass stays in flight.
        assert_eq!(
            g6.calc_firsthalf(&xi, &vi, 1e-2),
            Err(SessionError::PassAlreadyActive)
        );
        // Hardware state writes are rejected while Busy.
        assert_eq!(g6.set_ti(1.0), Err(SessionError::PassAlreadyActive));
        assert_eq!(
            g6.set_j_particle(
                0,
                0.0,
                1.0,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO
            ),
            Err(SessionError::PassAlreadyActive)
        );
        // The original pass is still collectable.
        let out = g6.calc_lasthalf().unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].acc.norm() > 0.0);
    }

    #[test]
    fn open_rejects_oversubscription_with_typed_error() {
        let cfg = MachineConfig::test_small(); // 4 chips × 2048
        let err = match G6::open(&cfg, 10_000) {
            Ok(_) => panic!("oversubscribed open must fail"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            EngineError::InsufficientCapacity {
                needed: 10_000,
                available: 8192,
            }
        );
    }

    #[test]
    fn malformed_tenant_input_is_typed_not_a_panic() {
        let mut g6 = G6::open(&MachineConfig::test_small(), 4).unwrap();
        // Out-of-range j address.
        assert_eq!(
            g6.set_j_particle(
                99,
                0.0,
                1.0,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO
            ),
            Err(SessionError::Engine(EngineError::BadJAddress {
                addr: 99,
                slots: 4
            }))
        );
        // Position outside the ±64 fixed-point box.
        assert!(matches!(
            g6.set_j_particle(
                0,
                0.0,
                1.0,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::new(100.0, 0.0, 0.0)
            ),
            Err(SessionError::Engine(EngineError::OutsideBox {
                addr: 0,
                ..
            }))
        ));
        // NaN coordinates are out-of-box too.
        assert!(matches!(
            g6.set_j_particle(
                0,
                0.0,
                1.0,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::new(f64::NAN, 0.0, 0.0)
            ),
            Err(SessionError::Engine(EngineError::OutsideBox { .. }))
        ));
        // Mismatched i-buffers.
        assert_eq!(
            g6.calc_firsthalf(&[Vec3::ZERO, Vec3::ZERO], &[Vec3::ZERO], 1e-4),
            Err(SessionError::LengthMismatch { xi: 2, vi: 1 })
        );
        // The session survived all of it.
        assert!(g6.engine().is_some());
        assert!(!g6.is_busy());
    }

    #[test]
    fn engine_error_during_pass_surfaces_in_lasthalf() {
        // Two 1e308 masses: pairwise summands are infinite, the widen
        // loop diverges and the worker's error must come back typed.
        let n = 2;
        let mut g6 = G6::open(&MachineConfig::test_small(), n).unwrap();
        for k in 0..n {
            g6.set_j_particle(
                k,
                0.0,
                1e308,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::new(k as f64 * 1e-4, 0.0, 0.0),
            )
            .unwrap();
        }
        g6.set_ti(0.0).unwrap();
        g6.calc_firsthalf(&[Vec3::new(-1e-4, 0.0, 0.0)], &[Vec3::ZERO], 0.0)
            .unwrap();
        match g6.calc_lasthalf() {
            Err(SessionError::Engine(EngineError::ExponentDivergence { .. })) => {}
            other => panic!("expected ExponentDivergence, got {other:?}"),
        }
        // The engine came home despite the failure: the session is Idle
        // and inspectable again.
        assert!(g6.engine().is_some());
        assert!(g6.engine().unwrap().exponent_retries() > 0);
    }
}
