//! A facade mimicking the classic GRAPE-6 host library.
//!
//! The original machine was driven through a small C API (`g6_open`,
//! `g6_set_ti`, `g6_set_j_particle`, `g6calc_firsthalf`,
//! `g6calc_lasthalf`, …).  This module offers the same call shapes over the
//! simulator so that code translated from legacy GRAPE applications maps
//! one-to-one.  The two-phase force call is preserved: `calc_firsthalf`
//! ships the i-particles and starts the pipelines, `calc_lasthalf` collects
//! the results — on the real machine the host overlapped its integration
//! work between the two.

use nbody_core::force::{ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::Vec3;

use crate::engine::Grape6Engine;
use grape6_system::machine::MachineConfig;

/// A GRAPE-6 "device" handle, in the style of the original library.
pub struct G6 {
    engine: Grape6Engine,
    pending: Option<(Vec<IParticle>, usize)>,
}

impl G6 {
    /// `g6_open`: acquire the hardware attached to this host.
    pub fn open(cfg: &MachineConfig, max_particles: usize) -> Self {
        Self {
            engine: Grape6Engine::new(cfg, max_particles),
            pending: None,
        }
    }

    /// `g6_npipes`: how many i-particles one call can serve in parallel.
    pub fn npipes(&self) -> usize {
        48
    }

    /// `g6_set_ti`: set the system time for the predictor pipelines.
    pub fn set_ti(&mut self, ti: f64) {
        self.engine.set_time(ti);
    }

    /// `g6_set_j_particle`: write one particle's predictor polynomial.
    #[allow(clippy::too_many_arguments)]
    pub fn set_j_particle(
        &mut self,
        address: usize,
        tj: f64,
        mass: f64,
        a2by18: Vec3, // snap/18 in the historical interface; we take snap
        a1by6: Vec3,  // jerk/6 historically; we take jerk
        aby2: Vec3,   // acc/2 historically; we take acc
        v: Vec3,
        x: Vec3,
    ) {
        // The historical interface pre-scaled the derivatives to save
        // pipeline multipliers; the simulator takes them unscaled, so this
        // facade simply forwards (parameter names keep the old order).
        self.engine.set_j_particle(
            address,
            &JParticle {
                mass,
                t0: tj,
                pos: x,
                vel: v,
                acc: aby2,
                jerk: a1by6,
                snap: a2by18,
            },
        );
    }

    /// `g6calc_firsthalf`: ship the i-particles and start the pipelines.
    pub fn calc_firsthalf(&mut self, xi: &[Vec3], vi: &[Vec3], eps2: f64) {
        assert_eq!(xi.len(), vi.len());
        let ip: Vec<IParticle> = xi
            .iter()
            .zip(vi)
            .map(|(&pos, &vel)| IParticle { pos, vel, eps2 })
            .collect();
        let n = ip.len();
        self.pending = Some((ip, n));
    }

    /// `g6calc_lasthalf`: wait for the pipelines and read the results.
    ///
    /// Returns acceleration, jerk and potential per i-particle.
    pub fn calc_lasthalf(&mut self) -> Vec<ForceResult> {
        let (ip, n) = self
            .pending
            .take()
            .expect("calc_lasthalf without a preceding calc_firsthalf");
        let mut out = vec![ForceResult::default(); n];
        self.engine.compute(&ip, &mut out);
        out
    }

    /// Access the underlying engine (cycle counters etc.).
    pub fn engine(&self) -> &Grape6Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::{DirectEngine, ForceEngine};

    #[test]
    fn two_phase_call_matches_reference() {
        let n = 16;
        let mut g6 = G6::open(&MachineConfig::test_small(), n);
        let mut reference = DirectEngine::new(n);
        for k in 0..n {
            let a = k as f64;
            let x = Vec3::new((a * 0.3).sin(), (a * 0.7).cos(), 0.1 * a - 0.8);
            let v = Vec3::new(0.01 * a, -0.02, 0.0);
            g6.set_j_particle(
                k,
                0.0,
                1.0 / n as f64,
                Vec3::ZERO,
                Vec3::ZERO,
                Vec3::ZERO,
                v,
                x,
            );
            reference.set_j_particle(
                k,
                &JParticle {
                    mass: 1.0 / n as f64,
                    t0: 0.0,
                    pos: x,
                    vel: v,
                    ..Default::default()
                },
            );
        }
        g6.set_ti(0.0);
        reference.set_time(0.0);
        let xi = vec![Vec3::new(0.2, 0.2, 0.2), Vec3::new(-0.5, 0.0, 0.4)];
        let vi = vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0)];
        g6.calc_firsthalf(&xi, &vi, 1e-4);
        let got = g6.calc_lasthalf();
        let ip: Vec<IParticle> = xi
            .iter()
            .zip(&vi)
            .map(|(&pos, &vel)| IParticle {
                pos,
                vel,
                eps2: 1e-4,
            })
            .collect();
        let mut want = vec![ForceResult::default(); 2];
        reference.compute(&ip, &mut want);
        for k in 0..2 {
            assert!((got[k].acc - want[k].acc).norm() < 1e-4 * want[k].acc.norm());
        }
        assert_eq!(g6.npipes(), 48);
    }

    #[test]
    #[should_panic(expected = "without a preceding")]
    fn lasthalf_without_firsthalf_panics() {
        let mut g6 = G6::open(&MachineConfig::test_small(), 4);
        let _ = g6.calc_lasthalf();
    }
}
