//! Capture and restore: between the live integrator and the
//! `grape6-ckpt` data model.
//!
//! [`capture`] flattens a running [`HermiteIntegrator`] over a
//! [`Grape6Engine`] into a serialisable [`Checkpoint`]; [`restore`]
//! rebuilds the pair so that every subsequent blockstep is **bitwise
//! identical** to the uninterrupted run:
//!
//! * particle state (the full force polynomial, per-particle `t`/`dt`)
//!   travels as `f64` bit patterns;
//! * the engine's block-FP magnitude estimates, retry counter and the two
//!   pass clocks (engine chunks, hardware ensemble passes) are restored,
//!   so exponent windows and scheduled faults fire exactly as they would
//!   have;
//! * the hardware itself is rebuilt from the machine configuration and
//!   the fault plan — both deterministic — with the checkpoint's
//!   masked-unit set re-applied and the j-memory reloaded through the
//!   normal [`nbody_core::ForceEngine::set_j_particle`] path, which also
//!   rebuilds the host-side mirror.  §3.4 block floating-point summation
//!   makes the refreshed partitioning invisible in the force bits.

use grape6_ckpt::{bits, bits3, unbits, unbits3, Checkpoint, IntegratorState, RunStatState};
use grape6_fault::{FaultCounters, FaultPlan};
use grape6_system::machine::MachineConfig;
use nbody_core::force::{EngineError, ForceEngine};
use nbody_core::particle::ParticleSet;
use nbody_core::Vec3;

use crate::engine::Grape6Engine;
use crate::integrator::{HermiteIntegrator, IntegratorConfig};
use crate::stats::{RecoveryStats, RunStats};

/// Why a checkpoint could not be turned back into a live run.
#[derive(Debug)]
pub enum RestoreError {
    /// The rebuilt engine rejected the state (capacity, machine
    /// fingerprint, hardware fault during reload).
    Engine(EngineError),
    /// The checkpoint disagrees with the run configuration it is being
    /// restored into.
    Mismatch(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => write!(f, "restore failed in the engine: {e}"),
            Self::Mismatch(m) => write!(f, "checkpoint/configuration mismatch: {m}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<EngineError> for RestoreError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

/// Flatten `stats` into the checkpoint model.
pub fn stats_state(stats: &RunStats) -> RunStatState {
    RunStatState {
        particle_steps: stats.particle_steps,
        blocksteps: stats.blocksteps,
        max_block: stats.max_block as u64,
        block_hist: stats.block_hist.clone(),
        dt_min: bits(stats.dt_min),
        dt_max: bits(stats.dt_max),
        faults: grape6_ckpt::FaultCounterState {
            selftest_failures: stats.faults.selftest_failures,
            units_masked: stats.faults.units_masked,
            scheduled_deaths: stats.faults.scheduled_deaths,
            reduction_glitches: stats.faults.reduction_glitches,
            sanity_recomputes: stats.faults.sanity_recomputes,
            exponent_retries: stats.faults.exponent_retries,
        },
        recovery: grape6_ckpt::RecoveryState {
            checkpoints_taken: stats.recovery.checkpoints_taken,
            restores: stats.recovery.restores,
            reselftests: stats.recovery.reselftests,
            redistributions: stats.recovery.redistributions,
            recovery_seconds: bits(stats.recovery.recovery_seconds),
            step_retries: stats.recovery.step_retries,
        },
    }
}

/// Rebuild [`RunStats`] from the checkpoint model.
pub fn stats_from_state(st: &RunStatState) -> RunStats {
    RunStats {
        particle_steps: st.particle_steps,
        blocksteps: st.blocksteps,
        max_block: st.max_block as usize,
        block_hist: st.block_hist.clone(),
        dt_min: unbits(st.dt_min),
        dt_max: unbits(st.dt_max),
        faults: FaultCounters {
            selftest_failures: st.faults.selftest_failures,
            units_masked: st.faults.units_masked,
            scheduled_deaths: st.faults.scheduled_deaths,
            reduction_glitches: st.faults.reduction_glitches,
            sanity_recomputes: st.faults.sanity_recomputes,
            exponent_retries: st.faults.exponent_retries,
        },
        recovery: RecoveryStats {
            checkpoints_taken: st.recovery.checkpoints_taken,
            restores: st.recovery.restores,
            reselftests: st.recovery.reselftests,
            redistributions: st.recovery.redistributions,
            recovery_seconds: unbits(st.recovery.recovery_seconds),
            step_retries: st.recovery.step_retries,
        },
    }
}

/// Flatten a particle set (with integrator scalars) into the checkpoint
/// model.
pub fn integrator_state(set: &ParticleSet, t: f64, eps: f64, stats: &RunStats) -> IntegratorState {
    let n = set.n();
    IntegratorState {
        t: bits(t),
        eps: bits(eps),
        n,
        mass: set.mass.iter().map(|&m| bits(m)).collect(),
        pos: set.pos.iter().map(|p| bits3(p.to_array())).collect(),
        vel: set.vel.iter().map(|p| bits3(p.to_array())).collect(),
        acc: set.acc.iter().map(|p| bits3(p.to_array())).collect(),
        jerk: set.jerk.iter().map(|p| bits3(p.to_array())).collect(),
        snap: set.snap.iter().map(|p| bits3(p.to_array())).collect(),
        crackle: set.crackle.iter().map(|p| bits3(p.to_array())).collect(),
        pot: set.pot.iter().map(|&p| bits(p)).collect(),
        t_last: set.t.iter().map(|&x| bits(x)).collect(),
        dt: set.dt.iter().map(|&x| bits(x)).collect(),
        stats: stats_state(stats),
    }
}

/// Rebuild a particle set from the checkpoint model.
pub fn particles_from_state(st: &IntegratorState) -> ParticleSet {
    let mut set = ParticleSet::with_capacity(st.n);
    for i in 0..st.n {
        set.push(
            unbits(st.mass[i]),
            Vec3::from_array(unbits3(st.pos[i])),
            Vec3::from_array(unbits3(st.vel[i])),
        );
    }
    for i in 0..st.n {
        set.acc[i] = Vec3::from_array(unbits3(st.acc[i]));
        set.jerk[i] = Vec3::from_array(unbits3(st.jerk[i]));
        set.snap[i] = Vec3::from_array(unbits3(st.snap[i]));
        set.crackle[i] = Vec3::from_array(unbits3(st.crackle[i]));
        set.pot[i] = unbits(st.pot[i]);
        set.t[i] = unbits(st.t_last[i]);
        set.dt[i] = unbits(st.dt[i]);
    }
    set
}

/// Capture the complete state of a running integrator + engine pair.
pub fn capture(it: &HermiteIntegrator<Grape6Engine>, label: &str) -> Checkpoint {
    Checkpoint {
        version: grape6_ckpt::CKPT_VERSION,
        label: label.to_string(),
        blockstep: it.stats().blocksteps,
        engine: Some(it.engine().checkpoint_state()),
        integrator: integrator_state(it.particles(), it.time(), it.epsilon(), it.stats()),
        net: Vec::new(),
        trace: grape6_ckpt::TraceState {
            vt: bits(it.engine().vt()),
            active: false,
        },
    }
}

/// Restore a live integrator + engine pair from a checkpoint.
///
/// `cfg`, `plan` and `icfg` must be what the original run was built with;
/// the checkpoint guards what it can (machine fingerprint, plan seed,
/// softening length) and trusts the caller for the rest — the formats
/// deliberately do not serialise closures or grids.
pub fn restore(
    cfg: &MachineConfig,
    plan: Option<&FaultPlan>,
    icfg: IntegratorConfig,
    ckpt: &Checkpoint,
) -> Result<HermiteIntegrator<Grape6Engine>, RestoreError> {
    let es = ckpt
        .engine
        .as_ref()
        .ok_or_else(|| RestoreError::Mismatch("checkpoint has no engine state".into()))?;
    if let Some(plan) = plan {
        if plan.seed != es.plan_seed {
            return Err(RestoreError::Mismatch(format!(
                "checkpoint was taken under fault-plan seed {}, not {}",
                es.plan_seed, plan.seed
            )));
        }
    }
    let ist = &ckpt.integrator;
    if !ist.is_consistent() {
        return Err(RestoreError::Mismatch(
            "integrator arrays are inconsistent".into(),
        ));
    }
    let eps = icfg.softening.epsilon(ist.n);
    if bits(eps) != ist.eps {
        return Err(RestoreError::Mismatch(format!(
            "softening ε from the configuration is {eps:e}; the checkpoint was taken at {:e}",
            unbits(ist.eps)
        )));
    }
    let engine = Grape6Engine::restore_from_state(cfg, plan, es)?;
    let set = particles_from_state(ist);
    let stats = stats_from_state(&ist.stats);
    Ok(HermiteIntegrator::resume(
        engine,
        set,
        icfg,
        unbits(ist.t),
        stats,
    ))
}

/// Restore a checkpoint onto *different* hardware — the migration path a
/// board farm uses when the original board is gone (evicted session
/// resumed elsewhere, or a faulted board rotated out of service).
///
/// Where [`restore`] rebuilds the original board — same fault plan, same
/// masked-unit set, same pending scheduled deaths — this rebuilds the run
/// on the board described by `cfg`/`plan`:
///
/// * the plan-seed guard is skipped and the engine takes the *new* board's
///   seed (the checkpoint's seed describes hardware we no longer run on);
/// * the old board's masked-unit set is **not** re-applied, and its
///   pending scheduled deaths are **not** re-armed — faults belong to the
///   physical board, not to the session, and must not follow a migration;
/// * the new board's own plan (if any) is injected and self-tested as at
///   any power-on.
///
/// Machine *geometry* must still match the checkpoint fingerprint — a
/// farm's pool is homogeneous, and the block-FP reduction tree is shaped
/// by it.  Everything bitwise-critical (particle bits, magnitude
/// estimates, pass clocks) transfers unchanged, and §3.4 summation makes
/// the new board's partitioning invisible in the force bits, so the
/// migrated run continues bit-for-bit like the uninterrupted one.
pub fn restore_migrate(
    cfg: &MachineConfig,
    plan: Option<&FaultPlan>,
    icfg: IntegratorConfig,
    ckpt: &Checkpoint,
) -> Result<HermiteIntegrator<Grape6Engine>, RestoreError> {
    let es = ckpt
        .engine
        .as_ref()
        .ok_or_else(|| RestoreError::Mismatch("checkpoint has no engine state".into()))?;
    let mut es = es.clone();
    es.plan_seed = plan.map(|p| p.seed).unwrap_or(0);
    es.masked.clear();
    es.pending_deaths.clear();
    let ist = &ckpt.integrator;
    if !ist.is_consistent() {
        return Err(RestoreError::Mismatch(
            "integrator arrays are inconsistent".into(),
        ));
    }
    let eps = icfg.softening.epsilon(ist.n);
    if bits(eps) != ist.eps {
        return Err(RestoreError::Mismatch(format!(
            "softening ε from the configuration is {eps:e}; the checkpoint was taken at {:e}",
            unbits(ist.eps)
        )));
    }
    let engine = Grape6Engine::restore_from_state(cfg, plan, &es)?;
    let set = particles_from_state(ist);
    let stats = stats_from_state(&ist.stats);
    Ok(HermiteIntegrator::resume(
        engine,
        set,
        icfg,
        unbits(ist.t),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_system::machine::MachineConfig;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn integ(n: usize, seed: u64) -> HermiteIntegrator<Grape6Engine> {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
        let engine = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        HermiteIntegrator::new(engine, set, IntegratorConfig::default())
    }

    #[test]
    fn capture_restore_roundtrips_particle_bits() {
        let mut it = integ(32, 9);
        for _ in 0..20 {
            it.step();
        }
        let ckpt = capture(&it, "roundtrip");
        let back = restore(
            &MachineConfig::test_small(),
            None,
            IntegratorConfig::default(),
            &ckpt,
        )
        .unwrap();
        let (a, b) = (it.particles(), back.particles());
        assert_eq!(back.time().to_bits(), it.time().to_bits());
        for i in 0..32 {
            assert_eq!(a.pos[i], b.pos[i]);
            assert_eq!(a.vel[i], b.vel[i]);
            assert_eq!(a.acc[i], b.acc[i]);
            assert_eq!(a.jerk[i], b.jerk[i]);
            assert_eq!(a.snap[i], b.snap[i]);
            assert_eq!(a.crackle[i], b.crackle[i]);
            assert_eq!(a.t[i].to_bits(), b.t[i].to_bits());
            assert_eq!(a.dt[i].to_bits(), b.dt[i].to_bits());
        }
        assert_eq!(back.stats().blocksteps, it.stats().blocksteps);
    }

    #[test]
    fn restore_refuses_wrong_softening() {
        let mut it = integ(16, 10);
        it.step();
        let ckpt = capture(&it, "eps guard");
        let bad = IntegratorConfig {
            softening: nbody_core::softening::Softening::CloseEncounter,
            ..Default::default()
        };
        match restore(&MachineConfig::test_small(), None, bad, &ckpt) {
            Err(RestoreError::Mismatch(m)) => assert!(m.contains("softening")),
            Err(other) => panic!("expected Mismatch, got {other:?}"),
            Ok(_) => panic!("expected Mismatch, got Ok"),
        }
    }

    #[test]
    fn restore_refuses_wrong_machine() {
        let mut it = integ(16, 11);
        it.step();
        let ckpt = capture(&it, "machine guard");
        match restore(
            &MachineConfig::single_board(),
            None,
            IntegratorConfig::default(),
            &ckpt,
        ) {
            Err(RestoreError::Engine(_)) => {}
            Err(other) => panic!("expected Engine mismatch, got {other:?}"),
            Ok(_) => panic!("expected Engine mismatch, got Ok"),
        }
    }
}
