//! The GRAPE-6 engine: simulated hardware behind the standard interface.
//!
//! Besides the happy path, the engine owns the host side of the failure
//! story (see `grape6-fault`):
//!
//! * [`Grape6Engine::with_fault_plan`] injects a seeded [`FaultPlan`] into
//!   the hardware, runs the startup known-answer **self-test** and masks
//!   every unit that answers wrongly — exactly what the real host library
//!   did at initialisation;
//! * every compute pass screens the returned forces (NaN/overflow sanity
//!   guard) and recomputes on the surviving hardware when the reduction
//!   network returns a corrupted word;
//! * scheduled mid-run unit deaths are applied between passes: the failed
//!   unit is masked, and the j-particles are **redistributed** over the
//!   survivors from the engine's host-side mirror.  Block floating-point
//!   summation makes the refreshed partitioning bitwise-invisible in the
//!   forces (§3.4), which the integration tests assert;
//! * the §3.4 exponent-overflow retry loop now *returns* a typed
//!   [`EngineError::ExponentDivergence`] instead of panicking when even
//!   maximally-widened windows keep overflowing.
//!
//! Everything is counted ([`FaultCounters`]) and logged ([`FaultEvent`]);
//! [`Grape6Engine::fault_report`] surfaces the whole story.

use grape6_arith::blockfp::BlockFpError;
use grape6_chip::kernel::KernelMode;
use grape6_chip::pipeline::{ExpSet, HwIParticle, PartialForce};
use grape6_fault::{
    ChipFault, FaultCounters, FaultEvent, FaultPlan, FaultReport, ReductionFaultSchedule,
    ScheduledDeath, UnitPath,
};
use grape6_system::machine::{BoardArray, MachineConfig};
use grape6_system::selftest::{self_test, SelfTestConfig, SelfTestReport};
use grape6_system::unit::GrapeUnit;
use grape6_trace::{EngineTimebase, KernelTag, Phase, Span, SpanCounters, Tracer};
use nbody_core::force::{EngineError, ForceEngine, ForceResult, IParticle, JParticle};

/// Widening applied to all windows on each overflow retry (bits).
const RETRY_WIDEN_BITS: i32 = 8;

/// Maximum retries before giving up (a magnitude this wrong means NaNs or a
/// corrupted state, not a bad guess).
const MAX_RETRIES: u32 = 12;

/// Maximum recomputes of one chunk after reduction glitches or sanity-
/// screen rejections; transient faults recover in one, anything persistent
/// is a hardware fault the retry loop cannot fix.
const MAX_GLITCH_RECOMPUTES: u32 = 4;

/// Anything finite the pipelines can legitimately produce sits far below
/// this; beyond it the result is corrupt even if technically finite.
const SANITY_NORM_LIMIT: f64 = 1e60;

/// The simulated GRAPE-6 hardware of one host, exposed as a
/// [`ForceEngine`].
///
/// Exponent management follows §3.4: the engine keeps a slowly-decaying
/// running maximum of the force magnitudes it has returned, uses it to
/// declare the block floating-point windows for the next call, and on
/// overflow widens the windows and recomputes the failing chunk.  Every
/// retry costs real (virtual) pipeline cycles, exactly like the hardware.
pub struct Grape6Engine {
    hw: BoardArray,
    /// The machine description the hardware was built from — kept so a
    /// checkpoint can fingerprint the machine and a restore can refuse a
    /// mismatched one.
    cfg: MachineConfig,
    /// Seed of the fault plan in force (0 for plan-free construction and
    /// hand-written plans).
    plan_seed: u64,
    n_slots: usize,
    /// Running magnitude estimates (acceleration, jerk, potential).
    mag: (f64, f64, f64),
    retries: u64,
    i_parallel: usize,
    /// Host-side copy of every loaded j-particle, so survivors can be
    /// reloaded when hardware is masked mid-run.
    mirror: Vec<Option<JParticle>>,
    /// Current system time (needed to restore hardware state on reload).
    time: f64,
    /// Compute chunks completed — the clock scheduled deaths run on.
    pass: u64,
    /// Deaths not yet applied, from the fault plan.
    deaths: Vec<ScheduledDeath>,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
    masked: Vec<UnitPath>,
    total_chips: usize,
    selftest: Option<SelfTestReport>,
    /// Span sink (disabled by default: tracing is opt-in and zero-cost
    /// when off).
    tracer: Tracer,
    /// Conversion from hardware activity to virtual seconds; spans are
    /// only recorded when both the tracer is active and this is set.
    timebase: Option<EngineTimebase>,
    /// Virtual-time cursor the engine's spans advance.
    vt: f64,
    /// Force-pass kernel the chips run (batched SoA by default; the scalar
    /// oracle for A/B verification).  Bitwise-invisible, so deliberately
    /// *not* part of the checkpoint state.
    kernel: KernelMode,
    /// Set when a j-memory reload failed after masking: the hardware no
    /// longer holds the full j-set, so any force it computed would be
    /// silently missing contributions.  Every compute refuses with this
    /// error until a successful reload clears it.
    poisoned: Option<EngineError>,
}

impl Grape6Engine {
    /// Fallible construction: rejects a system larger than the machine's
    /// j-memory with [`EngineError::InsufficientCapacity`] instead of
    /// panicking.
    pub fn try_new(cfg: &MachineConfig, n_particles: usize) -> Result<Self, EngineError> {
        let available = cfg.capacity();
        if n_particles > available {
            return Err(EngineError::InsufficientCapacity {
                needed: n_particles,
                available,
            });
        }
        Ok(Self::from_hardware(
            cfg.build(),
            cfg,
            cfg.total_chips(),
            n_particles,
        ))
    }

    /// Build the engine on hardware carrying the given fault plan.
    ///
    /// The plan's power-on faults are injected first; then the startup
    /// self-test drives known-answer vectors through every module and
    /// board, masking whatever answers wrongly.  Construction fails only
    /// if the surviving capacity cannot hold `n_particles`.
    pub fn with_fault_plan(
        cfg: &MachineConfig,
        n_particles: usize,
        plan: &FaultPlan,
    ) -> Result<Self, EngineError> {
        let mut hw = cfg.build();
        // Power-on faults.
        for (path, fault) in &plan.chip_faults {
            hw.inject_chip_fault(path, fault);
        }
        for path in &plan.dead_modules {
            for c in 0..cfg.chips_per_module {
                let mut chip_path = path.clone();
                chip_path.push(c);
                hw.inject_chip_fault(&chip_path, &ChipFault::DeadChip);
            }
        }
        for path in &plan.dead_boards {
            hw.inject_reduction_fault(path, &ReductionFaultSchedule::Permanent);
        }
        if !plan.reduction_glitch_passes.is_empty() {
            hw.inject_reduction_fault(
                &[],
                &ReductionFaultSchedule::AtPasses(plan.reduction_glitch_passes.clone()),
            );
        }
        // Startup self-test: mask everything that answers wrongly.
        let report = self_test(&mut hw, &SelfTestConfig::default());
        let mut engine = Self::from_hardware(hw, cfg, cfg.total_chips(), n_particles);
        engine.plan_seed = plan.seed;
        engine.counters.selftest_failures = report.failures.len() as u64;
        for f in &report.failures {
            engine.events.push(FaultEvent::SelfTestFailure {
                path: f.path.clone(),
                rel_err: f.rel_err,
            });
        }
        for path in &report.masked {
            engine.counters.units_masked += 1;
            engine.masked.push(path.clone());
            engine.events.push(FaultEvent::UnitMasked {
                path: path.clone(),
                pass: 0,
            });
        }
        engine.selftest = Some(report);
        engine.deaths = plan.midrun_deaths.clone();
        let available = engine.hw.capacity();
        if n_particles > available {
            return Err(EngineError::InsufficientCapacity {
                needed: n_particles,
                available,
            });
        }
        Ok(engine)
    }

    fn from_hardware(
        hw: BoardArray,
        cfg: &MachineConfig,
        total_chips: usize,
        n_particles: usize,
    ) -> Self {
        Self {
            hw,
            cfg: *cfg,
            plan_seed: 0,
            n_slots: n_particles,
            mag: (1.0, 1.0, 1.0),
            retries: 0,
            i_parallel: 48,
            mirror: vec![None; n_particles],
            time: 0.0,
            pass: 0,
            deaths: Vec::new(),
            counters: FaultCounters::default(),
            events: Vec::new(),
            masked: Vec::new(),
            total_chips,
            selftest: None,
            tracer: Tracer::disabled(),
            timebase: None,
            vt: 0.0,
            kernel: KernelMode::default(),
            poisoned: None,
        }
    }

    /// Install a span sink (pass [`Tracer::enabled`] to start recording).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The engine's tracer (pause/resume, inspection).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Set the hardware-activity → seconds conversion used for spans.
    /// Virtual-time access (`vt`/`set_vt`/`take_spans`) goes through the
    /// [`ForceEngine`] trait.
    pub fn set_timebase(&mut self, tb: EngineTimebase) {
        self.timebase = Some(tb);
    }

    /// Record a span of `dur` virtual seconds at the cursor and advance
    /// it.  No-op (and no cursor movement) unless tracing is active and a
    /// timebase is installed.
    fn trace_span(&mut self, phase: Phase, dur: f64, counters: SpanCounters) {
        if self.timebase.is_none() || !self.tracer.is_active() {
            return;
        }
        let t0 = self.vt;
        self.vt += dur;
        self.tracer.record(Span {
            phase,
            t0,
            t1: self.vt,
            track: 0,
            counters,
        });
    }

    /// Record the per-board sub-spans of the pass that just ran: board `b`
    /// on track `b + 1`, aligned to end with the pass span.  These are
    /// visualisation-only (`Phase::BoardPass` folds into no breakdown
    /// term).
    fn trace_board_passes(&mut self, t1: f64) {
        let Some(tb) = self.timebase else { return };
        if !self.tracer.is_active() {
            return;
        }
        let spans: Vec<Span> = self
            .hw
            .children()
            .iter()
            .enumerate()
            .filter(|(b, _)| self.hw.active()[*b])
            .map(|(b, board)| {
                let cycles = board.last_pass_cycles();
                let dur = cycles as f64 * tb.sec_per_cycle;
                Span {
                    phase: Phase::BoardPass,
                    t0: t1 - dur,
                    t1,
                    track: b as u32 + 1,
                    counters: SpanCounters {
                        cycles,
                        ..Default::default()
                    },
                }
            })
            .collect();
        for s in spans {
            self.tracer.record(s);
        }
    }

    /// Switch the board/module/chip walk between the rayon-parallel and
    /// the serial schedule (default: parallel).  §3.4 block floating-point
    /// summation makes the two bitwise identical — the partial forces are
    /// collected per child and merged in a fixed order either way — so
    /// this only changes *how* the simulated hardware is walked, never
    /// what it returns.
    pub fn set_board_parallel(&mut self, parallel: bool) {
        self.hw.set_parallel(parallel);
    }

    /// Whether the hardware walk currently uses the parallel schedule.
    pub fn board_parallel(&self) -> bool {
        self.hw.is_parallel()
    }

    /// Select the force-pass kernel on every chip: the runtime-dispatched
    /// SIMD-lane kernel (default), the batched SoA kernel, or the scalar
    /// reference oracle.  All are bitwise identical — each kernel performs
    /// the same rounded operations in the same order per (i, j) pair — so,
    /// like [`Grape6Engine::set_board_parallel`], this only changes host
    /// wall-clock, never results or cycle accounting.  The mode is host
    /// configuration, not machine state: it is deliberately absent from
    /// checkpoints and may be switched freely mid-run.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.kernel = mode;
        self.hw.set_kernel_mode(mode);
    }

    /// The force-pass kernel currently selected.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Total pipeline cycles consumed (critical path).
    pub fn hardware_cycles(&self) -> u64 {
        self.hw.total_cycles()
    }

    /// Exponent-retry count (§3.4's repeat-until-good-guess loop).
    pub fn exponent_retries(&self) -> u64 {
        self.retries
    }

    /// Direct access to the hardware (tests, inspection).
    pub fn hardware(&self) -> &BoardArray {
        &self.hw
    }

    /// Chips currently in service.
    pub fn alive_chips(&self) -> usize {
        self.hw.alive_chips()
    }

    /// The startup self-test outcome, if one ran
    /// ([`Grape6Engine::with_fault_plan`] construction).
    pub fn self_test_report(&self) -> Option<&SelfTestReport> {
        self.selftest.as_ref()
    }

    /// The full fault/degradation story so far: counters, masked units,
    /// ordered event log, surviving capacity.
    pub fn fault_report(&self) -> FaultReport {
        let mut counters = self.counters;
        counters.exponent_retries = self.retries;
        FaultReport {
            counters,
            masked: self.masked.clone(),
            events: self.events.clone(),
            alive_chips: self.hw.alive_chips(),
            total_chips: self.total_chips,
        }
    }

    /// The machine description this engine's hardware was built from.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.cfg
    }

    // ---- checkpoint / recovery ------------------------------------------

    /// Capture the engine internals that shape subsequent arithmetic into
    /// a serialisable [`grape6_ckpt::EngineState`].
    ///
    /// The hardware itself is not captured: a restore rebuilds it from the
    /// machine configuration and fault plan (both deterministic), re-applies
    /// the masked-unit set, and reloads the j-memory from the particle
    /// state — §3.4 block-FP summation makes the refreshed partitioning
    /// bitwise invisible in the forces.
    pub fn checkpoint_state(&self) -> grape6_ckpt::EngineState {
        grape6_ckpt::EngineState {
            machine: (
                self.cfg.boards,
                self.cfg.modules_per_board,
                self.cfg.chips_per_module,
                self.cfg.chip.jmem_capacity,
            ),
            plan_seed: self.plan_seed,
            n_slots: self.n_slots,
            mag: [
                self.mag.0.to_bits(),
                self.mag.1.to_bits(),
                self.mag.2.to_bits(),
            ],
            retries: self.retries,
            time: self.time.to_bits(),
            pass: self.pass,
            hw_passes: self.hw.pass_count(),
            pending_deaths: self
                .deaths
                .iter()
                .map(|d| (d.path.clone(), d.at_pass))
                .collect(),
            masked: self.masked.clone(),
            counters: {
                let c = self.fault_counters();
                grape6_ckpt::FaultCounterState {
                    selftest_failures: c.selftest_failures,
                    units_masked: c.units_masked,
                    scheduled_deaths: c.scheduled_deaths,
                    reduction_glitches: c.reduction_glitches,
                    sanity_recomputes: c.sanity_recomputes,
                    exponent_retries: c.exponent_retries,
                }
            },
            vt: self.vt.to_bits(),
        }
    }

    /// Rebuild an engine from a captured [`grape6_ckpt::EngineState`].
    ///
    /// `plan` must be the fault plan the original engine was built with
    /// (`None` for plan-free construction); the hardware is rebuilt the
    /// same deterministic way — including the power-on self-test when a
    /// plan is given — then the checkpoint's masked-unit set, counters,
    /// magnitude estimates and clocks are applied on top.  The j-memory is
    /// *not* loaded here: the caller reloads every particle through
    /// [`ForceEngine::set_j_particle`], which also rebuilds the host-side
    /// mirror bit-for-bit.
    ///
    /// The machine fingerprint is checked; the event log is not restored
    /// (it restarts with the rebuilt engine's power-on entries).
    pub fn restore_from_state(
        cfg: &MachineConfig,
        plan: Option<&FaultPlan>,
        st: &grape6_ckpt::EngineState,
    ) -> Result<Self, EngineError> {
        let fp = (
            cfg.boards,
            cfg.modules_per_board,
            cfg.chips_per_module,
            cfg.chip.jmem_capacity,
        );
        if fp != st.machine {
            return Err(EngineError::HardwareFault {
                detail: format!(
                    "checkpoint was taken on machine {:?}, not {:?}",
                    st.machine, fp
                ),
            });
        }
        let mut engine = match plan {
            Some(plan) => Self::with_fault_plan(cfg, st.n_slots, plan)?,
            None => Self::try_new(cfg, st.n_slots)?,
        };
        // Re-apply every masked unit.  Self-test already masked some of
        // them (mask_path is idempotent and returns false then); the rest
        // are mid-run deaths the original run had already discovered.
        // The bookkeeping list is the union — construction's self-test
        // masks first, then whatever the checkpoint adds — so a restore
        // onto a board with its own faults (migration) keeps both sets.
        for path in &st.masked {
            engine.hw.mask_path(path);
            if !engine.masked.contains(path) {
                engine.masked.push(path.clone());
            }
        }
        let available = engine.hw.capacity();
        if st.n_slots > available {
            return Err(EngineError::InsufficientCapacity {
                needed: st.n_slots,
                available,
            });
        }
        engine.mag = (
            f64::from_bits(st.mag[0]),
            f64::from_bits(st.mag[1]),
            f64::from_bits(st.mag[2]),
        );
        engine.retries = st.retries;
        engine.pass = st.pass;
        engine.deaths = st
            .pending_deaths
            .iter()
            .map(|(path, at_pass)| ScheduledDeath {
                path: path.clone(),
                at_pass: *at_pass,
            })
            .collect();
        engine.counters = FaultCounters {
            selftest_failures: st.counters.selftest_failures,
            units_masked: st.counters.units_masked,
            scheduled_deaths: st.counters.scheduled_deaths,
            reduction_glitches: st.counters.reduction_glitches,
            sanity_recomputes: st.counters.sanity_recomputes,
            exponent_retries: st.counters.exponent_retries,
        };
        // `fault_counters` overwrites this mirror field from `retries`
        // (restored above) on every read; zero the stale copy.
        engine.counters.exponent_retries = 0;
        engine.vt = f64::from_bits(st.vt);
        // Rewind the hardware pass clock so `AtPasses` fault schedules
        // fire exactly where they would have in the uninterrupted run.
        engine.hw.restore_pass_count(st.hw_passes);
        engine.set_time(f64::from_bits(st.time));
        Ok(engine)
    }

    /// Re-run the known-answer self-test mid-run (recovery ladder rung 2):
    /// mask every unit that answers wrongly, and redistribute the
    /// j-particles over the survivors if anything new was masked.
    ///
    /// The hardware pass clock is saved and restored around the test, so
    /// scheduled `AtPasses` faults stay aligned with the run's own passes.
    /// Returns the number of units newly masked.
    pub fn re_self_test(&mut self) -> Result<usize, EngineError> {
        let saved_passes = self.hw.pass_count();
        let report = self_test(&mut self.hw, &SelfTestConfig::default());
        self.hw.restore_pass_count(saved_passes);
        self.counters.selftest_failures += report.failures.len() as u64;
        for f in &report.failures {
            self.events.push(FaultEvent::SelfTestFailure {
                path: f.path.clone(),
                rel_err: f.rel_err,
            });
        }
        let newly_masked = report.masked.len();
        for path in &report.masked {
            self.counters.units_masked += 1;
            self.masked.push(path.clone());
            self.events.push(FaultEvent::UnitMasked {
                path: path.clone(),
                pass: self.pass,
            });
        }
        self.selftest = Some(report);
        if newly_masked > 0 {
            self.reload_from_mirror()?;
        }
        Ok(newly_masked)
    }

    /// Redistribute every mirrored j-particle over the surviving hardware
    /// (recovery ladder rung 3) — the same reload that follows a scheduled
    /// mid-run death, exposed for the supervisor to order explicitly.
    pub fn redistribute(&mut self) -> Result<(), EngineError> {
        self.reload_from_mirror()
    }

    fn exps(&self) -> ExpSet {
        ExpSet::from_magnitudes(self.mag.0, self.mag.1, self.mag.2)
    }

    fn update_mags(&mut self, out: &[ForceResult]) {
        let mut a = 0.0f64;
        let mut j = 0.0f64;
        let mut p = 0.0f64;
        for r in out {
            a = a.max(r.acc.norm());
            j = j.max(r.jerk.norm());
            p = p.max(r.pot.abs());
        }
        // Slow decay keeps headroom; fast rise tracks deepening potentials.
        self.mag.0 = (self.mag.0 * 0.9).max(a);
        self.mag.1 = (self.mag.1 * 0.9).max(j);
        self.mag.2 = (self.mag.2 * 0.9).max(p);
    }

    /// True if a converted force is something working hardware can emit.
    fn result_sane(r: &ForceResult) -> bool {
        let finite = r.acc.x.is_finite()
            && r.acc.y.is_finite()
            && r.acc.z.is_finite()
            && r.jerk.x.is_finite()
            && r.jerk.y.is_finite()
            && r.jerk.z.is_finite()
            && r.pot.is_finite();
        finite && r.acc.norm2() < SANITY_NORM_LIMIT && r.jerk.norm2() < SANITY_NORM_LIMIT
    }

    /// Apply every scheduled death that has come due; if hardware was
    /// masked, redistribute the j-particles over the survivors.
    fn apply_due_deaths(&mut self) -> Result<(), EngineError> {
        if self.deaths.is_empty() {
            return Ok(());
        }
        let mut masked_any = false;
        let mut k = 0;
        while k < self.deaths.len() {
            if self.deaths[k].at_pass <= self.pass {
                let d = self.deaths.remove(k);
                self.counters.scheduled_deaths += 1;
                if self.hw.mask_path(&d.path) {
                    masked_any = true;
                    self.counters.units_masked += 1;
                    self.masked.push(d.path.clone());
                    self.events.push(FaultEvent::UnitMasked {
                        path: d.path,
                        pass: self.pass,
                    });
                }
            } else {
                k += 1;
            }
        }
        if masked_any {
            self.reload_from_mirror()?;
        }
        Ok(())
    }

    /// Reload every mirrored j-particle onto the (newly smaller) machine.
    ///
    /// Failure poisons the engine: once a unit is masked the hardware's
    /// j-partitioning no longer matches the mirror, and computing anyway
    /// would return forces silently missing the lost unit's particles.
    /// A later successful reload (capacity restored by a different mask
    /// set) clears the poison; in practice recovery means restoring the
    /// checkpoint onto healthier hardware.
    fn reload_from_mirror(&mut self) -> Result<(), EngineError> {
        let available = self.hw.capacity();
        if self.n_slots > available {
            let e = EngineError::InsufficientCapacity {
                needed: self.n_slots,
                available,
            };
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        // `clear` also resets the chips' predictor time — restore it before
        // reloading so the redistributed particles predict identically.
        self.hw.clear();
        self.hw.set_time(self.time);
        for (addr, p) in self.mirror.iter().enumerate() {
            if let Some(p) = p {
                // The capacity check above makes a load failure a machine
                // defect (e.g. a mask landing mid-reload), not a sizing bug.
                self.hw
                    .load_j(addr, p)
                    .map_err(|e| EngineError::HardwareFault {
                        detail: format!("reload after masking failed: {e}"),
                    })?;
            }
        }
        self.poisoned = None;
        Ok(())
    }

    /// One i-chunk through the hardware with the full recovery ladder:
    /// exponent-overflow → widen and retry (bounded); corrupted reduction →
    /// recompute as-is (bounded); insane output → recompute (bounded).
    #[allow(clippy::type_complexity)]
    fn run_chunk(
        &mut self,
        regs: &[HwIParticle],
        h2: Option<&[f64]>,
    ) -> Result<(Vec<PartialForce>, Option<Vec<Vec<u32>>>), EngineError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        self.pass += 1;
        self.apply_due_deaths()?;
        let n_i = regs.len();
        if let Some(tb) = self.timebase {
            // One GRAPE call: DMA setup, then the i-upload + force-readback
            // interface transfer (j writeback is charged at load time).
            self.trace_span(
                Phase::Dma,
                tb.dma_call(),
                SpanCounters {
                    items: n_i as u64,
                    ..Default::default()
                },
            );
            self.trace_span(
                Phase::Interface,
                tb.if_time(n_i),
                SpanCounters {
                    items: n_i as u64,
                    bytes: (n_i as f64 * (tb.i_word_bytes + tb.f_word_bytes)) as u64,
                    ..Default::default()
                },
            );
        }
        let mut exps = vec![self.exps(); regs.len()];
        let mut widen_attempts = 0u32;
        let mut recomputes = 0u32;
        // Neighbour-list buffer shared by every retry of this chunk — the
        // hierarchy fills it in place (see `GrapeUnit::compute_block_nb`),
        // so the recovery ladder never reallocates the lists.
        let mut nb_lists: Vec<Vec<u32>> = Vec::new();
        // Phase tag of the *next* pipeline pass: the first attempt is plain
        // pipeline time; repeats are tagged by what caused them.
        let mut attempt_phase = Phase::Grape;
        loop {
            let outcome = match h2 {
                None => self
                    .hw
                    .compute_block(regs, &exps)
                    .map(|partials| (partials, None)),
                Some(h2) => self
                    .hw
                    .compute_block_nb(regs, &exps, h2, &mut nb_lists)
                    .map(|partials| (partials, Some(std::mem::take(&mut nb_lists)))),
            };
            // The hardware ran a pass whatever the outcome; charge its
            // critical-path cycles under the attempt's phase tag.
            if let Some(tb) = self.timebase {
                let cycles = self.hw.last_pass_cycles();
                self.trace_span(
                    attempt_phase,
                    cycles as f64 * tb.sec_per_cycle,
                    SpanCounters {
                        items: self.hw.n_j() as u64,
                        cycles,
                        retries: (widen_attempts + recomputes) as u64,
                        kernel: Some(match self.kernel {
                            KernelMode::Scalar => KernelTag::Scalar,
                            KernelMode::Batched => KernelTag::Batched,
                            KernelMode::Simd => KernelTag::Simd,
                        }),
                        ..Default::default()
                    },
                );
                let t1 = self.vt;
                self.trace_board_passes(t1);
            }
            match outcome {
                Ok((partials, lists)) => {
                    // Host-side sanity screen on everything hardware hands
                    // back: NaN/inf/absurd values trigger a recompute, and
                    // if the insanity persists it is a hardware fault.
                    let insane = partials
                        .iter()
                        .any(|p| !Self::result_sane(&p.to_force_result()));
                    if !insane {
                        return Ok((partials, lists));
                    }
                    recomputes += 1;
                    attempt_phase = Phase::SanityRecompute;
                    self.counters.sanity_recomputes += 1;
                    self.events
                        .push(FaultEvent::SanityRecompute { pass: self.pass });
                    if recomputes > MAX_GLITCH_RECOMPUTES {
                        return Err(EngineError::HardwareFault {
                            detail: format!(
                                "force sanity screen still failing after \
                                 {MAX_GLITCH_RECOMPUTES} recomputes"
                            ),
                        });
                    }
                }
                Err(BlockFpError::ExponentMismatch { .. }) => {
                    // All units share one exponent set, so a mismatch can
                    // only be a corrupted reduction word (parity fault).
                    // Recompute without widening.
                    recomputes += 1;
                    attempt_phase = Phase::SanityRecompute;
                    self.counters.reduction_glitches += 1;
                    self.events
                        .push(FaultEvent::ReductionGlitch { pass: self.pass });
                    if recomputes > MAX_GLITCH_RECOMPUTES {
                        return Err(EngineError::HardwareFault {
                            detail: format!(
                                "reduction network still corrupting results after \
                                 {MAX_GLITCH_RECOMPUTES} recomputes"
                            ),
                        });
                    }
                }
                Err(e) => {
                    // Genuine block-FP overflow: widen the windows (§3.4).
                    widen_attempts += 1;
                    attempt_phase = Phase::WidenRetry;
                    self.retries += 1;
                    if widen_attempts > MAX_RETRIES {
                        return Err(EngineError::ExponentDivergence {
                            retries: widen_attempts - 1,
                            detail: e.to_string(),
                        });
                    }
                    for x in &mut exps {
                        *x = x.widened(RETRY_WIDEN_BITS * widen_attempts as i32);
                    }
                }
            }
        }
    }

    /// Fallible j-memory write: the typed-error twin of
    /// [`ForceEngine::set_j_particle`].  Rejects out-of-range addresses and
    /// coordinates outside the ±64 fixed-point box (NaN included) instead
    /// of panicking, so a misbehaving tenant cannot take the host down.
    pub fn try_set_j_particle_checked(
        &mut self,
        addr: usize,
        p: &JParticle,
    ) -> Result<(), EngineError> {
        if addr >= self.n_slots {
            return Err(EngineError::BadJAddress {
                addr,
                slots: self.n_slots,
            });
        }
        // The fixed-point coordinate box covers ±64 length units; a
        // coordinate outside it would silently wrap in the memory format
        // (hardware semantics).  NaN must be rejected too.
        for c in p.pos.to_array() {
            if c.is_nan() || c.abs() >= 64.0 {
                return Err(EngineError::OutsideBox { addr, coord: c });
            }
        }
        self.mirror[addr] = Some(*p);
        if let Some(tb) = self.timebase {
            // j writeback crosses the same host↔GRAPE interface as the
            // i/force traffic (the j term of the model's interface time).
            self.trace_span(
                Phase::Interface,
                tb.j_write_time(),
                SpanCounters {
                    items: 1,
                    bytes: tb.j_word_bytes as u64,
                    ..Default::default()
                },
            );
        }
        // addr < n_slots ≤ capacity (checked at construction and on every
        // reload), so a hardware write failure is a machine defect.
        self.hw
            .load_j(addr, p)
            .map_err(|e| EngineError::HardwareFault {
                detail: format!("j-memory load failed: {e}"),
            })
    }

    /// Fallible compute: the typed-error twin of [`ForceEngine::compute`].
    pub fn try_compute_forces(
        &mut self,
        i: &[IParticle],
        out: &mut [ForceResult],
    ) -> Result<(), EngineError> {
        if i.len() != out.len() {
            return Err(EngineError::BufferMismatch {
                what: "out",
                expected: i.len(),
                got: out.len(),
            });
        }
        for (chunk_i, chunk_o) in i
            .chunks(self.i_parallel)
            .zip(out.chunks_mut(self.i_parallel))
        {
            let regs: Vec<HwIParticle> = chunk_i
                .iter()
                .map(|p| HwIParticle::from_host(p.pos, p.vel, p.eps2))
                .collect();
            let (partials, _) = self.run_chunk(&regs, None)?;
            for (o, p) in chunk_o.iter_mut().zip(&partials) {
                *o = p.to_force_result();
            }
            self.update_mags(chunk_o);
        }
        Ok(())
    }
}

impl ForceEngine for Grape6Engine {
    fn n_j(&self) -> usize {
        self.n_slots
    }

    fn set_j_particle(&mut self, addr: usize, p: &JParticle) {
        if let Err(e) = self.try_set_j_particle_checked(addr, p) {
            panic!("{e}");
        }
    }

    fn try_set_j_particle(&mut self, addr: usize, p: &JParticle) -> Result<(), EngineError> {
        self.try_set_j_particle_checked(addr, p)
    }

    fn set_time(&mut self, t: f64) {
        self.time = t;
        self.hw.set_time(t);
    }

    fn compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) {
        if let Err(e) = self.try_compute_forces(i, out) {
            panic!("{e}");
        }
    }

    fn try_compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) -> Result<(), EngineError> {
        self.try_compute_forces(i, out)
    }

    fn fault_counters(&self) -> FaultCounters {
        let mut c = self.counters;
        c.exponent_retries = self.retries;
        c
    }

    fn vt(&self) -> f64 {
        self.vt
    }

    fn set_vt(&mut self, t: f64) {
        self.vt = t;
    }

    fn take_spans(&mut self) -> Vec<Span> {
        self.tracer.take()
    }

    fn name(&self) -> &'static str {
        "grape6-sim"
    }

    fn interactions(&self) -> u64 {
        self.hw.total_interactions()
    }
}

impl Grape6Engine {
    /// Compute forces **and hardware neighbour lists**: for each i-particle
    /// the global j-addresses with unsoftened `r² < h2[k]`, as detected by
    /// the pipeline comparators — the hardware service behind the
    /// Ahmad–Cohen scheme's bookkeeping on the real machine.
    pub fn compute_with_neighbours(
        &mut self,
        i: &[IParticle],
        h2: &[f64],
        out: &mut [ForceResult],
    ) -> Vec<Vec<u32>> {
        match self.try_compute_with_neighbours(i, h2, out) {
            Ok(lists) => lists,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Grape6Engine::compute_with_neighbours`].
    pub fn try_compute_with_neighbours(
        &mut self,
        i: &[IParticle],
        h2: &[f64],
        out: &mut [ForceResult],
    ) -> Result<Vec<Vec<u32>>, EngineError> {
        if i.len() != out.len() {
            return Err(EngineError::BufferMismatch {
                what: "out",
                expected: i.len(),
                got: out.len(),
            });
        }
        if i.len() != h2.len() {
            return Err(EngineError::BufferMismatch {
                what: "h2",
                expected: i.len(),
                got: h2.len(),
            });
        }
        let mut all_lists = Vec::with_capacity(i.len());
        for ((chunk_i, chunk_o), chunk_h) in i
            .chunks(self.i_parallel)
            .zip(out.chunks_mut(self.i_parallel))
            .zip(h2.chunks(self.i_parallel))
        {
            let regs: Vec<HwIParticle> = chunk_i
                .iter()
                .map(|p| HwIParticle::from_host(p.pos, p.vel, p.eps2))
                .collect();
            let (partials, lists) = self.run_chunk(&regs, Some(chunk_h))?;
            for (o, p) in chunk_o.iter_mut().zip(&partials) {
                *o = p.to_force_result();
            }
            self.update_mags(chunk_o);
            all_lists.extend(lists.expect("nb path returns lists"));
        }
        Ok(all_lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::DirectEngine;
    use nbody_core::Vec3;

    fn scattered(n: usize) -> Vec<JParticle> {
        (0..n)
            .map(|k| {
                let a = k as f64 * 0.613;
                JParticle {
                    mass: 1.0 / n as f64,
                    t0: 0.0,
                    pos: Vec3::new(a.cos(), (1.7 * a).sin(), 0.3 * (0.9 * a).cos()),
                    vel: Vec3::new(-a.sin() * 0.2, a.cos() * 0.2, 0.0),
                    acc: Vec3::new(0.01, -0.02, 0.005),
                    jerk: Vec3::ZERO,
                    snap: Vec3::ZERO,
                }
            })
            .collect()
    }

    fn engines(n: usize) -> (Grape6Engine, DirectEngine) {
        let js = scattered(n);
        let mut g = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        let mut d = DirectEngine::new(n);
        for (k, j) in js.iter().enumerate() {
            g.set_j_particle(k, j);
            d.set_j_particle(k, j);
        }
        (g, d)
    }

    #[test]
    fn matches_reference_engine_through_full_interface() {
        let n = 100;
        let (mut g, mut d) = engines(n);
        // Predict to a later time to exercise the on-chip predictor too.
        g.set_time(0.0625);
        d.set_time(0.0625);
        let probes: Vec<IParticle> = (0..60)
            .map(|k| IParticle {
                pos: Vec3::new(0.02 * k as f64 - 0.5, 0.3, -0.1),
                vel: Vec3::new(0.0, 0.05, 0.0),
                eps2: 1e-4,
            })
            .collect();
        let mut got = vec![ForceResult::default(); probes.len()];
        let mut want = vec![ForceResult::default(); probes.len()];
        g.compute(&probes, &mut got);
        d.compute(&probes, &mut want);
        for k in 0..probes.len() {
            let da = (got[k].acc - want[k].acc).norm() / want[k].acc.norm();
            assert!(da < 1e-4, "i={k} rel acc err {da:e}");
            let dp = (got[k].pot - want[k].pot).abs() / want[k].pot.abs();
            assert!(dp < 1e-4, "i={k} rel pot err {dp:e}");
        }
        assert_eq!(g.interactions(), (probes.len() * n) as u64);
        assert!(g.hardware_cycles() > 0);
    }

    #[test]
    fn exponent_retry_recovers_from_cold_start() {
        // Force magnitudes far above the initial unit guess: the engine
        // must retry and still return the right answer.
        let n = 4;
        let mut g = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        let mut d = DirectEngine::new(n);
        for k in 0..n {
            let p = JParticle {
                mass: 1000.0,
                t0: 0.0,
                pos: Vec3::new(k as f64 * 1e-3, 0.0, 0.0),
                ..Default::default()
            };
            g.set_j_particle(k, &p);
            d.set_j_particle(k, &p);
        }
        g.set_time(0.0);
        d.set_time(0.0);
        let probe = [IParticle {
            pos: Vec3::new(-0.05, 0.0, 0.0),
            vel: Vec3::ZERO,
            eps2: 0.0,
        }];
        let mut got = [ForceResult::default()];
        let mut want = [ForceResult::default()];
        g.compute(&probe, &mut got);
        d.compute(&probe, &mut want);
        assert!(g.exponent_retries() > 0, "cold start must retry");
        let rel = (got[0].acc - want[0].acc).norm() / want[0].acc.norm();
        assert!(rel < 1e-4, "rel err {rel:e}");
        // A second call reuses the learned exponents without retrying.
        let before = g.exponent_retries();
        g.compute(&probe, &mut got);
        assert_eq!(g.exponent_retries(), before);
    }

    #[test]
    fn multi_chunk_blocks_handled() {
        // 130 i-particles = 3 chip passes on a 48-wide machine.
        let n = 64;
        let (mut g, mut d) = engines(n);
        g.set_time(0.0);
        d.set_time(0.0);
        let probes: Vec<IParticle> = (0..130)
            .map(|k| IParticle {
                pos: Vec3::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos(), 0.0),
                vel: Vec3::ZERO,
                eps2: 1e-2,
            })
            .collect();
        let mut got = vec![ForceResult::default(); 130];
        let mut want = vec![ForceResult::default(); 130];
        g.compute(&probes, &mut got);
        d.compute(&probes, &mut want);
        for k in 0..130 {
            assert!((got[k].acc - want[k].acc).norm() < 1e-4 * want[k].acc.norm().max(1e-6));
        }
    }

    #[test]
    fn hardware_neighbour_lists_match_brute_force() {
        let n = 120;
        let js = scattered(n);
        let mut g = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        for (k, j) in js.iter().enumerate() {
            g.set_j_particle(k, j);
        }
        g.set_time(0.0);
        let probes: Vec<IParticle> = (0..3)
            .map(|k| IParticle {
                pos: js[k].pos,
                vel: js[k].vel,
                eps2: 1e-4,
            })
            .collect();
        let h2 = [0.25f64, 0.25, 0.25];
        let mut out = vec![ForceResult::default(); 3];
        let lists = g.compute_with_neighbours(&probes, &h2, &mut out);
        for k in 0..3 {
            let want: Vec<u32> = (0..n)
                .filter(|&j| {
                    let d2 = (js[j].pos - js[k].pos).norm2();
                    d2 > 0.0 && d2 < h2[k]
                })
                .map(|j| j as u32)
                .collect();
            assert_eq!(lists[k], want, "probe {k}");
            assert!(!lists[k].is_empty(), "probe {k} should have neighbours");
        }
        // Forces unchanged relative to the plain path.
        let mut out2 = vec![ForceResult::default(); 3];
        g.compute(&probes, &mut out2);
        for k in 0..3 {
            assert_eq!(out[k].acc, out2[k].acc);
        }
    }

    #[test]
    #[should_panic(expected = "fixed-point box")]
    fn out_of_box_particle_rejected() {
        let mut g = Grape6Engine::try_new(&MachineConfig::test_small(), 4).unwrap();
        g.set_j_particle(
            0,
            &JParticle {
                mass: 1.0,
                pos: Vec3::new(100.0, 0.0, 0.0),
                ..Default::default()
            },
        );
    }

    #[test]
    fn oversubscription_rejected() {
        let cfg = MachineConfig::test_small(); // 4 chips × 2048
        let err = match Grape6Engine::try_new(&cfg, 10_000) {
            Ok(_) => panic!("oversubscribed machine must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(
            err,
            EngineError::InsufficientCapacity { needed: 10_000, .. }
        ));
    }

    #[test]
    fn exponent_divergence_is_a_typed_error() {
        // Two 1e308 masses 1e-4 apart with ε = 0: the pairwise summands
        // are infinite, so no amount of window widening converges and the
        // engine must return ExponentDivergence — not panic.
        let n = 2;
        let mut g = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        for k in 0..n {
            g.set_j_particle(
                k,
                &JParticle {
                    mass: 1e308,
                    t0: 0.0,
                    pos: Vec3::new(k as f64 * 1e-4, 0.0, 0.0),
                    ..Default::default()
                },
            );
        }
        g.set_time(0.0);
        let probe = [IParticle {
            pos: Vec3::new(-1e-4, 0.0, 0.0),
            vel: Vec3::ZERO,
            eps2: 0.0,
        }];
        let mut out = [ForceResult::default()];
        let err = g.try_compute_forces(&probe, &mut out).unwrap_err();
        match &err {
            EngineError::ExponentDivergence { retries, .. } => {
                assert_eq!(*retries, MAX_RETRIES);
            }
            other => panic!("expected ExponentDivergence, got {other:?}"),
        }
        assert_eq!(
            g.fault_counters().exponent_retries,
            (MAX_RETRIES + 1) as u64
        );
    }

    #[test]
    fn fault_plan_masks_dead_module_and_forces_stay_bitwise() {
        let n = 100;
        let js = scattered(n);
        let cfg = MachineConfig::test_small(); // 1 board × 2 modules × 2 chips
        let plan = FaultPlan::none().with_dead_module(0, 1);
        let mut faulty = Grape6Engine::with_fault_plan(&cfg, n, &plan).unwrap();
        let mut clean = Grape6Engine::try_new(&cfg, n).unwrap();
        // Self-test found and masked the dead module before any particles
        // were loaded.
        let st = faulty.self_test_report().unwrap();
        assert_eq!(st.masked, vec![vec![0, 1]]);
        assert_eq!(faulty.alive_chips(), 2);
        assert_eq!(clean.alive_chips(), 4);
        for (k, j) in js.iter().enumerate() {
            faulty.set_j_particle(k, j);
            clean.set_j_particle(k, j);
        }
        faulty.set_time(0.0625);
        clean.set_time(0.0625);
        let probes: Vec<IParticle> = (0..60)
            .map(|k| IParticle {
                pos: Vec3::new(0.02 * k as f64 - 0.5, 0.3, -0.1),
                vel: Vec3::new(0.0, 0.05, 0.0),
                eps2: 1e-4,
            })
            .collect();
        let mut got = vec![ForceResult::default(); probes.len()];
        let mut want = vec![ForceResult::default(); probes.len()];
        faulty.compute(&probes, &mut got);
        clean.compute(&probes, &mut want);
        // §3.4: block FP makes the halved machine bitwise invisible.
        assert_eq!(got, want);
        // But the fault report is nonzero and the degraded machine is
        // slower: half the chips ⇒ twice the j per chip on the critical
        // path.
        let report = faulty.fault_report();
        assert_eq!(report.counters.selftest_failures, 1);
        assert_eq!(report.counters.units_masked, 1);
        assert_eq!(report.alive_chips, 2);
        assert_eq!(report.total_chips, 4);
        assert!(report.availability() < 1.0);
        assert!(faulty.hardware_cycles() > clean.hardware_cycles());
    }

    #[test]
    fn insufficient_surviving_capacity_is_a_typed_error() {
        // test_small holds 4 × 2048; killing one of two modules leaves
        // 4096 slots — asking for 5000 must fail with the typed error.
        let cfg = MachineConfig::test_small();
        let plan = FaultPlan::none().with_dead_module(0, 0);
        let err = match Grape6Engine::with_fault_plan(&cfg, 5000, &plan) {
            Ok(_) => panic!("oversubscribed degraded machine must be rejected"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            EngineError::InsufficientCapacity {
                needed: 5000,
                available: 4096,
            }
        );
    }

    #[test]
    fn reduction_glitches_recover_and_are_counted() {
        let n = 50;
        let js = scattered(n);
        let cfg = MachineConfig::test_small();
        // Glitch the host-port reduction on its 1st and 3rd passes.
        let plan = FaultPlan::none().with_reduction_glitches(vec![1, 3]);
        let mut faulty = Grape6Engine::with_fault_plan(&cfg, n, &plan).unwrap();
        let mut clean = Grape6Engine::try_new(&cfg, n).unwrap();
        for (k, j) in js.iter().enumerate() {
            faulty.set_j_particle(k, j);
            clean.set_j_particle(k, j);
        }
        faulty.set_time(0.0);
        clean.set_time(0.0);
        let probes: Vec<IParticle> = (0..20)
            .map(|k| IParticle {
                pos: Vec3::new(0.05 * k as f64 - 0.5, 0.1, 0.0),
                vel: Vec3::ZERO,
                eps2: 1e-2,
            })
            .collect();
        let mut got = vec![ForceResult::default(); probes.len()];
        let mut want = vec![ForceResult::default(); probes.len()];
        faulty.compute(&probes, &mut got);
        clean.compute(&probes, &mut want);
        assert_eq!(got, want, "recomputed passes are exact");
        let report = faulty.fault_report();
        assert!(report.counters.reduction_glitches >= 1);
        // The glitched-and-recomputed passes burned extra cycles.
        assert!(faulty.hardware_cycles() > clean.hardware_cycles());
    }
}
