//! The GRAPE-6 engine: simulated hardware behind the standard interface.

use grape6_chip::pipeline::{ExpSet, HwIParticle};
use grape6_system::machine::{BoardArray, MachineConfig};
use grape6_system::unit::GrapeUnit;
use nbody_core::force::{ForceEngine, ForceResult, IParticle, JParticle};

/// Widening applied to all windows on each overflow retry (bits).
const RETRY_WIDEN_BITS: i32 = 8;

/// Maximum retries before giving up (a magnitude this wrong means NaNs or a
/// corrupted state, not a bad guess).
const MAX_RETRIES: u32 = 12;

/// The simulated GRAPE-6 hardware of one host, exposed as a
/// [`ForceEngine`].
///
/// Exponent management follows §3.4: the engine keeps a slowly-decaying
/// running maximum of the force magnitudes it has returned, uses it to
/// declare the block floating-point windows for the next call, and on
/// overflow widens the windows and recomputes the failing chunk.  Every
/// retry costs real (virtual) pipeline cycles, exactly like the hardware.
pub struct Grape6Engine {
    hw: BoardArray,
    n_slots: usize,
    /// Running magnitude estimates (acceleration, jerk, potential).
    mag: (f64, f64, f64),
    retries: u64,
    i_parallel: usize,
}

impl Grape6Engine {
    /// Build the engine from a machine description.
    pub fn new(cfg: &MachineConfig, n_particles: usize) -> Self {
        assert!(
            n_particles <= cfg.capacity(),
            "system of {n_particles} exceeds machine capacity {}",
            cfg.capacity()
        );
        Self {
            hw: cfg.build(),
            n_slots: n_particles,
            mag: (1.0, 1.0, 1.0),
            retries: 0,
            i_parallel: 48,
        }
    }

    /// Total pipeline cycles consumed (critical path).
    pub fn hardware_cycles(&self) -> u64 {
        self.hw.total_cycles()
    }

    /// Exponent-retry count (§3.4's repeat-until-good-guess loop).
    pub fn exponent_retries(&self) -> u64 {
        self.retries
    }

    /// Direct access to the hardware (tests, inspection).
    pub fn hardware(&self) -> &BoardArray {
        &self.hw
    }

    fn exps(&self) -> ExpSet {
        ExpSet::from_magnitudes(self.mag.0, self.mag.1, self.mag.2)
    }

    fn update_mags(&mut self, out: &[ForceResult]) {
        let mut a = 0.0f64;
        let mut j = 0.0f64;
        let mut p = 0.0f64;
        for r in out {
            a = a.max(r.acc.norm());
            j = j.max(r.jerk.norm());
            p = p.max(r.pot.abs());
        }
        // Slow decay keeps headroom; fast rise tracks deepening potentials.
        self.mag.0 = (self.mag.0 * 0.9).max(a);
        self.mag.1 = (self.mag.1 * 0.9).max(j);
        self.mag.2 = (self.mag.2 * 0.9).max(p);
    }
}

impl ForceEngine for Grape6Engine {
    fn n_j(&self) -> usize {
        self.n_slots
    }

    fn set_j_particle(&mut self, addr: usize, p: &JParticle) {
        assert!(addr < self.n_slots, "j address {addr} out of range");
        // The fixed-point coordinate box covers ±64 length units; a
        // coordinate outside it would silently wrap in the memory format
        // (hardware semantics).  The real host library rescales systems to
        // fit; this simulator refuses loudly instead of corrupting forces.
        for c in p.pos.to_array() {
            assert!(
                c.abs() < 64.0,
                "particle {addr} position {c} outside the ±64 fixed-point box; \
                 rescale the system (the paper's host library kept systems \
                 well inside the box for exactly this reason)"
            );
        }
        self.hw.load_j(addr, p);
    }

    fn set_time(&mut self, t: f64) {
        self.hw.set_time(t);
    }

    fn compute(&mut self, i: &[IParticle], out: &mut [ForceResult]) {
        assert_eq!(i.len(), out.len());
        for (chunk_i, chunk_o) in i.chunks(self.i_parallel).zip(out.chunks_mut(self.i_parallel)) {
            let regs: Vec<HwIParticle> = chunk_i
                .iter()
                .map(|p| HwIParticle::from_host(p.pos, p.vel, p.eps2))
                .collect();
            let mut exps = vec![self.exps(); regs.len()];
            let mut attempt = 0u32;
            let partials = loop {
                match self.hw.compute_block(&regs, &exps) {
                    Ok(p) => break p,
                    Err(e) => {
                        attempt += 1;
                        self.retries += 1;
                        assert!(
                            attempt <= MAX_RETRIES,
                            "block-FP exponent retry did not converge: {e}"
                        );
                        for x in &mut exps {
                            *x = x.widened(RETRY_WIDEN_BITS * attempt as i32);
                        }
                    }
                }
            };
            for (o, p) in chunk_o.iter_mut().zip(&partials) {
                *o = p.to_force_result();
            }
            self.update_mags(chunk_o);
        }
    }

    fn name(&self) -> &'static str {
        "grape6-sim"
    }

    fn interactions(&self) -> u64 {
        self.hw.total_interactions()
    }
}

impl Grape6Engine {
    /// Compute forces **and hardware neighbour lists**: for each i-particle
    /// the global j-addresses with unsoftened `r² < h2[k]`, as detected by
    /// the pipeline comparators — the hardware service behind the
    /// Ahmad–Cohen scheme's bookkeeping on the real machine.
    pub fn compute_with_neighbours(
        &mut self,
        i: &[IParticle],
        h2: &[f64],
        out: &mut [ForceResult],
    ) -> Vec<Vec<u32>> {
        assert_eq!(i.len(), out.len());
        assert_eq!(i.len(), h2.len());
        let mut all_lists = Vec::with_capacity(i.len());
        for ((chunk_i, chunk_o), chunk_h) in i
            .chunks(self.i_parallel)
            .zip(out.chunks_mut(self.i_parallel))
            .zip(h2.chunks(self.i_parallel))
        {
            let regs: Vec<HwIParticle> = chunk_i
                .iter()
                .map(|p| HwIParticle::from_host(p.pos, p.vel, p.eps2))
                .collect();
            let mut exps = vec![self.exps(); regs.len()];
            let mut attempt = 0u32;
            let (partials, lists) = loop {
                match self.hw.compute_block_nb(&regs, &exps, chunk_h) {
                    Ok(r) => break r,
                    Err(e) => {
                        attempt += 1;
                        self.retries += 1;
                        assert!(
                            attempt <= MAX_RETRIES,
                            "block-FP exponent retry did not converge: {e}"
                        );
                        for x in &mut exps {
                            *x = x.widened(RETRY_WIDEN_BITS * attempt as i32);
                        }
                    }
                }
            };
            for (o, p) in chunk_o.iter_mut().zip(&partials) {
                *o = p.to_force_result();
            }
            self.update_mags(chunk_o);
            all_lists.extend(lists);
        }
        all_lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::DirectEngine;
    use nbody_core::Vec3;

    fn scattered(n: usize) -> Vec<JParticle> {
        (0..n)
            .map(|k| {
                let a = k as f64 * 0.613;
                JParticle {
                    mass: 1.0 / n as f64,
                    t0: 0.0,
                    pos: Vec3::new(a.cos(), (1.7 * a).sin(), 0.3 * (0.9 * a).cos()),
                    vel: Vec3::new(-a.sin() * 0.2, a.cos() * 0.2, 0.0),
                    acc: Vec3::new(0.01, -0.02, 0.005),
                    jerk: Vec3::ZERO,
                    snap: Vec3::ZERO,
                }
            })
            .collect()
    }

    fn engines(n: usize) -> (Grape6Engine, DirectEngine) {
        let js = scattered(n);
        let mut g = Grape6Engine::new(&MachineConfig::test_small(), n);
        let mut d = DirectEngine::new(n);
        for (k, j) in js.iter().enumerate() {
            g.set_j_particle(k, j);
            d.set_j_particle(k, j);
        }
        (g, d)
    }

    #[test]
    fn matches_reference_engine_through_full_interface() {
        let n = 100;
        let (mut g, mut d) = engines(n);
        // Predict to a later time to exercise the on-chip predictor too.
        g.set_time(0.0625);
        d.set_time(0.0625);
        let probes: Vec<IParticle> = (0..60)
            .map(|k| IParticle {
                pos: Vec3::new(0.02 * k as f64 - 0.5, 0.3, -0.1),
                vel: Vec3::new(0.0, 0.05, 0.0),
                eps2: 1e-4,
            })
            .collect();
        let mut got = vec![ForceResult::default(); probes.len()];
        let mut want = vec![ForceResult::default(); probes.len()];
        g.compute(&probes, &mut got);
        d.compute(&probes, &mut want);
        for k in 0..probes.len() {
            let da = (got[k].acc - want[k].acc).norm() / want[k].acc.norm();
            assert!(da < 1e-4, "i={k} rel acc err {da:e}");
            let dp = (got[k].pot - want[k].pot).abs() / want[k].pot.abs();
            assert!(dp < 1e-4, "i={k} rel pot err {dp:e}");
        }
        assert_eq!(g.interactions(), (probes.len() * n) as u64);
        assert!(g.hardware_cycles() > 0);
    }

    #[test]
    fn exponent_retry_recovers_from_cold_start() {
        // Force magnitudes far above the initial unit guess: the engine
        // must retry and still return the right answer.
        let n = 4;
        let mut g = Grape6Engine::new(&MachineConfig::test_small(), n);
        let mut d = DirectEngine::new(n);
        for k in 0..n {
            let p = JParticle {
                mass: 1000.0,
                t0: 0.0,
                pos: Vec3::new(k as f64 * 1e-3, 0.0, 0.0),
                ..Default::default()
            };
            g.set_j_particle(k, &p);
            d.set_j_particle(k, &p);
        }
        g.set_time(0.0);
        d.set_time(0.0);
        let probe = [IParticle {
            pos: Vec3::new(-0.05, 0.0, 0.0),
            vel: Vec3::ZERO,
            eps2: 0.0,
        }];
        let mut got = [ForceResult::default()];
        let mut want = [ForceResult::default()];
        g.compute(&probe, &mut got);
        d.compute(&probe, &mut want);
        assert!(g.exponent_retries() > 0, "cold start must retry");
        let rel = (got[0].acc - want[0].acc).norm() / want[0].acc.norm();
        assert!(rel < 1e-4, "rel err {rel:e}");
        // A second call reuses the learned exponents without retrying.
        let before = g.exponent_retries();
        g.compute(&probe, &mut got);
        assert_eq!(g.exponent_retries(), before);
    }

    #[test]
    fn multi_chunk_blocks_handled() {
        // 130 i-particles = 3 chip passes on a 48-wide machine.
        let n = 64;
        let (mut g, mut d) = engines(n);
        g.set_time(0.0);
        d.set_time(0.0);
        let probes: Vec<IParticle> = (0..130)
            .map(|k| IParticle {
                pos: Vec3::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos(), 0.0),
                vel: Vec3::ZERO,
                eps2: 1e-2,
            })
            .collect();
        let mut got = vec![ForceResult::default(); 130];
        let mut want = vec![ForceResult::default(); 130];
        g.compute(&probes, &mut got);
        d.compute(&probes, &mut want);
        for k in 0..130 {
            assert!((got[k].acc - want[k].acc).norm() < 1e-4 * want[k].acc.norm().max(1e-6));
        }
    }

    #[test]
    fn hardware_neighbour_lists_match_brute_force() {
        let n = 120;
        let js = scattered(n);
        let mut g = Grape6Engine::new(&MachineConfig::test_small(), n);
        for (k, j) in js.iter().enumerate() {
            g.set_j_particle(k, j);
        }
        g.set_time(0.0);
        let probes: Vec<IParticle> = (0..3)
            .map(|k| IParticle {
                pos: js[k].pos,
                vel: js[k].vel,
                eps2: 1e-4,
            })
            .collect();
        let h2 = [0.25f64, 0.25, 0.25];
        let mut out = vec![ForceResult::default(); 3];
        let lists = g.compute_with_neighbours(&probes, &h2, &mut out);
        for k in 0..3 {
            let want: Vec<u32> = (0..n)
                .filter(|&j| {
                    let d2 = (js[j].pos - js[k].pos).norm2();
                    d2 > 0.0 && d2 < h2[k]
                })
                .map(|j| j as u32)
                .collect();
            assert_eq!(lists[k], want, "probe {k}");
            assert!(!lists[k].is_empty(), "probe {k} should have neighbours");
        }
        // Forces unchanged relative to the plain path.
        let mut out2 = vec![ForceResult::default(); 3];
        g.compute(&probes, &mut out2);
        for k in 0..3 {
            assert_eq!(out[k].acc, out2[k].acc);
        }
    }

    #[test]
    #[should_panic(expected = "fixed-point box")]
    fn out_of_box_particle_rejected() {
        let mut g = Grape6Engine::new(&MachineConfig::test_small(), 4);
        g.set_j_particle(
            0,
            &JParticle {
                mass: 1.0,
                pos: Vec3::new(100.0, 0.0, 0.0),
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "exceeds machine capacity")]
    fn oversubscription_rejected() {
        let cfg = MachineConfig::test_small(); // 4 chips × 2048
        Grape6Engine::new(&cfg, 10_000);
    }
}
