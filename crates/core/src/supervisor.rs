//! The run supervisor: periodic checkpoints and a recovery ladder.
//!
//! The paper's production runs were weeks long on hardware whose failure
//! modes (§2, and the fault subsystem of this repo) were a fact of life;
//! what kept the science moving was not peak Tflops but a host program
//! that could survive them.  [`RunSupervisor`] wraps the Hermite
//! integrator + GRAPE engine pair with that operational layer:
//!
//! * **checkpoint policy** — a [`Checkpoint`] is taken every N blocksteps
//!   and/or every M virtual seconds, kept in memory (and saveable to disk
//!   via [`Checkpoint::save`]);
//! * **death detection** — a typed engine error from a blockstep, or a
//!   non-finite particle slipping past the engine's sanity screen;
//! * **recovery ladder** — escalating responses, each charged to the
//!   timing model and counted in [`RecoveryStats`](crate::RecoveryStats):
//!   1. *recompute* — retry the blockstep (the engine's own bounded retry
//!      loops have already absorbed transients; this catches one-off
//!      scheduling glitches),
//!   2. *re-self-test* — known-answer vectors through every unit, masking
//!      whatever answers wrongly, then redistributing j-particles over
//!      the survivors,
//!   3. *redistribute* — an explicit mirror-based j-memory reload,
//!   4. *restore* — rewind to the last checkpoint and re-run from there.
//!
//! Because the checkpoint format is bitwise-exact and §3.4 block-FP
//! summation makes j-redistribution invisible in the force bits, rungs 3
//! and 4 do not perturb the trajectory — a supervised run that recovered
//! produces the same particle bits as an uninterrupted one, just later in
//! virtual time.  The recovery cost lands in the six-term breakdown via
//! [`Phase::Selftest`], [`Phase::Reload`] and [`Phase::Ckpt`] spans.

use grape6_ckpt::Checkpoint;
use grape6_fault::FaultPlan;
use grape6_model::calib::GrapeTiming;
use grape6_system::machine::MachineConfig;
use grape6_trace::{Phase, Span};
use nbody_core::force::{EngineError, ForceEngine};

use crate::checkpoint::{capture, restore, RestoreError};
use crate::engine::Grape6Engine;
use crate::integrator::HermiteIntegrator;

/// When to take a checkpoint.  Both triggers may be active; either firing
/// takes one.  `default()` checkpoints every 64 blocksteps.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Take a checkpoint every this many blocksteps.
    pub every_blocksteps: Option<u64>,
    /// Take a checkpoint every this many virtual seconds.
    pub every_virtual_seconds: Option<f64>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            every_blocksteps: Some(64),
            every_virtual_seconds: None,
        }
    }
}

/// Everything the supervisor needs to rebuild the run it watches.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Checkpoint cadence.
    pub policy: CheckpointPolicy,
    /// The machine the engine was built on (restore rebuilds it).
    pub machine: MachineConfig,
    /// The fault plan the engine was built with, if any.
    pub plan: Option<FaultPlan>,
    /// Timing model for charging recovery work into virtual time.
    pub timing: GrapeTiming,
    /// Run label stamped into checkpoints.
    pub label: String,
    /// Recovery actions attempted per blockstep before giving up.
    pub max_ladder_rounds: u32,
    /// Persist every checkpoint to this file as it is taken, so a
    /// killed *process* (not just a failed step) can be restored — the
    /// same durability contract the cluster supervisor's coordinated
    /// checkpoints rely on.  `None` keeps checkpoints in memory only.
    pub save_path: Option<std::path::PathBuf>,
}

impl SupervisorConfig {
    /// A sensible default around the given machine: default policy, no
    /// fault plan, paper-host timing.
    pub fn for_machine(machine: MachineConfig) -> Self {
        Self {
            policy: CheckpointPolicy::default(),
            machine,
            plan: None,
            timing: GrapeTiming::paper_host(),
            label: "supervised run".into(),
            max_ladder_rounds: 6,
            save_path: None,
        }
    }
}

/// The run died and the ladder ran out of rungs.
#[derive(Debug)]
pub enum SupervisorError {
    /// An engine error survived every recovery attempt.
    Engine(EngineError),
    /// Restoring from the last checkpoint failed.
    Restore(RestoreError),
    /// Every rung (including restore) was tried and the step still fails.
    Unrecoverable {
        /// The last failure seen.
        detail: String,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => write!(f, "engine failure during recovery: {e}"),
            Self::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            Self::Unrecoverable { detail } => {
                write!(f, "run unrecoverable after exhausting the ladder: {detail}")
            }
        }
    }
}

impl std::error::Error for SupervisorError {}

impl From<EngineError> for SupervisorError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<RestoreError> for SupervisorError {
    fn from(e: RestoreError) -> Self {
        Self::Restore(e)
    }
}

/// Supervises one integrator + engine pair through faults.
pub struct RunSupervisor {
    it: HermiteIntegrator<Grape6Engine>,
    cfg: SupervisorConfig,
    last_ckpt: Option<Checkpoint>,
    /// Blockstep count at the last checkpoint (cadence bookkeeping).
    last_ckpt_blockstep: u64,
    /// Virtual time at the last checkpoint.
    last_ckpt_vt: f64,
}

impl RunSupervisor {
    /// Wrap a freshly-built integrator and take the baseline checkpoint
    /// (rung 4 must always have somewhere to rewind to).
    pub fn new(it: HermiteIntegrator<Grape6Engine>, cfg: SupervisorConfig) -> Self {
        let mut sup = Self {
            it,
            cfg,
            last_ckpt: None,
            last_ckpt_blockstep: 0,
            last_ckpt_vt: 0.0,
        };
        sup.checkpoint_now();
        sup
    }

    /// The supervised integrator.
    pub fn integrator(&self) -> &HermiteIntegrator<Grape6Engine> {
        &self.it
    }

    /// Mutable access (installing tracers, inspection).
    pub fn integrator_mut(&mut self) -> &mut HermiteIntegrator<Grape6Engine> {
        &mut self.it
    }

    /// Unwrap the integrator.
    pub fn into_integrator(self) -> HermiteIntegrator<Grape6Engine> {
        self.it
    }

    /// The most recent checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_ckpt.as_ref()
    }

    /// Advance virtual time by `dur`, record a recovery span, and add the
    /// cost to the run's recovery account.
    fn charge(&mut self, phase: Phase, dur: f64) {
        let t0 = self.it.engine().vt();
        let t1 = t0 + dur;
        self.it.engine_mut().set_vt(t1);
        self.it
            .engine_mut()
            .tracer_mut()
            .record(Span::new(phase, t0, t1));
        self.it.stats_mut().recovery.recovery_seconds += dur;
    }

    /// Take a checkpoint now.  The cost is charged *before* capture, so a
    /// run restored from this checkpoint continues from exactly the
    /// virtual time and statistics the original run had — cadence and all
    /// subsequent checkpoints land identically.
    pub fn checkpoint_now(&mut self) -> &Checkpoint {
        let n = self.it.particles().n();
        self.it.stats_mut().recovery.checkpoints_taken += 1;
        self.charge(Phase::Ckpt, self.cfg.timing.checkpoint_time(n));
        let ckpt = capture(&self.it, &self.cfg.label);
        if let Some(path) = &self.cfg.save_path {
            // Write-then-rename so a process killed mid-write never
            // leaves a torn file at the canonical name; persistence
            // failures degrade to in-memory checkpoints (warned, not
            // fatal — the run itself is still healthy).
            let tmp = path.with_extension("tmp");
            let moved = ckpt
                .save(&tmp)
                .and_then(|()| std::fs::rename(&tmp, path).map_err(Into::into));
            if let Err(e) = moved {
                eprintln!("warning: could not persist checkpoint to {path:?}: {e}");
            }
        }
        self.last_ckpt_blockstep = ckpt.blockstep;
        self.last_ckpt_vt = self.it.engine().vt();
        self.last_ckpt = Some(ckpt);
        self.last_ckpt.as_ref().unwrap()
    }

    /// Take a checkpoint if the policy says one is due.
    fn maybe_checkpoint(&mut self) {
        let due_steps =
            self.cfg.policy.every_blocksteps.is_some_and(|k| {
                k > 0 && self.it.stats().blocksteps >= self.last_ckpt_blockstep + k
            });
        let due_vt = self
            .cfg
            .policy
            .every_virtual_seconds
            .is_some_and(|s| self.it.engine().vt() >= self.last_ckpt_vt + s);
        if due_steps || due_vt {
            self.checkpoint_now();
        }
    }

    /// Rung 2: re-run the known-answer self-test, mask failures,
    /// redistribute if anything new was masked.
    ///
    /// Public as an operator control: "prove the hardware now" is useful
    /// outside the ladder (after an environmental event, before a long
    /// unattended stretch).  The cost is charged like any other recovery.
    pub fn reselftest(&mut self) -> Result<(), SupervisorError> {
        let n = self.it.particles().n();
        let newly_masked = self.it.engine_mut().re_self_test()?;
        self.charge(Phase::Selftest, self.cfg.timing.selftest_time());
        if newly_masked > 0 {
            self.charge(Phase::Reload, self.cfg.timing.reload_time(n));
        }
        self.it.stats_mut().recovery.reselftests += 1;
        Ok(())
    }

    /// Rung 3: explicit mirror-based j-redistribution (also an operator
    /// control — rebalance after masking without waiting for a failure).
    pub fn redistribute(&mut self) -> Result<(), SupervisorError> {
        let n = self.it.particles().n();
        self.it.engine_mut().redistribute()?;
        self.charge(Phase::Reload, self.cfg.timing.reload_time(n));
        self.it.stats_mut().recovery.redistributions += 1;
        Ok(())
    }

    /// Rung 4: rewind to the last checkpoint (also an operator control).
    pub fn restore_last(&mut self) -> Result<(), SupervisorError> {
        let ckpt = self
            .last_ckpt
            .clone()
            .ok_or_else(|| SupervisorError::Unrecoverable {
                detail: "no checkpoint to restore from".into(),
            })?;
        let icfg = *self.it.config();
        let n = ckpt.integrator.n;
        let mut it = restore(&self.cfg.machine, self.cfg.plan.as_ref(), icfg, &ckpt)?;
        std::mem::swap(&mut self.it, &mut it);
        // Cadence bookkeeping rewinds with the run.
        self.last_ckpt_blockstep = ckpt.blockstep;
        self.it.stats_mut().recovery.restores += 1;
        self.charge(Phase::Ckpt, self.cfg.timing.restore_time(n));
        self.last_ckpt_vt = self.it.engine().vt();
        Ok(())
    }

    /// One supervised blockstep: checkpoint if due, step (honouring
    /// [`IntegratorConfig::overlap`] — the recovery ladder wraps the
    /// split-phase schedule identically, since both leave the particle
    /// state untouched on `Err`), and climb the ladder on failure.
    pub fn step(&mut self) -> Result<(f64, usize), SupervisorError> {
        self.maybe_checkpoint();
        let mut rung = 0u32;
        loop {
            match self.it.try_step_auto() {
                Ok((t, n_b)) => {
                    if self.it.particles().validate_finite() {
                        return Ok((t, n_b));
                    }
                    // A non-finite value slipped past the engine's sanity
                    // screen: the particle state is corrupt, so a retry
                    // cannot help.  Prove the hardware, then rewind.
                    self.reselftest()?;
                    self.restore_last()?;
                }
                Err(e) => match rung {
                    // Rung 1: plain recompute.  The engine's bounded
                    // internal retries have already absorbed transients;
                    // this catches one-shot scheduling faults.
                    0 => self.it.stats_mut().recovery.step_retries += 1,
                    1 => self.reselftest()?,
                    2 => self.redistribute()?,
                    3 => self.restore_last()?,
                    _ => {
                        return Err(SupervisorError::Unrecoverable {
                            detail: e.to_string(),
                        })
                    }
                },
            }
            rung += 1;
            if rung > self.cfg.max_ladder_rounds {
                return Err(SupervisorError::Unrecoverable {
                    detail: "recovery rounds exhausted".into(),
                });
            }
        }
    }

    /// Run until system time reaches `t_end`, supervising every step.
    pub fn run_until(&mut self, t_end: f64) -> Result<(), SupervisorError> {
        while self.it.time() < t_end {
            self.step()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::IntegratorConfig;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn supervised(n: usize, seed: u64, policy: CheckpointPolicy) -> RunSupervisor {
        let set = plummer_model(n, &mut StdRng::seed_from_u64(seed));
        let machine = MachineConfig::test_small();
        let engine = Grape6Engine::try_new(&machine, n).unwrap();
        let it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        let mut cfg = SupervisorConfig::for_machine(machine);
        cfg.policy = policy;
        RunSupervisor::new(it, cfg)
    }

    #[test]
    fn healthy_run_matches_unsupervised_bits() {
        let n = 32;
        let set = plummer_model(n, &mut StdRng::seed_from_u64(21));
        let mut plain = HermiteIntegrator::new(
            Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap(),
            set,
            IntegratorConfig::default(),
        );
        let mut sup = supervised(n, 21, CheckpointPolicy::default());
        for _ in 0..40 {
            plain.step();
            sup.step().unwrap();
        }
        let (a, b) = (plain.particles(), sup.integrator().particles());
        for i in 0..n {
            assert_eq!(a.pos[i], b.pos[i]);
            assert_eq!(a.vel[i], b.vel[i]);
        }
    }

    #[test]
    fn blockstep_policy_takes_checkpoints() {
        let mut sup = supervised(
            24,
            22,
            CheckpointPolicy {
                every_blocksteps: Some(8),
                every_virtual_seconds: None,
            },
        );
        for _ in 0..40 {
            sup.step().unwrap();
        }
        let taken = sup.integrator().stats().recovery.checkpoints_taken;
        // Baseline + one per 8 blocksteps (cadence checked before steps).
        assert!(taken >= 5, "only {taken} checkpoints over 40 blocksteps");
        assert!(sup.integrator().stats().recovery.recovery_seconds > 0.0);
        assert!(sup.last_checkpoint().is_some());
    }

    #[test]
    fn virtual_time_policy_takes_checkpoints() {
        let mut sup = supervised(
            24,
            23,
            CheckpointPolicy {
                every_blocksteps: None,
                every_virtual_seconds: Some(0.0),
            },
        );
        // Engine vt only moves when a timebase is installed; with the
        // threshold at 0 the policy fires on every step regardless.
        for _ in 0..5 {
            sup.step().unwrap();
        }
        assert!(sup.integrator().stats().recovery.checkpoints_taken >= 5);
    }

    #[test]
    fn save_path_persists_checkpoints_a_killed_process_can_restore() {
        let path = std::env::temp_dir().join(format!("g6-sup-ckpt-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let n = 24;
        let set = plummer_model(n, &mut StdRng::seed_from_u64(25));
        let machine = MachineConfig::test_small();
        let engine = Grape6Engine::try_new(&machine, n).unwrap();
        let it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        let mut cfg = SupervisorConfig::for_machine(machine);
        cfg.policy = CheckpointPolicy {
            every_blocksteps: Some(4),
            every_virtual_seconds: None,
        };
        cfg.save_path = Some(path.clone());
        let mut sup = RunSupervisor::new(it, cfg);
        for _ in 0..10 {
            sup.step().unwrap();
        }
        // The canonical file always holds the *latest* checkpoint, byte
        // for byte, and no torn `.tmp` is left behind.
        let loaded = Checkpoint::load(&path).expect("persisted checkpoint loads");
        assert_eq!(loaded.to_bytes(), sup.last_checkpoint().unwrap().to_bytes());
        assert!(!path.with_extension("tmp").exists());
        // ...and it restores into a working integrator even after every
        // live object is gone — the killed-process path.
        drop(sup);
        let mut it2 = restore(
            &MachineConfig::test_small(),
            None,
            IntegratorConfig::default(),
            &loaded,
        )
        .expect("restore from disk");
        it2.step();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explicit_restore_rewinds_to_checkpoint() {
        let mut sup = supervised(24, 24, CheckpointPolicy::default());
        for _ in 0..10 {
            sup.step().unwrap();
        }
        let t_ckpt = sup.checkpoint_now().blockstep;
        for _ in 0..7 {
            sup.step().unwrap();
        }
        sup.restore_last().unwrap();
        assert_eq!(sup.integrator().stats().blocksteps, t_ckpt);
        assert_eq!(sup.integrator().stats().recovery.restores, 1);
        // The rewound run steps forward again without issue.
        sup.step().unwrap();
    }
}
