//! The individual block-timestep Hermite integrator.
//!
//! This is the frontend program of the paper's benchmarks: "As the
//! benchmark run, we integrated the Plummer model with equal-mass particles
//! for 1 time unit … We used standard Hermite integrator" (§4).  One
//! blockstep:
//!
//! 1. the next block time is `min(tᵢ + dtᵢ)` and the block is every
//!    particle whose next time equals it;
//! 2. the host predicts the block's positions/velocities (jerk-truncated)
//!    and ships them to the engine; the engine predicts the j-particles
//!    itself (on-chip predictor pipeline) and returns force, jerk,
//!    potential;
//! 3. the host corrects (4th/5th order), picks the next Aarseth step on
//!    the power-of-two grid, and writes the updated particles back to the
//!    engine's j-memory.
//!
//! The driver is generic over [`ForceEngine`], so the *same code* runs on
//! the bit-level GRAPE-6 simulator, the f64 reference engine, and inside
//! each rank of the parallel algorithms — mirroring how the real host code
//! ran unchanged on GRAPE-4 and GRAPE-6.

use grape6_trace::{HostRates, Phase, Span, SpanCounters, Tracer};
use nbody_core::blockstep::TimeGrid;
use nbody_core::force::{EngineError, ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::hermite::{aarseth_dt, correct, predict, startup_dt, Corrected, HermiteState};
use nbody_core::particle::ParticleSet;
use nbody_core::softening::Softening;
use nbody_core::Vec3;

use crate::stats::RunStats;

/// Accuracy and scheduling parameters.
#[derive(Clone, Copy, Debug)]
pub struct IntegratorConfig {
    /// Aarseth accuracy parameter η.
    pub eta: f64,
    /// Startup accuracy parameter (conservative first step).
    pub eta_start: f64,
    /// Softening policy.
    pub softening: Softening,
    /// Block timestep grid.
    pub grid: TimeGrid,
    /// Corrector iterations per step — P(EC)ⁿ.  1 is the standard Hermite
    /// PEC cycle the paper's benchmarks use; 2 re-evaluates the force at
    /// the corrected state and re-corrects, converging towards the
    /// implicit (time-symmetric) Hermite solution at the price of one
    /// extra GRAPE call per step.
    pub pec_iterations: usize,
    /// Run the blockstep split-phase: pipeline the block through the
    /// engine in `I_PARALLELISM`-wide chunks on a worker thread while the
    /// host corrects the previous chunk ([`HermiteIntegrator::try_step_overlapped`]).
    /// Bitwise identical to the blocking schedule — §3.4 block-FP
    /// reduction plus per-particle corrections that read only their own
    /// pre-step state — but the wall clock pays `max(host, grape)`
    /// instead of the sum.  [`HermiteIntegrator::try_step_auto`]
    /// dispatches on this flag.
    pub overlap: bool,
}

impl Default for IntegratorConfig {
    fn default() -> Self {
        Self {
            eta: 0.01,
            eta_start: 0.0025,
            softening: Softening::Constant,
            grid: TimeGrid::default(),
            pec_iterations: 1,
            overlap: false,
        }
    }
}

/// The block-timestep Hermite driver.
pub struct HermiteIntegrator<E: ForceEngine> {
    engine: E,
    set: ParticleSet,
    cfg: IntegratorConfig,
    eps: f64,
    eps2: f64,
    t: f64,
    stats: RunStats,
    // Reused scratch buffers (no allocation in the block loop).
    block: Vec<usize>,
    iparts: Vec<IParticle>,
    forces: Vec<ForceResult>,
    // Host-phase span recording (disabled by default).
    tracer: Tracer,
    host_rates: Option<HostRates>,
}

impl<E: ForceEngine> HermiteIntegrator<E> {
    /// Initialise: load every particle into the engine, evaluate initial
    /// forces and jerks, assign startup timesteps.
    pub fn new(engine: E, set: ParticleSet, cfg: IntegratorConfig) -> Self {
        match Self::try_new(engine, set, cfg) {
            Ok(it) => it,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`HermiteIntegrator::new`]: a bad particle (outside
    /// the engine's coordinate box) or an engine failure during the initial
    /// force evaluation comes back as a typed [`EngineError`] instead of a
    /// panic — what a multi-tenant host needs when activating a job it did
    /// not author.
    pub fn try_new(
        mut engine: E,
        mut set: ParticleSet,
        cfg: IntegratorConfig,
    ) -> Result<Self, EngineError> {
        let n = set.n();
        assert!(n >= 2, "need at least two particles");
        let eps = cfg.softening.epsilon(n);
        let eps2 = eps * eps;
        for i in 0..n {
            set.t[i] = 0.0;
            engine.try_set_j_particle(i, &j_of(&set, i))?;
        }
        engine.set_time(0.0);
        let iparts: Vec<IParticle> = (0..n)
            .map(|i| IParticle {
                pos: set.pos[i],
                vel: set.vel[i],
                eps2,
            })
            .collect();
        let mut forces = vec![ForceResult::default(); n];
        engine.try_compute(&iparts, &mut forces)?;
        for (i, force) in forces.iter().enumerate() {
            let f = corrected_pot(force, set.mass[i], eps);
            set.acc[i] = f.acc;
            set.jerk[i] = f.jerk;
            set.pot[i] = f.pot;
            set.snap[i] = Vec3::ZERO;
            set.crackle[i] = Vec3::ZERO;
            let dt = cfg.grid.quantize(startup_dt(f.acc, f.jerk, cfg.eta_start));
            set.dt[i] = dt;
        }
        // Write the now-complete polynomials back so the on-engine
        // predictor starts from (x, v, a, ȧ).
        for i in 0..n {
            engine.set_j_particle(i, &j_of(&set, i));
        }
        let mut stats = RunStats::new();
        stats.faults = engine.fault_counters();
        Ok(Self {
            engine,
            set,
            cfg,
            eps,
            eps2,
            t: 0.0,
            stats,
            block: Vec::new(),
            iparts: Vec::new(),
            forces: Vec::new(),
            tracer: Tracer::disabled(),
            host_rates: None,
        })
    }

    /// Rebuild an integrator around previously-integrated state without
    /// the initial force evaluation: every particle (with its complete
    /// force polynomial and per-particle `t`/`dt`) is loaded into the
    /// engine as-is.  This is the checkpoint-restore constructor — the
    /// state must come from a run of the same configuration, captured at
    /// system time `t`.
    pub fn resume(
        mut engine: E,
        set: ParticleSet,
        cfg: IntegratorConfig,
        t: f64,
        stats: RunStats,
    ) -> Self {
        let n = set.n();
        assert!(n >= 2, "need at least two particles");
        let eps = cfg.softening.epsilon(n);
        let eps2 = eps * eps;
        for i in 0..n {
            engine.set_j_particle(i, &j_of(&set, i));
        }
        engine.set_time(t);
        Self {
            engine,
            set,
            cfg,
            eps,
            eps2,
            t,
            stats,
            block: Vec::new(),
            iparts: Vec::new(),
            forces: Vec::new(),
            tracer: Tracer::disabled(),
            host_rates: None,
        }
    }

    /// Current system time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The particle state (positions/velocities valid at each particle's
    /// own time `t[i]`).
    pub fn particles(&self) -> &ParticleSet {
        &self.set
    }

    /// The engine (for counters).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable engine access (installing an engine-side tracer/timebase).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Install a span sink for the host phases of the blockstep loop.
    /// Initialisation (construction) is never traced — install the tracer
    /// after `new` so spans cover steady-state blocksteps only.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Calibrated host rates converting block sizes into host-phase
    /// virtual seconds.  Host spans are only recorded once this is set.
    pub fn set_host_rates(&mut self, rates: HostRates) {
        self.host_rates = Some(rates);
    }

    /// Drain every span recorded so far: the integrator's host phases
    /// merged with the engine's hardware phases, ordered by start time.
    pub fn take_spans(&mut self) -> Vec<Span> {
        let mut spans = self.tracer.take();
        spans.extend(self.engine.take_spans());
        spans.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        spans
    }

    /// Record a host-phase span at the shared virtual-time cursor (the
    /// engine's, so host and hardware spans interleave on one timeline)
    /// and advance the cursor past it.
    fn trace_host(&mut self, phase: Phase, dur: f64, items: u64) {
        if !self.tracer.is_active() {
            return;
        }
        let t0 = self.engine.vt();
        let t1 = t0 + dur;
        self.tracer.record(Span {
            phase,
            t0,
            t1,
            track: 0,
            counters: SpanCounters {
                items,
                ..Default::default()
            },
        });
        self.engine.set_vt(t1);
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable run statistics (the supervisor charges recovery work here).
    pub fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// The accuracy/scheduling configuration in force.
    pub fn config(&self) -> &IntegratorConfig {
        &self.cfg
    }

    /// Softening length in use.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Execute one blockstep; returns the new system time and the block
    /// size.  Panics on an unrecovered engine error —
    /// [`HermiteIntegrator::try_step`] is the typed-error twin.
    pub fn step(&mut self) -> (f64, usize) {
        match self.try_step() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible blockstep.
    ///
    /// On `Err` the particle state is untouched — corrections happen only
    /// after every force evaluation has succeeded, and the only engine
    /// mutation so far is `set_time` (re-issued on the next attempt) — so
    /// a supervisor can retry the step after repairing the engine.
    pub fn try_step(&mut self) -> Result<(f64, usize), EngineError> {
        let t_next = self.select_and_predict();
        let set = &mut self.set;
        // 3. Engine force evaluation at the block time.
        self.engine.set_time(t_next);
        self.forces.resize(self.block.len(), ForceResult::default());
        self.engine.try_compute(&self.iparts, &mut self.forces)?;
        // 3b. Optional extra corrector passes (P(EC)ⁿ): evaluate the force
        // at the corrected state and re-correct from the same prediction.
        for _ in 1..self.cfg.pec_iterations.max(1) {
            let mut refined: Vec<IParticle> = Vec::with_capacity(self.block.len());
            for (k, &i) in self.block.iter().enumerate() {
                let dt = t_next - set.t[i];
                let f1 = corrected_pot(&self.forces[k], set.mass[i], self.eps);
                let s = HermiteState {
                    pos: set.pos[i],
                    vel: set.vel[i],
                    acc: set.acc[i],
                    jerk: set.jerk[i],
                };
                let c = correct(&s, self.iparts[k].pos, self.iparts[k].vel, &f1, dt);
                refined.push(IParticle {
                    pos: c.pos,
                    vel: c.vel,
                    eps2: self.eps2,
                });
            }
            self.engine.try_compute(&refined, &mut self.forces)?;
        }
        // 4. Correct, retime, write back.
        for (k, &i) in self.block.iter().enumerate() {
            let dt = t_next - set.t[i];
            let f1 = corrected_pot(&self.forces[k], set.mass[i], self.eps);
            let s = HermiteState {
                pos: set.pos[i],
                vel: set.vel[i],
                acc: set.acc[i],
                jerk: set.jerk[i],
            };
            let c = correct(&s, self.iparts[k].pos, self.iparts[k].vel, &f1, dt);
            set.pos[i] = c.pos;
            set.vel[i] = c.vel;
            set.acc[i] = f1.acc;
            set.jerk[i] = f1.jerk;
            set.snap[i] = c.snap;
            set.crackle[i] = c.crackle;
            set.pot[i] = f1.pot;
            set.t[i] = t_next;
            let want = aarseth_dt(f1.acc, f1.jerk, c.snap, c.crackle, self.cfg.eta);
            set.dt[i] = self.cfg.grid.next_step(t_next, dt, want);
            self.engine.set_j_particle(i, &j_of(set, i));
        }
        // Corrector, retiming and scheduling: the fixed per-block host
        // overhead plus the trailing half of the per-particle work.
        if let Some(r) = self.host_rates {
            let n_b = self.block.len();
            self.trace_host(
                Phase::Host,
                r.t_block_fixed + 0.5 * r.t_step * n_b as f64,
                n_b as u64,
            );
        }
        Ok(self.finish_step(t_next))
    }

    /// Block selection and host-side prediction shared by the blocking
    /// and split-phase steps: fills `self.block` and `self.iparts`,
    /// records the Predict span, returns the block time.
    fn select_and_predict(&mut self) -> f64 {
        let set = &self.set;
        // 1. Block selection.
        let t_next = set.min_next_time();
        debug_assert!(t_next > self.t, "time must advance");
        self.block.clear();
        for i in 0..set.n() {
            if set.t[i] + set.dt[i] == t_next {
                self.block.push(i);
            }
        }
        debug_assert!(!self.block.is_empty());
        // 2. Host-side prediction of the block's i-particles.
        self.iparts.clear();
        for &i in &self.block {
            let s = HermiteState {
                pos: set.pos[i],
                vel: set.vel[i],
                acc: set.acc[i],
                jerk: set.jerk[i],
            };
            let (pp, pv) = predict(&s, Vec3::ZERO, t_next - set.t[i]);
            self.iparts.push(IParticle {
                pos: pp,
                vel: pv,
                eps2: self.eps2,
            });
        }
        // Charge the prediction loop as the leading half of the model's
        // per-particle host work (t_host = t_fixed + n_b·t_step, split
        // half before / half after the GRAPE call).
        if let Some(r) = self.host_rates {
            let n_b = self.block.len();
            self.trace_host(Phase::Predict, 0.5 * r.t_step * n_b as f64, n_b as u64);
        }
        t_next
    }

    /// Record the completed blockstep and advance the system time.
    fn finish_step(&mut self, t_next: f64) -> (f64, usize) {
        let n_b = self.block.len();
        let dt_block = t_next - self.t;
        self.stats
            .record_block(n_b, dt_block.max(f64::MIN_POSITIVE));
        self.stats.faults = self.engine.fault_counters();
        self.t = t_next;
        (t_next, n_b)
    }

    /// Advance until system time reaches `t_end` (the last block lands
    /// exactly on a grid point ≥ `t_end`).
    pub fn run_until(&mut self, t_end: f64) {
        while self.t < t_end {
            self.step();
        }
    }

    /// Synchronise every particle to the current system time (predict all
    /// to `t`) — used before measuring energies.  This mirrors the
    /// "synchronisation step" production codes perform before output.
    pub fn synchronized_snapshot(&self) -> ParticleSet {
        let mut snap = self.set.clone();
        for i in 0..snap.n() {
            let s = HermiteState {
                pos: snap.pos[i],
                vel: snap.vel[i],
                acc: snap.acc[i],
                jerk: snap.jerk[i],
            };
            let (pp, pv) = predict(&s, snap.snap[i], self.t - snap.t[i]);
            snap.pos[i] = pp;
            snap.vel[i] = pv;
            snap.t[i] = self.t;
        }
        snap
    }
}

impl<E: ForceEngine + Send> HermiteIntegrator<E> {
    /// Dispatch one blockstep according to [`IntegratorConfig::overlap`]:
    /// the split-phase schedule when set, the blocking one otherwise.
    pub fn try_step_auto(&mut self) -> Result<(f64, usize), EngineError> {
        if self.cfg.overlap {
            self.try_step_overlapped()
        } else {
            self.try_step()
        }
    }

    /// Execute one blockstep **split-phase**: the block is pipelined
    /// through the engine in `I_PARALLELISM`-wide chunks on a worker
    /// thread while the host corrects the chunk whose forces just landed
    /// — the `g6calc_firsthalf`/`g6calc_lasthalf` overlap of the real
    /// host library, at blockstep granularity.
    ///
    /// Bitwise identical to [`HermiteIntegrator::try_step`]:
    ///
    /// * the engine sees the *same* sequence of 48-wide chunks it would
    ///   have cut internally, so every hardware pass (and the §3.4
    ///   block-FP reduction inside it) is unchanged;
    /// * each particle's correction reads only that particle's own
    ///   pre-step state and its freshly-computed force, so computing it
    ///   early (while later chunks are still on the engine) changes
    ///   nothing;
    /// * corrections are *staged* and applied in block order after every
    ///   chunk has succeeded — on `Err` the particle state is untouched,
    ///   the same retry contract as the blocking step.
    ///
    /// Only the virtual-time schedule differs: per-chunk host spans start
    /// at the engine's pass-start cursor, so host and engine spans share
    /// stretches of the timeline and the measured wall shrinks towards
    /// `max(host, engine)` ([`grape6_trace::OverlapMode::Overlapped`]).
    ///
    /// With `pec_iterations > 1` the force is re-evaluated at the
    /// corrected state, so there is no host work to hide; the step falls
    /// back to the blocking schedule.
    pub fn try_step_overlapped(&mut self) -> Result<(f64, usize), EngineError> {
        if self.cfg.pec_iterations.max(1) > 1 {
            return self.try_step();
        }
        let t_next = self.select_and_predict();
        let n_b = self.block.len();
        self.forces.resize(n_b, ForceResult::default());
        self.engine.set_time(t_next);
        let chunk = grape6_system::unit::I_PARALLELISM;
        // Corrections staged out of the loop, applied only once the whole
        // block has computed.
        let mut staged: Vec<(ForceResult, Corrected)> = Vec::with_capacity(n_b);
        let mut corrected = 0usize; // block[..corrected] staged
        {
            let engine = &mut self.engine;
            let set = &self.set;
            let block = &self.block;
            let iparts = &self.iparts;
            let forces = &mut self.forces[..];
            let eps = self.eps;
            let mut done = 0usize; // forces ready for block[..done]
            while done < n_b {
                let end = (done + chunk).min(n_b);
                let (head, tail) = forces.split_at_mut(done);
                let out = &mut tail[..end - done];
                let in_chunk = &iparts[done..end];
                let head = &*head;
                let h0 = engine.vt();
                let eng = &mut *engine;
                let result = std::thread::scope(|s| {
                    let worker = s.spawn(move || eng.try_compute(in_chunk, out));
                    // Host side of the split phase: correct the previous
                    // chunk while the engine crunches this one.
                    for k in corrected..done {
                        let i = block[k];
                        let dt = t_next - set.t[i];
                        let f1 = corrected_pot(&head[k], set.mass[i], eps);
                        let s0 = HermiteState {
                            pos: set.pos[i],
                            vel: set.vel[i],
                            acc: set.acc[i],
                            jerk: set.jerk[i],
                        };
                        let c = correct(&s0, iparts[k].pos, iparts[k].vel, &f1, dt);
                        staged.push((f1, c));
                    }
                    worker
                        .join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                });
                result?;
                // The corrections above ran during the engine's pass:
                // record them from the pass-start cursor and advance the
                // shared clock to whichever side finished last.
                if corrected < done {
                    if let Some(r) = self.host_rates {
                        if self.tracer.is_active() {
                            let items = (done - corrected) as u64;
                            let dur = 0.5 * r.t_step * (done - corrected) as f64;
                            self.tracer.record(Span {
                                phase: Phase::Host,
                                t0: h0,
                                t1: h0 + dur,
                                track: 0,
                                counters: SpanCounters {
                                    items,
                                    ..Default::default()
                                },
                            });
                            let vt = engine.vt();
                            engine.set_vt(vt.max(h0 + dur));
                        }
                    }
                }
                corrected = done;
                done = end;
            }
        }
        // The final chunk's corrections have no later pass to hide
        // behind; stage them now (still before any state mutation).
        let tail_len = n_b - corrected;
        for k in corrected..n_b {
            let i = self.block[k];
            let dt = t_next - self.set.t[i];
            let f1 = corrected_pot(&self.forces[k], self.set.mass[i], self.eps);
            let s0 = HermiteState {
                pos: self.set.pos[i],
                vel: self.set.vel[i],
                acc: self.set.acc[i],
                jerk: self.set.jerk[i],
            };
            let c = correct(&s0, self.iparts[k].pos, self.iparts[k].vel, &f1, dt);
            staged.push((f1, c));
        }
        // Apply in block order and write back — identical mutation
        // sequence to the blocking step.
        for (k, (f1, c)) in staged.iter().enumerate() {
            let i = self.block[k];
            let set = &mut self.set;
            let dt = t_next - set.t[i];
            set.pos[i] = c.pos;
            set.vel[i] = c.vel;
            set.acc[i] = f1.acc;
            set.jerk[i] = f1.jerk;
            set.snap[i] = c.snap;
            set.crackle[i] = c.crackle;
            set.pot[i] = f1.pot;
            set.t[i] = t_next;
            let want = aarseth_dt(f1.acc, f1.jerk, c.snap, c.crackle, self.cfg.eta);
            set.dt[i] = self.cfg.grid.next_step(t_next, dt, want);
            self.engine.set_j_particle(i, &j_of(&self.set, i));
        }
        // Trailing, non-hideable host work: fixed per-block overhead plus
        // the last chunk's corrections (the term *sums* match the
        // blocking step exactly; only the timeline layout differs).
        if let Some(r) = self.host_rates {
            self.trace_host(
                Phase::Host,
                r.t_block_fixed + 0.5 * r.t_step * tail_len as f64,
                n_b as u64,
            );
        }
        Ok(self.finish_step(t_next))
    }
}

/// Convert particle `i`'s current polynomial into engine j-format.
#[inline]
fn j_of(set: &ParticleSet, i: usize) -> JParticle {
    JParticle {
        mass: set.mass[i],
        t0: set.t[i],
        pos: set.pos[i],
        vel: set.vel[i],
        acc: set.acc[i],
        jerk: set.jerk[i],
        snap: set.snap[i],
    }
}

/// Remove the self-interaction from the engine's potential (GRAPE
/// convention: with ε > 0 the hardware's j-sum includes `−mᵢ/ε`).
#[inline]
fn corrected_pot(f: &ForceResult, m_i: f64, eps: f64) -> ForceResult {
    let mut out = *f;
    if eps > 0.0 {
        out.pot += m_i / eps;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::diagnostics::{energy, ConservationTracker};
    use nbody_core::force::DirectEngine;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_plummer(n: usize, seed: u64) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(seed))
    }

    fn direct_integrator(
        n: usize,
        seed: u64,
        cfg: IntegratorConfig,
    ) -> HermiteIntegrator<DirectEngine> {
        let set = small_plummer(n, seed);
        HermiteIntegrator::new(DirectEngine::new(n), set, cfg)
    }

    #[test]
    fn initialisation_populates_forces_and_steps() {
        let it = direct_integrator(64, 1, IntegratorConfig::default());
        let set = it.particles();
        for i in 0..64 {
            assert!(set.acc[i].norm() > 0.0);
            assert!(set.dt[i] > 0.0 && set.dt[i] <= it.cfg.grid.dt_max);
            // Power-of-two check.
            let l = set.dt[i].log2();
            assert_eq!(l, l.round(), "dt {} not a power of two", set.dt[i]);
        }
    }

    #[test]
    fn time_advances_monotonically_and_blocks_are_nonempty() {
        let mut it = direct_integrator(32, 2, IntegratorConfig::default());
        let mut t_prev = 0.0;
        for _ in 0..50 {
            let (t, n_b) = it.step();
            assert!(t > t_prev);
            assert!((1..=32).contains(&n_b));
            t_prev = t;
        }
        assert_eq!(it.stats().blocksteps, 50);
        assert!(it.stats().particle_steps >= 50);
    }

    #[test]
    fn energy_conserved_over_a_time_unit_f64() {
        let n = 64;
        let set = small_plummer(n, 3);
        let eps2 = Softening::Constant.epsilon2(n);
        let mut tracker = ConservationTracker::new(&set, eps2);
        let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, IntegratorConfig::default());
        it.run_until(1.0);
        let err = tracker.record(&it.synchronized_snapshot(), eps2);
        assert!(err < 5e-6, "relative energy error {err:e}");
    }

    #[test]
    fn energy_improves_with_smaller_eta() {
        let n = 48;
        let run = |eta: f64| -> f64 {
            let set = small_plummer(n, 4);
            let eps2 = Softening::Constant.epsilon2(n);
            let mut tracker = ConservationTracker::new(&set, eps2);
            let cfg = IntegratorConfig {
                eta,
                eta_start: eta / 4.0,
                ..Default::default()
            };
            let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
            it.run_until(0.5);
            tracker.record(&it.synchronized_snapshot(), eps2)
        };
        let coarse = run(0.04);
        let fine = run(0.005);
        assert!(
            fine < coarse,
            "η=0.005 error {fine:e} should beat η=0.04 error {coarse:e}"
        );
    }

    #[test]
    fn grape_engine_conserves_energy_like_f64() {
        use crate::engine::Grape6Engine;
        use grape6_system::machine::MachineConfig;
        let n = 48;
        let set = small_plummer(n, 5);
        let eps2 = Softening::Constant.epsilon2(n);
        let e0 = energy(&set, eps2);
        let engine = Grape6Engine::try_new(&MachineConfig::test_small(), n).unwrap();
        let mut it = HermiteIntegrator::new(engine, set, IntegratorConfig::default());
        it.run_until(0.25);
        let e1 = energy(&it.synchronized_snapshot(), eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        // Hardware arithmetic: expect ~1e-6-ish, far below dynamical.
        assert!(err < 1e-4, "GRAPE energy error {err:e}");
        assert!(it.engine().exponent_retries() < 100);
    }

    #[test]
    fn grape_and_f64_trajectories_agree_initially() {
        let n = 32;
        let set = small_plummer(n, 6);
        let cfg = IntegratorConfig::default();
        let mut a = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg);
        let engine = crate::engine::Grape6Engine::try_new(
            &grape6_system::machine::MachineConfig::test_small(),
            n,
        )
        .unwrap();
        let mut b = HermiteIntegrator::new(engine, set, cfg);
        a.run_until(0.0625);
        b.run_until(0.0625);
        let sa = a.synchronized_snapshot();
        let sb = b.synchronized_snapshot();
        let mut worst = 0.0f64;
        for i in 0..n {
            worst = worst.max((sa.pos[i] - sb.pos[i]).norm());
        }
        // Pipeline rounding is 2^-24 per force; over a short stretch the
        // trajectories must still track to ~1e-5.
        assert!(worst < 1e-4, "max position divergence {worst:e}");
    }

    #[test]
    fn blocks_shrink_with_smaller_softening() {
        // ε = 4/N resolves close encounters ⇒ broader dt spread ⇒ smaller
        // mean blocks (the fig. 15 mechanism).
        let n = 128;
        let run = |soft: Softening| -> f64 {
            let set = small_plummer(n, 7);
            let cfg = IntegratorConfig {
                softening: soft,
                ..Default::default()
            };
            let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
            it.run_until(0.25);
            it.stats().mean_block()
        };
        let soft = run(Softening::Constant);
        let hard = run(Softening::CloseEncounter);
        assert!(
            hard < soft * 1.05,
            "close-encounter blocks ({hard}) should not exceed constant-ε blocks ({soft})"
        );
    }

    #[test]
    fn second_corrector_iteration_does_not_hurt() {
        // P(EC)² at a coarse η: must remain stable and conserve energy at
        // least as well as a single EC within a small factor.
        let n = 48;
        let run = |pec: usize| -> f64 {
            let set = small_plummer(n, 12);
            let eps2 = Softening::Constant.epsilon2(n);
            let mut tracker = ConservationTracker::new(&set, eps2);
            let cfg = IntegratorConfig {
                eta: 0.02,
                pec_iterations: pec,
                ..Default::default()
            };
            let mut it = HermiteIntegrator::new(DirectEngine::new(n), set, cfg);
            it.run_until(0.5);
            tracker.record(&it.synchronized_snapshot(), eps2)
        };
        let once = run(1);
        let twice = run(2);
        assert!(
            twice < once * 3.0,
            "P(EC)2 error {twice:e} should not blow up vs PEC {once:e}"
        );
    }

    #[test]
    fn pec_iterations_cost_extra_engine_work() {
        let n = 32;
        let set = small_plummer(n, 13);
        let cfg2 = IntegratorConfig {
            pec_iterations: 2,
            ..Default::default()
        };
        let mut a = HermiteIntegrator::new(
            DirectEngine::new(n),
            set.clone(),
            IntegratorConfig::default(),
        );
        let mut b = HermiteIntegrator::new(DirectEngine::new(n), set, cfg2);
        a.run_until(0.0625);
        b.run_until(0.0625);
        // Roughly double the pairwise interactions per particle step.
        let per_step_a = a.engine().interactions() as f64 / a.stats().particle_steps as f64;
        let per_step_b = b.engine().interactions() as f64 / b.stats().particle_steps as f64;
        assert!(
            per_step_b > 1.7 * per_step_a,
            "{per_step_b} vs {per_step_a}"
        );
    }

    #[test]
    fn synchronized_snapshot_lands_on_common_time() {
        let mut it = direct_integrator(24, 8, IntegratorConfig::default());
        it.run_until(0.3);
        let snap = it.synchronized_snapshot();
        for i in 0..24 {
            assert_eq!(snap.t[i], it.time());
        }
    }
}
