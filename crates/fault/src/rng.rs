//! A tiny deterministic generator (SplitMix64) plus a stateless mixer.
//!
//! The fault subsystem must be reproducible from a single `u64` seed and
//! must not pull in an external RNG crate, so it carries its own SplitMix64
//! (Steele, Lea & Flood 2014) — statistically excellent for this use and
//! trivially portable.  The stateless [`mix`] variant hashes a coordinate
//! tuple directly, which is how the network layer decides the fate of
//! message `(src, dst, seq, attempt)` without any shared mutable state
//! between rank threads.

/// SplitMix64 increment.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 output finaliser.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded sequential generator for building fault plans.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Seeded generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        finalize(self.state)
    }

    /// Uniform value in `[0, n)` (multiply-shift; `n = 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }
}

/// Stateless hash of a seed and a 4-tuple of coordinates — the per-message
/// fault oracle.  Any two distinct tuples give independent-looking outputs;
/// the same tuple always gives the same output.
pub fn mix(seed: u64, a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = seed ^ GAMMA;
    for v in [a, b, c, d] {
        h = finalize(h ^ v.wrapping_mul(GAMMA).rotate_left(17));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = FaultRng::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn mix_is_deterministic_and_sensitive() {
        assert_eq!(mix(1, 2, 3, 4, 5), mix(1, 2, 3, 4, 5));
        assert_ne!(mix(1, 2, 3, 4, 5), mix(1, 2, 3, 4, 6));
        assert_ne!(mix(1, 2, 3, 4, 5), mix(2, 2, 3, 4, 5));
    }
}
