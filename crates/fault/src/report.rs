//! Degraded-operation bookkeeping: counters, event log, and the per-engine
//! fault report.
//!
//! Every detection or recovery action taken by a hardware layer is counted
//! in [`FaultCounters`] and appended to an ordered [`FaultEvent`] log.  The
//! whole bundle is surfaced as a [`FaultReport`]; because all fault
//! machinery is seeded and deterministic, two runs with the same plan
//! produce *equal* reports — which the integration tests assert directly.

use crate::plan::UnitPath;
use std::fmt;

/// Monotonic counters over every fault-handling action in a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Units that failed the startup known-answer self-test.
    pub selftest_failures: u64,
    /// Units masked out of service (self-test plus mid-run deaths).
    pub units_masked: u64,
    /// Mid-run scheduled deaths applied.
    pub scheduled_deaths: u64,
    /// Corrupted reduction results detected (parity) and recomputed.
    pub reduction_glitches: u64,
    /// Forces rejected by the host NaN/overflow screen and recomputed.
    pub sanity_recomputes: u64,
    /// §3.4 exponent-overflow retries (window widened and pass re-run).
    pub exponent_retries: u64,
}

impl FaultCounters {
    /// Sum of all counters — a quick "did anything happen" scalar.
    pub fn total(&self) -> u64 {
        self.selftest_failures
            + self.units_masked
            + self.scheduled_deaths
            + self.reduction_glitches
            + self.sanity_recomputes
            + self.exponent_retries
    }
}

/// One entry in the ordered fault-event log.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// A unit failed the startup known-answer test.
    SelfTestFailure {
        /// Path of the failing unit.
        path: UnitPath,
        /// Worst relative force error observed against the f64 reference.
        rel_err: f64,
    },
    /// A unit was removed from service.
    UnitMasked {
        /// Path of the masked unit.
        path: UnitPath,
        /// Engine pass at which the mask was applied (0 = at startup).
        pass: u64,
    },
    /// A corrupted reduction result was detected and the pass recomputed.
    ReductionGlitch {
        /// Engine pass during which the glitch fired.
        pass: u64,
    },
    /// The host force screen rejected a result and recomputed the pass.
    SanityRecompute {
        /// Engine pass during which the screen fired.
        pass: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::SelfTestFailure { path, rel_err } => {
                write!(f, "self-test FAIL at {path:?} (rel err {rel_err:.3e})")
            }
            FaultEvent::UnitMasked { path, pass } => {
                write!(f, "unit {path:?} masked at pass {pass}")
            }
            FaultEvent::ReductionGlitch { pass } => {
                write!(f, "reduction glitch recovered at pass {pass}")
            }
            FaultEvent::SanityRecompute { pass } => {
                write!(f, "sanity screen recompute at pass {pass}")
            }
        }
    }
}

/// The full fault story of one engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultReport {
    /// Aggregate counters.
    pub counters: FaultCounters,
    /// Paths currently masked out of service.
    pub masked: Vec<UnitPath>,
    /// Ordered log of every detection/recovery action.
    pub events: Vec<FaultEvent>,
    /// Chips still in service.
    pub alive_chips: usize,
    /// Chips the machine was built with.
    pub total_chips: usize,
}

impl FaultReport {
    /// Fraction of the machine still in service, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        if self.total_chips == 0 {
            return 1.0;
        }
        self.alive_chips as f64 / self.total_chips as f64
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault report: {}/{} chips alive ({:.1}%), {} masked unit(s)",
            self.alive_chips,
            self.total_chips,
            100.0 * self.availability(),
            self.masked.len(),
        )?;
        writeln!(
            f,
            "  self-test failures {}, scheduled deaths {}, reduction glitches {}, \
             sanity recomputes {}, exponent retries {}",
            self.counters.selftest_failures,
            self.counters.scheduled_deaths,
            self.counters.reduction_glitches,
            self.counters.sanity_recomputes,
            self.counters.exponent_retries,
        )?;
        for e in &self.events {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total_sums_everything() {
        let c = FaultCounters {
            selftest_failures: 1,
            units_masked: 2,
            scheduled_deaths: 3,
            reduction_glitches: 4,
            sanity_recomputes: 5,
            exponent_retries: 6,
        };
        assert_eq!(c.total(), 21);
        assert_eq!(FaultCounters::default().total(), 0);
    }

    #[test]
    fn availability_is_fractional_and_safe_on_empty() {
        let r = FaultReport {
            alive_chips: 3,
            total_chips: 4,
            ..FaultReport::default()
        };
        assert!((r.availability() - 0.75).abs() < 1e-15);
        assert_eq!(FaultReport::default().availability(), 1.0);
    }

    #[test]
    fn reports_with_same_history_are_equal() {
        let mk = || FaultReport {
            counters: FaultCounters {
                units_masked: 1,
                ..FaultCounters::default()
            },
            masked: vec![vec![1, 0]],
            events: vec![
                FaultEvent::SelfTestFailure {
                    path: vec![1, 0],
                    rel_err: 0.25,
                },
                FaultEvent::UnitMasked {
                    path: vec![1, 0],
                    pass: 0,
                },
            ],
            alive_chips: 6,
            total_chips: 8,
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn display_mentions_every_event() {
        let r = FaultReport {
            events: vec![
                FaultEvent::ReductionGlitch { pass: 5 },
                FaultEvent::SanityRecompute { pass: 7 },
            ],
            alive_chips: 8,
            total_chips: 8,
            ..FaultReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("glitch recovered at pass 5"));
        assert!(s.contains("recompute at pass 7"));
    }
}
