//! Fault plans: seeded, reproducible schedules of hardware misbehaviour.
//!
//! A [`FaultPlan`] names concrete faults against the machine tree using
//! [`UnitPath`] coordinates — `[board]`, `[board, module]`,
//! `[board, module, chip]` — mirroring the hierarchy of
//! `grape6-system::Ensemble`.  Plans can be written by hand (tests) or
//! generated from a [`FaultConfig`] with [`FaultPlan::generate`] (chaos
//! runs).  The network side is a [`NetFaultPlan`]: a stateless per-message
//! oracle, so every rank thread evaluates the fate of a message
//! independently and reproducibly.

use crate::rng::{mix, FaultRng};

/// Coordinates of a unit in the machine tree, outermost level first
/// (`[board]`, `[board, module]`, `[board, module, chip]`).
pub type UnitPath = Vec<usize>;

/// A fault pinned to one chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChipFault {
    /// The chip never answers: its partial forces are all zero and it
    /// consumes no cycles.  Silent — only a known-answer test catches it.
    DeadChip,
    /// One of the six physical pipelines returns zeros for the 8 virtual
    /// i-slots it serves; the rest of the chip works.
    DeadPipeline {
        /// Pipeline index, `0..pipelines`.
        pipeline: usize,
    },
    /// A j-memory data line stuck at 1: every write to `addr` has `bit`
    /// forced high in position lane `lane`.  Re-writing the particle does
    /// not heal it — the bit is stuck, not flipped.
    StuckJmemBit {
        /// Chip-local j-memory address.
        addr: usize,
        /// Position coordinate lane (0 = x, 1 = y, 2 = z).
        lane: usize,
        /// Bit index in the 64-bit fixed-point word, `0..64`.
        bit: u32,
    },
}

/// When an ensemble's reduction network returns a corrupted (parity-
/// flagged) result instead of the exact block-FP sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReductionFaultSchedule {
    /// Every pass is corrupted — the summation FPGA is dead.
    Permanent,
    /// Only the listed passes (1-based ensemble pass counter) are
    /// corrupted — transient glitches the host recovers from by
    /// recomputing.
    AtPasses(Vec<u64>),
}

/// A unit that dies while a run is in progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduledDeath {
    /// The unit to mask.
    pub path: UnitPath,
    /// Engine pass count at which the death is discovered (the mask is
    /// applied before the chunk that would be this pass).
    pub at_pass: u64,
}

/// The machine shape a generated plan targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineGeometry {
    /// Boards per host.
    pub boards: usize,
    /// Modules per board.
    pub modules_per_board: usize,
    /// Chips per module.
    pub chips_per_module: usize,
}

impl MachineGeometry {
    /// Total chips.
    pub fn total_chips(&self) -> usize {
        self.boards * self.modules_per_board * self.chips_per_module
    }
}

/// Message-level faults for the simulated cluster fabric.
///
/// The plan is a pure function of `(seed, src, dst, seq, attempt)`, so the
/// sender and receiver agree on every message's fate with no shared state.
/// Probabilities are in permille (0–1000).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for the per-message oracle.
    pub seed: u64,
    /// Chance a transmission attempt is dropped outright.
    pub drop_permille: u16,
    /// Chance an attempt arrives corrupted (checksum catches it; costs a
    /// retransmit, counted separately from drops).
    pub corrupt_permille: u16,
    /// Chance a *delivered* message is delayed by `delay_factor · rto`.
    pub delay_permille: u16,
    /// Extra delay, in units of `rto`, for delayed messages.
    pub delay_factor: f64,
    /// Transmission attempts before the link is declared failed.
    pub max_attempts: u32,
    /// Retransmission timeout: attempt `k` (0-based) that fails costs the
    /// receiver `rto · 2^k` of backoff before the next attempt lands.
    pub rto: f64,
    /// Deterministic backoff jitter: each failed attempt's exponential
    /// backoff is stretched by up to this many permille of itself.  The
    /// stretch comes from a stateless hash of
    /// `(seed, src, dst, seq, attempt)` — no ambient RNG — so a retried
    /// run replays its backoff schedule bit-identically while still
    /// desynchronising concurrent retransmit timers the way real TCP
    /// jitter does.
    pub jitter_permille: u16,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// The fate of one logical message under a [`NetFaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Delivery {
    /// The payload eventually arrived.
    Delivered {
        /// Transmission attempts used (1 = first try).
        attempts: u32,
        /// Total exponential backoff accrued by failed attempts, seconds.
        backoff: f64,
        /// Extra in-network delay on the successful attempt, seconds.
        extra_delay: f64,
        /// Attempts lost to drops.
        dropped: u32,
        /// Attempts lost to corruption.
        corrupted: u32,
    },
    /// Every attempt failed; the link is declared down for this message.
    Failed {
        /// Attempts used (= `max_attempts`).
        attempts: u32,
        /// Total backoff burned before giving up, seconds.
        backoff: f64,
        /// Attempts lost to drops.
        dropped: u32,
        /// Attempts lost to corruption.
        corrupted: u32,
    },
}

impl NetFaultPlan {
    /// A plan with no faults at all — the default fabric behaviour.
    pub const fn none() -> Self {
        Self {
            seed: 0,
            drop_permille: 0,
            corrupt_permille: 0,
            delay_permille: 0,
            delay_factor: 0.0,
            max_attempts: 1,
            rto: 0.0,
            jitter_permille: 0,
        }
    }

    /// A uniformly lossy link: `drop_permille` drops, bounded retry.
    pub const fn lossy(seed: u64, drop_permille: u16, max_attempts: u32, rto: f64) -> Self {
        Self {
            seed,
            drop_permille,
            corrupt_permille: 0,
            delay_permille: 0,
            delay_factor: 0.0,
            max_attempts,
            rto,
            jitter_permille: 0,
        }
    }

    /// True if no fault can ever fire.
    pub fn is_clean(&self) -> bool {
        self.drop_permille == 0 && self.corrupt_permille == 0 && self.delay_permille == 0
    }

    /// Decide the fate of message `seq` from rank `src` to rank `dst`.
    pub fn delivery(&self, src: u64, dst: u64, seq: u64) -> Delivery {
        if self.is_clean() {
            return Delivery::Delivered {
                attempts: 1,
                backoff: 0.0,
                extra_delay: 0.0,
                dropped: 0,
                corrupted: 0,
            };
        }
        let fail = (self.drop_permille + self.corrupt_permille) as u64;
        let attempts_cap = self.max_attempts.max(1);
        let mut backoff = 0.0;
        let mut dropped = 0u32;
        let mut corrupted = 0u32;
        for k in 0..attempts_cap {
            let roll = mix(self.seed, src, dst, seq, k as u64) % 1000;
            if roll < fail {
                if roll < self.drop_permille as u64 {
                    dropped += 1;
                } else {
                    corrupted += 1;
                }
                // Sender's retransmit timer: exponential backoff, with a
                // deterministic per-attempt jitter stretch.
                let base = self.rto * (1u64 << k.min(20)) as f64;
                let jitter = if self.jitter_permille > 0 {
                    let j = mix(self.seed ^ 0xBAC0_FFEE_BAC0_FFEE, src, dst, seq, k as u64)
                        % (self.jitter_permille as u64 + 1);
                    base * j as f64 / 1000.0
                } else {
                    0.0
                };
                backoff += base + jitter;
                continue;
            }
            let droll = mix(self.seed ^ 0x00DE_1A7E_D0DE_1A7E, src, dst, seq, k as u64) % 1000;
            let extra_delay = if droll < self.delay_permille as u64 {
                self.delay_factor * self.rto
            } else {
                0.0
            };
            return Delivery::Delivered {
                attempts: k + 1,
                backoff,
                extra_delay,
                dropped,
                corrupted,
            };
        }
        Delivery::Failed {
            attempts: attempts_cap,
            backoff,
            dropped,
            corrupted,
        }
    }
}

/// A complete, reproducible schedule of faults for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// Chip-level faults, addressed `[board, module, chip]`.
    pub chip_faults: Vec<(UnitPath, ChipFault)>,
    /// Modules dead at power-on, addressed `[board, module]` (every chip in
    /// them behaves as [`ChipFault::DeadChip`]).
    pub dead_modules: Vec<UnitPath>,
    /// Boards whose reduction FPGA is dead at power-on, addressed
    /// `[board]`.
    pub dead_boards: Vec<UnitPath>,
    /// Units that die mid-run.
    pub midrun_deaths: Vec<ScheduledDeath>,
    /// Host-port reduction passes (1-based) that return corrupted words —
    /// transient glitches the engine recovers from by recomputing.
    pub reduction_glitch_passes: Vec<u64>,
    /// Network-fabric faults.
    pub net: NetFaultPlan,
}

impl FaultPlan {
    /// An empty plan: fully healthy machine.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a chip fault at `[board, module, chip]`.
    pub fn with_chip_fault(
        mut self,
        board: usize,
        module: usize,
        chip: usize,
        f: ChipFault,
    ) -> Self {
        self.chip_faults.push((vec![board, module, chip], f));
        self
    }

    /// Mark a whole module dead at power-on.
    pub fn with_dead_module(mut self, board: usize, module: usize) -> Self {
        self.dead_modules.push(vec![board, module]);
        self
    }

    /// Mark a board's reduction network dead at power-on.
    pub fn with_dead_board(mut self, board: usize) -> Self {
        self.dead_boards.push(vec![board]);
        self
    }

    /// Schedule a unit death at engine pass `at_pass`.
    pub fn with_midrun_death(mut self, path: UnitPath, at_pass: u64) -> Self {
        self.midrun_deaths.push(ScheduledDeath { path, at_pass });
        self
    }

    /// Schedule transient host-port reduction glitches.
    pub fn with_reduction_glitches(mut self, passes: Vec<u64>) -> Self {
        self.reduction_glitch_passes = passes;
        self
    }

    /// Attach a network fault plan.
    pub fn with_net(mut self, net: NetFaultPlan) -> Self {
        self.net = net;
        self
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.chip_faults.is_empty()
            && self.dead_modules.is_empty()
            && self.dead_boards.is_empty()
            && self.midrun_deaths.is_empty()
            && self.reduction_glitch_passes.is_empty()
            && self.net.is_clean()
    }

    /// Generate a random plan for `geom` from `seed`.  The same
    /// `(seed, cfg, geom)` triple always yields the same plan.
    pub fn generate(seed: u64, cfg: &FaultConfig, geom: MachineGeometry) -> Self {
        let mut r = FaultRng::new(seed);
        let mut plan = FaultPlan {
            seed,
            net: cfg.net,
            ..FaultPlan::default()
        };
        let rand_chip = |r: &mut FaultRng| -> UnitPath {
            vec![
                r.below(geom.boards as u64) as usize,
                r.below(geom.modules_per_board as u64) as usize,
                r.below(geom.chips_per_module as u64) as usize,
            ]
        };
        let rand_module = |r: &mut FaultRng| -> UnitPath {
            vec![
                r.below(geom.boards as u64) as usize,
                r.below(geom.modules_per_board as u64) as usize,
            ]
        };
        for _ in 0..cfg.dead_chips {
            let p = rand_chip(&mut r);
            plan.chip_faults.push((p, ChipFault::DeadChip));
        }
        for _ in 0..cfg.dead_pipelines {
            let p = rand_chip(&mut r);
            let pipeline = r.below(6) as usize;
            plan.chip_faults
                .push((p, ChipFault::DeadPipeline { pipeline }));
        }
        for _ in 0..cfg.stuck_bits {
            let p = rand_chip(&mut r);
            // Low addresses are always written by the self-test vectors,
            // and bits 56..61 carry weight ≥ 0.5 length units — above every
            // self-test coordinate, so the stuck line always flips a clear
            // bit and the known-answer comparison is guaranteed to notice.
            let fault = ChipFault::StuckJmemBit {
                addr: r.below(4) as usize,
                lane: r.below(3) as usize,
                bit: r.range(56, 61) as u32,
            };
            plan.chip_faults.push((p, fault));
        }
        for _ in 0..cfg.dead_modules {
            let p = rand_module(&mut r);
            if !plan.dead_modules.contains(&p) {
                plan.dead_modules.push(p);
            }
        }
        for _ in 0..cfg.midrun_module_deaths {
            let p = rand_module(&mut r);
            let (lo, hi) = cfg.midrun_pass_range;
            let at_pass = r.range(lo, hi.max(lo + 1));
            plan.midrun_deaths.push(ScheduledDeath { path: p, at_pass });
        }
        let (glo, ghi) = cfg.glitch_pass_range;
        for _ in 0..cfg.reduction_glitches {
            let pass = r.range(glo.max(1), ghi.max(glo + 2));
            if !plan.reduction_glitch_passes.contains(&pass) {
                plan.reduction_glitch_passes.push(pass);
            }
        }
        plan.reduction_glitch_passes.sort_unstable();
        plan
    }
}

/// Knobs for [`FaultPlan::generate`]: how many of each fault class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Chips dead at power-on.
    pub dead_chips: usize,
    /// Stuck (all-zero) pipelines.
    pub dead_pipelines: usize,
    /// Stuck j-memory bits.
    pub stuck_bits: usize,
    /// Whole modules dead at power-on.
    pub dead_modules: usize,
    /// Modules that die mid-run.
    pub midrun_module_deaths: usize,
    /// Engine-pass window for mid-run deaths, `[lo, hi)`.
    pub midrun_pass_range: (u64, u64),
    /// Transient host-port reduction glitches.
    pub reduction_glitches: usize,
    /// Ensemble-pass window for glitches, `[lo, hi)`.
    pub glitch_pass_range: (u64, u64),
    /// Network fault plan carried through to the generated plan.
    pub net: NetFaultPlan,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            dead_chips: 1,
            dead_pipelines: 1,
            stuck_bits: 1,
            dead_modules: 0,
            midrun_module_deaths: 0,
            midrun_pass_range: (2, 10),
            reduction_glitches: 0,
            glitch_pass_range: (1, 40),
            net: NetFaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GEOM: MachineGeometry = MachineGeometry {
        boards: 4,
        modules_per_board: 8,
        chips_per_module: 4,
    };

    #[test]
    fn generate_is_deterministic() {
        let cfg = FaultConfig {
            dead_chips: 3,
            dead_pipelines: 2,
            stuck_bits: 2,
            dead_modules: 1,
            midrun_module_deaths: 2,
            reduction_glitches: 3,
            ..FaultConfig::default()
        };
        let a = FaultPlan::generate(1234, &cfg, GEOM);
        let b = FaultPlan::generate(1234, &cfg, GEOM);
        assert_eq!(a, b);
        let c = FaultPlan::generate(1235, &cfg, GEOM);
        assert_ne!(a, c);
        assert_eq!(a.chip_faults.len(), 7);
        for (path, _) in &a.chip_faults {
            assert_eq!(path.len(), 3);
            assert!(path[0] < 4 && path[1] < 8 && path[2] < 4);
        }
    }

    #[test]
    fn builders_compose() {
        let p = FaultPlan::none()
            .with_dead_module(0, 1)
            .with_dead_board(2)
            .with_chip_fault(1, 2, 3, ChipFault::DeadChip)
            .with_midrun_death(vec![3, 0], 5)
            .with_reduction_glitches(vec![4, 9]);
        assert!(!p.is_empty());
        assert_eq!(p.dead_modules, vec![vec![0, 1]]);
        assert_eq!(p.dead_boards, vec![vec![2]]);
        assert_eq!(p.midrun_deaths[0].at_pass, 5);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn clean_net_plan_always_delivers_first_try() {
        let p = NetFaultPlan::none();
        assert!(p.is_clean());
        for seq in 0..50 {
            match p.delivery(0, 1, seq) {
                Delivery::Delivered {
                    attempts,
                    backoff,
                    extra_delay,
                    ..
                } => {
                    assert_eq!(attempts, 1);
                    assert_eq!(backoff, 0.0);
                    assert_eq!(extra_delay, 0.0);
                }
                Delivery::Failed { .. } => panic!("clean plan failed"),
            }
        }
    }

    #[test]
    fn lossy_plan_drops_and_retries_deterministically() {
        let p = NetFaultPlan::lossy(77, 300, 8, 1e-4);
        let mut retried = 0;
        for seq in 0..200 {
            let a = p.delivery(2, 5, seq);
            assert_eq!(a, p.delivery(2, 5, seq), "per-message fate is stable");
            if let Delivery::Delivered {
                attempts, backoff, ..
            } = a
            {
                if attempts > 1 {
                    retried += 1;
                    assert!(backoff > 0.0);
                }
            }
        }
        // 30% drop rate over 200 messages: plenty of retries.
        assert!(retried > 20, "only {retried} retried");
    }

    #[test]
    fn certain_loss_fails_after_max_attempts() {
        let p = NetFaultPlan::lossy(1, 1000, 4, 1e-3);
        match p.delivery(0, 1, 0) {
            Delivery::Failed {
                attempts,
                backoff,
                dropped,
                ..
            } => {
                assert_eq!(attempts, 4);
                assert_eq!(dropped, 4);
                // 1 + 2 + 4 + 8 = 15 rto of exponential backoff.
                assert!((backoff - 15.0e-3).abs() < 1e-12);
            }
            d => panic!("expected failure, got {d:?}"),
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_optional() {
        let base = NetFaultPlan::lossy(42, 500, 8, 1e-3);
        let jittered = NetFaultPlan {
            jitter_permille: 250,
            ..base
        };
        let mut stretched = 0;
        for seq in 0..200 {
            // Same fate decisions (jitter only scales backoff)…
            let a = base.delivery(3, 1, seq);
            let b = jittered.delivery(3, 1, seq);
            // …replayed bit-identically.
            assert_eq!(b, jittered.delivery(3, 1, seq));
            let (Delivery::Delivered {
                attempts: aa,
                backoff: ab,
                ..
            }
            | Delivery::Failed {
                attempts: aa,
                backoff: ab,
                ..
            }) = a;
            let (Delivery::Delivered {
                attempts: ba,
                backoff: bb,
                ..
            }
            | Delivery::Failed {
                attempts: ba,
                backoff: bb,
                ..
            }) = b;
            assert_eq!(aa, ba, "jitter must not change delivery outcomes");
            // Jittered backoff is the un-jittered one stretched ≤ 25%.
            assert!(
                bb >= ab && bb <= ab * 1.25 + 1e-15,
                "seq {seq}: {ab} -> {bb}"
            );
            if bb > ab {
                stretched += 1;
            }
        }
        assert!(stretched > 20, "only {stretched} of 200 backoffs stretched");
    }

    #[test]
    fn corruption_counted_separately_from_drops() {
        let p = NetFaultPlan {
            seed: 5,
            drop_permille: 0,
            corrupt_permille: 400,
            delay_permille: 0,
            delay_factor: 0.0,
            max_attempts: 10,
            rto: 1e-4,
            jitter_permille: 0,
        };
        let mut corrupted_total = 0;
        for seq in 0..100 {
            if let Delivery::Delivered {
                dropped, corrupted, ..
            } = p.delivery(1, 2, seq)
            {
                assert_eq!(dropped, 0);
                corrupted_total += corrupted;
            }
        }
        assert!(corrupted_total > 10);
    }

    #[test]
    fn delays_happen_without_retransmits() {
        let p = NetFaultPlan {
            seed: 9,
            drop_permille: 0,
            corrupt_permille: 0,
            delay_permille: 500,
            delay_factor: 10.0,
            max_attempts: 1,
            rto: 1e-4,
            jitter_permille: 0,
        };
        let mut delayed = 0;
        for seq in 0..100 {
            match p.delivery(0, 3, seq) {
                Delivery::Delivered {
                    attempts,
                    extra_delay,
                    ..
                } => {
                    assert_eq!(attempts, 1);
                    if extra_delay > 0.0 {
                        assert!((extra_delay - 1e-3).abs() < 1e-15);
                        delayed += 1;
                    }
                }
                Delivery::Failed { .. } => panic!("no drops configured"),
            }
        }
        assert!((20..80).contains(&delayed), "{delayed} delayed of 100");
    }
}
