//! # grape6-fault — seeded fault injection for the machine hierarchy
//!
//! The real GRAPE-6 was a 2048-chip machine, and at that scale partial
//! hardware failure is the steady state: the host library *tested* the
//! attached chips and modules at startup and ran with failing units mapped
//! out (Makino et al. 2003, the companion architecture paper).  The §3.4
//! exponent-retry protocol of the SC'03 paper exists for the same reason —
//! the hardware can and does return unusable results.
//!
//! This crate is the *description* half of the failure story.  It defines
//! deterministic, seeded fault plans — which chips are dead, which
//! pipelines are stuck, which j-memory bits are jammed, when a module dies
//! mid-run, which network messages are dropped — without depending on any
//! other crate.  Each hardware layer (`grape6-chip`, `grape6-system`,
//! `grape6-core`, `grape6-net`) *consumes* these plans and implements the
//! corresponding detection and degradation behaviour; the counters and
//! event log defined here are how those layers report back.
//!
//! Everything is reproducible: the same seed yields the same plan, the same
//! plan yields the same event log.  No wall-clock entropy anywhere.

pub mod plan;
pub mod report;
pub mod rng;

pub use plan::{
    ChipFault, Delivery, FaultConfig, FaultPlan, MachineGeometry, NetFaultPlan,
    ReductionFaultSchedule, ScheduledDeath, UnitPath,
};
pub use report::{FaultCounters, FaultEvent, FaultReport};
pub use rng::FaultRng;
