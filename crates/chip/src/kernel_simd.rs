//! The hand-rolled SIMD force kernel ([`KernelMode::Simd`]).
//!
//! Same SoA layout, same chunking, same per-value operation chain as the
//! batched kernel in [`crate::kernel`] — but the lane shape is pinned
//! down by hand through `grape6_arith::simd` instead of left to the
//! auto-vectoriser: stages 1–4 (position deltas, r², the gathered rsqrt
//! table lookup, the multiplier tree) run 4- or 8-wide in `core::arch`
//! registers, and stage 5's scale-and-round runs lane-parallel with only
//! the order-sensitive `i64` accumulation left sequential
//! ([`BatchLane::add_rounded`]).
//!
//! **Why the bits cannot change.** Each lane op is the same single-rounded
//! IEEE-754 f64 operation the scalar chain performs (no FMA anywhere);
//! the quantiser and the rsqrt decomposition are pure integer lane math
//! proven bit-identical in `grape6-arith`; and accumulation order per
//! block-FP lane is untouched — ascending j, one summand at a time, so
//! the sticky overflow flags trip for exactly the prefixes the scalar
//! oracle's `Result` would.  SIMD padding (the zero-mass tail `SoaBatch`
//! appends) is computed vector-side but never accumulated: the stage-5
//! and neighbour loops stop at the batch's *real* length.
//!
//! Dispatch happens per row via [`grape6_arith::simd::active_level`]; with
//! no level active (non-x86 hosts, `GRAPE6_FORCE_SCALAR=1`) the row runs
//! the batched scalar path — same bits, fewer lanes.

use grape6_arith::blockfp::{BatchLane, BlockFpError};
use grape6_arith::rsqrt::RsqrtCubedUnit;

use crate::kernel::{scalar_fallback, SoaBatch};
use crate::pipeline::{ExpSet, HwIParticle, PartialForce};
use crate::predictor::PredictedJ;

/// Evaluate one i-register against the whole batch through the active
/// SIMD level (plain force pass).  Bit-identical to [`crate::kernel::batched_row`]
/// — and therefore to the scalar oracle — including the recovered error
/// on overflow.
pub fn simd_row(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    predicted: &[PredictedJ],
    exps: ExpSet,
) -> Result<PartialForce, BlockFpError> {
    let mut no_nb = Vec::new();
    match dispatch(rsqrt, ip, batch, exps, None, &mut no_nb) {
        Some(pf) => Ok(pf),
        None => scalar_fallback(rsqrt, ip, predicted, exps),
    }
}

/// Evaluate one i-register against the whole batch with neighbour
/// detection, through the active SIMD level.  Bit-identical to
/// [`crate::kernel::batched_row_nb`], list included.
pub fn simd_row_nb(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    predicted: &[PredictedJ],
    exps: ExpSet,
    h2i: f64,
    nb: &mut Vec<u32>,
) -> Result<PartialForce, BlockFpError> {
    nb.clear();
    match dispatch(rsqrt, ip, batch, exps, Some(h2i), nb) {
        Some(pf) => Ok(pf),
        None => {
            // The partially filled list belongs to a discarded row.
            nb.clear();
            scalar_fallback(rsqrt, ip, predicted, exps)
        }
    }
}

/// Route one row to the widest available lane implementation, or to the
/// batched scalar row when SIMD dispatch is off.
#[inline]
fn dispatch(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    exps: ExpSet,
    h2i: Option<f64>,
    nb: &mut Vec<u32>,
) -> Option<PartialForce> {
    #[cfg(target_arch = "x86_64")]
    {
        use grape6_arith::simd::{active_level, SimdLevel};
        match active_level() {
            // SAFETY: dispatch proved the respective features available.
            Some(SimdLevel::Avx2) => {
                return unsafe { x86::row_avx2(rsqrt, ip, batch, exps, h2i, nb) }
            }
            Some(SimdLevel::Avx512) => {
                return unsafe { x86::row_avx512(rsqrt, ip, batch, exps, h2i, nb) }
            }
            None => {}
        }
    }
    // Scalar batched fallback: bit-identical by the PR 5 contract.
    match h2i {
        Some(h2) => crate::kernel::row::<true>(rsqrt, ip, batch, exps, h2, nb),
        None => crate::kernel::row::<false>(rsqrt, ip, batch, exps, 0.0, nb),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use crate::kernel::CHUNK;
    use grape6_arith::fixed::PosFix;
    use grape6_arith::simd::{quantize_lanes, Avx2, Avx512, Lanes};
    use grape6_arith::PIPE_SIG_BITS;

    /// # Safety
    /// Requires `avx2` at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_avx2(
        rsqrt: &RsqrtCubedUnit,
        ip: &HwIParticle,
        batch: &SoaBatch,
        exps: ExpSet,
        h2i: Option<f64>,
        nb: &mut Vec<u32>,
    ) -> Option<PartialForce> {
        row_lanes::<Avx2>(rsqrt, ip, batch, exps, h2i, nb)
    }

    /// # Safety
    /// Requires `avx512f` and `avx512dq` at runtime.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn row_avx512(
        rsqrt: &RsqrtCubedUnit,
        ip: &HwIParticle,
        batch: &SoaBatch,
        exps: ExpSet,
        h2i: Option<f64>,
        nb: &mut Vec<u32>,
    ) -> Option<PartialForce> {
        row_lanes::<Avx512>(rsqrt, ip, batch, exps, h2i, nb)
    }

    /// The generic lane row.  One pass over each chunk keeps stages 1–4
    /// entirely in registers, W lanes at a time, spilling only the eight
    /// arrays stage 5 and the neighbour scan need.
    ///
    /// # Safety
    /// `L`'s ISA must be available (callers are `#[target_feature]`
    /// wrappers selected by runtime detection).
    #[allow(clippy::needless_range_loop)] // counted loops mirror kernel.rs
    #[inline(always)]
    unsafe fn row_lanes<L: Lanes>(
        rsqrt: &RsqrtCubedUnit,
        ip: &HwIParticle,
        batch: &SoaBatch,
        exps: ExpSet,
        h2i: Option<f64>,
        nb: &mut Vec<u32>,
    ) -> Option<PartialForce> {
        #[inline(always)]
        unsafe fn q<L: Lanes>(x: L::F) -> L::F {
            quantize_lanes::<L>(x, PIPE_SIG_BITS)
        }
        // i-side invariants, splatted once.
        let ixv = L::splat_i(ip.pos.x.raw());
        let iyv = L::splat_i(ip.pos.y.raw());
        let izv = L::splat_i(ip.pos.z.raw());
        let ivxv = L::splat(ip.vel[0]);
        let ivyv = L::splat(ip.vel[1]);
        let ivzv = L::splat(ip.vel[2]);
        let epsv = L::splat(ip.eps2);
        let resv = L::splat(PosFix::RESOLUTION);
        let threev = L::splat(3.0);
        let signv = L::splat_i(i64::MIN);
        // Seven block-FP lanes; their window scales feed the lane-parallel
        // scale-and-round below (`add_rounded` contract).
        let mut lax = BatchLane::new(exps.acc);
        let mut lay = BatchLane::new(exps.acc);
        let mut laz = BatchLane::new(exps.acc);
        let mut ljx = BatchLane::new(exps.jerk);
        let mut ljy = BatchLane::new(exps.jerk);
        let mut ljz = BatchLane::new(exps.jerk);
        let mut lp = BatchLane::new(exps.pot);
        let saccv = L::splat(lax.scale());
        let sjerkv = L::splat(ljx.scale());
        let spotv = L::splat(lp.scale());

        // Chunk scratch: the pre-scaled, pre-rounded summands plus the
        // unsoftened r² the neighbour scan keys on.
        let mut qax = [0.0f64; CHUNK];
        let mut qay = [0.0f64; CHUNK];
        let mut qaz = [0.0f64; CHUNK];
        let mut qjx = [0.0f64; CHUNK];
        let mut qjy = [0.0f64; CHUNK];
        let mut qjz = [0.0f64; CHUNK];
        let mut qpot = [0.0f64; CHUNK];
        let mut r2_raw = [0.0f64; CHUNK];

        let n = batch.len();
        let mut j0 = 0;
        while j0 < n {
            let cl = (n - j0).min(CHUNK);
            // Full vector width over the (zero-padded) tail; `SoaBatch`
            // guarantees the arrays extend to a multiple of the widest
            // lane count past every chunk start.
            let clp = cl.next_multiple_of(L::WIDTH);
            debug_assert!(j0 + clp <= batch.px.len());
            let mut g = 0;
            while g < clp {
                let at = j0 + g;
                // Stage 1: exact wrapping fixed-point delta, full-range
                // i64→f64 (one rounding), scale to length units, quantise.
                let dx = q::<L>(L::mul(
                    L::i64_to_f64(L::sub_i(L::load_i(batch.px.as_ptr().add(at)), ixv)),
                    resv,
                ));
                let dy = q::<L>(L::mul(
                    L::i64_to_f64(L::sub_i(L::load_i(batch.py.as_ptr().add(at)), iyv)),
                    resv,
                ));
                let dz = q::<L>(L::mul(
                    L::i64_to_f64(L::sub_i(L::load_i(batch.pz.as_ptr().add(at)), izv)),
                    resv,
                ));
                let dvx = q::<L>(L::sub(L::load(batch.vx.as_ptr().add(at)), ivxv));
                let dvy = q::<L>(L::sub(L::load(batch.vy.as_ptr().add(at)), ivyv));
                let dvz = q::<L>(L::sub(L::load(batch.vz.as_ptr().add(at)), ivzv));
                // Stage 2: r² through the two-level adder tree.
                let xx = q::<L>(L::mul(dx, dx));
                let yy = q::<L>(L::mul(dy, dy));
                let zz = q::<L>(L::mul(dz, dz));
                let rr = q::<L>(L::add(q::<L>(L::add(xx, yy)), zz));
                L::store(r2_raw.as_mut_ptr().add(g), rr);
                let r2 = q::<L>(L::add(rr, epsv));
                // Stage 3: the gathered table lookup, whole lane at once.
                let (e32, e12) = rsqrt.eval_both_lanes::<L>(r2);
                let rinv3 = q::<L>(e32);
                let rinv = q::<L>(e12);
                // Stage 4: multiplier tree.
                let m = L::load(batch.mass.as_ptr().add(at));
                let mr3 = q::<L>(L::mul(m, rinv3));
                let ax = q::<L>(L::mul(mr3, dx));
                let ay = q::<L>(L::mul(mr3, dy));
                let az = q::<L>(L::mul(mr3, dz));
                let xv = q::<L>(L::mul(dx, dvx));
                let yv = q::<L>(L::mul(dy, dvy));
                let zv = q::<L>(L::mul(dz, dvz));
                let rv = q::<L>(L::add(q::<L>(L::add(xv, yv)), zv));
                let rinv2 = q::<L>(L::mul(rinv, rinv));
                let beta = q::<L>(L::mul(q::<L>(L::mul(threev, rv)), rinv2));
                let jx = q::<L>(L::sub(q::<L>(L::mul(mr3, dvx)), q::<L>(L::mul(beta, ax))));
                let jy = q::<L>(L::sub(q::<L>(L::mul(mr3, dvy)), q::<L>(L::mul(beta, ay))));
                let jz = q::<L>(L::sub(q::<L>(L::mul(mr3, dvz)), q::<L>(L::mul(beta, az))));
                // pot = −q(m·rinv): negation is an exact sign flip.
                let pot = L::from_bits(L::xor_i(L::to_bits(q::<L>(L::mul(m, rinv))), signv));
                // Stage 5a, lane-parallel half: shift onto each window's
                // grid and round — exactly `(x·scale).round_ties_even()`.
                L::store(
                    qax.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(ax, saccv)),
                );
                L::store(
                    qay.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(ay, saccv)),
                );
                L::store(
                    qaz.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(az, saccv)),
                );
                L::store(
                    qjx.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(jx, sjerkv)),
                );
                L::store(
                    qjy.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(jy, sjerkv)),
                );
                L::store(
                    qjz.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(jz, sjerkv)),
                );
                L::store(
                    qpot.as_mut_ptr().add(g),
                    L::round_ties_even(L::mul(pot, spotv)),
                );
                g += L::WIDTH;
            }
            // Stage 5b, sequential half: the order-sensitive i64 adds,
            // lane-major in ascending j — the exact add sequence of the
            // scalar kernels.  Padding (k ≥ cl) never enters.
            for k in 0..cl {
                lax.add_rounded(qax[k]);
            }
            for k in 0..cl {
                lay.add_rounded(qay[k]);
            }
            for k in 0..cl {
                laz.add_rounded(qaz[k]);
            }
            for k in 0..cl {
                ljx.add_rounded(qjx[k]);
            }
            for k in 0..cl {
                ljy.add_rounded(qjy[k]);
            }
            for k in 0..cl {
                ljz.add_rounded(qjz[k]);
            }
            for k in 0..cl {
                lp.add_rounded(qpot[k]);
            }
            if let Some(h2) = h2i {
                for k in 0..cl {
                    if r2_raw[k] < h2 && r2_raw[k] > 0.0 {
                        nb.push((j0 + k) as u32);
                    }
                }
            }
            // Deferred overflow check, once per chunk.
            if lax.flagged()
                || lay.flagged()
                || laz.flagged()
                || ljx.flagged()
                || ljy.flagged()
                || ljz.flagged()
                || lp.flagged()
            {
                return None;
            }
            j0 += cl;
        }
        Some(PartialForce {
            acc: [lax.into_accum()?, lay.into_accum()?, laz.into_accum()?],
            jerk: [ljx.into_accum()?, ljy.into_accum()?, ljz.into_accum()?],
            pot: lp.into_accum()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jmem::HwJParticle;
    use crate::kernel::{batched_row, batched_row_nb, CHUNK};
    use crate::pipeline::interact;
    use crate::predictor::predict;
    use grape6_arith::simd::{set_dispatch_override, DispatchOverride};
    use nbody_core::force::JParticle;
    use nbody_core::Vec3;
    use std::sync::Mutex;

    /// The dispatch override is process-global; tests that set or assert
    /// on it serialise here so the parallel test runner cannot race them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn predicted_set(n: usize, t: f64) -> Vec<PredictedJ> {
        let mut s = 0.731f64;
        let mut next = || {
            s = (s * 9301.0 + 0.2113).fract();
            s - 0.5
        };
        (0..n)
            .map(|_| {
                let hw = HwJParticle::from_host(&JParticle {
                    mass: 0.01 + (next() + 0.5) * 0.02,
                    t0: 0.0,
                    pos: Vec3::new(next(), next(), next()),
                    vel: Vec3::new(next(), next(), next()) * 0.4,
                    acc: Vec3::new(next(), next(), next()) * 0.05,
                    jerk: Vec3::new(next(), next(), next()) * 0.01,
                    snap: Vec3::ZERO,
                });
                predict(&hw, t)
            })
            .collect()
    }

    fn assert_pf_bits_equal(a: &PartialForce, b: &PartialForce) {
        for c in 0..3 {
            assert_eq!(a.acc[c].mant(), b.acc[c].mant(), "acc[{c}]");
            assert_eq!(a.jerk[c].mant(), b.jerk[c].mant(), "jerk[{c}]");
        }
        assert_eq!(a.pot.mant(), b.pot.mant(), "pot");
    }

    /// Run `f` once per dispatch level available on this host, including
    /// the forced-off fallback, restoring the override afterwards.
    fn for_each_level(mut f: impl FnMut(&str)) {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for (label, o) in [
            ("forced-scalar", DispatchOverride::ForceScalar),
            ("avx2-capped", DispatchOverride::CapAvx2),
            ("auto", DispatchOverride::Auto),
        ] {
            set_dispatch_override(o);
            f(label);
        }
        set_dispatch_override(DispatchOverride::Auto);
    }

    #[test]
    fn simd_row_matches_scalar_and_batched_bitwise_at_every_level() {
        let rsqrt = RsqrtCubedUnit::default();
        // Sizes crossing chunk and lane-width boundaries, incl. ragged
        // tails that exercise the zero padding.
        for n in [1, 3, 7, 8, 9, 63, CHUNK - 1, CHUNK, CHUNK + 1, CHUNK + 37] {
            let predicted = predicted_set(n, 0.0625);
            let mut batch = SoaBatch::default();
            batch.decode(&predicted);
            let exps = ExpSet::from_magnitudes(30.0, 300.0, 30.0);
            let ip =
                HwIParticle::from_host(Vec3::new(-0.2, -0.1, 0.3), Vec3::new(0.1, -0.2, 0.4), 1e-4);
            let mut want = PartialForce::new(exps);
            for jp in &predicted {
                interact(&rsqrt, &ip, jp, &mut want).unwrap();
            }
            let via_batched = batched_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap();
            assert_pf_bits_equal(&via_batched, &want);
            for_each_level(|label| {
                let got = simd_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap();
                assert_pf_bits_equal(&got, &want);
                let _ = label;
            });
        }
    }

    #[test]
    fn simd_row_nb_matches_batched_including_lists() {
        let rsqrt = RsqrtCubedUnit::default();
        let predicted = predicted_set(300, 0.0);
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let exps = ExpSet::from_magnitudes(100.0, 1000.0, 100.0);
        let h2 = 0.09;
        let ip = HwIParticle::from_host(Vec3::new(0.1, 0.0, -0.1), Vec3::ZERO, 1e-4);
        let mut nb_b = Vec::new();
        let want = batched_row_nb(&rsqrt, &ip, &batch, &predicted, exps, h2, &mut nb_b).unwrap();
        assert!(!nb_b.is_empty(), "test data should have neighbours");
        for_each_level(|label| {
            let mut nb_s = Vec::new();
            let got = simd_row_nb(&rsqrt, &ip, &batch, &predicted, exps, h2, &mut nb_s).unwrap();
            assert_pf_bits_equal(&got, &want);
            assert_eq!(nb_s, nb_b, "neighbour list diverged ({label})");
        });
    }

    #[test]
    fn simd_row_reproduces_scalar_overflow_error() {
        let rsqrt = RsqrtCubedUnit::default();
        let ip = HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 0.0);
        let predicted = vec![{
            let hw = HwJParticle::from_host(&JParticle {
                mass: 1.0,
                t0: 0.0,
                pos: Vec3::new(1e-4, 0.0, 0.0),
                ..Default::default()
            });
            predict(&hw, 0.0)
        }];
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let exps = ExpSet {
            acc: 2,
            jerk: 40,
            pot: 20,
        };
        let mut pf = PartialForce::new(exps);
        let want = interact(&rsqrt, &ip, &predicted[0], &mut pf).unwrap_err();
        for_each_level(|label| {
            let got = simd_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap_err();
            assert_eq!(got, want, "error must equal the oracle's ({label})");
        });
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn dispatch_reports_a_level_on_x86_hosts() {
        use grape6_arith::simd::SimdLevel;
        // Sanity for the CI matrix: on the hosts this repo gates on,
        // Auto must resolve to *some* SIMD level unless the env forced
        // it off.
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_dispatch_override(DispatchOverride::Auto);
        let lvl = grape6_arith::simd::active_level();
        if std::env::var("GRAPE6_FORCE_SCALAR").map(|v| !v.is_empty() && v != "0") == Ok(true) {
            assert_eq!(lvl, None);
        } else if is_x86_feature_detected!("avx2") {
            assert!(matches!(
                lvl,
                Some(SimdLevel::Avx2) | Some(SimdLevel::Avx512)
            ));
        }
    }
}
