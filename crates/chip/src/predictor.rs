//! The on-chip predictor pipeline (eqs. 6–7 of the paper).
//!
//! "To attach memory chips directly to the processor chips, we need to
//! integrate the predictor pipeline and the memory controller unit … to the
//! processor chip" (§3.4).  The predictor streams j-particles out of the
//! local memory and produces, for the current system time `t`, the predicted
//! position and velocity that the six force pipelines consume.
//!
//! Numerics, mirroring the hardware:
//!
//! * `Δt = t − t_j` and all polynomial terms are evaluated in the short
//!   pipeline float (each operation rounds);
//! * the resulting position *displacement* is added to the 64-bit
//!   fixed-point `x₀` — so the predicted position is again a fixed-point
//!   word and the downstream `x_j − x_i` subtraction stays exact;
//! * the predicted velocity stays in pipeline float.
//!
//! Note the sign of the quartic term: the paper's eq. (6) prints
//! `−Δt⁴/24·a⁽²⁾₀`; we use the plain Taylor `+Δt⁴/24·a⁽²⁾₀` (the printed
//! minus is an inconsistency in the paper — with their own eq. (7), whose
//! `Δt³/6·a⁽²⁾₀` velocity term is positive, d(x_p)/dt = v_p only holds with
//! the positive sign).  DESIGN.md records this deviation.

use grape6_arith::fixed::PosVec;
use grape6_arith::pfloat::PipeFloat;

use crate::jmem::HwJParticle;

/// Predicted j-particle state as delivered to the force pipelines.
#[derive(Clone, Copy, Debug)]
pub struct PredictedJ {
    /// Mass (pass-through from memory).
    pub mass: f64,
    /// Predicted position, fixed point.
    pub pos: PosVec,
    /// Predicted velocity, pipeline float values.
    pub vel: [f64; 3],
}

/// Evaluate the predictor polynomials for one j-particle at system time `t`.
///
/// Every arithmetic operation is performed in [`PipeFloat`] precision; the
/// displacement is applied to the fixed-point position at the end.
#[inline]
pub fn predict(p: &HwJParticle, t: f64) -> PredictedJ {
    let dt = PipeFloat::new(t - p.t0);
    // Horner evaluation matches the hardware's chained multiply-adds:
    // dx = dt(v + dt/2(a + dt/3(j + dt/4 s)))
    let half = PipeFloat::new(0.5);
    let third = PipeFloat::new(1.0 / 3.0);
    let quarter = PipeFloat::new(0.25);
    let mut dx = [0.0f64; 3];
    let mut vp = [0.0f64; 3];
    for c in 0..3 {
        let v = PipeFloat::new(p.vel[c]);
        let a = PipeFloat::new(p.acc[c]);
        let j = PipeFloat::new(p.jerk[c]);
        let s = PipeFloat::new(p.snap[c]);
        let disp = dt * (v + dt * half * (a + dt * third * (j + dt * quarter * s)));
        dx[c] = disp.get();
        // v_p = v + dt(a + dt/2(j + dt/3 s))
        let vel = v + dt * (a + dt * half * (j + dt * third * s));
        vp[c] = vel.get();
    }
    PredictedJ {
        mass: p.mass,
        pos: p.pos.offset_f64(dx),
        vel: vp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::{predict_j, JParticle};
    use nbody_core::Vec3;

    fn host_particle() -> JParticle {
        JParticle {
            mass: 0.25,
            t0: 0.5,
            pos: Vec3::new(0.1, -0.7, 0.4),
            vel: Vec3::new(0.5, 0.2, -0.3),
            acc: Vec3::new(-0.1, 0.3, 0.05),
            jerk: Vec3::new(0.02, -0.04, 0.01),
            snap: Vec3::new(0.004, 0.001, -0.002),
        }
    }

    #[test]
    fn zero_dt_returns_stored_state() {
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        let pred = predict(&hw, 0.5);
        assert_eq!(pred.pos, hw.pos);
        assert_eq!(pred.vel, hw.vel);
        assert_eq!(pred.mass, hw.mass);
    }

    #[test]
    fn matches_f64_predictor_to_pipeline_precision() {
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        for &t in &[0.5625f64, 0.625, 0.75, 1.0] {
            let pred = predict(&hw, t);
            let (x_ref, v_ref) = predict_j(&host, t);
            let x = pred.pos.to_f64();
            for c in 0..3 {
                // Displacements are O(0.1); pipeline rounding is 2^-24 per
                // op over a short chain — allow a few ulps of slack.
                assert!(
                    (x[c] - x_ref[c]).abs() < 1e-6,
                    "t={t} c={c}: {} vs {}",
                    x[c],
                    x_ref[c]
                );
                assert!((pred.vel[c] - v_ref[c]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn velocity_is_time_derivative_of_position() {
        // Central check that the quartic-term sign is consistent between
        // eqs. (6) and (7): (x(t+h) − x(t−h)) / 2h ≈ v(t).
        let hw = HwJParticle::from_host(&host_particle());
        let t = 0.75;
        let h = 1e-3;
        let xa = predict(&hw, t + h).pos.to_f64();
        let xb = predict(&hw, t - h).pos.to_f64();
        let v = predict(&hw, t).vel;
        for c in 0..3 {
            let num = (xa[c] - xb[c]) / (2.0 * h);
            assert!(
                (num - v[c]).abs() < 1e-4,
                "c={c}: numeric {num} vs predicted {}",
                v[c]
            );
        }
    }

    #[test]
    fn prediction_error_grows_with_dt() {
        // The quantised polynomial drifts from the f64 one as dt grows; the
        // drift must be monotone-ish and tiny for block-sized dts.
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        let err_at = |t: f64| {
            let pred = predict(&hw, t).pos.to_f64();
            let (x_ref, _) = predict_j(&host, t);
            (0..3)
                .map(|c| (pred[c] - x_ref[c]).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err_at(0.500001) < 1e-9);
        assert!(err_at(0.6) < 1e-6);
    }
}
