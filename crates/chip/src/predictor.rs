//! The on-chip predictor pipeline (eqs. 6–7 of the paper).
//!
//! "To attach memory chips directly to the processor chips, we need to
//! integrate the predictor pipeline and the memory controller unit … to the
//! processor chip" (§3.4).  The predictor streams j-particles out of the
//! local memory and produces, for the current system time `t`, the predicted
//! position and velocity that the six force pipelines consume.
//!
//! Numerics, mirroring the hardware:
//!
//! * `Δt = t − t_j` and all polynomial terms are evaluated in the short
//!   pipeline float (each operation rounds);
//! * the resulting position *displacement* is added to the 64-bit
//!   fixed-point `x₀` — so the predicted position is again a fixed-point
//!   word and the downstream `x_j − x_i` subtraction stays exact;
//! * the predicted velocity stays in pipeline float.
//!
//! Note the sign of the quartic term: the paper's eq. (6) prints
//! `−Δt⁴/24·a⁽²⁾₀`; we use the plain Taylor `+Δt⁴/24·a⁽²⁾₀` (the printed
//! minus is an inconsistency in the paper — with their own eq. (7), whose
//! `Δt³/6·a⁽²⁾₀` velocity term is positive, d(x_p)/dt = v_p only holds with
//! the positive sign).  DESIGN.md records this deviation.

use grape6_arith::fixed::PosVec;
use grape6_arith::pfloat::PipeFloat;
use grape6_arith::{quantize_sig_branchless, PIPE_SIG_BITS};

use crate::jmem::HwJParticle;

/// The Taylor coefficient ½, quantised to pipeline precision at compile
/// time.  Hoisted out of [`predict`] — constructing these per call put a
/// quantiser in front of every particle for values that never change.
pub const HALF: PipeFloat = PipeFloat::new(0.5);
/// The Taylor coefficient ⅓ on the pipeline grid (inexact in binary, so
/// the quantisation matters).
pub const THIRD: PipeFloat = PipeFloat::new(1.0 / 3.0);
/// The Taylor coefficient ¼ on the pipeline grid.
pub const QUARTER: PipeFloat = PipeFloat::new(0.25);

/// Predicted j-particle state as delivered to the force pipelines.
#[derive(Clone, Copy, Debug)]
pub struct PredictedJ {
    /// Mass (pass-through from memory).
    pub mass: f64,
    /// Predicted position, fixed point.
    pub pos: PosVec,
    /// Predicted velocity, pipeline float values.
    pub vel: [f64; 3],
}

/// Evaluate the predictor polynomials for one j-particle at system time `t`.
///
/// Every arithmetic operation is performed in [`PipeFloat`] precision; the
/// displacement is applied to the fixed-point position at the end.
#[inline]
pub fn predict(p: &HwJParticle, t: f64) -> PredictedJ {
    let dt = PipeFloat::new(t - p.t0);
    // Horner evaluation matches the hardware's chained multiply-adds:
    // dx = dt(v + dt/2(a + dt/3(j + dt/4 s)))
    let mut dx = [0.0f64; 3];
    let mut vp = [0.0f64; 3];
    for c in 0..3 {
        let v = PipeFloat::new(p.vel[c]);
        let a = PipeFloat::new(p.acc[c]);
        let j = PipeFloat::new(p.jerk[c]);
        let s = PipeFloat::new(p.snap[c]);
        let disp = dt * (v + dt * HALF * (a + dt * THIRD * (j + dt * QUARTER * s)));
        dx[c] = disp.get();
        // v_p = v + dt(a + dt/2(j + dt/3 s))
        let vel = v + dt * (a + dt * HALF * (j + dt * THIRD * s));
        vp[c] = vel.get();
    }
    PredictedJ {
        mass: p.mass,
        pos: p.pos.offset_f64(dx),
        vel: vp,
    }
}

/// Particles per predictor chunk.  The stage scratch (10 lanes of `f64`)
/// stays L1-resident and the per-chunk loop overhead amortises away.
const PCHUNK: usize = 64;

/// Evaluate the predictor for a whole j-stream at once — the batched SoA
/// counterpart of [`predict`], **bit-identical** to calling it per
/// particle.
///
/// The win is structural, not numerical: the three dt-products
/// (`dt·½`, `dt·⅓`, `dt·¼`) are computed once per *particle* instead of
/// hidden inside every coordinate's operator chain (safe: the same inputs
/// round to the same bits), and the per-coordinate polynomial becomes a
/// flat counted loop over chunk scratch the compiler can keep in vector
/// registers.  Every individual operation is the same single-rounded
/// `quantize_sig` the [`PipeFloat`] operators perform, in the same order.
///
/// Inputs are re-quantised exactly as `PipeFloat::new` does in [`predict`]
/// — not a no-op in general, because stuck-bit memory faults
/// ([`crate::jmem::StuckBit`]) can hold off-grid words.
///
/// `out` is cleared and refilled (capacity is retained across passes).
// Counted `for k in 0..cl` loops over equal-length stack arrays are what
// the auto-vectoriser recognises; clippy's preferred iterator zips would
// obscure that.
#[allow(clippy::needless_range_loop)]
pub fn predict_batch(stream: &[HwJParticle], t: f64, out: &mut Vec<PredictedJ>) {
    #[inline(always)]
    fn q(x: f64) -> f64 {
        quantize_sig_branchless(x, PIPE_SIG_BITS)
    }
    let half = HALF.get();
    let third = THIRD.get();
    let quarter = QUARTER.get();
    out.clear();
    out.reserve(stream.len());
    // Per-particle dt terms, then per-coordinate polynomial scratch.
    let mut dt = [0.0f64; PCHUNK];
    let mut dth = [0.0f64; PCHUNK];
    let mut dtt = [0.0f64; PCHUNK];
    let mut dtq = [0.0f64; PCHUNK];
    let mut dx = [[0.0f64; PCHUNK]; 3];
    let mut vp = [[0.0f64; PCHUNK]; 3];
    let mut j0 = 0;
    while j0 < stream.len() {
        let cl = (stream.len() - j0).min(PCHUNK);
        let chunk = &stream[j0..j0 + cl];
        // Stage 1: dt and its three hoisted coefficient products.
        for k in 0..cl {
            let d = q(t - chunk[k].t0);
            dt[k] = d;
            dth[k] = q(d * half);
            dtt[k] = q(d * third);
            dtq[k] = q(d * quarter);
        }
        // Stage 2: the two Horner chains, one flat pass per coordinate.
        // Parenthesisation spells out the scalar operator chain: every
        // `q(..)` below is one `PipeFloat` operation's single rounding.
        for c in 0..3 {
            for k in 0..cl {
                let p = &chunk[k];
                let v = q(p.vel[c]);
                let a = q(p.acc[c]);
                let j = q(p.jerk[c]);
                let s = q(p.snap[c]);
                // dx = dt(v + dt/2(a + dt/3(j + dt/4 s)))
                let inner = q(j + q(dtq[k] * s));
                let mid = q(a + q(dtt[k] * inner));
                let outer = q(v + q(dth[k] * mid));
                dx[c][k] = q(dt[k] * outer);
                // v_p = v + dt(a + dt/2(j + dt/3 s))
                let vin = q(j + q(dtt[k] * s));
                let vmid = q(a + q(dth[k] * vin));
                vp[c][k] = q(v + q(dt[k] * vmid));
            }
        }
        // Stage 3: apply displacements to the fixed-point positions.
        for k in 0..cl {
            let p = &chunk[k];
            out.push(PredictedJ {
                mass: p.mass,
                pos: p.pos.offset_f64([dx[0][k], dx[1][k], dx[2][k]]),
                vel: [vp[0][k], vp[1][k], vp[2][k]],
            });
        }
        j0 += cl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::{predict_j, JParticle};
    use nbody_core::Vec3;

    fn host_particle() -> JParticle {
        JParticle {
            mass: 0.25,
            t0: 0.5,
            pos: Vec3::new(0.1, -0.7, 0.4),
            vel: Vec3::new(0.5, 0.2, -0.3),
            acc: Vec3::new(-0.1, 0.3, 0.05),
            jerk: Vec3::new(0.02, -0.04, 0.01),
            snap: Vec3::new(0.004, 0.001, -0.002),
        }
    }

    #[test]
    fn zero_dt_returns_stored_state() {
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        let pred = predict(&hw, 0.5);
        assert_eq!(pred.pos, hw.pos);
        assert_eq!(pred.vel, hw.vel);
        assert_eq!(pred.mass, hw.mass);
    }

    #[test]
    fn matches_f64_predictor_to_pipeline_precision() {
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        for &t in &[0.5625f64, 0.625, 0.75, 1.0] {
            let pred = predict(&hw, t);
            let (x_ref, v_ref) = predict_j(&host, t);
            let x = pred.pos.to_f64();
            for c in 0..3 {
                // Displacements are O(0.1); pipeline rounding is 2^-24 per
                // op over a short chain — allow a few ulps of slack.
                assert!(
                    (x[c] - x_ref[c]).abs() < 1e-6,
                    "t={t} c={c}: {} vs {}",
                    x[c],
                    x_ref[c]
                );
                assert!((pred.vel[c] - v_ref[c]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn velocity_is_time_derivative_of_position() {
        // Central check that the quartic-term sign is consistent between
        // eqs. (6) and (7): (x(t+h) − x(t−h)) / 2h ≈ v(t).
        let hw = HwJParticle::from_host(&host_particle());
        let t = 0.75;
        let h = 1e-3;
        let xa = predict(&hw, t + h).pos.to_f64();
        let xb = predict(&hw, t - h).pos.to_f64();
        let v = predict(&hw, t).vel;
        for c in 0..3 {
            let num = (xa[c] - xb[c]) / (2.0 * h);
            assert!(
                (num - v[c]).abs() < 1e-4,
                "c={c}: numeric {num} vs predicted {}",
                v[c]
            );
        }
    }

    #[test]
    fn prediction_error_grows_with_dt() {
        // The quantised polynomial drifts from the f64 one as dt grows; the
        // drift must be monotone-ish and tiny for block-sized dts.
        let host = host_particle();
        let hw = HwJParticle::from_host(&host);
        let err_at = |t: f64| {
            let pred = predict(&hw, t).pos.to_f64();
            let (x_ref, _) = predict_j(&host, t);
            (0..3)
                .map(|c| (pred[c] - x_ref[c]).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err_at(0.500001) < 1e-9);
        assert!(err_at(0.6) < 1e-6);
    }

    #[test]
    fn hoisted_constants_equal_runtime_construction() {
        assert_eq!(HALF.get().to_bits(), PipeFloat::new(0.5).get().to_bits());
        assert_eq!(
            THIRD.get().to_bits(),
            PipeFloat::new(1.0 / 3.0).get().to_bits()
        );
        assert_eq!(
            QUARTER.get().to_bits(),
            PipeFloat::new(0.25).get().to_bits()
        );
    }

    #[test]
    fn predict_batch_is_bitwise_identical_to_predict() {
        // Deterministic xorshift sweep, including off-grid words (stuck-bit
        // faults can hold them) and odd chunk-boundary lengths.
        let mut s = 0x243f_6a88_85a3_08d3u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut smallf = |scale: f64| (next() as f64 / u64::MAX as f64 - 0.5) * scale;
        for n in [0usize, 1, 3, 63, 64, 65, 200] {
            let stream: Vec<HwJParticle> = (0..n)
                .map(|i| {
                    let mut hw = HwJParticle::from_host(&JParticle {
                        mass: 0.01 + smallf(0.02).abs(),
                        t0: 0.5,
                        pos: Vec3::new(smallf(1.0), smallf(1.0), smallf(1.0)),
                        vel: Vec3::new(smallf(0.8), smallf(0.8), smallf(0.8)),
                        acc: Vec3::new(smallf(0.1), smallf(0.1), smallf(0.1)),
                        jerk: Vec3::new(smallf(0.02), smallf(0.02), smallf(0.02)),
                        snap: Vec3::new(smallf(0.004), smallf(0.004), smallf(0.004)),
                    });
                    // Every third particle gets an off-grid (un-quantised)
                    // velocity word, as a stuck bit would leave behind.
                    if i % 3 == 0 {
                        hw.vel[i % 3] = f64::from_bits(hw.vel[i % 3].to_bits() | 1);
                    }
                    hw
                })
                .collect();
            for &t in &[0.5f64, 0.5625, 0.75, 1.0] {
                let mut got = Vec::new();
                predict_batch(&stream, t, &mut got);
                assert_eq!(got.len(), n);
                for (k, (g, p)) in got.iter().zip(&stream).enumerate() {
                    let want = predict(p, t);
                    assert_eq!(g.pos, want.pos, "pos n={n} t={t} k={k}");
                    for c in 0..3 {
                        assert_eq!(
                            g.vel[c].to_bits(),
                            want.vel[c].to_bits(),
                            "vel n={n} t={t} k={k} c={c}"
                        );
                    }
                    assert_eq!(g.mass.to_bits(), want.mass.to_bits());
                }
            }
        }
    }
}
