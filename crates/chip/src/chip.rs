//! The assembled GRAPE-6 processor chip.
//!
//! Six force pipelines, each 8-way virtually multipipelined (VMP), share one
//! j-particle memory stream: every memory word is fetched once per 8 clock
//! cycles and meanwhile each pipeline cycles through its 8 virtual
//! i-particles, so the chip computes forces on **48 i-particles in
//! parallel** (§3.4: "A GRAPE-6 chip integrates six 8-way VMP pipelines.
//! Therefore it calculates the forces on 48 particles in parallel").
//!
//! Cycle accounting (the quantity the performance model consumes):
//!
//! ```text
//! cycles(block) = pipeline_depth + vmp_ways · n_j      (per chip pass)
//! ```
//!
//! — streaming `n_j` particles costs `vmp_ways · n_j` cycles because each
//! j is held for 8 cycles while the virtual pipelines consume it, and the
//! fill/drain latency of the ~30-stage arithmetic pipeline is paid once per
//! pass.  At 90 MHz with 57 flops per interaction this yields the chip's
//! 30.8 Gflops peak, reproduced in the tests.

use grape6_arith::blockfp::BlockFpError;
use grape6_arith::rsqrt::RsqrtCubedUnit;
use nbody_core::force::JParticle;

use crate::jmem::{HwJParticle, JMemory, StuckBit};
use crate::kernel::{batched_row, batched_row_nb, KernelMode, SoaBatch};
use crate::kernel_simd::{simd_row, simd_row_nb};
use crate::pipeline::{interact, ExpSet, HwIParticle, PartialForce};
use crate::predictor::{predict, predict_batch, PredictedJ};

pub use crate::pipeline::HwIParticle as IRegister;

/// i-particles processed in parallel by one chip (6 pipelines × 8-way VMP).
pub const I_PARALLEL_PER_CHIP: usize = 48;

/// Physical parameters of the chip.
#[derive(Clone, Copy, Debug)]
pub struct ChipConfig {
    /// Number of force pipelines on the die (6 for the real chip).
    pub pipelines: usize,
    /// Virtual multipipelining ways per pipeline (8).
    pub vmp_ways: usize,
    /// Pipeline clock in Hz (90 MHz).
    pub clock_hz: f64,
    /// j-memory capacity in particles.
    pub jmem_capacity: usize,
    /// Fill/drain latency of the arithmetic pipeline, in cycles.
    pub pipeline_depth: u64,
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self {
            pipelines: 6,
            vmp_ways: 8,
            clock_hz: 90.0e6,
            jmem_capacity: 16_384,
            pipeline_depth: 30,
        }
    }
}

impl ChipConfig {
    /// i-particles served in parallel by this configuration.
    pub fn i_parallelism(&self) -> usize {
        self.pipelines * self.vmp_ways
    }

    /// Theoretical peak in flops: `pipelines · clock · 57`.
    pub fn peak_flops(&self) -> f64 {
        self.pipelines as f64 * self.clock_hz * nbody_core::FLOPS_PER_INTERACTION
    }
}

/// One simulated processor chip.
#[derive(Clone, Debug)]
pub struct Chip {
    cfg: ChipConfig,
    jmem: JMemory,
    rsqrt: RsqrtCubedUnit,
    time: f64,
    cycles: u64,
    interactions: u64,
    /// Scratch buffer of predicted j-particles, reused across passes.
    predicted: Vec<PredictedJ>,
    /// Which force-pass kernel runs (bitwise-identical either way).
    kernel: KernelMode,
    /// SoA decode of `predicted`, reused across passes (batched kernel).
    soa: SoaBatch,
    /// Fault injection: the whole chip is dead (returns zeros, burns no
    /// cycles — it simply never answers the reduction network).
    dead: bool,
    /// Fault injection: bitmask of dead physical pipelines.  A dead
    /// pipeline's 8 virtual i-slots return zeros, but cycles are still
    /// charged — the memory stream runs regardless.
    dead_pipelines: u64,
}

impl Chip {
    /// Build a chip.
    pub fn new(cfg: ChipConfig) -> Self {
        Self {
            jmem: JMemory::new(cfg.jmem_capacity),
            rsqrt: RsqrtCubedUnit::default(),
            time: 0.0,
            cycles: 0,
            interactions: 0,
            predicted: Vec::new(),
            kernel: KernelMode::default(),
            soa: SoaBatch::default(),
            dead: false,
            dead_pipelines: 0,
            cfg,
        }
    }

    /// Select the force-pass kernel.  Results are bitwise identical in
    /// either mode; cycle and interaction accounting are unaffected.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.kernel = mode;
    }

    /// The force-pass kernel currently selected.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Kill or revive the whole chip (fault injection).  A dead chip
    /// silently returns all-zero partial forces and consumes no cycles.
    pub fn set_dead(&mut self, dead: bool) {
        self.dead = dead;
    }

    /// True if the chip has been killed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Kill one physical pipeline (fault injection).  Its 8 virtual
    /// i-slots return zeros; the other pipelines are unaffected.
    pub fn set_pipeline_dead(&mut self, pipeline: usize) {
        assert!(
            pipeline < self.cfg.pipelines,
            "pipeline {pipeline} out of range ({} on die)",
            self.cfg.pipelines
        );
        self.dead_pipelines |= 1 << pipeline;
    }

    /// Bitmask of dead pipelines.
    pub fn dead_pipelines(&self) -> u64 {
        self.dead_pipelines
    }

    /// Jam a j-memory data line stuck at 1 (fault injection).
    pub fn add_stuck_jmem_bit(&mut self, s: StuckBit) {
        self.jmem.add_stuck_bit(s);
    }

    /// Zero the virtual i-slots served by dead pipelines.  VMP slot `k`
    /// belongs to physical pipeline `k / vmp_ways`.
    fn censor_dead_pipelines(&self, out: &mut [PartialForce], exps: &[ExpSet]) {
        if self.dead_pipelines == 0 {
            return;
        }
        for (k, pf) in out.iter_mut().enumerate() {
            let pipe = k / self.cfg.vmp_ways;
            if self.dead_pipelines & (1 << pipe) != 0 {
                *pf = PartialForce::new(exps[k]);
            }
        }
    }

    /// The chip's configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Number of j-particles currently streamed.
    pub fn n_j(&self) -> usize {
        self.jmem.len()
    }

    /// Write a j-particle (host → interface card → memory format).
    pub fn load_j(&mut self, addr: usize, p: &JParticle) {
        self.jmem.write(addr, HwJParticle::from_host(p));
    }

    /// Set the system time the predictor pipeline targets.
    pub fn set_time(&mut self, t: f64) {
        self.time = t;
    }

    /// Current system time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Total clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total pairwise interactions evaluated so far.
    pub fn interactions(&self) -> u64 {
        self.interactions
    }

    /// Virtual seconds of pipeline time consumed.
    pub fn elapsed_secs(&self) -> f64 {
        self.cycles as f64 / self.cfg.clock_hz
    }

    /// Drop all j-particles and reset time (not the counters).
    pub fn clear(&mut self) {
        self.jmem.clear();
        self.time = 0.0;
    }

    /// Run one chip pass: forces on up to 48 i-particles from every stored
    /// j-particle, with the given per-i block exponents.
    ///
    /// On any block-FP overflow the pass aborts with the error and consumed
    /// cycles are still charged — the host pays for failed passes, exactly
    /// as the real machine does when it retries with a corrected exponent.
    pub fn compute_block(
        &mut self,
        i_regs: &[HwIParticle],
        exps: &[ExpSet],
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        assert!(
            i_regs.len() <= self.cfg.i_parallelism(),
            "block of {} exceeds chip i-parallelism {}",
            i_regs.len(),
            self.cfg.i_parallelism()
        );
        assert_eq!(i_regs.len(), exps.len(), "one ExpSet per i-particle");
        if self.dead {
            // A dead chip never answers: all-zero partials, no cycles.
            return Ok(exps.iter().map(|&e| PartialForce::new(e)).collect());
        }
        self.charge_and_predict(i_regs.len());
        // Force pipelines.  Accumulation order is irrelevant (block FP), so
        // iterate i-outer/j-inner for locality.
        let mut out = Vec::with_capacity(i_regs.len());
        match self.kernel {
            KernelMode::Scalar => {
                for (ip, &exp) in i_regs.iter().zip(exps) {
                    let mut pf = PartialForce::new(exp);
                    for jp in &self.predicted {
                        interact(&self.rsqrt, ip, jp, &mut pf)?;
                    }
                    out.push(pf);
                }
            }
            KernelMode::Batched => {
                self.soa.decode(&self.predicted);
                for (ip, &exp) in i_regs.iter().zip(exps) {
                    out.push(batched_row(
                        &self.rsqrt,
                        ip,
                        &self.soa,
                        &self.predicted,
                        exp,
                    )?);
                }
            }
            KernelMode::Simd => {
                self.soa.decode(&self.predicted);
                for (ip, &exp) in i_regs.iter().zip(exps) {
                    out.push(simd_row(&self.rsqrt, ip, &self.soa, &self.predicted, exp)?);
                }
            }
        }
        self.censor_dead_pipelines(&mut out, exps);
        Ok(out)
    }

    /// Like [`Chip::compute_block`], but also runs the hardware
    /// neighbour-detection comparators: for each i-particle, the local
    /// addresses of every j with unsoftened `r² < h2[i]` (the j-particle
    /// coincident with the i-particle, `r = 0`, is not listed — the
    /// pipeline does not flag self-pairs).
    ///
    /// The lists are written into `lists`, which is resized to
    /// `i_regs.len()` with each entry cleared and refilled — a caller that
    /// keeps the buffer across passes pays no per-i allocation in steady
    /// state (the scratch-reuse pattern of the `predicted` buffer, pushed
    /// out to the caller).  On `Err` the list contents are unspecified.
    pub fn compute_block_nb(
        &mut self,
        i_regs: &[HwIParticle],
        exps: &[ExpSet],
        h2: &[f64],
        lists: &mut Vec<Vec<u32>>,
    ) -> Result<Vec<PartialForce>, BlockFpError> {
        assert!(i_regs.len() <= self.cfg.i_parallelism());
        assert_eq!(i_regs.len(), exps.len());
        assert_eq!(
            i_regs.len(),
            h2.len(),
            "one neighbour radius per i-particle"
        );
        lists.resize_with(i_regs.len(), Vec::new);
        if self.dead {
            for nb in lists.iter_mut() {
                nb.clear();
            }
            return Ok(exps.iter().map(|&e| PartialForce::new(e)).collect());
        }
        self.charge_and_predict(i_regs.len());
        let mut out = Vec::with_capacity(i_regs.len());
        match self.kernel {
            KernelMode::Scalar => {
                for (((ip, &exp), &h2i), nb) in
                    i_regs.iter().zip(exps).zip(h2).zip(lists.iter_mut())
                {
                    let mut pf = PartialForce::new(exp);
                    nb.clear();
                    for (addr, jp) in self.predicted.iter().enumerate() {
                        let r2 = interact(&self.rsqrt, ip, jp, &mut pf)?;
                        if r2 < h2i && r2 > 0.0 {
                            nb.push(addr as u32);
                        }
                    }
                    out.push(pf);
                }
            }
            KernelMode::Batched => {
                self.soa.decode(&self.predicted);
                for (((ip, &exp), &h2i), nb) in
                    i_regs.iter().zip(exps).zip(h2).zip(lists.iter_mut())
                {
                    out.push(batched_row_nb(
                        &self.rsqrt,
                        ip,
                        &self.soa,
                        &self.predicted,
                        exp,
                        h2i,
                        nb,
                    )?);
                }
            }
            KernelMode::Simd => {
                self.soa.decode(&self.predicted);
                for (((ip, &exp), &h2i), nb) in
                    i_regs.iter().zip(exps).zip(h2).zip(lists.iter_mut())
                {
                    out.push(simd_row_nb(
                        &self.rsqrt,
                        ip,
                        &self.soa,
                        &self.predicted,
                        exp,
                        h2i,
                        nb,
                    )?);
                }
            }
        }
        self.censor_dead_pipelines(&mut out, exps);
        if self.dead_pipelines != 0 {
            for (k, nb) in lists.iter_mut().enumerate() {
                if self.dead_pipelines & (1 << (k / self.cfg.vmp_ways)) != 0 {
                    nb.clear();
                }
            }
        }
        Ok(out)
    }

    /// Shared pass prologue: charge cycles up front (the hardware streams
    /// the whole memory regardless of whether the host later accepts the
    /// result) and run the predictor pipeline over every stored j.
    ///
    /// The batched kernels use the batched SoA predictor pass; the scalar
    /// oracle keeps the per-particle loop so a `KernelMode::Scalar` run
    /// remains an end-to-end independent reference.  The two are bitwise
    /// identical (`predict_batch` contract).
    fn charge_and_predict(&mut self, n_i: usize) {
        let n_j = self.jmem.len();
        if n_j > 0 && n_i > 0 {
            self.cycles += self.cfg.pipeline_depth + (self.cfg.vmp_ways as u64) * n_j as u64;
            self.interactions += (n_i * n_j) as u64;
        }
        let t = self.time;
        match self.kernel {
            KernelMode::Scalar => {
                self.predicted.clear();
                self.predicted.reserve(n_j);
                for p in self.jmem.stream() {
                    self.predicted.push(predict(p, t));
                }
            }
            KernelMode::Batched | KernelMode::Simd => {
                predict_batch(self.jmem.stream(), t, &mut self.predicted);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::{DirectEngine, ForceEngine, ForceResult, IParticle};
    use nbody_core::Vec3;

    fn test_system(n: usize) -> (Vec<f64>, Vec<Vec3>, Vec<Vec3>) {
        // Deterministic scattered particles in the unit box.
        let mut mass = Vec::new();
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        let mut s = 0.4321f64;
        let mut next = || {
            s = (s * 9301.0 + 0.2113).fract();
            s - 0.5
        };
        for _ in 0..n {
            mass.push(0.5 / n as f64 + (next() + 0.5) / n as f64);
            pos.push(Vec3::new(next(), next(), next()));
            vel.push(Vec3::new(next(), next(), next()) * 0.3);
        }
        (mass, pos, vel)
    }

    fn load_chip(chip: &mut Chip, mass: &[f64], pos: &[Vec3], vel: &[Vec3]) {
        for k in 0..mass.len() {
            chip.load_j(
                k,
                &JParticle {
                    mass: mass[k],
                    t0: 0.0,
                    pos: pos[k],
                    vel: vel[k],
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn chip_matches_f64_engine_to_pipeline_precision() {
        let (mass, pos, vel) = test_system(64);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        chip.set_time(0.0);

        let mut reference = DirectEngine::new(64);
        for k in 0..64 {
            reference.set_j_particle(
                k,
                &JParticle {
                    mass: mass[k],
                    t0: 0.0,
                    pos: pos[k],
                    vel: vel[k],
                    ..Default::default()
                },
            );
        }
        reference.set_time(0.0);

        let eps2 = 1e-4;
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], eps2))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(30.0, 300.0, 30.0); 48];
        let hw = chip.compute_block(&i_regs, &exps).unwrap();

        let ips: Vec<IParticle> = (0..48)
            .map(|k| IParticle {
                pos: pos[k],
                vel: vel[k],
                eps2,
            })
            .collect();
        let mut want = vec![ForceResult::default(); 48];
        reference.compute(&ips, &mut want);

        for k in 0..48 {
            let got = hw[k].to_force_result();
            let da = (got.acc - want[k].acc).norm() / want[k].acc.norm();
            assert!(da < 3e-5, "i={k}: rel acc err {da:e}");
            let dj = (got.jerk - want[k].jerk).norm() / want[k].jerk.norm().max(1e-3);
            assert!(dj < 3e-4, "i={k}: rel jerk err {dj:e}");
            let dp = (got.pot - want[k].pot).abs() / want[k].pot.abs();
            assert!(dp < 3e-5, "i={k}: rel pot err {dp:e}");
        }
    }

    #[test]
    fn cycle_accounting_formula() {
        let (mass, pos, vel) = test_system(100);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k % 100], vel[k % 100], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(50.0, 500.0, 50.0); 48];
        chip.compute_block(&i_regs, &exps).unwrap();
        assert_eq!(chip.cycles(), 30 + 8 * 100);
        assert_eq!(chip.interactions(), 48 * 100);
        // Second pass accumulates.
        chip.compute_block(&i_regs, &exps).unwrap();
        assert_eq!(chip.cycles(), 2 * (30 + 8 * 100));
    }

    #[test]
    fn peak_flops_is_30_8_gflops() {
        let cfg = ChipConfig::default();
        assert!((cfg.peak_flops() / 1e9 - 30.78).abs() < 0.01);
        assert_eq!(cfg.i_parallelism(), I_PARALLEL_PER_CHIP);
    }

    #[test]
    fn sustained_flops_approach_peak_for_large_nj() {
        // Efficiency = (48·n_j interactions) / ((depth + 8 n_j) cycles · 6
        // pipes per cycle) → 1 as n_j → ∞.
        let (mass, pos, vel) = test_system(2000);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(100.0, 5000.0, 100.0); 48];
        chip.compute_block(&i_regs, &exps).unwrap();
        let flops = chip.interactions() as f64 * nbody_core::FLOPS_PER_INTERACTION;
        let sustained = flops / chip.elapsed_secs();
        let eff = sustained / chip.config().peak_flops();
        assert!(eff > 0.99, "efficiency {eff}");
    }

    #[test]
    fn partial_blocks_waste_parallelism() {
        // 1 i-particle costs the same cycles as 48 — the §3.4 argument for
        // keeping the machine's i-parallelism near 100, not 1000.
        let (mass, pos, vel) = test_system(500);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        let one = vec![HwIParticle::from_host(pos[0], vel[0], 1e-4)];
        let exps = vec![ExpSet::from_magnitudes(100.0, 1000.0, 100.0)];
        chip.compute_block(&one, &exps).unwrap();
        let cycles_one = chip.cycles();
        let mut chip2 = Chip::new(ChipConfig::default());
        load_chip(&mut chip2, &mass, &pos, &vel);
        let full: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(100.0, 1000.0, 100.0); 48];
        chip2.compute_block(&full, &exps).unwrap();
        assert_eq!(cycles_one, chip2.cycles());
        assert_eq!(chip2.interactions(), 48 * chip.interactions());
    }

    #[test]
    fn two_chip_partition_is_bit_identical() {
        // Split the j-set over two chips and merge: mantissas must equal
        // the single-chip result exactly (§3.4 reproducibility).
        let (mass, pos, vel) = test_system(90);
        let mut whole = Chip::new(ChipConfig::default());
        load_chip(&mut whole, &mass, &pos, &vel);
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(40.0, 400.0, 40.0); 48];
        let full = whole.compute_block(&i_regs, &exps).unwrap();

        let mut a = Chip::new(ChipConfig::default());
        let mut b = Chip::new(ChipConfig::default());
        load_chip(&mut a, &mass[..40], &pos[..40], &vel[..40]);
        load_chip(&mut b, &mass[40..], &pos[40..], &vel[40..]);
        let fa = a.compute_block(&i_regs, &exps).unwrap();
        let fb = b.compute_block(&i_regs, &exps).unwrap();
        for k in 0..48 {
            let mut merged = fa[k];
            merged.merge(&fb[k]).unwrap();
            for c in 0..3 {
                assert_eq!(merged.acc[c].mant(), full[k].acc[c].mant(), "i={k} c={c}");
                assert_eq!(merged.jerk[c].mant(), full[k].jerk[c].mant());
            }
            assert_eq!(merged.pot.mant(), full[k].pot.mant());
        }
    }

    #[test]
    fn neighbour_detection_matches_brute_force() {
        let (mass, pos, vel) = test_system(300);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        chip.set_time(0.0);
        let h2 = 0.09; // h = 0.3
        let i_regs: Vec<HwIParticle> = (0..4)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(100.0, 1000.0, 100.0); 4];
        let mut lists = Vec::new();
        let forces = chip
            .compute_block_nb(&i_regs, &exps, &[h2; 4], &mut lists)
            .unwrap();
        assert_eq!(forces.len(), 4);
        for k in 0..4 {
            let want: Vec<u32> = (0..300)
                .filter(|&j| {
                    let d2 = (pos[j] - pos[k]).norm2();
                    d2 > 0.0 && d2 < h2
                })
                .map(|j| j as u32)
                .collect();
            // The comparator works in pipeline precision, so particles
            // within a few ulps of the sphere may differ; for this data
            // the lists must match exactly (no boundary coincidences).
            assert_eq!(lists[k], want, "i={k}");
        }
        // And the forces are the same as the plain path.
        let mut chip2 = Chip::new(ChipConfig::default());
        load_chip(&mut chip2, &mass, &pos, &vel);
        chip2.set_time(0.0);
        let plain = chip2.compute_block(&i_regs, &exps).unwrap();
        for k in 0..4 {
            assert_eq!(forces[k].acc[0].mant(), plain[k].acc[0].mant());
            assert_eq!(forces[k].pot.mant(), plain[k].pot.mant());
        }
    }

    #[test]
    fn dead_chip_returns_zeros_and_no_cycles() {
        let (mass, pos, vel) = test_system(64);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        chip.set_dead(true);
        assert!(chip.is_dead());
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(30.0, 300.0, 30.0); 48];
        let out = chip.compute_block(&i_regs, &exps).unwrap();
        for pf in &out {
            let f = pf.to_force_result();
            assert_eq!(f.acc.norm(), 0.0);
            assert_eq!(f.pot, 0.0);
        }
        assert_eq!(chip.cycles(), 0);
        assert_eq!(chip.interactions(), 0);
    }

    #[test]
    fn dead_pipeline_zeros_its_vmp_slots_only() {
        let (mass, pos, vel) = test_system(64);
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, &mass, &pos, &vel);
        chip.set_pipeline_dead(2); // slots 16..24
        let i_regs: Vec<HwIParticle> = (0..48)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(30.0, 300.0, 30.0); 48];
        let out = chip.compute_block(&i_regs, &exps).unwrap();
        for (k, pf) in out.iter().enumerate() {
            let f = pf.to_force_result();
            if (16..24).contains(&k) {
                assert_eq!(f.acc.norm(), 0.0, "slot {k} served by dead pipe");
            } else {
                assert!(f.acc.norm() > 0.0, "slot {k} healthy");
            }
        }
        // Cycles are still charged: the memory stream runs regardless.
        assert_eq!(chip.cycles(), 30 + 8 * 64);
    }

    #[test]
    fn stuck_jmem_bit_perturbs_forces() {
        let (mass, pos, vel) = test_system(64);
        let mut healthy = Chip::new(ChipConfig::default());
        load_chip(&mut healthy, &mass, &pos, &vel);
        let mut broken = Chip::new(ChipConfig::default());
        broken.add_stuck_jmem_bit(crate::jmem::StuckBit {
            addr: 0,
            lane: 0,
            bit: 56,
        });
        load_chip(&mut broken, &mass, &pos, &vel);
        // Pin a positive x at the faulted address so bit 56 (= 0.5 length
        // units) is guaranteed clear before the fault forces it high.
        let pinned = JParticle {
            mass: mass[0],
            t0: 0.0,
            pos: nbody_core::Vec3::new(0.125, 0.2, -0.3),
            vel: vel[0],
            ..Default::default()
        };
        healthy.load_j(0, &pinned);
        broken.load_j(0, &pinned);
        let i_regs: Vec<HwIParticle> = (0..8)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(30.0, 300.0, 30.0); 8];
        let a = healthy.compute_block(&i_regs, &exps).unwrap();
        let b = broken.compute_block(&i_regs, &exps).unwrap();
        let differs = (0..8).any(|k| {
            a[k].acc[0].mant() != b[k].acc[0].mant() || a[k].pot.mant() != b[k].pot.mant()
        });
        assert!(differs, "bit 56 (0.5 length units) must move the forces");
    }

    #[test]
    fn scalar_and_batched_kernels_are_bitwise_identical() {
        let (mass, pos, vel) = test_system(130);
        let run = |mode: KernelMode| {
            let mut chip = Chip::new(ChipConfig::default());
            chip.set_kernel_mode(mode);
            assert_eq!(chip.kernel_mode(), mode);
            load_chip(&mut chip, &mass, &pos, &vel);
            chip.set_time(0.0);
            let i_regs: Vec<HwIParticle> = (0..48)
                .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
                .collect();
            let exps = vec![ExpSet::from_magnitudes(50.0, 500.0, 50.0); 48];
            let out = chip.compute_block(&i_regs, &exps).unwrap();
            (out, chip.cycles(), chip.interactions())
        };
        let (scalar, sc_cycles, sc_inter) = run(KernelMode::Scalar);
        for mode in [KernelMode::Batched, KernelMode::Simd] {
            let (other, cycles, inter) = run(mode);
            // Identical accounting — the kernel is a host-side
            // implementation detail, invisible to the simulated hardware.
            assert_eq!(sc_cycles, cycles);
            assert_eq!(sc_inter, inter);
            for k in 0..48 {
                for c in 0..3 {
                    assert_eq!(
                        scalar[k].acc[c].mant(),
                        other[k].acc[c].mant(),
                        "i={k} mode={mode:?}"
                    );
                    assert_eq!(scalar[k].jerk[c].mant(), other[k].jerk[c].mant());
                }
                assert_eq!(scalar[k].pot.mant(), other[k].pot.mant());
            }
        }
    }

    #[test]
    fn kernels_agree_on_neighbour_path_and_reuse_buffers() {
        let (mass, pos, vel) = test_system(200);
        let h2 = 0.09;
        let i_regs: Vec<HwIParticle> = (0..8)
            .map(|k| HwIParticle::from_host(pos[k], vel[k], 1e-4))
            .collect();
        let exps = vec![ExpSet::from_magnitudes(100.0, 1000.0, 100.0); 8];
        let run = |mode: KernelMode, lists: &mut Vec<Vec<u32>>| {
            let mut chip = Chip::new(ChipConfig::default());
            chip.set_kernel_mode(mode);
            load_chip(&mut chip, &mass, &pos, &vel);
            chip.set_time(0.0);
            chip.compute_block_nb(&i_regs, &exps, &[h2; 8], lists)
                .unwrap()
        };
        let mut sc_lists = Vec::new();
        let mut bt_lists = Vec::new();
        let scalar = run(KernelMode::Scalar, &mut sc_lists);
        let batched = run(KernelMode::Batched, &mut bt_lists);
        assert_eq!(sc_lists, bt_lists);
        assert!(sc_lists.iter().any(|l| !l.is_empty()));
        for k in 0..8 {
            assert_eq!(scalar[k].acc[0].mant(), batched[k].acc[0].mant());
            assert_eq!(scalar[k].pot.mant(), batched[k].pot.mant());
        }
        let mut simd_lists = Vec::new();
        let simd = run(KernelMode::Simd, &mut simd_lists);
        assert_eq!(sc_lists, simd_lists);
        for k in 0..8 {
            assert_eq!(scalar[k].acc[0].mant(), simd[k].acc[0].mant());
            assert_eq!(scalar[k].pot.mant(), simd[k].pot.mant());
        }
        // A reused buffer is refilled identically (capacity retained, no
        // stale entries), and shrinks to the new i-count when smaller.
        let again = run(KernelMode::Batched, &mut bt_lists);
        assert_eq!(bt_lists, sc_lists);
        assert_eq!(again.len(), 8);
        let mut small = run_small(&mass, &pos, &vel, &mut bt_lists);
        assert_eq!(bt_lists.len(), 1);
        assert_eq!(small.remove(0).pot.mant(), scalar[0].pot.mant());
    }

    fn run_small(
        mass: &[f64],
        pos: &[Vec3],
        vel: &[Vec3],
        lists: &mut Vec<Vec<u32>>,
    ) -> Vec<PartialForce> {
        let mut chip = Chip::new(ChipConfig::default());
        load_chip(&mut chip, mass, pos, vel);
        chip.set_time(0.0);
        let i_regs = vec![HwIParticle::from_host(pos[0], vel[0], 1e-4)];
        let exps = vec![ExpSet::from_magnitudes(100.0, 1000.0, 100.0)];
        chip.compute_block_nb(&i_regs, &exps, &[0.09], lists)
            .unwrap()
    }

    #[test]
    #[should_panic(expected = "exceeds chip i-parallelism")]
    fn oversize_block_rejected() {
        let mut chip = Chip::new(ChipConfig::default());
        let regs = vec![HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 0.0); 49];
        let exps = vec![ExpSet::DEFAULT; 49];
        let _ = chip.compute_block(&regs, &exps);
    }
}
