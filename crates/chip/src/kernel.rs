//! The batched structure-of-arrays force kernel.
//!
//! The scalar pipeline in [`crate::pipeline::interact`] is the **reference
//! oracle**: one `(i, j)` pair per call, wrapped operands, a `Result` per
//! accumulator add.  That faithfulness costs host wall-clock — every
//! virtual second the benchmarks report is paid for in this loop — so the
//! chip also carries this batched kernel, which evaluates one i-register
//! against the *whole* j-batch with the same arithmetic but none of the
//! per-pair overhead:
//!
//! * the predicted j-particles are decoded **once per pass** into parallel
//!   arrays ([`SoaBatch`]): quantised mass, raw fixed-point position words,
//!   quantised velocity words — the inner loop streams flat `f64`/`i64`
//!   lanes instead of hopping through `PredictedJ` structs;
//! * every operation is the *same* `f64` op with the same single rounding
//!   (`quantize_sig`) the `PipeFloat` wrappers perform, in the same order —
//!   values already quantised in memory (mass, velocities, ε²) are not
//!   re-quantised, which is a no-op by idempotence, not a shortcut;
//! * `x^(-3/2)` and `x^(-1/2)` come from **one** table decomposition and
//!   index ([`RsqrtCubedUnit::eval_both`]), bit-identical to two separate
//!   evaluations;
//! * accumulation goes into raw `i64` block-FP lanes ([`BatchLane`]) with
//!   the window scale hoisted out of the loop and overflow deferred to
//!   sticky flags checked **once per chunk** — no `Result` on the happy
//!   path.  A flagged row is discarded and re-run through the scalar
//!   oracle, which reproduces the exact `BlockFpError` the host's retry
//!   ladder expects (same j order ⇒ same first failure).
//!
//! Bitwise identity with the oracle is therefore structural, and it is
//! enforced by proptests and by whole-schedule A/B runs in `tests/`.

use grape6_arith::blockfp::{BatchLane, BlockFpError};
use grape6_arith::fixed::PosFix;
use grape6_arith::rsqrt::RsqrtCubedUnit;
use grape6_arith::{quantize_sig_branchless, PIPE_SIG_BITS};

use crate::pipeline::{interact, ExpSet, HwIParticle, PartialForce};
use crate::predictor::PredictedJ;

/// Which force-pass implementation a chip runs.
///
/// All variants produce **bit-identical** forces, neighbour lists, and
/// error values; only host wall-clock differs.  The selector threads
/// through every layer ([`crate::Chip`], `grape6-system`, `grape6-core`)
/// so any schedule can run on any kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Per-pair scalar pipeline — the reference oracle.
    Scalar,
    /// Batched SoA kernel — bitwise identical, relies on the
    /// auto-vectoriser for lane parallelism.
    Batched,
    /// Hand-rolled `core::arch` SIMD lanes (AVX2 / AVX-512, selected at
    /// runtime via `is_x86_feature_detected!`) over the batched SoA
    /// layout — bitwise identical, and the bits no longer depend on the
    /// compiler's auto-vectorisation choices.  Falls back to the batched
    /// path when no SIMD level is available (non-x86 hosts, or
    /// `GRAPE6_FORCE_SCALAR=1`).  The default.
    #[default]
    Simd,
}

impl KernelMode {
    /// Short label for traces and benchmark tables.
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Batched => "batched",
            Self::Simd => "simd",
        }
    }
}

/// One chip pass worth of predicted j-particles, decoded into parallel
/// arrays.  Owned by the chip and reused across passes (capacity is
/// retained), mirroring the `predicted` scratch buffer.
#[derive(Clone, Debug, Default)]
pub struct SoaBatch {
    /// Number of real j-particles (the arrays may carry zero padding
    /// beyond this, see [`decode`](Self::decode)).
    n: usize,
    /// Quantised masses.
    pub(crate) mass: Vec<f64>,
    /// Raw fixed-point position words, one lane per coordinate.
    pub(crate) px: Vec<i64>,
    pub(crate) py: Vec<i64>,
    pub(crate) pz: Vec<i64>,
    /// Quantised predicted velocities, one lane per coordinate.
    pub(crate) vx: Vec<f64>,
    pub(crate) vy: Vec<f64>,
    pub(crate) vz: Vec<f64>,
}

/// Widest SIMD lane count the arrays are padded for (AVX-512: 8 × f64).
pub(crate) const MAX_LANES: usize = 8;

impl SoaBatch {
    /// Decode a pass's predicted j-particles.  All stored values are
    /// already in hardware formats (quantised / fixed point); this is a
    /// pure layout transpose.
    ///
    /// The arrays are padded with zero-mass particles at the origin up to
    /// a multiple of [`MAX_LANES`] so the SIMD kernel's full-width loads
    /// never read past the end.  Padding never reaches an accumulator —
    /// the kernels bound their accumulation and neighbour loops by
    /// [`len`](Self::len), which reports the *real* count.
    pub fn decode(&mut self, predicted: &[PredictedJ]) {
        self.n = predicted.len();
        let padded = self.n.next_multiple_of(MAX_LANES);
        self.mass.clear();
        self.px.clear();
        self.py.clear();
        self.pz.clear();
        self.vx.clear();
        self.vy.clear();
        self.vz.clear();
        self.mass.reserve(padded);
        self.px.reserve(padded);
        self.py.reserve(padded);
        self.pz.reserve(padded);
        self.vx.reserve(padded);
        self.vy.reserve(padded);
        self.vz.reserve(padded);
        for p in predicted {
            self.mass.push(p.mass);
            self.px.push(p.pos.x.raw());
            self.py.push(p.pos.y.raw());
            self.pz.push(p.pos.z.raw());
            self.vx.push(p.vel[0]);
            self.vy.push(p.vel[1]);
            self.vz.push(p.vel[2]);
        }
        for _ in self.n..padded {
            self.mass.push(0.0);
            self.px.push(0);
            self.py.push(0);
            self.pz.push(0);
            self.vx.push(0.0);
            self.vy.push(0.0);
            self.vz.push(0.0);
        }
    }

    /// Number of j-particles in the batch (excluding SIMD padding).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// j-particles per inner chunk: the stage-split scratch arrays (~17 lanes
/// of `CHUNK` doubles) must stay L1-resident, the deferred overflow check
/// should bail out early on a hopeless window, and the per-chunk loop
/// overhead must vanish.  128 ⇒ ~17 KiB of scratch.
pub(crate) const CHUNK: usize = 128;

/// Evaluate one i-register against the whole batch (plain force pass).
///
/// `Ok(pf)` is bit-identical to the scalar `interact` loop; `Err` is the
/// exact error that loop would have returned (produced by re-running the
/// row through the oracle once a chunk's deferred flags trip).
pub fn batched_row(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    predicted: &[PredictedJ],
    exps: ExpSet,
) -> Result<PartialForce, BlockFpError> {
    let mut no_nb = Vec::new();
    match row::<false>(rsqrt, ip, batch, exps, 0.0, &mut no_nb) {
        Some(pf) => Ok(pf),
        None => scalar_fallback(rsqrt, ip, predicted, exps),
    }
}

/// Evaluate one i-register against the whole batch with neighbour
/// detection: local addresses of every j with unsoftened `r² < h2i`
/// (self-pairs, `r = 0`, are not flagged) are appended to `nb`, which is
/// cleared first.
pub fn batched_row_nb(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    predicted: &[PredictedJ],
    exps: ExpSet,
    h2i: f64,
    nb: &mut Vec<u32>,
) -> Result<PartialForce, BlockFpError> {
    nb.clear();
    match row::<true>(rsqrt, ip, batch, exps, h2i, nb) {
        Some(pf) => Ok(pf),
        None => {
            // The partially filled list belongs to a discarded row.
            nb.clear();
            scalar_fallback(rsqrt, ip, predicted, exps)
        }
    }
}

/// Re-run a flagged row through the scalar oracle to recover the exact
/// error value.  The oracle sees the same j-sequence, so it fails at the
/// same first-overflowing summand; if it somehow completes (it cannot,
/// by the [`BatchLane`] flag contract), its result is still the correct
/// bits and is returned as such.
pub(crate) fn scalar_fallback(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    predicted: &[PredictedJ],
    exps: ExpSet,
) -> Result<PartialForce, BlockFpError> {
    let mut pf = PartialForce::new(exps);
    for jp in predicted {
        interact(rsqrt, ip, jp, &mut pf)?;
    }
    Ok(pf)
}

/// The inner loop.  Returns `None` if any accumulator window overflowed.
///
/// Every line mirrors a stage of `pipeline::interact`; `q` is the single
/// rounding each `PipeFloat` operation performs.  The loop is
/// **stage-split**: each pipeline stage runs as its own flat pass over a
/// chunk of `CHUNK` j-particles with intermediates parked in stack
/// arrays.  Per *value* the operation chain (and hence every rounding) is
/// exactly the scalar pipeline's, so the split cannot change bits — what
/// it changes is that every stage except the table lookup becomes a
/// branch-free elementwise loop the compiler can auto-vectorise, and the
/// table-lookup stage becomes a tight gather loop.  Per-lane accumulation
/// stays sequential in ascending j order, so the sticky overflow flags
/// trip exactly where the oracle's `Result` would.
// The indexed `for k in 0..cl` stage loops are the point: uniform
// counted loops over equal-length slices are what the auto-vectoriser
// recognises, and the many-array zips clippy would prefer obscure that.
#[allow(clippy::needless_range_loop)]
#[inline]
pub(crate) fn row<const NB: bool>(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    batch: &SoaBatch,
    exps: ExpSet,
    h2i: f64,
    nb: &mut Vec<u32>,
) -> Option<PartialForce> {
    // The branchless quantiser is bit-identical to the `quantize_sig` the
    // `PipeFloat` ops call; it exists because the reference's rounding
    // branch is a near-coin-flip here and its mispredicts would dominate
    // this loop.
    #[inline(always)]
    fn q(x: f64) -> f64 {
        quantize_sig_branchless(x, PIPE_SIG_BITS)
    }
    // i-side invariants, hoisted: raw position words, quantised velocity
    // and softening (quantised at `HwIParticle::from_host`).
    let ix = ip.pos.x.raw();
    let iy = ip.pos.y.raw();
    let iz = ip.pos.z.raw();
    let [ivx, ivy, ivz] = ip.vel;
    let eps2 = ip.eps2;
    // Seven lanes with the window scale precomputed.
    let mut lax = BatchLane::new(exps.acc);
    let mut lay = BatchLane::new(exps.acc);
    let mut laz = BatchLane::new(exps.acc);
    let mut ljx = BatchLane::new(exps.jerk);
    let mut ljy = BatchLane::new(exps.jerk);
    let mut ljz = BatchLane::new(exps.jerk);
    let mut lp = BatchLane::new(exps.pot);

    // Chunk-sized stage scratch.
    let mut dx = [0.0f64; CHUNK];
    let mut dy = [0.0f64; CHUNK];
    let mut dz = [0.0f64; CHUNK];
    let mut dvx = [0.0f64; CHUNK];
    let mut dvy = [0.0f64; CHUNK];
    let mut dvz = [0.0f64; CHUNK];
    let mut r2_raw = [0.0f64; CHUNK];
    let mut r2 = [0.0f64; CHUNK];
    let mut rinv3 = [0.0f64; CHUNK];
    let mut rinv = [0.0f64; CHUNK];
    let mut ax = [0.0f64; CHUNK];
    let mut ay = [0.0f64; CHUNK];
    let mut az = [0.0f64; CHUNK];
    let mut jx = [0.0f64; CHUNK];
    let mut jy = [0.0f64; CHUNK];
    let mut jz = [0.0f64; CHUNK];
    let mut pot = [0.0f64; CHUNK];

    let n = batch.len();
    let mut j0 = 0;
    while j0 < n {
        let cl = (n - j0).min(CHUNK);
        let px = &batch.px[j0..j0 + cl];
        let py = &batch.py[j0..j0 + cl];
        let pz = &batch.pz[j0..j0 + cl];
        let vx = &batch.vx[j0..j0 + cl];
        let vy = &batch.vy[j0..j0 + cl];
        let vz = &batch.vz[j0..j0 + cl];
        let mass = &batch.mass[j0..j0 + cl];
        // Stage 1: exact wrapping fixed-point delta, one rounding to f64,
        // then quantise (= `PosVec::exact_delta_to` + `PipeFloat::new`).
        for k in 0..cl {
            dx[k] = q(px[k].wrapping_sub(ix) as f64 * PosFix::RESOLUTION);
            dy[k] = q(py[k].wrapping_sub(iy) as f64 * PosFix::RESOLUTION);
            dz[k] = q(pz[k].wrapping_sub(iz) as f64 * PosFix::RESOLUTION);
        }
        for k in 0..cl {
            dvx[k] = q(vx[k] - ivx);
            dvy[k] = q(vy[k] - ivy);
            dvz[k] = q(vz[k] - ivz);
        }
        // Stage 2: r² through the two-level adder tree.
        for k in 0..cl {
            let rr = q(q(q(dx[k] * dx[k]) + q(dy[k] * dy[k])) + q(dz[k] * dz[k]));
            r2_raw[k] = rr;
            r2[k] = q(rr + eps2);
        }
        // Stage 3: the table gather — one decomposition serves both
        // functional outputs.
        for k in 0..cl {
            let (e32, e12) = rsqrt.eval_both(r2[k]);
            rinv3[k] = q(e32);
            rinv[k] = q(e12);
        }
        // Stage 4: multiplier tree.
        for k in 0..cl {
            let m = mass[k];
            let mr3 = q(m * rinv3[k]);
            ax[k] = q(mr3 * dx[k]);
            ay[k] = q(mr3 * dy[k]);
            az[k] = q(mr3 * dz[k]);
            let rv = q(q(q(dx[k] * dvx[k]) + q(dy[k] * dvy[k])) + q(dz[k] * dvz[k]));
            let rinv2 = q(rinv[k] * rinv[k]);
            let beta = q(q(3.0 * rv) * rinv2);
            jx[k] = q(q(mr3 * dvx[k]) - q(beta * ax[k]));
            jy[k] = q(q(mr3 * dvy[k]) - q(beta * ay[k]));
            jz[k] = q(q(mr3 * dvz[k]) - q(beta * az[k]));
            pot[k] = -q(m * rinv[k]);
        }
        // Stage 5: block-FP accumulation, overflow deferred.  Lane-major,
        // each lane in ascending j order — the same add sequence per lane
        // as the scalar pipeline, so the sticky flags are exact.
        for k in 0..cl {
            lax.add(ax[k]);
        }
        for k in 0..cl {
            lay.add(ay[k]);
        }
        for k in 0..cl {
            laz.add(az[k]);
        }
        for k in 0..cl {
            ljx.add(jx[k]);
        }
        for k in 0..cl {
            ljy.add(jy[k]);
        }
        for k in 0..cl {
            ljz.add(jz[k]);
        }
        for k in 0..cl {
            lp.add(pot[k]);
        }
        if NB {
            for k in 0..cl {
                if r2_raw[k] < h2i && r2_raw[k] > 0.0 {
                    nb.push((j0 + k) as u32);
                }
            }
        }
        // Deferred overflow check, once per chunk.
        if lax.flagged()
            || lay.flagged()
            || laz.flagged()
            || ljx.flagged()
            || ljy.flagged()
            || ljz.flagged()
            || lp.flagged()
        {
            return None;
        }
        j0 += cl;
    }
    Some(PartialForce {
        acc: [lax.into_accum()?, lay.into_accum()?, laz.into_accum()?],
        jerk: [ljx.into_accum()?, ljy.into_accum()?, ljz.into_accum()?],
        pot: lp.into_accum()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jmem::HwJParticle;
    use crate::predictor::predict;
    use nbody_core::force::JParticle;
    use nbody_core::Vec3;

    fn predicted_set(n: usize, t: f64) -> Vec<PredictedJ> {
        let mut s = 0.731f64;
        let mut next = || {
            s = (s * 9301.0 + 0.2113).fract();
            s - 0.5
        };
        (0..n)
            .map(|_| {
                let hw = HwJParticle::from_host(&JParticle {
                    mass: 0.01 + (next() + 0.5) * 0.02,
                    t0: 0.0,
                    pos: Vec3::new(next(), next(), next()),
                    vel: Vec3::new(next(), next(), next()) * 0.4,
                    acc: Vec3::new(next(), next(), next()) * 0.05,
                    jerk: Vec3::new(next(), next(), next()) * 0.01,
                    snap: Vec3::ZERO,
                });
                predict(&hw, t)
            })
            .collect()
    }

    fn assert_pf_bits_equal(a: &PartialForce, b: &PartialForce) {
        for c in 0..3 {
            assert_eq!(a.acc[c].mant(), b.acc[c].mant(), "acc[{c}]");
            assert_eq!(a.jerk[c].mant(), b.jerk[c].mant(), "jerk[{c}]");
        }
        assert_eq!(a.pot.mant(), b.pot.mant(), "pot");
    }

    #[test]
    fn batched_row_matches_scalar_bitwise() {
        let rsqrt = RsqrtCubedUnit::default();
        // Cross a chunk boundary so the per-chunk flag check is exercised.
        let predicted = predicted_set(CHUNK + 37, 0.0625);
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let exps = ExpSet::from_magnitudes(30.0, 300.0, 30.0);
        for k in 0..8 {
            let ip = HwIParticle::from_host(
                Vec3::new(0.05 * k as f64 - 0.2, -0.1, 0.3),
                Vec3::new(0.1, -0.2, 0.05 * k as f64),
                1e-4,
            );
            let got = batched_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap();
            let mut want = PartialForce::new(exps);
            for jp in &predicted {
                interact(&rsqrt, &ip, jp, &mut want).unwrap();
            }
            assert_pf_bits_equal(&got, &want);
        }
    }

    #[test]
    fn batched_row_nb_matches_scalar_bitwise_including_lists() {
        let rsqrt = RsqrtCubedUnit::default();
        let predicted = predicted_set(300, 0.0);
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let exps = ExpSet::from_magnitudes(100.0, 1000.0, 100.0);
        let h2 = 0.09;
        let ip = HwIParticle::from_host(Vec3::new(0.1, 0.0, -0.1), Vec3::ZERO, 1e-4);
        let mut nb = Vec::new();
        let got = batched_row_nb(&rsqrt, &ip, &batch, &predicted, exps, h2, &mut nb).unwrap();
        let mut want = PartialForce::new(exps);
        let mut want_nb = Vec::new();
        for (addr, jp) in predicted.iter().enumerate() {
            let r2 = interact(&rsqrt, &ip, jp, &mut want).unwrap();
            if r2 < h2 && r2 > 0.0 {
                want_nb.push(addr as u32);
            }
        }
        assert_pf_bits_equal(&got, &want);
        assert_eq!(nb, want_nb);
        assert!(!nb.is_empty(), "test data should have neighbours");
    }

    #[test]
    fn batched_row_reproduces_scalar_overflow_error() {
        let rsqrt = RsqrtCubedUnit::default();
        // A very close pair with a deliberately tiny acc window.
        let ip = HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 0.0);
        let predicted = vec![{
            let hw = HwJParticle::from_host(&JParticle {
                mass: 1.0,
                t0: 0.0,
                pos: Vec3::new(1e-4, 0.0, 0.0),
                ..Default::default()
            });
            predict(&hw, 0.0)
        }];
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let exps = ExpSet {
            acc: 2,
            jerk: 40,
            pot: 20,
        };
        let got = batched_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap_err();
        let mut pf = PartialForce::new(exps);
        let want = interact(&rsqrt, &ip, &predicted[0], &mut pf).unwrap_err();
        assert_eq!(got, want, "batched error must equal the oracle's");
    }

    #[test]
    fn softening_only_self_interaction_matches() {
        let rsqrt = RsqrtCubedUnit::default();
        let pos = Vec3::new(0.25, 0.25, 0.25);
        let hw = HwJParticle::from_host(&JParticle {
            mass: 2.0,
            t0: 0.0,
            pos,
            ..Default::default()
        });
        let predicted = vec![predict(&hw, 0.0)];
        let mut batch = SoaBatch::default();
        batch.decode(&predicted);
        let ip = HwIParticle::from_host(pos, Vec3::ZERO, 0.01);
        let exps = ExpSet::DEFAULT;
        let got = batched_row(&rsqrt, &ip, &batch, &predicted, exps).unwrap();
        let mut want = PartialForce::new(exps);
        interact(&rsqrt, &ip, &predicted[0], &mut want).unwrap();
        assert_pf_bits_equal(&got, &want);
        // And the self-pair is not a neighbour even inside h².
        let mut nb = Vec::new();
        batched_row_nb(&rsqrt, &ip, &batch, &predicted, exps, 1.0, &mut nb).unwrap();
        assert!(nb.is_empty());
    }
}
