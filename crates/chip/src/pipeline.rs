//! One force-calculation pipeline (fig. 8 of the paper): eqs. (1)–(3) in
//! hardware arithmetic.
//!
//! Stage by stage, per (i, j) pair — one pair per clock cycle in the real
//! chip:
//!
//! 1. `dx = x_j − x_i` in 64-bit fixed point (**exact**), then converted to
//!    pipeline float; `dv = v_j − v_i` in pipeline float;
//! 2. `r² = dx·dx + ε²` through a rounding adder tree;
//! 3. the table-driven unit produces `(r²)^(-3/2)` (force path) and
//!    `(r²)^(-1/2)` (potential path);
//! 4. multiplier tree: `a += m·dx·r⁻³`,
//!    `ȧ += m·dv·r⁻³ − 3(dx·dv)/r² · (m·dx·r⁻³)`, `φ −= m·r⁻¹`;
//! 5. the seven results are shifted onto the per-i-particle **block
//!    exponents** and accumulated in 64-bit fixed point.
//!
//! The accumulation (step 5) is where the §3.4 reproducibility property
//! comes from; overflow of a window is reported so the host can retry with
//! a corrected exponent.

use grape6_arith::blockfp::{BlockAccum, BlockFpError};
use grape6_arith::fixed::PosVec;
use grape6_arith::pfloat::PipeFloat;
use grape6_arith::rsqrt::RsqrtCubedUnit;
use grape6_arith::{quantize_sig, PIPE_SIG_BITS};
use nbody_core::force::ForceResult;
use nbody_core::Vec3;

use crate::predictor::PredictedJ;

/// An i-particle as loaded into a pipeline's i-registers: predicted
/// position in fixed point, predicted velocity and softening in pipeline
/// float.
#[derive(Clone, Copy, Debug)]
pub struct HwIParticle {
    /// Predicted position at the block time (fixed point).
    pub pos: PosVec,
    /// Predicted velocity (pipeline float values).
    pub vel: [f64; 3],
    /// ε², quantised.
    pub eps2: f64,
}

impl HwIParticle {
    /// Convert from host-side doubles.
    pub fn from_host(pos: Vec3, vel: Vec3, eps2: f64) -> Self {
        Self {
            pos: PosVec::from_f64(pos.to_array()),
            vel: [
                quantize_sig(vel.x, PIPE_SIG_BITS),
                quantize_sig(vel.y, PIPE_SIG_BITS),
                quantize_sig(vel.z, PIPE_SIG_BITS),
            ],
            eps2: quantize_sig(eps2, PIPE_SIG_BITS),
        }
    }
}

/// The block exponents declared for one i-particle's accumulators (one per
/// output group, as the host supplies them before the run starts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpSet {
    /// Window exponent for the three acceleration components.
    pub acc: i32,
    /// Window exponent for the three jerk components.
    pub jerk: i32,
    /// Window exponent for the potential.
    pub pot: i32,
}

impl ExpSet {
    /// A safe default for standard-units systems before any force is known:
    /// wide enough for O(10³) accelerations, narrow enough to keep 12+
    /// significant digits.  The retry loop widens it when wrong.
    pub const DEFAULT: ExpSet = ExpSet {
        acc: 14,
        jerk: 18,
        pot: 8,
    };

    /// Guess exponents from known force magnitudes (the "previous timestep"
    /// heuristic of §3.4).
    pub fn from_magnitudes(acc: f64, jerk: f64, pot: f64) -> Self {
        Self {
            acc: BlockAccum::guess_exp(acc),
            jerk: BlockAccum::guess_exp(jerk),
            pot: BlockAccum::guess_exp(pot),
        }
    }

    /// Widen every window by `bits` (retry escalation).
    pub fn widened(self, bits: i32) -> Self {
        Self {
            acc: self.acc + bits,
            jerk: self.jerk + bits,
            pot: self.pot + bits,
        }
    }
}

/// Partial force on one i-particle: seven block floating-point accumulators.
#[derive(Clone, Copy, Debug)]
pub struct PartialForce {
    /// Acceleration accumulators (x, y, z).
    pub acc: [BlockAccum; 3],
    /// Jerk accumulators (x, y, z).
    pub jerk: [BlockAccum; 3],
    /// Potential accumulator.
    pub pot: BlockAccum,
}

impl PartialForce {
    /// Fresh accumulators with the given window exponents.
    pub fn new(exps: ExpSet) -> Self {
        Self {
            acc: [BlockAccum::new(exps.acc); 3],
            jerk: [BlockAccum::new(exps.jerk); 3],
            pot: BlockAccum::new(exps.pot),
        }
    }

    /// The exponents this partial force was accumulated under.
    pub fn exps(&self) -> ExpSet {
        ExpSet {
            acc: self.acc[0].exp(),
            jerk: self.jerk[0].exp(),
            pot: self.pot.exp(),
        }
    }

    /// Exact merge with another partial force (reduction-tree step).
    pub fn merge(&mut self, other: &PartialForce) -> Result<(), BlockFpError> {
        for c in 0..3 {
            self.acc[c].merge(&other.acc[c])?;
            self.jerk[c].merge(&other.jerk[c])?;
        }
        self.pot.merge(&other.pot)
    }

    /// Convert to host doubles.
    pub fn to_force_result(&self) -> ForceResult {
        ForceResult {
            acc: Vec3::new(
                self.acc[0].to_f64(),
                self.acc[1].to_f64(),
                self.acc[2].to_f64(),
            ),
            jerk: Vec3::new(
                self.jerk[0].to_f64(),
                self.jerk[1].to_f64(),
                self.jerk[2].to_f64(),
            ),
            pot: self.pot.to_f64(),
        }
    }
}

/// Execute one pipeline cycle: accumulate the interaction of `ip` with the
/// predicted j-particle `jp` into `out`.
///
/// Returns the **unsoftened** squared separation (pipeline precision) —
/// the quantity the hardware's neighbour-detection comparator uses: the
/// real GRAPE-6 pipelines flag every j with `r² < h²ᵢ` and the board
/// returns the list to the host, which is how the machine served the
/// Ahmad–Cohen scheme's neighbour bookkeeping.
#[inline]
pub fn interact(
    rsqrt: &RsqrtCubedUnit,
    ip: &HwIParticle,
    jp: &PredictedJ,
    out: &mut PartialForce,
) -> Result<f64, BlockFpError> {
    // Stage 1: exact fixed-point coordinate difference, then quantise.
    let d = ip.pos.exact_delta_to(jp.pos);
    let dx = [
        PipeFloat::new(d[0]),
        PipeFloat::new(d[1]),
        PipeFloat::new(d[2]),
    ];
    let dv = [
        PipeFloat::new(jp.vel[0]) - PipeFloat::new(ip.vel[0]),
        PipeFloat::new(jp.vel[1]) - PipeFloat::new(ip.vel[1]),
        PipeFloat::new(jp.vel[2]) - PipeFloat::new(ip.vel[2]),
    ];
    // Stage 2: r² through the adder tree (two-level, as in hardware).
    let r2_raw = (dx[0].square() + dx[1].square()) + dx[2].square();
    let r2 = r2_raw + PipeFloat::new(ip.eps2);
    // Stage 3: the functional unit.
    let rinv3 = PipeFloat::new(rsqrt.eval_pow_m32(r2.get()));
    let rinv = PipeFloat::new(rsqrt.eval_pow_m12(r2.get()));
    // Stage 4: multiplier tree.
    let m = PipeFloat::new(jp.mass);
    let mr3 = m * rinv3;
    let acc = [mr3 * dx[0], mr3 * dx[1], mr3 * dx[2]];
    let rv = (dx[0] * dv[0] + dx[1] * dv[1]) + dx[2] * dv[2];
    let rinv2 = rinv * rinv;
    let beta = PipeFloat::new(3.0) * rv * rinv2;
    let jerk = [
        mr3 * dv[0] - beta * acc[0],
        mr3 * dv[1] - beta * acc[1],
        mr3 * dv[2] - beta * acc[2],
    ];
    let pot = -(m * rinv);
    // Stage 5: block floating-point accumulation.
    for c in 0..3 {
        out.acc[c].add(acc[c].get())?;
        out.jerk[c].add(jerk[c].get())?;
    }
    out.pot.add(pot.get())?;
    Ok(r2_raw.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jmem::HwJParticle;
    use crate::predictor::predict;
    use nbody_core::force::{pair_force, JParticle};

    fn predicted(mass: f64, pos: Vec3, vel: Vec3) -> PredictedJ {
        let hw = HwJParticle::from_host(&JParticle {
            mass,
            t0: 0.0,
            pos,
            vel,
            ..Default::default()
        });
        predict(&hw, 0.0)
    }

    #[test]
    fn matches_f64_pair_force_to_pipeline_precision() {
        let rsqrt = RsqrtCubedUnit::default();
        let ipos = Vec3::new(0.1, 0.2, -0.3);
        let ivel = Vec3::new(0.4, -0.1, 0.0);
        let jpos = Vec3::new(-0.5, 0.7, 0.2);
        let jvel = Vec3::new(-0.2, 0.3, 0.6);
        let eps2 = 1e-4;
        let ip = HwIParticle::from_host(ipos, ivel, eps2);
        let jp = predicted(0.37, jpos, jvel);
        let mut out = PartialForce::new(ExpSet::from_magnitudes(1.0, 1.0, 1.0));
        interact(&rsqrt, &ip, &jp, &mut out).unwrap();
        let hw = out.to_force_result();
        let (a, j, p) = pair_force(jpos - ipos, jvel - ivel, 0.37, eps2);
        assert!(
            (hw.acc - a).norm() / a.norm() < 1e-5,
            "{:?} vs {a:?}",
            hw.acc
        );
        assert!((hw.jerk - j).norm() / j.norm() < 1e-5);
        assert!((hw.pot - p).abs() / p.abs() < 1e-5);
    }

    #[test]
    fn self_interaction_zero_without_softening() {
        let rsqrt = RsqrtCubedUnit::default();
        let pos = Vec3::new(0.25, 0.25, 0.25);
        let vel = Vec3::new(1.0, 2.0, 3.0);
        let ip = HwIParticle::from_host(pos, vel, 0.0);
        let jp = predicted(1.0, pos, vel);
        let mut out = PartialForce::new(ExpSet::DEFAULT);
        interact(&rsqrt, &ip, &jp, &mut out).unwrap();
        let r = out.to_force_result();
        assert_eq!(r.acc, Vec3::ZERO);
        assert_eq!(r.jerk, Vec3::ZERO);
        assert_eq!(r.pot, 0.0);
    }

    #[test]
    fn self_interaction_pot_only_with_softening() {
        let rsqrt = RsqrtCubedUnit::default();
        let pos = Vec3::new(0.25, 0.25, 0.25);
        let ip = HwIParticle::from_host(pos, Vec3::ZERO, 0.01);
        let jp = predicted(2.0, pos, Vec3::ZERO);
        let mut out = PartialForce::new(ExpSet::DEFAULT);
        interact(&rsqrt, &ip, &jp, &mut out).unwrap();
        let r = out.to_force_result();
        assert_eq!(r.acc, Vec3::ZERO);
        assert_eq!(r.jerk, Vec3::ZERO);
        // −m/ε = −2/0.1 = −20, to pipeline precision.
        assert!((r.pot + 20.0).abs() < 1e-4, "pot = {}", r.pot);
    }

    #[test]
    fn window_overflow_surfaces() {
        let rsqrt = RsqrtCubedUnit::default();
        // A very close pair with a deliberately tiny acc window.
        let ip = HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 0.0);
        let jp = predicted(1.0, Vec3::new(1e-4, 0.0, 0.0), Vec3::ZERO);
        let mut out = PartialForce::new(ExpSet {
            acc: 2, // window ±4; actual acc is 1/r² = 1e8
            jerk: 40,
            pot: 20,
        });
        let err = interact(&rsqrt, &ip, &jp, &mut out).unwrap_err();
        assert!(matches!(err, BlockFpError::SummandOverflow { .. }));
        // The widened retry succeeds.
        let mut out = PartialForce::new(
            ExpSet {
                acc: 2,
                jerk: 40,
                pot: 20,
            }
            .widened(28),
        );
        interact(&rsqrt, &ip, &jp, &mut out).unwrap();
        assert!((out.to_force_result().acc.x - 1e8).abs() / 1e8 < 1e-4);
    }

    #[test]
    fn merge_equals_single_accumulation() {
        let rsqrt = RsqrtCubedUnit::default();
        let ip = HwIParticle::from_host(Vec3::ZERO, Vec3::ZERO, 1e-4);
        let sources: Vec<PredictedJ> = (0..16)
            .map(|k| {
                let ang = k as f64 * 0.7;
                predicted(
                    0.01 + 0.001 * k as f64,
                    Vec3::new(ang.cos(), ang.sin(), 0.1 * k as f64 - 0.8),
                    Vec3::new(0.1 * ang.sin(), -0.1 * ang.cos(), 0.0),
                )
            })
            .collect();
        let exps = ExpSet::from_magnitudes(0.2, 0.5, 0.2);
        // Single accumulator over all sources.
        let mut whole = PartialForce::new(exps);
        for jp in &sources {
            interact(&rsqrt, &ip, jp, &mut whole).unwrap();
        }
        // Two halves merged — must be bit-identical (mantissa equality).
        let mut left = PartialForce::new(exps);
        let mut right = PartialForce::new(exps);
        for jp in &sources[..7] {
            interact(&rsqrt, &ip, jp, &mut left).unwrap();
        }
        for jp in &sources[7..] {
            interact(&rsqrt, &ip, jp, &mut right).unwrap();
        }
        left.merge(&right).unwrap();
        for c in 0..3 {
            assert_eq!(left.acc[c].mant(), whole.acc[c].mant());
            assert_eq!(left.jerk[c].mant(), whole.jerk[c].mant());
        }
        assert_eq!(left.pot.mant(), whole.pot.mant());
    }

    #[test]
    fn merge_rejects_mismatched_exponents() {
        let a = PartialForce::new(ExpSet::DEFAULT);
        let mut b = PartialForce::new(ExpSet::DEFAULT.widened(1));
        assert!(b.merge(&a).is_err());
    }
}
