//! The per-chip j-particle memory.
//!
//! GRAPE-6 attaches one memory unit to each pipeline chip ("the extreme
//! solution", §3.4): the chip's memory interface drives a 72-bit (64 data +
//! ECC) bus to local SSRAM holding, for every j-particle, the full predictor
//! polynomial — mass, the particle's own time `t_j`, 64-bit fixed-point
//! position, and floating-point velocity / acceleration / jerk / snap.
//! Because the connection is point-to-point and physically short, it runs at
//! the full 90 MHz pipeline clock — the design argument of §3.4.
//!
//! In this model the memory is a `Vec<HwJParticle>`; storing a particle
//! performs the same format conversions the host interface card performs
//! (double → fixed-point position, double → short-float dynamics), so
//! everything downstream sees only hardware-representable values.

use grape6_arith::fixed::{PosFix, PosVec};
use grape6_arith::{quantize_sig, PIPE_SIG_BITS};
use nbody_core::force::JParticle;

/// A stuck-at-1 data line on the j-memory bus: every write to `addr` has
/// `bit` of the position word in lane `lane` forced high.  Rewriting the
/// particle does not heal it — the line, not the cell content, is broken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StuckBit {
    /// Memory address the broken line affects.
    pub addr: usize,
    /// Position coordinate lane (0 = x, 1 = y, 2 = z).
    pub lane: usize,
    /// Bit index in the 64-bit fixed-point word.
    pub bit: u32,
}

/// A j-particle in hardware storage formats.
#[derive(Clone, Copy, Debug)]
pub struct HwJParticle {
    /// Mass, rounded to pipeline precision.
    pub mass: f64,
    /// Validity time of the polynomial (held exactly; block times are
    /// powers of two and representable).
    pub t0: f64,
    /// Position at `t0`, 64-bit fixed point per component.
    pub pos: PosVec,
    /// Velocity at `t0` (short float).
    pub vel: [f64; 3],
    /// Acceleration at `t0` (short float).
    pub acc: [f64; 3],
    /// Jerk at `t0` (short float).
    pub jerk: [f64; 3],
    /// Snap at `t0` (short float) — the `a⁽²⁾₀` of eq. 6.
    pub snap: [f64; 3],
}

impl HwJParticle {
    /// Convert a host-side j-particle into memory format.
    pub fn from_host(p: &JParticle) -> Self {
        let q = |v: nbody_core::Vec3| -> [f64; 3] {
            [
                quantize_sig(v.x, PIPE_SIG_BITS),
                quantize_sig(v.y, PIPE_SIG_BITS),
                quantize_sig(v.z, PIPE_SIG_BITS),
            ]
        };
        Self {
            mass: quantize_sig(p.mass, PIPE_SIG_BITS),
            t0: p.t0,
            pos: PosVec::from_f64(p.pos.to_array()),
            vel: q(p.vel),
            acc: q(p.acc),
            jerk: q(p.jerk),
            snap: q(p.snap),
        }
    }

    /// A zero-mass particle parked at the origin; what unused memory slots
    /// hold so they contribute nothing to any force sum.
    pub fn vacant() -> Self {
        Self {
            mass: 0.0,
            t0: 0.0,
            pos: PosVec::from_f64([0.0; 3]),
            vel: [0.0; 3],
            acc: [0.0; 3],
            jerk: [0.0; 3],
            snap: [0.0; 3],
        }
    }
}

/// The j-memory attached to one chip.
#[derive(Clone, Debug)]
pub struct JMemory {
    slots: Vec<HwJParticle>,
    /// Highest occupied address + 1 — the range the pipelines stream over.
    used: usize,
    /// Injected stuck data lines, reapplied on every write.
    stuck: Vec<StuckBit>,
}

impl JMemory {
    /// Memory with the given particle capacity (real boards shipped with
    /// room for 16k–32k particles per chip).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: vec![HwJParticle::vacant(); capacity],
            used: 0,
            stuck: Vec::new(),
        }
    }

    /// Inject a stuck-at-1 data line (fault injection).
    pub fn add_stuck_bit(&mut self, s: StuckBit) {
        assert!(s.addr < self.slots.len(), "stuck bit beyond capacity");
        assert!(s.lane < 3, "position lanes are 0..3");
        assert!(s.bit < 64, "64-bit word");
        self.stuck.push(s);
    }

    /// Capacity in particles.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of addressable (written) particles.
    pub fn len(&self) -> usize {
        self.used
    }

    /// True if no particle has been written.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }

    /// Write a particle at `addr`.  Panics if the address is outside the
    /// physical memory, mirroring a hardware address fault.
    pub fn write(&mut self, addr: usize, p: HwJParticle) {
        assert!(
            addr < self.slots.len(),
            "j-memory address {addr} out of range (capacity {})",
            self.slots.len()
        );
        self.slots[addr] = p;
        for k in 0..self.stuck.len() {
            let s = self.stuck[k];
            if s.addr != addr {
                continue;
            }
            let p = &mut self.slots[addr];
            let f = match s.lane {
                0 => &mut p.pos.x,
                1 => &mut p.pos.y,
                _ => &mut p.pos.z,
            };
            *f = PosFix::from_raw(f.raw() | (1i64 << s.bit));
        }
        self.used = self.used.max(addr + 1);
    }

    /// The occupied address range the pipelines stream.
    pub fn stream(&self) -> &[HwJParticle] {
        &self.slots[..self.used]
    }

    /// Drop all content (new simulation).
    pub fn clear(&mut self) {
        for s in &mut self.slots[..self.used] {
            *s = HwJParticle::vacant();
        }
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::Vec3;

    fn host_particle() -> JParticle {
        JParticle {
            mass: 0.1,
            t0: 0.25,
            pos: Vec3::new(1.0, -2.0, 0.5),
            vel: Vec3::new(0.3, 0.0, -0.1),
            acc: Vec3::new(0.01, 0.02, 0.03),
            jerk: Vec3::new(-0.001, 0.0, 0.002),
            snap: Vec3::new(0.0, 1e-4, 0.0),
        }
    }

    #[test]
    fn conversion_quantizes_dynamics_keeps_time() {
        let hw = HwJParticle::from_host(&host_particle());
        assert_eq!(hw.t0, 0.25);
        // 0.1 is not exactly representable in 24 bits; check it rounded.
        assert_eq!(hw.mass, quantize_sig(0.1, PIPE_SIG_BITS));
        assert_ne!(hw.mass, 0.1);
        // Position survives the fixed-point roundtrip at 2^-57 resolution.
        let back = hw.pos.to_f64();
        assert!((back[0] - 1.0).abs() < 1e-16);
        assert!((back[1] + 2.0).abs() < 1e-16);
    }

    #[test]
    fn memory_write_read_and_used_range() {
        let mut m = JMemory::new(8);
        assert!(m.is_empty());
        m.write(3, HwJParticle::from_host(&host_particle()));
        assert_eq!(m.len(), 4); // addresses 0..=3 streamed
        assert_eq!(m.stream().len(), 4);
        assert_eq!(m.stream()[0].mass, 0.0); // vacant slots are massless
        assert!(m.stream()[3].mass > 0.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 8);
    }

    #[test]
    fn stuck_bit_survives_rewrites() {
        let mut m = JMemory::new(8);
        m.add_stuck_bit(StuckBit {
            addr: 2,
            lane: 1,
            bit: 55,
        });
        let p = host_particle();
        m.write(2, HwJParticle::from_host(&p));
        let first = m.stream()[2].pos.y.raw();
        assert_ne!(first & (1i64 << 55), 0, "bit forced high");
        // Rewriting does not heal it.
        m.write(2, HwJParticle::from_host(&p));
        assert_eq!(m.stream()[2].pos.y.raw(), first);
        // Other addresses are untouched.
        m.write(3, HwJParticle::from_host(&p));
        assert_eq!(
            m.stream()[3].pos.y.raw(),
            HwJParticle::from_host(&p).pos.y.raw()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn address_fault_panics() {
        let mut m = JMemory::new(4);
        m.write(4, HwJParticle::vacant());
    }
}
