//! # grape6-chip — the GRAPE-6 processor chip
//!
//! A functional, cycle-accounted model of the custom chip described in §2.1
//! of the paper: "A processor chip consists of six force calculation
//! pipelines, a predictor pipeline, a memory interface and I/O ports",
//! fabricated in 0.25 µm, clocked at 90 MHz, 30.8 Gflops per chip.
//!
//! * [`jmem`] — the per-chip j-particle memory (the local-memory design that
//!   distinguishes GRAPE-6 from GRAPE-4's shared memory, §3.4), storing the
//!   predictor polynomial of each particle in hardware formats;
//! * [`predictor`] — the on-chip predictor pipeline evaluating eqs. (6)–(7);
//! * [`pipeline`] — one force-calculation pipeline evaluating eqs. (1)–(3)
//!   in reduced-precision arithmetic with exact fixed-point coordinate
//!   differences and a table-driven `x^(-3/2)` unit;
//! * [`kernel`] — the batched structure-of-arrays force kernel: the same
//!   arithmetic as [`pipeline`] evaluated batch-at-a-time for host speed,
//!   bitwise identical to the scalar oracle and selectable per chip via
//!   [`KernelMode`];
//! * [`kernel_simd`] — the hand-rolled `core::arch` SIMD lanes (AVX2 /
//!   AVX-512, runtime-dispatched) over the same SoA layout, bitwise
//!   identical to both of the above;
//! * [`chip`] — the assembled chip: six pipelines × 8-way virtual
//!   multipipelining = forces on 48 i-particles per pass, block
//!   floating-point partial-force output, and a cycle counter that feeds
//!   the performance model.

pub mod chip;
pub mod jmem;
pub mod kernel;
pub mod kernel_simd;
pub mod pipeline;
pub mod predictor;

pub use chip::{Chip, ChipConfig, I_PARALLEL_PER_CHIP};
pub use jmem::{HwJParticle, StuckBit};
pub use kernel::KernelMode;
pub use pipeline::{ExpSet, HwIParticle, PartialForce};
