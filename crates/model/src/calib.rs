//! Hardware calibration constants.
//!
//! Every number here encodes a sentence of the paper (quoted in the doc
//! comment that carries it) or a property of 2002-era commodity hardware
//! consistent with the paper's measured aggregate performance.  The model
//! is *tuned* — the paper's own title says "performance evaluation and
//! tuning" — so these constants were chosen to reproduce the paper's curve
//! shapes and crossover points; EXPERIMENTS.md records how well that works.

use serde::{Deserialize, Serialize};

/// Geometry and clocking of the GRAPE hardware attached to one host.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrapeTiming {
    /// Pipeline clock (Hz).  "six pipelines operating at 90 MHz" (§1).
    pub clock_hz: f64,
    /// i-particles served in parallel (6 pipelines × 8-way VMP = 48, §3.4).
    pub i_parallel: usize,
    /// VMP ways: each j-particle occupies the memory stream for 8 cycles.
    pub vmp_ways: usize,
    /// Chips over which one host's j-particles are divided
    /// (4 boards × 8 modules × 4 chips = 128).
    pub chips_per_host: usize,
    /// Pipeline fill/drain latency in cycles.
    pub pipeline_depth: f64,
    /// Host↔GRAPE interface bandwidth, bytes/s.  The PCI host interface
    /// card sustains ≈ 200 MB/s for DMA bursts.
    pub interface_bw: f64,
    /// Bytes to ship one i-particle to the boards (position 3×8, velocity
    /// 3×4, softening + padding ≈ 40 B).
    pub i_word_bytes: f64,
    /// Bytes returned per force (7 block-FP words + exponents ≈ 64 B).
    pub f_word_bytes: f64,
    /// Bytes to write one updated j-particle (full predictor polynomial,
    /// ≈ 80 B).
    pub j_word_bytes: f64,
    /// Fixed cost to set up one DMA transfer, seconds.  "The overhead to
    /// invoke DMA operations becomes visible" below N ≈ 1000 (§4.1).
    pub dma_setup: f64,
    /// DMA transfers per GRAPE call (i upload, force readback, j writeback).
    pub dma_per_call: f64,
}

impl Default for GrapeTiming {
    fn default() -> Self {
        Self::paper_host()
    }
}

impl GrapeTiming {
    /// The paper's per-host hardware: 4 boards = 128 chips.
    pub fn paper_host() -> Self {
        Self {
            clock_hz: 90.0e6,
            i_parallel: 48,
            vmp_ways: 8,
            chips_per_host: 128,
            pipeline_depth: 30.0,
            interface_bw: 200.0e6,
            i_word_bytes: 40.0,
            f_word_bytes: 64.0,
            j_word_bytes: 80.0,
            dma_setup: 12.0e-6,
            dma_per_call: 3.0,
        }
    }

    /// Peak flops of the slice: `chips × 6 pipes × clock × 57`.
    pub fn peak_flops(&self) -> f64 {
        // i_parallel / vmp_ways = number of physical pipelines per chip.
        let pipes = (self.i_parallel / self.vmp_ways) as f64;
        self.chips_per_host as f64 * pipes * self.clock_hz * 57.0
    }

    /// The engine-side timebase: the subset of these constants the force
    /// engine needs to stamp virtual-time spans (`grape6_trace` keeps its
    /// own plain struct so the engine does not depend on this crate).
    pub fn engine_timebase(&self) -> grape6_trace::EngineTimebase {
        grape6_trace::EngineTimebase {
            sec_per_cycle: 1.0 / self.clock_hz,
            dma_setup: self.dma_setup,
            dma_per_call: self.dma_per_call,
            interface_bw: self.interface_bw,
            i_word_bytes: self.i_word_bytes,
            f_word_bytes: self.f_word_bytes,
            j_word_bytes: self.j_word_bytes,
            overlap: grape6_trace::OverlapMode::Sequential,
        }
    }

    /// The same timebase declared for split-phase execution: host spans
    /// run concurrently with pipeline/DMA spans, so wall time combines the
    /// two sides with `max` instead of the sum
    /// ([`grape6_trace::OverlapMode::Overlapped`]).
    pub fn engine_timebase_overlapped(&self) -> grape6_trace::EngineTimebase {
        grape6_trace::EngineTimebase {
            overlap: grape6_trace::OverlapMode::Overlapped,
            ..self.engine_timebase()
        }
    }

    /// Pipeline time for one pass over `n_j` j-particles (seconds):
    /// `(depth + vmp·n_j/chips) / clock`.
    pub fn pass_time(&self, n_j: usize) -> f64 {
        let per_chip = (n_j as f64 / self.chips_per_host as f64).ceil();
        (self.pipeline_depth + self.vmp_ways as f64 * per_chip) / self.clock_hz
    }

    /// The same host running on `alive_chips` surviving chips: the j-share
    /// per chip grows, so passes slow down and peak flops shrink
    /// proportionally.  This is the timing-model view of the fault
    /// subsystem's graceful degradation (masked units keep their share of
    /// the paper's "dead time", they just stop contributing pipelines).
    pub fn degraded(&self, alive_chips: usize) -> Self {
        assert!(
            alive_chips > 0 && alive_chips <= self.chips_per_host,
            "alive chips {alive_chips} outside 1..={}",
            self.chips_per_host
        );
        Self {
            chips_per_host: alive_chips,
            ..*self
        }
    }

    // ---- recovery terms -------------------------------------------------
    //
    // The availability tax a run supervisor charges on top of the six-term
    // breakdown.  Week-long runs pay these rarely, so they are modelled at
    // the same fidelity as the DMA terms: a setup constant plus a
    // bandwidth-limited transfer.

    /// Virtual seconds for a mid-run known-answer self-test: every chip
    /// gets one short test block (`SELFTEST_VECTORS` vectors deep) plus a
    /// DMA setup per call, serialised over the host port like the real
    /// host library's power-on test.
    pub fn selftest_time(&self) -> f64 {
        self.chips_per_host as f64
            * (self.dma_setup + (self.pipeline_depth + SELFTEST_VECTORS) / self.clock_hz)
    }

    /// Virtual seconds to reload `n` j-particles over the host↔GRAPE
    /// interface (redistribution after masking, restore after a crash).
    pub fn reload_time(&self, n: usize) -> f64 {
        self.dma_setup + n as f64 * self.j_word_bytes / self.interface_bw
    }

    /// Virtual seconds to serialise and write a checkpoint of `n`
    /// particles to local disk.
    pub fn checkpoint_time(&self, n: usize) -> f64 {
        CKPT_SETUP + n as f64 * CKPT_BYTES_PER_PARTICLE / CKPT_DISK_BW
    }

    /// Virtual seconds to read a checkpoint back and rebuild the run:
    /// the disk read plus the full j-memory reload.
    pub fn restore_time(&self, n: usize) -> f64 {
        self.checkpoint_time(n) + self.reload_time(n)
    }
}

/// Known-answer vectors pushed through each chip by one self-test pass.
const SELFTEST_VECTORS: f64 = 64.0;

/// Fixed checkpoint overhead (file open, fsync, header bookkeeping).
const CKPT_SETUP: f64 = 5.0e-3;

/// Bytes per particle in the checkpoint payload (mass + six force-
/// polynomial vectors + potential + times, as 8-byte bit patterns).
const CKPT_BYTES_PER_PARTICLE: f64 = 256.0;

/// Sustained local-disk bandwidth of the era's IDE disks (~50 MB/s).
const CKPT_DISK_BW: f64 = 50.0e6;

/// A host CPU profile with the fig. 14 cache-hit refinement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct HostProfile {
    /// Display name.
    pub name: &'static str,
    /// Fixed host cost per *blockstep* (block assembly, scheduling,
    /// system-call overhead), seconds.
    pub t_block_fixed: f64,
    /// Per-particle-step host cost with a hot cache, seconds.
    pub t_step_fast: f64,
    /// Per-particle-step host cost with a cold cache, seconds.
    pub t_step_slow: f64,
    /// Particle count at which the working set falls out of cache —
    /// "For small N, the cache-hit rate is higher and therefore the
    /// calculation on the host is faster" (§4.1).
    pub n_cache: f64,
}

impl HostProfile {
    /// The original frontend: "AMD Athlon XP 1800+ processors and ECS
    /// K7S6A motherboards" (§2.2).
    pub fn athlon_xp_1800() -> Self {
        Self {
            name: "Athlon XP 1800+",
            t_block_fixed: 55.0e-6,
            t_step_fast: 2.2e-6,
            t_step_slow: 5.5e-6,
            n_cache: 6.0e3,
        }
    }

    /// The §4.4 upgrade: "Intel P4 2.53GHz processor, overclocked to
    /// 2.85GHz" on an Iwill P4GB board — roughly 1.6× the per-particle
    /// host speed of the Athlon.
    pub fn pentium4_2_85() -> Self {
        Self {
            name: "P4 2.85GHz",
            t_block_fixed: 38.0e-6,
            t_step_fast: 1.4e-6,
            t_step_slow: 3.6e-6,
            n_cache: 8.0e3,
        }
    }

    /// Per-particle-step host time at system size `n` — the fig. 14 dotted
    /// curve: interpolates from the hot-cache to the cold-cache cost as the
    /// working set outgrows the cache.
    pub fn t_step(&self, n: f64) -> f64 {
        let miss = n / (n + self.n_cache);
        self.t_step_fast + (self.t_step_slow - self.t_step_fast) * miss
    }

    /// The *constant-T_host* fit of fig. 14 (dashed curve): the cold-cache
    /// value, which is what a single-parameter fit converges to at large N.
    pub fn t_step_const(&self) -> f64 {
        self.t_step_slow
    }
}

/// A network-interface profile — the §4.4 tuning study.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct NicProfile {
    /// Display name.
    pub name: &'static str,
    /// Round-trip latency, seconds.
    pub rtt: f64,
    /// Sustained point-to-point bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Concurrent full-rate streams the NIC/driver pair sustains.  The
    /// multi-cluster exchange relies on the four hosts of a cluster moving
    /// different data in parallel (§2); "we found the performance of
    /// MPICH/p4 on this network interface to be quite unsatisfactory"
    /// (§4.2) — the NS 83820 driver of 2002 serialised under concurrent
    /// load, which is a large part of why the 82540EM swap bought 50–100 %.
    pub concurrency: f64,
}

/// Fixed software cost per barrier stage (syscalls, TCP stack, process
/// wakeup) — identical for every NIC, so it damps the latency ratio
/// between them.
pub const BARRIER_SW_OVERHEAD: f64 = 40.0e-6;

impl NicProfile {
    /// "Originally, we used an AMD box and Gigabit NIC based on NS 83820
    /// controller chip.  With this combination, round-trip latency was
    /// around 200 µs, and the peak bandwidth was 60 MB/s."
    pub fn ns83820() -> Self {
        Self {
            name: "NS 83820",
            rtt: 200.0e-6,
            bandwidth: 60.0e6,
            concurrency: 1.0,
        }
    }

    /// "Tigon 2 shows somewhat better throughput (85 MB/s), but not much
    /// improvement in the latency."
    pub fn tigon2() -> Self {
        Self {
            name: "Netgear GA621T (Tigon 2)",
            rtt: 190.0e-6,
            bandwidth: 85.0e6,
            concurrency: 2.0,
        }
    }

    /// "Intel 82540EM gave us a surprisingly good result.  The round-trip
    /// latency was cut down to 67 µs, and the throughput is increased to
    /// 105 MB/s."
    pub fn intel_82540em() -> Self {
        Self {
            name: "Intel 82540EM",
            rtt: 67.0e-6,
            bandwidth: 105.0e6,
            concurrency: 4.0,
        }
    }

    /// One-way small-message latency (half the RTT).
    pub fn latency(&self) -> f64 {
        self.rtt / 2.0
    }

    /// Time to move `bytes` point-to-point (latency + serialisation).
    pub fn transfer(&self, bytes: f64) -> f64 {
        self.latency() + bytes / self.bandwidth
    }

    /// Butterfly-barrier time over `p` ranks: ⌈log₂ p⌉ exchange stages,
    /// each costing one RTT of the exchanged pair plus the fixed software
    /// overhead ("synchronization is done through butterfly message
    /// exchange using TCP/IP", §4.4).
    pub fn butterfly_barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let stages = (p as f64).log2().ceil();
        stages * (self.rtt + BARRIER_SW_OVERHEAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grape_peak_matches_paper() {
        let g = GrapeTiming::paper_host();
        // 128 chips ≈ 3.94 Tflops per host; 16 hosts ≈ 63.04 Tflops (§1).
        assert!((g.peak_flops() / 1e12 - 3.94).abs() < 0.01);
    }

    #[test]
    fn pass_time_scales_with_nj() {
        let g = GrapeTiming::paper_host();
        let t1 = g.pass_time(128 * 100);
        // 100 j per chip → 30 + 800 cycles at 90 MHz.
        assert!((t1 - 830.0 / 90.0e6).abs() < 1e-12);
        assert!(g.pass_time(128 * 200) > t1);
        // Empty memory still costs the pipeline depth.
        assert!((g.pass_time(0) - 30.0 / 90.0e6).abs() < 1e-15);
    }

    #[test]
    fn degraded_timing_slows_passes_and_shrinks_peak() {
        let g = GrapeTiming::paper_host();
        let half = g.degraded(64);
        assert_eq!(half.chips_per_host, 64);
        // Same clock, half the chips: half the peak, ~double the pass time.
        assert!((half.peak_flops() - g.peak_flops() / 2.0).abs() < 1.0);
        let n_j = 128 * 100;
        assert!(half.pass_time(n_j) > 1.9 * g.pass_time(n_j));
        // Degrading to the full complement is the identity.
        assert_eq!(g.degraded(128), g);
    }

    #[test]
    #[should_panic(expected = "alive chips")]
    fn degraded_rejects_zero_chips() {
        GrapeTiming::paper_host().degraded(0);
    }

    #[test]
    fn cache_model_monotone_between_bounds() {
        let h = HostProfile::athlon_xp_1800();
        let small = h.t_step(256.0);
        let big = h.t_step(2.0e6);
        assert!(small > h.t_step_fast && small < big);
        assert!(big < h.t_step_slow);
        assert!(h.t_step(1e9) < h.t_step_slow * 1.0001);
        // Monotone in N.
        let mut prev = 0.0;
        for n in [1e2, 1e3, 1e4, 1e5, 1e6] {
            let t = h.t_step(n);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn p4_is_faster_than_athlon() {
        let a = HostProfile::athlon_xp_1800();
        let p = HostProfile::pentium4_2_85();
        assert!(p.t_step(1e5) < a.t_step(1e5));
        assert!(p.t_block_fixed < a.t_block_fixed);
    }

    #[test]
    fn nic_numbers_match_the_paper() {
        assert_eq!(NicProfile::ns83820().rtt, 200.0e-6);
        assert_eq!(NicProfile::ns83820().bandwidth, 60.0e6);
        assert_eq!(NicProfile::intel_82540em().rtt, 67.0e-6);
        assert_eq!(NicProfile::intel_82540em().bandwidth, 105.0e6);
    }

    #[test]
    fn butterfly_barrier_scaling() {
        let nic = NicProfile::intel_82540em();
        let stage = 67.0e-6 + BARRIER_SW_OVERHEAD;
        assert_eq!(nic.butterfly_barrier(1), 0.0);
        assert!((nic.butterfly_barrier(2) - stage).abs() < 1e-12);
        assert!((nic.butterfly_barrier(4) - 2.0 * stage).abs() < 1e-12);
        assert!((nic.butterfly_barrier(16) - 4.0 * stage).abs() < 1e-12);
        // Non-power-of-two rounds up.
        assert!((nic.butterfly_barrier(5) - 3.0 * stage).abs() < 1e-12);
    }

    #[test]
    fn transfer_is_latency_plus_serialisation() {
        let nic = NicProfile::tigon2();
        let t = nic.transfer(85.0e4); // 10 ms of payload
        assert!((t - (95.0e-6 + 0.01)).abs() < 1e-9);
    }
}
