//! # grape6-model — the performance model of the SC'03 paper
//!
//! §4 of the paper models the calculation time per particle step as
//!
//! ```text
//! T_single = T_host + T_comm + T_GRAPE          (paper eq. 10)
//! ```
//!
//! and extends it with a host cache-hit refinement (fig. 14), a DMA-setup
//! term visible at small N (§4.1), a synchronisation term per blockstep
//! that explains the 1/N branch of figs. 16/18, and an inter-cluster
//! exchange term (§4.3).  This crate implements that model as executable
//! code:
//!
//! * [`calib`] — hardware profiles: the GRAPE pipeline/board geometry, the
//!   two host CPUs and the three Gigabit-Ethernet NICs the paper measured
//!   (§4.4), with every constant annotated by the sentence it encodes;
//! * [`blockstats`] — how many particle steps and how many blocksteps a
//!   Plummer integration of size N executes per time unit (measured at
//!   small N by the harness, extrapolated with the paper's "the number of
//!   particles integrated in one blockstep is roughly proportional to N");
//! * [`perf`] — the blockstep-level time model for single-host,
//!   single-cluster (2-D hardware network) and multi-cluster (copy
//!   algorithm) configurations, and the speed curves `S = 57·N·n_steps/T`
//!   (paper eq. 9) that the figure binaries plot.
//!
//! Everything here is *virtual time*: deterministic arithmetic over
//! calibrated constants, no wall clocks anywhere.

pub mod blockstats;
pub mod calib;
pub mod perf;

pub use blockstats::{BlockStatsModel, SyntheticWorkload};
pub use calib::{GrapeTiming, HostProfile, NicProfile};
pub use perf::{BlockTime, MachineLayout, PerfModel};
