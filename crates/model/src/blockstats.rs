//! Block-step statistics of individual-timestep Plummer integrations.
//!
//! The performance figures depend on the workload only through two
//! functions of N (and the softening):
//!
//! * `R(N)` — particle steps executed per time unit (sets the flops), and
//! * `B(N)` — blocksteps per time unit (sets how often every fixed
//!   per-block cost — synchronisation, DMA setup, block assembly — is
//!   paid).
//!
//! Their ratio is the mean block size `⟨n_b⟩ = R/B`; the paper leans on
//! "the number of particles integrated in one blockstep is roughly
//! proportional to N" to explain the 1/N branches of figs. 16/18, which in
//! this parameterisation means `B` grows much more slowly than `R`.
//!
//! Both are modelled as power laws anchored at `N_ref = 1024` and fitted,
//! by the calibration harness, to *measured* statistics of real
//! integrations at laptop-affordable N (the defaults below are such fits);
//! the benchmark binaries then extrapolate along the power law to the
//! paper's 10⁵–2×10⁶ range.  Smaller softening ⇒ closer encounters ⇒
//! shorter minimum timesteps ⇒ more steps *and* relatively smaller blocks,
//! which is why the ε = 4/N crossovers sit at much larger N (fig. 15).

use serde::{Deserialize, Serialize};

/// Power-law model of the blockstep statistics of one workload family.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockStatsModel {
    /// Anchor system size.
    pub n_ref: f64,
    /// Particle steps per particle per time unit at `n_ref`.
    pub steps_per_particle_ref: f64,
    /// Power-law slope of steps-per-particle vs N.
    pub steps_slope: f64,
    /// Blocksteps per time unit at `n_ref`.
    pub blocks_ref: f64,
    /// Power-law slope of blocks-per-unit vs N.
    pub blocks_slope: f64,
    /// Log-normal dispersion of individual block sizes around the mean.
    pub block_sigma: f64,
}

impl BlockStatsModel {
    /// Defaults for the paper's constant softening `ε = 1/64`: the direct
    /// fit of `calibrate --full` runs of this workspace's own Hermite
    /// integrator (N = 256…8192, η = 0.01).
    pub fn constant_softening() -> Self {
        Self {
            n_ref: 1024.0,
            steps_per_particle_ref: 233.0,
            steps_slope: 0.11,
            blocks_ref: 2.67e3,
            blocks_slope: 0.30,
            block_sigma: 0.9,
        }
    }

    /// Defaults for `ε = 1/[8(2N)^(1/3)]` — direct `calibrate` fit.
    pub fn inter_particle_softening() -> Self {
        Self {
            n_ref: 1024.0,
            steps_per_particle_ref: 252.0,
            steps_slope: 0.17,
            blocks_ref: 3.45e3,
            blocks_slope: 0.53,
            block_sigma: 0.95,
        }
    }

    /// Defaults for the hardest case, `ε = 4/N`.
    ///
    /// The prefactors are the `calibrate` fit; the block-count slope is
    /// **steepened beyond the measured small-N value** (0.66 for
    /// N ≤ 8192): with ε = 4/N the softening keeps shrinking as N grows,
    /// so large-N runs enter a hard-encounter regime — ever more distinct
    /// timestep levels, blockstep counts growing almost linearly with N —
    /// that a fresh small-N Plummer model never reaches.  The value 1.14
    /// is chosen so the fig. 15 crossover lands at the paper's N ≈ 3×10⁴
    /// (vs ≈ 3×10³ for constant ε); DESIGN.md records this extrapolation.
    pub fn close_encounter_softening() -> Self {
        Self {
            n_ref: 1024.0,
            steps_per_particle_ref: 339.0,
            steps_slope: 0.40,
            blocks_ref: 4.38e3,
            blocks_slope: 1.14,
            block_sigma: 1.1,
        }
    }

    /// Steps per particle per time unit at size `n`.
    pub fn steps_per_particle(&self, n: f64) -> f64 {
        self.steps_per_particle_ref * (n / self.n_ref).powf(self.steps_slope)
    }

    /// Total particle steps per time unit at size `n`.
    pub fn total_steps(&self, n: f64) -> f64 {
        n * self.steps_per_particle(n)
    }

    /// Blocksteps per time unit at size `n`.
    pub fn blocks_per_unit(&self, n: f64) -> f64 {
        self.blocks_ref * (n / self.n_ref).powf(self.blocks_slope)
    }

    /// Mean block size at size `n`.
    pub fn mean_block(&self, n: f64) -> f64 {
        (self.total_steps(n) / self.blocks_per_unit(n)).max(1.0)
    }

    /// Least-squares power-law fit from measured `(n, total_steps,
    /// blocks)` triples covering one time unit each.  Requires ≥ 2 distinct
    /// sizes; keeps the dispersion of `self`.
    pub fn fit(samples: &[(f64, f64, f64)], n_ref: f64, block_sigma: f64) -> Self {
        assert!(samples.len() >= 2, "need at least two sizes to fit slopes");
        let fit_loglog = |ys: &dyn Fn(&(f64, f64, f64)) -> f64| -> (f64, f64) {
            // Fit ln y = a + b ln(n/n_ref).
            let k = samples.len() as f64;
            let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
            for s in samples {
                let x = (s.0 / n_ref).ln();
                let y = ys(s).ln();
                sx += x;
                sy += y;
                sxx += x * x;
                sxy += x * y;
            }
            let denom = k * sxx - sx * sx;
            assert!(denom.abs() > 1e-12, "degenerate fit: all sizes equal");
            let b = (k * sxy - sx * sy) / denom;
            let a = (sy - b * sx) / k;
            (a.exp(), b)
        };
        let (steps_ref, steps_slope) = fit_loglog(&|s: &(f64, f64, f64)| s.1 / s.0);
        let (blocks_ref, blocks_slope) = fit_loglog(&|s: &(f64, f64, f64)| s.2);
        Self {
            n_ref,
            steps_per_particle_ref: steps_ref,
            steps_slope,
            blocks_ref,
            blocks_slope,
            block_sigma,
        }
    }
}

/// Deterministic stream of synthetic block sizes whose mean and count match
/// a [`BlockStatsModel`] at size `n` — the large-N workload source for the
/// figure binaries (real integrations feed the small-N points).
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    mean: f64,
    sigma: f64,
    n: usize,
    state: u64,
}

impl SyntheticWorkload {
    /// Workload for an `n`-particle system under `model`.
    pub fn new(model: &BlockStatsModel, n: usize, seed: u64) -> Self {
        Self {
            mean: model.mean_block(n as f64),
            sigma: model.block_sigma,
            n,
            state: seed | 1,
        }
    }

    /// Mean block size of the stream.
    pub fn mean_block(&self) -> f64 {
        self.mean
    }

    /// Next pseudo-uniform in (0,1) — xorshift64*, deterministic.
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let v = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((v >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    /// Next block size: log-normal with the configured dispersion, mean
    /// re-normalised so `E[n_b] = mean`, clamped to `[1, n]`.
    pub fn next_block(&mut self) -> usize {
        // Box–Muller from two uniforms.
        let u1 = self.next_uniform();
        let u2 = self.next_uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        // E[exp(σz)] = exp(σ²/2); divide it out to keep the mean.
        let raw = self.mean * (self.sigma * z - 0.5 * self.sigma * self.sigma).exp();
        (raw.round().max(1.0) as usize).min(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_block_roughly_proportional_to_n() {
        // The paper's claim: ⟨n_b⟩ ∝ N (roughly) — it is made for the
        // benign softenings; ε = 4/N deliberately breaks it (that is why
        // its crossover moves an order of magnitude in fig. 15).
        for m in [
            BlockStatsModel::constant_softening(),
            BlockStatsModel::inter_particle_softening(),
        ] {
            let expo = 1.0 + m.steps_slope - m.blocks_slope;
            assert!(expo > 0.6 && expo < 1.0, "exponent {expo}");
            let r = m.mean_block(2.0e5) / m.mean_block(1.0e5);
            assert!(r > 1.5 && r < 2.0, "doubling ratio {r}");
        }
        let close = BlockStatsModel::close_encounter_softening();
        let expo = 1.0 + close.steps_slope - close.blocks_slope;
        assert!(expo > 0.1 && expo < 0.5, "close-encounter exponent {expo}");
    }

    #[test]
    fn harder_softening_means_more_smaller_blocks() {
        let c = BlockStatsModel::constant_softening();
        let h = BlockStatsModel::close_encounter_softening();
        let n = 3.0e4;
        assert!(h.total_steps(n) > c.total_steps(n));
        assert!(h.blocks_per_unit(n) > c.blocks_per_unit(n));
        assert!(h.mean_block(n) < c.mean_block(n));
    }

    #[test]
    fn fit_recovers_power_laws() {
        let truth = BlockStatsModel::constant_softening();
        let samples: Vec<(f64, f64, f64)> = [512.0, 1024.0, 2048.0, 4096.0, 8192.0]
            .iter()
            .map(|&n| (n, truth.total_steps(n), truth.blocks_per_unit(n)))
            .collect();
        let fitted = BlockStatsModel::fit(&samples, 1024.0, truth.block_sigma);
        assert!((fitted.steps_slope - truth.steps_slope).abs() < 1e-9);
        assert!((fitted.blocks_slope - truth.blocks_slope).abs() < 1e-9);
        assert!((fitted.steps_per_particle_ref / truth.steps_per_particle_ref - 1.0).abs() < 1e-9);
        assert!((fitted.blocks_ref / truth.blocks_ref - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_with_noise_stays_close() {
        let truth = BlockStatsModel::close_encounter_softening();
        let samples: Vec<(f64, f64, f64)> = [600.0, 1500.0, 3000.0, 7000.0]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let jitter = 1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (
                    n,
                    truth.total_steps(n) * jitter,
                    truth.blocks_per_unit(n) / jitter,
                )
            })
            .collect();
        let fitted = BlockStatsModel::fit(&samples, 1024.0, 1.0);
        assert!((fitted.steps_slope - truth.steps_slope).abs() < 0.1);
        assert!((fitted.blocks_slope - truth.blocks_slope).abs() < 0.1);
    }

    #[test]
    fn synthetic_workload_mean_and_bounds() {
        let m = BlockStatsModel::constant_softening();
        let n = 65_536;
        let mut w = SyntheticWorkload::new(&m, n, 42);
        let want = m.mean_block(n as f64);
        let k = 20_000;
        let mut sum = 0.0;
        let mut max = 0usize;
        for _ in 0..k {
            let b = w.next_block();
            assert!(b >= 1 && b <= n);
            sum += b as f64;
            max = max.max(b);
        }
        let mean = sum / k as f64;
        assert!(
            (mean / want - 1.0).abs() < 0.1,
            "sample mean {mean} vs model {want}"
        );
        assert!(max > want as usize, "distribution has an upper tail");
    }

    #[test]
    fn synthetic_workload_is_deterministic() {
        let m = BlockStatsModel::constant_softening();
        let mut a = SyntheticWorkload::new(&m, 4096, 7);
        let mut b = SyntheticWorkload::new(&m, 4096, 7);
        for _ in 0..100 {
            assert_eq!(a.next_block(), b.next_block());
        }
        let mut c = SyntheticWorkload::new(&m, 4096, 8);
        let differs = (0..100).any(|_| a.next_block() != c.next_block());
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_needs_two_samples() {
        BlockStatsModel::fit(&[(1024.0, 1.0e5, 1.0e4)], 1024.0, 1.0);
    }
}
