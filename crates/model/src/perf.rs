//! The blockstep-level time model (paper eq. 10 and its extensions).
//!
//! One blockstep of size `n_b` in an `N`-particle system is charged:
//!
//! | term | single host | 2-D cluster (`p` hosts) | multi-cluster (`c×h` hosts) |
//! |---|---|---|---|
//! | host | `t_fix + n_b·t_step(N)` | `t_fix + (n_b/p)·t_step(N)` | `t_fix + (n_b/ch)·t_step(N)` |
//! | DMA  | per GRAPE call | idem, fewer calls | idem |
//! | interface | i/force/j words over the PCI link | idem on the host's share; j-updates travel the *hardware* network | j-updates of the whole block written to every cluster's GRAPE |
//! | GRAPE | `⌈n_b/48⌉·pass(N)` | `⌈(n_b/p)/48⌉·pass(N)` | `⌈(n_b/ch)/48⌉·pass(N)` |
//! | sync | — | butterfly barrier over `p` | 2 barriers over `c·h` |
//! | exchange | — | — (hardware broadcast) | block all-gather over Ethernet, `h` parallel streams |
//!
//! The per-host pass time is the same in every layout: dividing the system
//! over `p` hosts also divides each host's j-memory contents, but the 2-D
//! grid stores column subsets on each host's boards such that every host
//! still streams `N/chips_per_host` particles per chip (§3.2) — that is
//! exactly why the architecture scales.
//!
//! The figures then follow: for small N the constant-per-block terms (sync
//! above all) dominate and the time *per particle step* goes as `B·T/R ∝
//! 1/n_b ∝ 1/N` (figs. 16, 18); for large N the GRAPE term wins and speed
//! saturates near the layout's peak (figs. 13, 15, 17).

use grape6_trace::{NetSchedule, OverlapMode};
use serde::{Deserialize, Serialize};

use crate::blockstats::{BlockStatsModel, SyntheticWorkload};
use crate::calib::{GrapeTiming, HostProfile, NicProfile, BARRIER_SW_OVERHEAD};

/// Barrier rounds per blockstep inside one cluster (block agreement +
/// commit — the real code synchronises more than once per step).
pub const SYNC_ROUNDS_CLUSTER: f64 = 2.0;

/// Barrier rounds per blockstep in the multi-cluster copy code — "the
/// number of synchronization operation itself is larger with the
/// multi-cluster code, since it requires data transfer between host
/// computers" (§4.4).
pub const SYNC_ROUNDS_MULTI: f64 = 3.0;

/// Which machine configuration a blockstep runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MachineLayout {
    /// One host, four boards (fig. 13/14).
    SingleHost,
    /// `hosts` (1, 2 or 4) hosts of one cluster, connected through the
    /// GRAPE network boards (fig. 15/16).
    Cluster {
        /// Number of hosts (1–4).
        hosts: usize,
    },
    /// `clusters` clusters of `hosts_per_cluster` hosts each, the copy
    /// algorithm over Gigabit Ethernet between clusters (fig. 17/18).
    MultiCluster {
        /// Number of clusters (1–4).
        clusters: usize,
        /// Hosts per cluster (4 in the real machine).
        hosts_per_cluster: usize,
    },
}

impl MachineLayout {
    /// Total participating hosts.
    pub fn hosts(&self) -> usize {
        match *self {
            Self::SingleHost => 1,
            Self::Cluster { hosts } => hosts,
            Self::MultiCluster {
                clusters,
                hosts_per_cluster,
            } => clusters * hosts_per_cluster,
        }
    }

    /// The paper's node-count labels ("4-node" = 1 cluster of 4 hosts…).
    pub fn label(&self) -> String {
        match *self {
            Self::SingleHost => "1 host".into(),
            Self::Cluster { hosts } => format!("{hosts}-node cluster"),
            Self::MultiCluster {
                clusters,
                hosts_per_cluster,
            } => format!("{}-node ({clusters}-cluster)", clusters * hosts_per_cluster),
        }
    }
}

/// Time breakdown of one blockstep (seconds of virtual time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BlockTime {
    /// Host integrator work (predict/correct/timestep for the block).
    pub host: f64,
    /// DMA setup overhead.
    pub dma: f64,
    /// Host↔GRAPE interface transfers.
    pub interface: f64,
    /// Force-pipeline time.
    pub grape: f64,
    /// Host-host synchronisation (butterfly barriers).
    pub sync: f64,
    /// Inter-cluster particle exchange.
    pub exchange: f64,
}

impl BlockTime {
    /// Total blockstep time.
    pub fn total(&self) -> f64 {
        self.host + self.dma + self.interface + self.grape + self.sync + self.exchange
    }

    /// Wall-clock time of the blockstep under the given execution
    /// schedule.  Sequential is [`BlockTime::total`]; split-phase overlap
    /// hides host work behind the GRAPE side (dma + interface + grape),
    /// so the two combine with `max` — the paper's §4 tuning target.
    /// Network terms (sync, exchange) cannot be hidden by the GRAPE call
    /// and always add.
    pub fn wall(&self, mode: OverlapMode) -> f64 {
        mode.wall(self.host, self.dma + self.interface + self.grape) + self.sync + self.exchange
    }
}

/// The assembled performance model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PerfModel {
    /// GRAPE hardware timing.
    pub grape: GrapeTiming,
    /// Host CPU profile.
    pub host: HostProfile,
    /// Network interface profile.
    pub nic: NicProfile,
}

impl Default for PerfModel {
    /// The original system: Athlon hosts with NS 83820 NICs.
    fn default() -> Self {
        Self {
            grape: GrapeTiming::paper_host(),
            host: HostProfile::athlon_xp_1800(),
            nic: NicProfile::ns83820(),
        }
    }
}

impl PerfModel {
    /// The §4.4 tuned system: P4 hosts with Intel 82540EM NICs.
    pub fn tuned() -> Self {
        Self {
            grape: GrapeTiming::paper_host(),
            host: HostProfile::pentium4_2_85(),
            nic: NicProfile::intel_82540em(),
        }
    }

    /// The same system with only `alive_chips` GRAPE chips per host still
    /// in service (after self-test masking or mid-run deaths): pipeline
    /// passes stretch, host/network costs stay put.
    pub fn degraded(&self, alive_chips: usize) -> Self {
        Self {
            grape: self.grape.degraded(alive_chips),
            ..*self
        }
    }

    /// Time for one blockstep of `n_b` particles in an `n`-particle system.
    pub fn block_time(&self, layout: MachineLayout, n: usize, n_b: usize) -> BlockTime {
        let hosts = layout.hosts() as f64;
        let g = &self.grape;
        // Each host integrates its share of the block.
        let share = (n_b as f64 / hosts).ceil();
        let passes = (share / g.i_parallel as f64).ceil();
        let host = self.host.t_block_fixed + share * self.host.t_step(n as f64);
        let dma = passes * g.dma_per_call * g.dma_setup;
        let grape = passes * g.pass_time(n);
        // Interface: upload the share's i-particles, read back forces,
        // write back the updated j-particles.
        let mut iface_bytes = share * (g.i_word_bytes + g.f_word_bytes + g.j_word_bytes);
        let (sync, exchange) = match layout {
            MachineLayout::SingleHost => (0.0, 0.0),
            MachineLayout::Cluster { hosts } => {
                // Intra-cluster j-updates travel the hardware network; the
                // Ethernet is "used only for synchronization" (§4.2).
                (SYNC_ROUNDS_CLUSTER * self.nic.butterfly_barrier(hosts), 0.0)
            }
            MachineLayout::MultiCluster {
                clusters,
                hosts_per_cluster,
            } => {
                // Copy algorithm (§4.3): every cluster must apply every
                // update, so each host writes the *whole* block into its
                // GRAPE, not just its share.
                iface_bytes += (n_b as f64 - share) * g.j_word_bytes;
                // More barrier rounds than the single-cluster code, over
                // more hosts — the larger and more frequent synchronisation
                // the paper blames in §4.4.
                let sync =
                    SYNC_ROUNDS_MULTI * self.nic.butterfly_barrier(clusters * hosts_per_cluster);
                // All-gather of the block between clusters; the four hosts
                // of a cluster send/receive different data in parallel
                // (§2: "the bandwidth is increased by a factor of four").
                let incoming =
                    n_b as f64 * g.j_word_bytes * (clusters as f64 - 1.0) / clusters as f64;
                // The four hosts of a cluster receive different data in
                // parallel — if the NIC/driver can actually sustain
                // concurrent streams (the §4.4 tuning result).
                let streams = (hosts_per_cluster as f64).min(self.nic.concurrency);
                // The exchange is a recursive doubling between cluster
                // pairs; each of its ⌈log₂ c⌉ stages is a bidirectional
                // TCP exchange costing a full round trip plus the fixed
                // software overhead — the same stage cost as a barrier
                // stage, which is what the fabric measures.
                let exchange = if clusters > 1 {
                    (clusters as f64).log2().ceil() * (self.nic.rtt + BARRIER_SW_OVERHEAD)
                        + incoming / streams / self.nic.bandwidth
                } else {
                    0.0
                };
                (sync, exchange)
            }
        };
        BlockTime {
            host,
            dma,
            interface: iface_bytes / g.interface_bw,
            grape,
            sync,
            exchange,
        }
    }

    /// [`PerfModel::block_time`] under an explicit network schedule.
    ///
    /// The sequential schedule is the paper's measured code: per blockstep
    /// it pays `SYNC_ROUNDS` separate barriers plus (multi-cluster) a
    /// separate block exchange, each charged per message.  The coalesced
    /// schedule packs the commit sentinel, the next-time all-reduce and
    /// the j-records bound for the same partner into **one** butterfly
    /// wave of `⌈log₂ p⌉` stages — per-message costs are paid once per
    /// stage instead of once per collective.  Over `p = c·h` hosts the
    /// wave's high `⌈log₂ c⌉` stages pair hosts across clusters and carry
    /// the j-volume (booked as `exchange`); the rest stay intra-cluster
    /// (`sync`).
    ///
    /// The overlapped schedule additionally posts the wave's first stage
    /// before the force pass, so up to one stage latency hides behind the
    /// GRAPE-side compute of the same blockstep.
    pub fn block_time_net(
        &self,
        layout: MachineLayout,
        n: usize,
        n_b: usize,
        sched: NetSchedule,
    ) -> BlockTime {
        let mut bt = self.block_time(layout, n, n_b);
        let p = layout.hosts();
        if !sched.coalesced() || p <= 1 {
            return bt;
        }
        let stage = self.nic.rtt + BARRIER_SW_OVERHEAD;
        let stages = (p as f64).log2().ceil();
        match layout {
            MachineLayout::SingleHost => {}
            MachineLayout::Cluster { .. } => {
                // One wave replaces SYNC_ROUNDS_CLUSTER barriers; the
                // j-updates still travel the hardware network for free.
                bt.sync = stages * stage;
                bt.exchange = 0.0;
            }
            MachineLayout::MultiCluster {
                clusters,
                hosts_per_cluster,
            } => {
                let x_stages = if clusters > 1 {
                    (clusters as f64).log2().ceil()
                } else {
                    0.0
                };
                bt.sync = (stages - x_stages) * stage;
                // Same block volume as the sequential exchange — coalescing
                // removes per-message charges, not bytes on the wire.
                let incoming = n_b as f64 * self.grape.j_word_bytes * (clusters as f64 - 1.0)
                    / clusters as f64;
                let streams = (hosts_per_cluster as f64).min(self.nic.concurrency);
                bt.exchange = x_stages * stage + incoming / streams / self.nic.bandwidth;
            }
        }
        if sched.overlapped() {
            // The first stage is posted before the force pass; its latency
            // hides behind the engine side of the blockstep.
            let hidden = stage.min(bt.dma + bt.interface + bt.grape);
            let from_sync = hidden.min(bt.sync);
            bt.sync -= from_sync;
            bt.exchange = (bt.exchange - (hidden - from_sync)).max(0.0);
        }
        bt
    }

    /// Mean time per particle step under an explicit network schedule.
    pub fn time_per_step_net(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
        sched: NetSchedule,
    ) -> f64 {
        let nf = n as f64;
        let n_b = stats.mean_block(nf).round().max(1.0) as usize;
        self.block_time_net(layout, n, n_b, sched).total() / n_b as f64
    }

    /// Sustained speed in flops under an explicit network schedule.
    pub fn speed_net(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
        sched: NetSchedule,
    ) -> f64 {
        57.0 * n as f64 / self.time_per_step_net(layout, n, stats, sched)
    }

    /// Mean time per *particle step* (the fig. 14/16/18 quantity), using
    /// the mean-block approximation of the workload model.
    pub fn time_per_step(&self, layout: MachineLayout, n: usize, stats: &BlockStatsModel) -> f64 {
        self.time_per_step_mode(layout, n, stats, OverlapMode::Sequential)
    }

    /// [`PerfModel::time_per_step`] under an explicit execution schedule:
    /// split-phase overlap charges `max(host, grape side)` per blockstep
    /// instead of the sum ([`BlockTime::wall`]).
    pub fn time_per_step_mode(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
        mode: OverlapMode,
    ) -> f64 {
        let nf = n as f64;
        let n_b = stats.mean_block(nf).round().max(1.0) as usize;
        let t = self.block_time(layout, n, n_b).wall(mode);
        t / n_b as f64
    }

    /// Sustained speed in flops (paper eq. 9: `S = 57·N·n_steps/s`), using
    /// the mean-block approximation.
    pub fn speed(&self, layout: MachineLayout, n: usize, stats: &BlockStatsModel) -> f64 {
        57.0 * n as f64 / self.time_per_step(layout, n, stats)
    }

    /// [`PerfModel::speed`] under an explicit execution schedule.
    pub fn speed_mode(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
        mode: OverlapMode,
    ) -> f64 {
        57.0 * n as f64 / self.time_per_step_mode(layout, n, stats, mode)
    }

    /// Sustained speed averaged over a synthetic block-size distribution —
    /// slightly lower than [`PerfModel::speed`] because small blocks pay
    /// the fixed costs at full price (Jensen's inequality).
    pub fn speed_sampled(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
        blocks: usize,
        seed: u64,
    ) -> f64 {
        let mut w = SyntheticWorkload::new(stats, n, seed);
        let mut steps = 0.0f64;
        let mut time = 0.0f64;
        for _ in 0..blocks {
            let n_b = w.next_block();
            steps += n_b as f64;
            time += self.block_time(layout, n, n_b).total();
        }
        57.0 * n as f64 * steps / time
    }

    /// The fig. 14 *dashed* curve: same model but with the constant-T_host
    /// fit (no cache refinement).
    pub fn time_per_step_const_host(
        &self,
        layout: MachineLayout,
        n: usize,
        stats: &BlockStatsModel,
    ) -> f64 {
        let mut flat = *self;
        flat.host.t_step_fast = flat.host.t_step_slow;
        flat.time_per_step(layout, n, stats)
    }

    /// Peak speed of the layout in flops.
    pub fn peak(&self, layout: MachineLayout) -> f64 {
        self.grape.peak_flops() * layout.hosts() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> BlockStatsModel {
        BlockStatsModel::constant_softening()
    }

    #[test]
    fn single_host_exceeds_1tflops_at_2e5() {
        // §4.4: "the performance of a single-node system is pretty good
        // with better than 1 Tflops at N = 2×10⁵."
        let m = PerfModel::default();
        let s = m.speed(MachineLayout::SingleHost, 200_000, &stats());
        assert!(s > 1.0e12, "S = {:.3e}", s);
        assert!(s < m.peak(MachineLayout::SingleHost));
    }

    #[test]
    fn speed_increases_with_n_single_host() {
        let m = PerfModel::default();
        let mut prev = 0.0;
        for n in [1_000usize, 4_000, 16_000, 64_000, 256_000] {
            let s = m.speed(MachineLayout::SingleHost, n, &stats());
            assert!(s > prev, "speed must grow with N");
            prev = s;
        }
    }

    #[test]
    fn degraded_model_charges_reduced_parallelism() {
        let m = PerfModel::default();
        let n = 100_000;
        let healthy = m.speed(MachineLayout::SingleHost, n, &stats());
        let degraded = m.degraded(96).speed(MachineLayout::SingleHost, n, &stats());
        // Losing a quarter of the chips must cost sustained speed, but less
        // than proportionally (host and interface terms are unchanged).
        assert!(degraded < healthy);
        assert!(degraded > healthy * 0.7, "{degraded:e} vs {healthy:e}");
        // Peak scales exactly with the chip count.
        let peak_ratio =
            m.degraded(96).peak(MachineLayout::SingleHost) / m.peak(MachineLayout::SingleHost);
        assert!((peak_ratio - 0.75).abs() < 1e-12);
        // Per-blockstep, only the GRAPE term moves.
        let bt_h = m.block_time(MachineLayout::SingleHost, n, 100);
        let bt_d = m.degraded(96).block_time(MachineLayout::SingleHost, n, 100);
        assert!(bt_d.grape > bt_h.grape);
        assert_eq!(bt_d.host, bt_h.host);
        assert_eq!(bt_d.interface, bt_h.interface);
    }

    #[test]
    fn time_per_step_grows_with_n_at_large_n() {
        // Fig. 14: the GRAPE term ∝ N eventually dominates.
        let m = PerfModel::default();
        let t1 = m.time_per_step(MachineLayout::SingleHost, 100_000, &stats());
        let t2 = m.time_per_step(MachineLayout::SingleHost, 1_000_000, &stats());
        assert!(t2 > t1);
    }

    #[test]
    fn four_node_crossover_exists_and_is_order_3000() {
        // Fig. 15 (left panel): "the two-host system becomes faster than
        // the single-host system only at N ≈ 3000" (constant softening).
        let m = PerfModel::default();
        let single = MachineLayout::SingleHost;
        let two = MachineLayout::Cluster { hosts: 2 };
        let s_small_1 = m.speed(single, 512, &stats());
        let s_small_2 = m.speed(two, 512, &stats());
        assert!(
            s_small_2 < s_small_1,
            "at tiny N the 2-node system must lose: {s_small_2:.3e} vs {s_small_1:.3e}"
        );
        let s_big_1 = m.speed(single, 100_000, &stats());
        let s_big_2 = m.speed(two, 100_000, &stats());
        assert!(s_big_2 > s_big_1, "at large N the 2-node system must win");
        // Locate the crossover.
        let mut crossover = None;
        let mut n = 256usize;
        while n <= 1 << 20 {
            if m.speed(two, n, &stats()) > m.speed(single, n, &stats()) {
                crossover = Some(n);
                break;
            }
            n = (n as f64 * 1.25) as usize;
        }
        let c = crossover.expect("crossover must exist") as f64;
        assert!(
            (500.0..30_000.0).contains(&c),
            "2-node crossover at N = {c}, expected O(10³)"
        );
    }

    #[test]
    fn close_encounter_softening_moves_crossover_up() {
        // Fig. 15 right panel: ε = 4/N pushes the crossover to ~3×10⁴.
        let m = PerfModel::default();
        let hard = BlockStatsModel::close_encounter_softening();
        let soft = stats();
        let single = MachineLayout::SingleHost;
        let four = MachineLayout::Cluster { hosts: 4 };
        let find = |st: &BlockStatsModel| -> f64 {
            let mut n = 256usize;
            while n <= 4 << 20 {
                if m.speed(four, n, st) > m.speed(single, n, st) {
                    return n as f64;
                }
                n = (n as f64 * 1.2) as usize;
            }
            f64::INFINITY
        };
        let c_soft = find(&soft);
        let c_hard = find(&hard);
        assert!(
            c_hard > 2.0 * c_soft,
            "ε=4/N crossover {c_hard} should far exceed constant-ε {c_soft}"
        );
    }

    #[test]
    fn multicluster_crossover_near_1e5() {
        // Fig. 17: "the crossover point at which multi-cluster systems
        // becomes faster than single-cluster system is rather high
        // (N ≈ 10⁵)".
        let m = PerfModel::default();
        let one = MachineLayout::Cluster { hosts: 4 };
        let four = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        assert!(m.speed(four, 30_000, &stats()) < m.speed(one, 30_000, &stats()));
        assert!(m.speed(four, 1_000_000, &stats()) > m.speed(one, 1_000_000, &stats()));
        let mut crossover = f64::INFINITY;
        let mut n = 10_000usize;
        while n <= 4 << 20 {
            if m.speed(four, n, &stats()) > m.speed(one, n, &stats()) {
                crossover = n as f64;
                break;
            }
            n = (n as f64 * 1.15) as usize;
        }
        assert!(
            (3.0e4..6.0e5).contains(&crossover),
            "multi-cluster crossover at {crossover:.3e}, expected ~1e5"
        );
    }

    #[test]
    fn speedup_at_1e6_significantly_below_ideal() {
        // Fig. 17: "even for N = 10⁶, the speedup factors achieved by
        // multi-cluster systems are significantly smaller than the ideal".
        let m = PerfModel::default();
        let s1 = m.speed(MachineLayout::Cluster { hosts: 4 }, 1_000_000, &stats());
        let s4 = m.speed(
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
            1_000_000,
            &stats(),
        );
        let speedup = s4 / s1;
        assert!(speedup > 1.2, "speedup {speedup}");
        assert!(speedup < 3.6, "speedup {speedup} suspiciously ideal");
    }

    #[test]
    fn small_n_regime_scales_as_one_over_n() {
        // Figs. 16/18: per-particle-step time ∝ 1/N when sync dominates.
        let m = PerfModel::default();
        let layout = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        let t1 = m.time_per_step(layout, 2_000, &stats());
        let t2 = m.time_per_step(layout, 8_000, &stats());
        let ratio = t1 / t2;
        // Mean block ∝ N^0.87 ⇒ per-step time ratio ≈ 4^0.87 ≈ 3.3.
        assert!(
            ratio > 2.3 && ratio < 4.5,
            "small-N scaling ratio {ratio}, expected ≈ 1/N"
        );
    }

    #[test]
    fn nic_upgrade_gives_50_to_100_percent() {
        // Fig. 19: "the performance is improved by 50–100 % for the entire
        // range of N" when switching NS83820+Athlon → 82540EM+P4.
        let old = PerfModel::default();
        let new = PerfModel::tuned();
        let layout = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        for n in [50_000usize, 200_000, 800_000, 1_800_000] {
            let gain = new.speed(layout, n, &stats()) / old.speed(layout, n, &stats());
            assert!(
                gain > 1.25 && gain < 2.3,
                "N = {n}: gain {gain}, expected ~1.5-2.0"
            );
        }
        // And the improvement is larger at smaller N (§4.4).
        let gain_small = new.speed(layout, 50_000, &stats()) / old.speed(layout, 50_000, &stats());
        let gain_large =
            new.speed(layout, 1_800_000, &stats()) / old.speed(layout, 1_800_000, &stats());
        assert!(gain_small > gain_large);
    }

    #[test]
    fn tuned_16_node_reaches_tens_of_tflops_at_1_8m() {
        // Fig. 19: "For 1.8M particles, the measured speed reached 36.0
        // Tflops."  Accept the right order and a sane fraction of peak.
        let m = PerfModel::tuned();
        let layout = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        let s = m.speed(layout, 1_800_000, &stats());
        assert!(
            s > 20.0e12 && s < 63.0e12,
            "S(1.8M) = {:.1} Tflops, expected ≈ 36",
            s / 1e12
        );
    }

    #[test]
    fn sampled_speed_consistent_with_mean_block_speed() {
        // Sustained speed is a ratio of sums (total steps / total time),
        // which is linear in the block-size distribution up to the ceil()
        // granularity of chip passes — so sampling a realistic block-size
        // spread must land close to the mean-block approximation.
        let m = PerfModel::default();
        for layout in [
            MachineLayout::SingleHost,
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
        ] {
            for n in [2_000usize, 100_000] {
                let s_mean = m.speed(layout, n, &stats());
                let s_sampled = m.speed_sampled(layout, n, &stats(), 4_000, 1);
                let ratio = s_sampled / s_mean;
                assert!(
                    (0.85..1.15).contains(&ratio),
                    "layout {layout:?} N={n}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn const_host_model_faster_at_small_n_only() {
        // Fig. 14: the dashed (constant T_host) curve overestimates the
        // time at small N where the cache is hot.
        let m = PerfModel::default();
        let st = stats();
        let layout = MachineLayout::SingleHost;
        let t_const = m.time_per_step_const_host(layout, 512, &st);
        let t_refined = m.time_per_step(layout, 512, &st);
        assert!(t_const > t_refined);
        // At huge N they agree.
        let a = m.time_per_step_const_host(layout, 2_000_000, &st);
        let b = m.time_per_step(layout, 2_000_000, &st);
        assert!((a / b - 1.0).abs() < 0.05);
    }

    #[test]
    fn block_time_breakdown_consistency() {
        let m = PerfModel::default();
        let bt = m.block_time(MachineLayout::SingleHost, 100_000, 500);
        assert!(bt.sync == 0.0 && bt.exchange == 0.0);
        assert!(bt.host > 0.0 && bt.grape > 0.0 && bt.dma > 0.0 && bt.interface > 0.0);
        let total = bt.host + bt.dma + bt.interface + bt.grape;
        assert!((bt.total() - total).abs() < 1e-18);
        // Multi-cluster pays sync + exchange.
        let bt = m.block_time(
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
            100_000,
            500,
        );
        assert!(bt.sync > 0.0 && bt.exchange > 0.0);
    }

    #[test]
    fn overlapped_wall_is_max_not_sum() {
        let m = PerfModel::default();
        let bt = m.block_time(MachineLayout::SingleHost, 100_000, 500);
        let seq = bt.wall(OverlapMode::Sequential);
        let ovl = bt.wall(OverlapMode::Overlapped);
        assert!((seq - bt.total()).abs() < 1e-18);
        let engine_side = bt.dma + bt.interface + bt.grape;
        assert!((ovl - bt.host.max(engine_side)).abs() < 1e-18);
        // Overlap can only help, and never beats the longer side.
        assert!(ovl < seq && ovl >= bt.host.max(engine_side));
        // Network terms stay outside the overlap window.
        let bt = m.block_time(
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
            100_000,
            500,
        );
        assert!(bt.wall(OverlapMode::Overlapped) >= bt.sync + bt.exchange);
        // Whole-run view: overlapped time per step is strictly better.
        let st = crate::blockstats::BlockStatsModel::constant_softening();
        let a = m.time_per_step(MachineLayout::SingleHost, 100_000, &st);
        let b = m.time_per_step_mode(
            MachineLayout::SingleHost,
            100_000,
            &st,
            OverlapMode::Overlapped,
        );
        assert!(b < a);
        assert!(
            m.speed_mode(
                MachineLayout::SingleHost,
                100_000,
                &st,
                OverlapMode::Overlapped
            ) > m.speed(MachineLayout::SingleHost, 100_000, &st)
        );
    }

    #[test]
    fn overlapped_timebase_only_changes_the_mode() {
        let g = GrapeTiming::paper_host();
        let seq = g.engine_timebase();
        let ovl = g.engine_timebase_overlapped();
        assert_eq!(seq.overlap, grape6_trace::OverlapMode::Sequential);
        assert_eq!(ovl.overlap, grape6_trace::OverlapMode::Overlapped);
        assert_eq!(
            grape6_trace::EngineTimebase {
                overlap: grape6_trace::OverlapMode::Sequential,
                ..ovl
            },
            seq
        );
    }

    #[test]
    fn sequential_schedule_is_the_baseline_block_time() {
        let m = PerfModel::default();
        for layout in [
            MachineLayout::SingleHost,
            MachineLayout::Cluster { hosts: 4 },
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4,
            },
        ] {
            assert_eq!(
                m.block_time_net(layout, 100_000, 500, NetSchedule::Sequential),
                m.block_time(layout, 100_000, 500)
            );
        }
    }

    #[test]
    fn coalescing_cuts_network_time_and_overlap_cuts_more() {
        let m = PerfModel::default();
        let layout = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        let seq = m.block_time_net(layout, 100_000, 500, NetSchedule::Sequential);
        let coa = m.block_time_net(layout, 100_000, 500, NetSchedule::Coalesced);
        let ovl = m.block_time_net(layout, 100_000, 500, NetSchedule::CoalescedOverlapped);
        // Compute terms are untouched by the schedule.
        for bt in [coa, ovl] {
            assert_eq!(bt.host, seq.host);
            assert_eq!(bt.dma, seq.dma);
            assert_eq!(bt.interface, seq.interface);
            assert_eq!(bt.grape, seq.grape);
        }
        // 16 hosts: sequential pays 3 barriers (4 stages each) + 2 exchange
        // stages; one coalesced wave pays 4 stages total.
        assert!(
            coa.sync + coa.exchange < 0.5 * (seq.sync + seq.exchange),
            "coalesced {} vs sequential {}",
            coa.sync + coa.exchange,
            seq.sync + seq.exchange
        );
        // The wave's stage split: 2 intra-cluster + 2 inter-cluster stages.
        let stage = m.nic.rtt + BARRIER_SW_OVERHEAD;
        assert!((coa.sync - 2.0 * stage).abs() < 1e-15);
        assert!(coa.exchange > 2.0 * stage, "volume term must remain");
        // Overlap hides exactly one stage (compute is long at this N).
        let hidden = (seq.sync + seq.exchange - ovl.sync - ovl.exchange)
            - (seq.sync + seq.exchange - coa.sync - coa.exchange);
        assert!((hidden - stage).abs() < 1e-12, "hidden {hidden} vs {stage}");
        // Bytes on the wire are schedule-independent: the volume term never
        // drops below the sequential bandwidth share minus one stage.
        assert!(ovl.exchange > 0.0);
    }

    #[test]
    fn single_cluster_wave_replaces_two_barriers() {
        let m = PerfModel::default();
        let layout = MachineLayout::Cluster { hosts: 4 };
        let seq = m.block_time_net(layout, 50_000, 300, NetSchedule::Sequential);
        let coa = m.block_time_net(layout, 50_000, 300, NetSchedule::Coalesced);
        // Sequential: SYNC_ROUNDS_CLUSTER × butterfly; coalesced: one wave.
        assert!((seq.sync / coa.sync - SYNC_ROUNDS_CLUSTER).abs() < 1e-9);
        assert_eq!(coa.exchange, 0.0);
    }

    #[test]
    fn coalescing_moves_the_multicluster_crossover_down() {
        // The schedule attacks exactly the per-message costs that set the
        // fig. 17/18 crossover, so the crossover N must drop.
        let m = PerfModel::default();
        let one = MachineLayout::Cluster { hosts: 4 };
        let four = MachineLayout::MultiCluster {
            clusters: 4,
            hosts_per_cluster: 4,
        };
        let find = |sched: NetSchedule| -> f64 {
            let mut n = 5_000usize;
            while n <= 4 << 20 {
                if m.speed_net(four, n, &stats(), sched) > m.speed_net(one, n, &stats(), sched) {
                    return n as f64;
                }
                n = (n as f64 * 1.1) as usize;
            }
            f64::INFINITY
        };
        let c_seq = find(NetSchedule::Sequential);
        let c_coa = find(NetSchedule::Coalesced);
        let c_ovl = find(NetSchedule::CoalescedOverlapped);
        assert!(c_coa < c_seq, "coalesced crossover {c_coa} vs {c_seq}");
        assert!(c_ovl <= c_coa, "overlapped crossover {c_ovl} vs {c_coa}");
    }

    #[test]
    fn layout_host_counts_and_labels() {
        assert_eq!(MachineLayout::SingleHost.hosts(), 1);
        assert_eq!(MachineLayout::Cluster { hosts: 4 }.hosts(), 4);
        assert_eq!(
            MachineLayout::MultiCluster {
                clusters: 4,
                hosts_per_cluster: 4
            }
            .hosts(),
            16
        );
        assert!(MachineLayout::Cluster { hosts: 2 }
            .label()
            .contains("2-node"));
    }
}
