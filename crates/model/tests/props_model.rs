//! Property-based sanity of the performance model: monotonicities and
//! bounds that must hold for *any* parameters in the calibrated ranges —
//! the model is used to extrapolate, so its structure matters more than
//! any single value.

// The offline `proptest` stub type-checks but swallows the `proptest!`
// body, so in that environment rustc sees the imports and strategy
// helpers below as unused.
#![allow(unused_imports, dead_code)]

use grape6_model::blockstats::BlockStatsModel;
use grape6_model::perf::{MachineLayout, PerfModel};
use proptest::prelude::*;

fn any_layout() -> impl Strategy<Value = MachineLayout> {
    prop_oneof![
        Just(MachineLayout::SingleHost),
        (1usize..=4).prop_map(|hosts| MachineLayout::Cluster { hosts }),
        (1usize..=4).prop_map(|clusters| MachineLayout::MultiCluster {
            clusters,
            hosts_per_cluster: 4
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block time is positive and finite for any sane inputs.
    #[test]
    fn block_time_positive_finite(
        layout in any_layout(),
        n in 256usize..4_000_000,
        n_b in 1usize..100_000,
    ) {
        let m = PerfModel::default();
        let bt = m.block_time(layout, n, n_b.min(n));
        prop_assert!(bt.total().is_finite());
        prop_assert!(bt.total() > 0.0);
        prop_assert!(bt.host > 0.0 && bt.grape > 0.0);
        prop_assert!(bt.sync >= 0.0 && bt.exchange >= 0.0);
    }

    /// Larger blocks never take less total time (every term is
    /// non-decreasing in n_b).
    #[test]
    fn block_time_monotone_in_block_size(
        layout in any_layout(),
        n in 1_000usize..1_000_000,
        n_b in 1usize..10_000,
    ) {
        let m = PerfModel::default();
        let t1 = m.block_time(layout, n, n_b).total();
        let t2 = m.block_time(layout, n, n_b * 2).total();
        prop_assert!(t2 >= t1, "doubling the block shrank the time: {t1} -> {t2}");
    }

    /// More particles never make a fixed-size block faster (the GRAPE
    /// streaming term grows with N).
    #[test]
    fn block_time_monotone_in_n(
        layout in any_layout(),
        n in 1_000usize..1_000_000,
        n_b in 1usize..5_000,
    ) {
        let m = PerfModel::default();
        let t1 = m.block_time(layout, n, n_b).total();
        let t2 = m.block_time(layout, n * 2, n_b).total();
        prop_assert!(t2 >= t1);
    }

    /// Sustained speed never exceeds the layout's peak.
    #[test]
    fn speed_below_peak(
        layout in any_layout(),
        n in 512usize..2_000_000,
    ) {
        let m = PerfModel::tuned();
        let stats = BlockStatsModel::constant_softening();
        let s = m.speed(layout, n, &stats);
        prop_assert!(s > 0.0);
        prop_assert!(
            s <= m.peak(layout) * 1.0001,
            "speed {s:e} exceeds peak {:e}",
            m.peak(layout)
        );
    }

    /// The tuned system is never slower than the original anywhere.
    #[test]
    fn tuning_never_hurts(
        layout in any_layout(),
        n in 512usize..2_000_000,
    ) {
        let old = PerfModel::default();
        let new = PerfModel::tuned();
        let stats = BlockStatsModel::constant_softening();
        prop_assert!(new.speed(layout, n, &stats) >= old.speed(layout, n, &stats));
    }

    /// Block statistics: totals are positive, mean blocks within [1, N].
    #[test]
    fn blockstats_in_range(n in 256.0f64..4.0e6) {
        for m in [
            BlockStatsModel::constant_softening(),
            BlockStatsModel::inter_particle_softening(),
            BlockStatsModel::close_encounter_softening(),
        ] {
            let nb = m.mean_block(n);
            prop_assert!(nb >= 1.0);
            prop_assert!(nb <= n, "mean block {nb} exceeds N {n}");
            prop_assert!(m.total_steps(n) > 0.0);
            prop_assert!(m.blocks_per_unit(n) > 0.0);
        }
    }
}
