//! Collective operations over the fabric.
//!
//! The paper's parallel codes need exactly four collectives, and §4.4
//! documents the implementation choice this module mirrors: "synchronization
//! is done through butterfly message exchange using TCP/IP, which is about
//! two times faster than the use of MPI_barrier provided by MPICH/p4" — so
//! the barrier here is the dissemination (generalised butterfly) pattern in
//! ⌈log₂p⌉ rounds, not a central coordinator.
//!
//! All collectives are built from [`Endpoint::send`]/[`Endpoint::recv`], so
//! their virtual-time cost emerges from the message flow rather than a
//! formula — the analytic model in `grape6-model` is validated against
//! these.

use crate::fabric::Endpoint;

/// What one collective operation cost this rank, measured from the
/// endpoint's clock and counters rather than a formula — so retransmits
/// and backoff on a faulty fabric show up here automatically.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CollectiveCost {
    /// Virtual time the operation took on this rank, seconds.
    pub dt: f64,
    /// Messages this rank sent during the operation.
    pub messages: u64,
    /// Payload bytes this rank sent during the operation.
    pub bytes: u64,
    /// Retransmissions observed on this rank's incoming messages.
    pub retries: u64,
    /// Retransmission backoff charged to this rank's clock, seconds.
    pub backoff_seconds: f64,
}

/// Run `op` on the endpoint and measure what it cost this rank (clock and
/// counter deltas).
pub fn measured<T, R>(
    ep: &mut Endpoint<T>,
    op: impl FnOnce(&mut Endpoint<T>) -> R,
) -> (R, CollectiveCost)
where
    T: Send,
{
    let t0 = ep.clock();
    let s0 = ep.stats();
    let out = op(ep);
    let s1 = ep.stats();
    let cost = CollectiveCost {
        dt: ep.clock() - t0,
        messages: s1.messages_sent - s0.messages_sent,
        bytes: s1.bytes_sent - s0.bytes_sent,
        retries: s1.retransmits - s0.retransmits,
        backoff_seconds: s1.backoff_seconds - s0.backoff_seconds,
    };
    (out, cost)
}

/// Dissemination barrier (the paper's butterfly): ⌈log₂ p⌉ rounds; in round
/// `k` rank `r` signals `(r + 2^k) mod p` and waits for `(r − 2^k) mod p`.
///
/// `T` must provide a sentinel payload via `Default`.
pub fn barrier<T: Send + Default>(ep: &mut Endpoint<T>) {
    let p = ep.n_ranks();
    if p == 1 {
        return;
    }
    let me = ep.rank();
    let mut step = 1usize;
    while step < p {
        let to = (me + step) % p;
        let from = (me + p - step) % p;
        ep.send(to, T::default(), 8);
        ep.recv(from);
        step <<= 1;
    }
}

/// Central-coordinator barrier: every rank reports to rank 0, rank 0
/// releases everyone.  2(p−1) serialised messages at the coordinator —
/// the shape of a naive implementation (and of MPICH/p4's barrier, which
/// the paper found "about two times" slower than its hand-rolled
/// butterfly).  Kept for the synchronisation ablation study.
pub fn central_barrier<T: Send + Default>(ep: &mut Endpoint<T>) {
    let p = ep.n_ranks();
    if p == 1 {
        return;
    }
    if ep.rank() == 0 {
        for from in 1..p {
            ep.recv(from);
        }
        for to in 1..p {
            ep.send(to, T::default(), 8);
        }
    } else {
        ep.send(0, T::default(), 8);
        ep.recv(0);
    }
}

/// Binomial-tree broadcast from `root`.  Ranks other than the root pass
/// `None`; every rank returns the payload.  `bytes` is the wire size.
pub fn broadcast<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    root: usize,
    mine: Option<T>,
    bytes: usize,
) -> T {
    let p = ep.n_ranks();
    let me = ep.rank();
    // Re-index so the root is rank 0 in tree coordinates.
    let vrank = (me + p - root) % p;
    let mut value = if vrank == 0 {
        Some(mine.expect("root must supply the broadcast payload"))
    } else {
        None
    };
    // Standard ascending binomial: after round k the holders are the ranks
    // with vrank < 2^(k+1); in round k each holder vrank < 2^k sends to
    // vrank + 2^k.
    let mut bit = 1usize;
    while bit < p {
        if vrank < bit {
            let dst = vrank + bit;
            if dst < p {
                let real = (dst + root) % p;
                ep.send(real, value.clone().expect("holder has value"), bytes);
            }
        } else if vrank < 2 * bit {
            let src = vrank - bit;
            let real = (src + root) % p;
            value = Some(ep.recv(real));
        }
        bit <<= 1;
    }
    value.expect("broadcast did not reach this rank")
}

/// Ring all-gather: every rank contributes `mine`; returns the
/// contributions of all ranks, indexed by rank.  `bytes` is the wire size
/// of one contribution.
pub fn allgather<T: Send + Clone>(ep: &mut Endpoint<T>, mine: T, bytes: usize) -> Vec<T> {
    let p = ep.n_ranks();
    let me = ep.rank();
    let mut out: Vec<Option<T>> = vec![None; p];
    out[me] = Some(mine);
    if p == 1 {
        return out.into_iter().map(Option::unwrap).collect();
    }
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // p−1 shifts: forward the piece received last round.
    let mut piece = out[me].clone().unwrap();
    let mut piece_src = me;
    for _ in 0..p - 1 {
        ep.send(right, piece, bytes);
        let incoming = ep.recv(left);
        piece_src = (piece_src + p - 1) % p;
        out[piece_src] = Some(incoming.clone());
        piece = incoming;
    }
    out.into_iter()
        .map(|o| o.expect("allgather hole"))
        .collect()
}

/// All-reduce by all-gather + local fold (payloads are small in this
/// workload — block times, counters).
pub fn allreduce<T, F>(ep: &mut Endpoint<T>, mine: T, bytes: usize, fold: F) -> T
where
    T: Send + Clone,
    F: Fn(T, T) -> T,
{
    let all = allgather(ep, mine, bytes);
    let mut it = all.into_iter();
    let first = it.next().expect("p ≥ 1");
    it.fold(first, fold)
}

/// Global minimum of an `f64` across ranks (used for the next block time).
pub fn allreduce_min_f64(ep: &mut Endpoint<f64>, mine: f64) -> f64 {
    allreduce(ep, mine, 8, f64::min)
}

/// [`barrier`] with a per-rank cost breakdown.
pub fn barrier_measured<T: Send + Default>(ep: &mut Endpoint<T>) -> CollectiveCost {
    measured(ep, barrier).1
}

/// [`allgather`] with a per-rank cost breakdown.
pub fn allgather_measured<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    mine: T,
    bytes: usize,
) -> (Vec<T>, CollectiveCost) {
    measured(ep, |ep| allgather(ep, mine, bytes))
}

/// [`allreduce_min_f64`] with a per-rank cost breakdown.
pub fn allreduce_min_f64_measured(ep: &mut Endpoint<f64>, mine: f64) -> (f64, CollectiveCost) {
    measured(ep, |ep| allreduce_min_f64(ep, mine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;

    #[test]
    fn barrier_synchronises_clocks() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        for p in [2usize, 3, 4, 7, 8, 16] {
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                // Rank r pretends to compute r milliseconds.
                ep.advance(ep.rank() as f64 * 1e-3);
                barrier(&mut ep);
                ep.clock()
            });
            let slowest = (p - 1) as f64 * 1e-3;
            for (r, &c) in clocks.iter().enumerate() {
                assert!(
                    c >= slowest,
                    "p={p} rank {r}: clock {c} below the slowest rank"
                );
                // Barrier cost is logarithmic, not linear.
                let budget = slowest + 10.0 * (p as f64).log2().ceil() * (link.latency + link.overhead);
                assert!(c <= budget, "p={p} rank {r}: clock {c} over budget {budget}");
            }
        }
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let link = LinkProfile {
            latency: 100.0e-6,
            bandwidth: f64::INFINITY,
            overhead: 0.0,
        };
        let cost = |p: usize| -> f64 {
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                barrier(&mut ep);
                ep.clock()
            });
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        let c2 = cost(2);
        let c16 = cost(16);
        assert!(c2 > 0.0);
        // 16 ranks: 4 rounds vs 1 round — ratio ≈ 4, certainly < 8.
        assert!(c16 / c2 > 2.0 && c16 / c2 < 8.0, "ratio {}", c16 / c2);
    }

    #[test]
    fn central_barrier_synchronises_but_costs_linear() {
        // A realistic link: the per-message CPU overhead is what makes the
        // coordinator serialise (with a zero-overhead link a 2-hop central
        // barrier would actually win — the dissemination pattern exists
        // precisely because messages cost CPU).
        let link = LinkProfile {
            latency: 100.0e-6,
            bandwidth: 60.0e6,
            overhead: 20.0e-6,
        };
        let cost = |p: usize, butterfly_not_central: bool| -> f64 {
            let clocks = run_ranks::<u8, f64, _>(p, link, move |mut ep| {
                if butterfly_not_central {
                    barrier(&mut ep);
                } else {
                    central_barrier(&mut ep);
                }
                ep.clock()
            });
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        // At p = 16 the dissemination barrier (4 rounds) must clearly beat
        // the central one (serialised at the coordinator).
        let c_butterfly = cost(16, true);
        let c_central = cost(16, false);
        assert!(
            c_central > 1.4 * c_butterfly,
            "central {c_central} vs butterfly {c_butterfly}"
        );
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let vals = run_ranks::<u64, u64, _>(p, LinkProfile::ideal(), move |mut ep| {
                    let is_root = ep.rank() == root;
                    broadcast(&mut ep, root, is_root.then_some(777), 8)
                });
                assert_eq!(vals, vec![777; p], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn allgather_returns_rank_indexed() {
        for p in [1usize, 2, 4, 6] {
            let vals = run_ranks::<usize, Vec<usize>, _>(p, LinkProfile::ideal(), |mut ep| {
                let mine = ep.rank() * 10;
                allgather(&mut ep, mine, 8)
            });
            for v in vals {
                assert_eq!(v, (0..p).map(|r| r * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allreduce_min() {
        let p = 5;
        let vals = run_ranks::<f64, f64, _>(p, LinkProfile::ideal(), |mut ep| {
            let mine = match ep.rank() {
                2 => 0.125,
                r => 1.0 + r as f64,
            };
            allreduce_min_f64(&mut ep, mine)
        });
        assert_eq!(vals, vec![0.125; p]);
    }

    #[test]
    fn measured_barrier_reports_traffic_and_time() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let p = 8;
        let costs = run_ranks::<u8, CollectiveCost, _>(p, link, |mut ep| {
            barrier_measured(&mut ep)
        });
        for (r, c) in costs.iter().enumerate() {
            // Dissemination barrier: ⌈log₂ 8⌉ = 3 rounds, one 8-byte
            // message out per round.
            assert_eq!(c.messages, 3, "rank {r}");
            assert_eq!(c.bytes, 24, "rank {r}");
            assert!(c.dt > 0.0, "rank {r}");
            // Clean fabric: no retries, no backoff.
            assert_eq!(c.retries, 0, "rank {r}");
            assert_eq!(c.backoff_seconds, 0.0, "rank {r}");
        }
    }

    #[test]
    fn measured_allgather_and_allreduce_agree_with_plain() {
        let p = 4;
        let out = run_ranks::<f64, (f64, CollectiveCost), _>(p, LinkProfile::ideal(), |mut ep| {
            let mine = 1.0 + ep.rank() as f64;
            allreduce_min_f64_measured(&mut ep, mine)
        });
        for (v, c) in &out {
            assert_eq!(*v, 1.0);
            // Ring allgather: p − 1 sends of 8 bytes each.
            assert_eq!(c.messages, (p - 1) as u64);
            assert_eq!(c.bytes, 8 * (p - 1) as u64);
        }
        let gathered =
            run_ranks::<u64, (Vec<u64>, CollectiveCost), _>(p, LinkProfile::ideal(), |mut ep| {
                let me = ep.rank() as u64;
                allgather_measured(&mut ep, me, 8)
            });
        for (v, _) in &gathered {
            assert_eq!(*v, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn measured_barrier_counts_retries_on_lossy_fabric() {
        use crate::fabric::run_ranks_faulty;
        use grape6_fault::NetFaultPlan;
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let plan = NetFaultPlan::lossy(5, 400, 32, 1e-4);
        let p = 8;
        let run = || {
            run_ranks_faulty::<u8, CollectiveCost, _>(p, link, plan, |mut ep| {
                // Several barriers so every rank is statistically certain
                // to see at least one retransmitted incoming message.
                let mut total = CollectiveCost::default();
                for _ in 0..10 {
                    let c = barrier_measured(&mut ep);
                    total.dt += c.dt;
                    total.messages += c.messages;
                    total.bytes += c.bytes;
                    total.retries += c.retries;
                    total.backoff_seconds += c.backoff_seconds;
                }
                total
            })
        };
        let costs = run();
        let total_retries: u64 = costs.iter().map(|c| c.retries).sum();
        assert!(total_retries > 0, "a 40%-lossy fabric must retransmit");
        for c in &costs {
            assert!(c.backoff_seconds >= 0.0);
        }
        // Deterministic replay: identical costs on every rank.
        assert_eq!(costs, run());
    }

    #[test]
    fn allgather_charges_bandwidth() {
        // With a slow link, the ring must cost ≥ (p−1)·bytes/bw.
        let link = LinkProfile {
            latency: 0.0,
            bandwidth: 1.0e6,
            overhead: 0.0,
        };
        let p = 4;
        let bytes = 100_000; // 0.1 s per hop
        let clocks = run_ranks::<u8, f64, _>(p, link, move |mut ep| {
            allgather(&mut ep, 0, bytes);
            ep.clock()
        });
        for &c in &clocks {
            assert!(c >= 0.3 - 1e-9, "clock {c} below ring lower bound");
            assert!(c < 0.5, "clock {c} above plausible ring cost");
        }
    }
}
