//! Collective operations over the fabric.
//!
//! The paper's parallel codes need exactly four collectives, and §4.4
//! documents the implementation choice this module mirrors: "synchronization
//! is done through butterfly message exchange using TCP/IP, which is about
//! two times faster than the use of MPI_barrier provided by MPICH/p4" — so
//! the barriers here are the dissemination pattern ([`barrier`], any `p`)
//! and the true pairwise butterfly ([`butterfly_barrier`], power-of-two
//! `p`), both ⌈log₂p⌉ rounds, not a central coordinator.
//!
//! All collectives are built from [`Endpoint::send_lossy`] /
//! [`Endpoint::recv_checked`], so their virtual-time cost emerges from the
//! message flow rather than a formula — the analytic model in
//! `grape6-model` is validated against these.  Every failure is a typed
//! [`CollectiveError`]: a link whose retry budget runs out surfaces as
//! [`CollectiveError::Link`], a peer that died mid-collective as
//! [`CollectiveError::Down`], and a malformed call (missing broadcast
//! payload, empty reduction) as its own variant — nothing on the message
//! path panics.  On a lossless fabric with live peers the collectives are
//! infallible and callers may `expect` accordingly.
//!
//! Barriers return the [`BarrierAlgo`] that *actually ran*:
//! [`butterfly_barrier`] falls back to the dissemination pattern for
//! non-power-of-two `p`, and the §4 model validation charges the butterfly
//! stage cost, so a silent substitution would corrupt the sync-term
//! comparison.  [`CollectiveCost::algo`] and the Sync span counters carry
//! the same tag (see [`traced_sync`]).

use grape6_trace::{BarrierAlgo, Phase, Span, SpanCounters};

use crate::fabric::{Endpoint, LinkError, RecvError};

/// A collective operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveError {
    /// A point-to-point link under the collective exhausted its retry
    /// budget.
    Link(LinkError),
    /// A peer dropped its endpoint (rank died) mid-collective.
    Down {
        /// The departed peer.
        from: usize,
        /// The rank that observed the departure.
        to: usize,
    },
    /// [`broadcast`] was called with `mine = None` on the root rank.
    MissingRootPayload {
        /// The broadcast root.
        root: usize,
        /// The rank that noticed (always the root itself).
        rank: usize,
    },
    /// The broadcast doubling front never delivered a payload to this
    /// rank — a topology bug surfaced as data instead of a panic.
    MissingPayload {
        /// The rank left without a value.
        rank: usize,
    },
    /// A reduction had no contributions to fold.
    EmptyReduce {
        /// The rank whose fold came up empty.
        rank: usize,
    },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Link(e) => write!(f, "collective failed: {e}"),
            Self::Down { from, to } => {
                write!(f, "collective failed: rank {from} down (observed by {to})")
            }
            Self::MissingRootPayload { root, rank } => {
                write!(f, "broadcast root {root} (rank {rank}) supplied no payload")
            }
            Self::MissingPayload { rank } => {
                write!(f, "broadcast never reached rank {rank}")
            }
            Self::EmptyReduce { rank } => {
                write!(f, "reduction at rank {rank} had nothing to fold")
            }
        }
    }
}

impl std::error::Error for CollectiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Link(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinkError> for CollectiveError {
    fn from(e: LinkError) -> Self {
        Self::Link(e)
    }
}

impl From<RecvError> for CollectiveError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Lost(le) => Self::Link(le),
            RecvError::Down { from, to } => Self::Down { from, to },
        }
    }
}

/// What one collective operation cost this rank, measured from the
/// endpoint's clock and counters rather than a formula — so retransmits
/// and backoff on a faulty fabric show up here automatically.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CollectiveCost {
    /// Virtual time the operation took on this rank, seconds.
    pub dt: f64,
    /// Messages this rank sent during the operation.
    pub messages: u64,
    /// Payload bytes this rank sent during the operation.
    pub bytes: u64,
    /// Retransmissions behind the messages this rank *received* during the
    /// operation (delta of the endpoint-wide incoming-retransmit counter —
    /// sends are counted at the receiving rank, not here).
    pub retries: u64,
    /// Retransmission backoff charged to this rank's clock, seconds.
    pub backoff_seconds: f64,
    /// The wave pattern that actually ran, where the operation was a
    /// barrier (or barrier-shaped coalesced wave); `None` for data
    /// collectives.  This is how the model validation detects the
    /// dissemination fallback at non-power-of-two `p`.
    pub algo: Option<BarrierAlgo>,
}

/// Run `op` on the endpoint and measure what it cost this rank (clock and
/// counter deltas).  The u64 deltas saturate at zero so a counter that is
/// reset mid-operation degrades to "no traffic observed" instead of a
/// wrap-around to ~2⁶⁴.
pub fn measured<T, R>(
    ep: &mut Endpoint<T>,
    op: impl FnOnce(&mut Endpoint<T>) -> R,
) -> (R, CollectiveCost)
where
    T: Send,
{
    let t0 = ep.clock();
    let s0 = ep.stats();
    let out = op(ep);
    let s1 = ep.stats();
    let cost = CollectiveCost {
        dt: (ep.clock() - t0).max(0.0),
        messages: s1.messages_sent.saturating_sub(s0.messages_sent),
        bytes: s1.bytes_sent.saturating_sub(s0.bytes_sent),
        retries: s1.retransmits.saturating_sub(s0.retransmits),
        backoff_seconds: (s1.backoff_seconds - s0.backoff_seconds).max(0.0),
        algo: None,
    };
    (out, cost)
}

/// Run `op` and record its interval as a [`Span`] of `phase` (typically
/// [`Phase::Sync`] or [`Phase::Exchange`]) at this endpoint's tracer, with
/// the traffic counters filled from the measured cost.  The point-to-point
/// send/recv sub-spans land underneath it on the same timeline.
pub fn traced<T, R>(
    ep: &mut Endpoint<T>,
    phase: Phase,
    op: impl FnOnce(&mut Endpoint<T>) -> R,
) -> (R, CollectiveCost)
where
    T: Send,
{
    let t0 = ep.clock();
    let (out, cost) = measured(ep, op);
    let t1 = ep.clock();
    let span = Span {
        phase,
        t0,
        t1,
        track: 0,
        counters: SpanCounters {
            items: cost.messages,
            bytes: cost.bytes,
            retries: cost.retries,
            ..Default::default()
        },
    };
    ep.tracer_mut().record(span);
    (out, cost)
}

/// Run a barrier-shaped `op` (returning the [`BarrierAlgo`] that ran),
/// measure it, and record a [`Phase::Sync`] span whose counters carry the
/// algorithm tag — so a dissemination fallback is visible in the trace,
/// not just in the return value.  The span is recorded even when the
/// barrier fails (the time was spent either way); `algo` is then absent.
pub fn traced_sync<T, F>(
    ep: &mut Endpoint<T>,
    op: F,
) -> Result<(BarrierAlgo, CollectiveCost), CollectiveError>
where
    T: Send,
    F: FnOnce(&mut Endpoint<T>) -> Result<BarrierAlgo, CollectiveError>,
{
    let t0 = ep.clock();
    let (out, mut cost) = measured(ep, op);
    let t1 = ep.clock();
    cost.algo = out.as_ref().ok().copied();
    ep.tracer_mut().record(Span {
        phase: Phase::Sync,
        t0,
        t1,
        track: 0,
        counters: SpanCounters {
            items: cost.messages,
            bytes: cost.bytes,
            retries: cost.retries,
            algo: cost.algo,
            ..Default::default()
        },
    });
    Ok((out?, cost))
}

/// Dissemination barrier (the paper's butterfly): ⌈log₂ p⌉ rounds; in round
/// `k` rank `r` signals `(r + 2^k) mod p` and waits for `(r − 2^k) mod p`.
///
/// `T` must provide a sentinel payload via `Default`.
pub fn barrier<T: Send + Default>(ep: &mut Endpoint<T>) -> Result<BarrierAlgo, CollectiveError> {
    let p = ep.n_ranks();
    if p == 1 {
        return Ok(BarrierAlgo::Dissemination);
    }
    let me = ep.rank();
    let mut step = 1usize;
    while step < p {
        let to = (me + step) % p;
        let from = (me + p - step) % p;
        ep.send_lossy(to, T::default(), 8);
        ep.recv_checked(from)?;
        step <<= 1;
    }
    Ok(BarrierAlgo::Dissemination)
}

/// True butterfly barrier: for power-of-two `p`, round `k` pairs rank `r`
/// with `r XOR 2^k` — the two sides of every pair exchange messages and
/// leave the round at the *same* virtual time, so after ⌈log₂ p⌉ rounds
/// the barrier has not only synchronised the ranks but aligned their
/// clocks exactly.  (The dissemination variant above costs the same
/// number of rounds but its exits can spread by up to a round, because
/// each rank waits on a different chain of predecessors.)  Falls back to
/// the dissemination barrier when `p` is not a power of two — the return
/// value reports which pattern actually ran, so the fallback can never be
/// silently misattributed as butterfly time.
pub fn butterfly_barrier<T: Send + Default>(
    ep: &mut Endpoint<T>,
) -> Result<BarrierAlgo, CollectiveError> {
    let p = ep.n_ranks();
    if p == 1 {
        return Ok(BarrierAlgo::Butterfly);
    }
    if !p.is_power_of_two() {
        return barrier(ep);
    }
    let me = ep.rank();
    let mut bit = 1usize;
    while bit < p {
        let partner = me ^ bit;
        ep.send_lossy(partner, T::default(), 8);
        ep.recv_checked(partner)?;
        bit <<= 1;
    }
    Ok(BarrierAlgo::Butterfly)
}

/// Central-coordinator barrier: every rank reports to rank 0, rank 0
/// releases everyone.  2(p−1) serialised messages at the coordinator —
/// the shape of a naive implementation (and of MPICH/p4's barrier, which
/// the paper found "about two times" slower than its hand-rolled
/// butterfly).  Kept for the synchronisation ablation study.
pub fn central_barrier<T: Send + Default>(
    ep: &mut Endpoint<T>,
) -> Result<BarrierAlgo, CollectiveError> {
    let p = ep.n_ranks();
    if p == 1 {
        return Ok(BarrierAlgo::Central);
    }
    if ep.rank() == 0 {
        for from in 1..p {
            ep.recv_checked(from)?;
        }
        for to in 1..p {
            ep.send_lossy(to, T::default(), 8);
        }
    } else {
        ep.send_lossy(0, T::default(), 8);
        ep.recv_checked(0)?;
    }
    Ok(BarrierAlgo::Central)
}

/// Binomial-tree broadcast from `root`.  Ranks other than the root pass
/// `None`; every rank returns the payload.  `bytes` is the wire size.
pub fn broadcast<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    root: usize,
    mine: Option<T>,
    bytes: usize,
) -> Result<T, CollectiveError> {
    let p = ep.n_ranks();
    let me = ep.rank();
    // Re-index so the root is rank 0 in tree coordinates.
    let vrank = (me + p - root) % p;
    let mut value = if vrank == 0 {
        match mine {
            Some(v) => Some(v),
            None => return Err(CollectiveError::MissingRootPayload { root, rank: me }),
        }
    } else {
        None
    };
    // Standard ascending binomial: after round k the holders are the ranks
    // with vrank < 2^(k+1); in round k each holder vrank < 2^k sends to
    // vrank + 2^k.
    let mut bit = 1usize;
    while bit < p {
        if vrank < bit {
            let dst = vrank + bit;
            if dst < p {
                let real = (dst + root) % p;
                // Every vrank < bit received (or originated) the value in
                // an earlier round; a hole is a typed error, not a panic.
                let v = value
                    .clone()
                    .ok_or(CollectiveError::MissingPayload { rank: me })?;
                ep.send_lossy(real, v, bytes);
            }
        } else if vrank < 2 * bit {
            let src = vrank - bit;
            let real = (src + root) % p;
            value = Some(ep.recv_checked(real)?);
        }
        bit <<= 1;
    }
    // The doubling front covers every vrank < p; surface a gap as data.
    value.ok_or(CollectiveError::MissingPayload { rank: me })
}

/// Ring all-gather: every rank contributes `mine`; returns the
/// contributions of all ranks, indexed by rank.  `bytes` is the wire size
/// of one contribution.
pub fn allgather<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    mine: T,
    bytes: usize,
) -> Result<Vec<T>, CollectiveError> {
    let p = ep.n_ranks();
    let me = ep.rank();
    if p == 1 {
        return Ok(vec![mine]);
    }
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    // p−1 shifts: forward the piece received last round.  Pieces arrive in
    // descending source order (me, me−1, …, me−p+1 mod p); collecting them
    // in that order and then reversing + rotating yields the rank-indexed
    // layout without `Option` holes.
    let mut out: Vec<T> = Vec::with_capacity(p);
    out.push(mine);
    for round in 0..p - 1 {
        ep.send_lossy(right, out[round].clone(), bytes);
        out.push(ep.recv_checked(left)?);
    }
    out.reverse();
    out.rotate_right((me + 1) % p);
    Ok(out)
}

/// All-reduce by all-gather + local fold (payloads are small in this
/// workload — block times, counters).
pub fn allreduce<T, F>(
    ep: &mut Endpoint<T>,
    mine: T,
    bytes: usize,
    fold: F,
) -> Result<T, CollectiveError>
where
    T: Send + Clone,
    F: Fn(T, T) -> T,
{
    let rank = ep.rank();
    let all = allgather(ep, mine, bytes)?;
    // allgather returns one element per rank and the fabric has ≥ 1 rank;
    // an empty fold is a typed error rather than a panic all the same.
    all.into_iter()
        .reduce(fold)
        .ok_or(CollectiveError::EmptyReduce { rank })
}

/// Global minimum of an `f64` across ranks (used for the next block time).
pub fn allreduce_min_f64(ep: &mut Endpoint<f64>, mine: f64) -> Result<f64, CollectiveError> {
    allreduce(ep, mine, 8, f64::min)
}

/// [`barrier`] with a per-rank cost breakdown (algorithm tag included).
pub fn barrier_measured<T: Send + Default>(
    ep: &mut Endpoint<T>,
) -> Result<CollectiveCost, CollectiveError> {
    let (out, mut cost) = measured(ep, barrier);
    cost.algo = Some(out?);
    Ok(cost)
}

/// [`allgather`] with a per-rank cost breakdown.
pub fn allgather_measured<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    mine: T,
    bytes: usize,
) -> Result<(Vec<T>, CollectiveCost), CollectiveError> {
    let (out, cost) = measured(ep, |ep| allgather(ep, mine, bytes));
    out.map(|v| (v, cost))
}

/// [`allreduce_min_f64`] with a per-rank cost breakdown.
pub fn allreduce_min_f64_measured(
    ep: &mut Endpoint<f64>,
    mine: f64,
) -> Result<(f64, CollectiveCost), CollectiveError> {
    let (out, cost) = measured(ep, |ep| allreduce_min_f64(ep, mine));
    out.map(|v| (v, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;

    #[test]
    fn barrier_synchronises_clocks() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        for p in [2usize, 3, 4, 7, 8, 16] {
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                // Rank r pretends to compute r milliseconds.
                ep.advance(ep.rank() as f64 * 1e-3);
                barrier(&mut ep).unwrap();
                ep.clock()
            });
            let slowest = (p - 1) as f64 * 1e-3;
            for (r, &c) in clocks.iter().enumerate() {
                assert!(
                    c >= slowest,
                    "p={p} rank {r}: clock {c} below the slowest rank"
                );
                // Barrier cost is logarithmic, not linear.
                let budget =
                    slowest + 10.0 * (p as f64).log2().ceil() * (link.latency + link.overhead);
                assert!(
                    c <= budget,
                    "p={p} rank {r}: clock {c} over budget {budget}"
                );
            }
        }
    }

    #[test]
    fn butterfly_barrier_aligns_clocks_for_power_of_two() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        for p in [2usize, 4, 8, 16] {
            // Aligned entries leave exactly aligned: every rank walks the
            // same pairwise exchange pattern.
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                assert_eq!(butterfly_barrier(&mut ep).unwrap(), BarrierAlgo::Butterfly);
                ep.clock()
            });
            let lo = clocks.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = clocks.iter().cloned().fold(0.0, f64::max);
            assert!(
                hi - lo < 1e-12,
                "p={p}: butterfly exits spread {} s from aligned entries",
                hi - lo
            );
            // Entries skewed by less than a link round leave with no more
            // spread than they came in with (the pairwise exchange permutes
            // the skew instead of chaining it).
            let spread = 1e-6;
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                ep.advance(ep.rank() as f64 * spread / p as f64);
                butterfly_barrier(&mut ep).unwrap();
                ep.clock()
            });
            let lo = clocks.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = clocks.iter().cloned().fold(0.0, f64::max);
            assert!(
                hi - lo <= spread + 1e-12,
                "p={p}: butterfly grew the entry spread to {} s",
                hi - lo
            );
        }
        // Non-power-of-two sizes fall back to dissemination and still
        // synchronise (everyone past the slowest entry) — and the fallback
        // is *reported*, not silent.
        let clocks = run_ranks::<u8, f64, _>(6, link, |mut ep| {
            ep.advance(ep.rank() as f64 * 1e-6);
            assert_eq!(
                butterfly_barrier(&mut ep).unwrap(),
                BarrierAlgo::Dissemination
            );
            ep.clock()
        });
        for &c in &clocks {
            assert!(c >= 5e-6);
        }
    }

    #[test]
    fn barrier_cost_scales_logarithmically() {
        let link = LinkProfile {
            latency: 100.0e-6,
            bandwidth: f64::INFINITY,
            overhead: 0.0,
        };
        let cost = |p: usize| -> f64 {
            let clocks = run_ranks::<u8, f64, _>(p, link, |mut ep| {
                barrier(&mut ep).unwrap();
                ep.clock()
            });
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        let c2 = cost(2);
        let c16 = cost(16);
        assert!(c2 > 0.0);
        // 16 ranks: 4 rounds vs 1 round — ratio ≈ 4, certainly < 8.
        assert!(c16 / c2 > 2.0 && c16 / c2 < 8.0, "ratio {}", c16 / c2);
    }

    #[test]
    fn central_barrier_synchronises_but_costs_linear() {
        // A realistic link: the per-message CPU overhead is what makes the
        // coordinator serialise (with a zero-overhead link a 2-hop central
        // barrier would actually win — the dissemination pattern exists
        // precisely because messages cost CPU).
        let link = LinkProfile {
            latency: 100.0e-6,
            bandwidth: 60.0e6,
            overhead: 20.0e-6,
        };
        let cost = |p: usize, butterfly_not_central: bool| -> f64 {
            let clocks = run_ranks::<u8, f64, _>(p, link, move |mut ep| {
                if butterfly_not_central {
                    barrier(&mut ep).unwrap();
                } else {
                    central_barrier(&mut ep).unwrap();
                }
                ep.clock()
            });
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        // At p = 16 the dissemination barrier (4 rounds) must clearly beat
        // the central one (serialised at the coordinator).
        let c_butterfly = cost(16, true);
        let c_central = cost(16, false);
        assert!(
            c_central > 1.4 * c_butterfly,
            "central {c_central} vs butterfly {c_butterfly}"
        );
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in [1usize, 2, 3, 5, 8] {
            for root in 0..p {
                let vals = run_ranks::<u64, u64, _>(p, LinkProfile::ideal(), move |mut ep| {
                    let is_root = ep.rank() == root;
                    broadcast(&mut ep, root, is_root.then_some(777), 8).unwrap()
                });
                assert_eq!(vals, vec![777; p], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_without_root_payload_is_a_typed_error() {
        // Only the root can detect the omission; the other ranks would
        // deadlock waiting, so probe with p = 1 where the root returns
        // immediately.
        let errs = run_ranks::<u64, CollectiveError, _>(1, LinkProfile::ideal(), |mut ep| {
            broadcast(&mut ep, 0, None, 8).unwrap_err()
        });
        assert_eq!(
            errs[0],
            CollectiveError::MissingRootPayload { root: 0, rank: 0 }
        );
        assert!(errs[0].to_string().contains("no payload"));
    }

    #[test]
    fn allgather_returns_rank_indexed() {
        for p in [1usize, 2, 3, 4, 5, 6, 7, 8] {
            let vals = run_ranks::<usize, Vec<usize>, _>(p, LinkProfile::ideal(), |mut ep| {
                let mine = ep.rank() * 10;
                allgather(&mut ep, mine, 8).unwrap()
            });
            for v in vals {
                assert_eq!(v, (0..p).map(|r| r * 10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn allreduce_min() {
        let p = 5;
        let vals = run_ranks::<f64, f64, _>(p, LinkProfile::ideal(), |mut ep| {
            let mine = match ep.rank() {
                2 => 0.125,
                r => 1.0 + r as f64,
            };
            allreduce_min_f64(&mut ep, mine).unwrap()
        });
        assert_eq!(vals, vec![0.125; p]);
    }

    #[test]
    fn measured_barrier_reports_traffic_and_time() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let p = 8;
        let costs = run_ranks::<u8, CollectiveCost, _>(p, link, |mut ep| {
            barrier_measured(&mut ep).unwrap()
        });
        for (r, c) in costs.iter().enumerate() {
            // Dissemination barrier: ⌈log₂ 8⌉ = 3 rounds, one 8-byte
            // message out per round.
            assert_eq!(c.messages, 3, "rank {r}");
            assert_eq!(c.bytes, 24, "rank {r}");
            assert!(c.dt > 0.0, "rank {r}");
            // Clean fabric: no retries, no backoff.
            assert_eq!(c.retries, 0, "rank {r}");
            assert_eq!(c.backoff_seconds, 0.0, "rank {r}");
            // The cost report carries the pattern that ran.
            assert_eq!(c.algo, Some(BarrierAlgo::Dissemination), "rank {r}");
        }
    }

    #[test]
    fn traced_sync_tags_the_span_with_the_algorithm() {
        // p = 4 runs the true butterfly; p = 6 reports the fallback.
        for (p, want) in [
            (4usize, BarrierAlgo::Butterfly),
            (6, BarrierAlgo::Dissemination),
        ] {
            let out = run_ranks::<u8, (BarrierAlgo, Vec<grape6_trace::Span>), _>(
                p,
                LinkProfile::ideal(),
                move |mut ep| {
                    ep.set_tracer(grape6_trace::Tracer::enabled());
                    let (algo, cost) = traced_sync(&mut ep, butterfly_barrier).unwrap();
                    assert_eq!(cost.algo, Some(algo));
                    (algo, ep.take_spans())
                },
            );
            for (r, (algo, spans)) in out.iter().enumerate() {
                assert_eq!(*algo, want, "p={p} rank {r}");
                let sync = spans
                    .iter()
                    .find(|s| s.phase == Phase::Sync)
                    .unwrap_or_else(|| panic!("p={p} rank {r}: no Sync span"));
                assert_eq!(sync.counters.algo, Some(want), "p={p} rank {r}");
            }
        }
    }

    #[test]
    fn dead_rank_mid_collective_is_a_typed_down_error() {
        // Rank 2 dies before the collectives; the survivors' barrier,
        // butterfly and broadcast (rooted at the dead rank, so every
        // survivor depends on it) must all surface Down — never panic.
        let out =
            run_ranks::<u64, Option<Vec<CollectiveError>>, _>(4, LinkProfile::ideal(), |mut ep| {
                if ep.rank() == 2 {
                    return None; // endpoint drops immediately
                }
                let mut errs = Vec::new();
                errs.push(barrier(&mut ep).unwrap_err());
                errs.push(butterfly_barrier(&mut ep).unwrap_err());
                errs.push(broadcast(&mut ep, 2, None, 8).unwrap_err());
                Some(errs)
            });
        for (r, errs) in out.iter().enumerate() {
            let Some(errs) = errs else { continue };
            assert_eq!(errs.len(), 3, "rank {r}");
            for e in errs {
                // The Down may name the dead rank directly or a survivor
                // that exited after erroring itself; either way it is a
                // typed event, observed by this rank.
                match e {
                    CollectiveError::Down { to, .. } => assert_eq!(*to, r),
                    other => panic!("rank {r}: expected Down, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn dead_rank_fails_allreduce_with_down_not_panic() {
        let out =
            run_ranks::<f64, Option<CollectiveError>, _>(3, LinkProfile::ideal(), |mut ep| {
                if ep.rank() == 1 {
                    return None; // dies; the ring through it is severed
                }
                let mine = ep.rank() as f64;
                Some(allreduce_min_f64(&mut ep, mine).unwrap_err())
            });
        for (r, e) in out.iter().enumerate() {
            let Some(e) = e else { continue };
            match e {
                CollectiveError::Down { to, .. } => assert_eq!(*to, r),
                other => panic!("rank {r}: expected Down, got {other:?}"),
            }
            assert!(e.to_string().contains("down"), "{e}");
        }
    }

    #[test]
    fn measured_allgather_and_allreduce_agree_with_plain() {
        let p = 4;
        let out = run_ranks::<f64, (f64, CollectiveCost), _>(p, LinkProfile::ideal(), |mut ep| {
            let mine = 1.0 + ep.rank() as f64;
            allreduce_min_f64_measured(&mut ep, mine).unwrap()
        });
        for (v, c) in &out {
            assert_eq!(*v, 1.0);
            // Ring allgather: p − 1 sends of 8 bytes each.
            assert_eq!(c.messages, (p - 1) as u64);
            assert_eq!(c.bytes, 8 * (p - 1) as u64);
        }
        let gathered =
            run_ranks::<u64, (Vec<u64>, CollectiveCost), _>(p, LinkProfile::ideal(), |mut ep| {
                let me = ep.rank() as u64;
                allgather_measured(&mut ep, me, 8).unwrap()
            });
        for (v, _) in &gathered {
            assert_eq!(*v, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn measured_barrier_counts_retries_on_lossy_fabric() {
        use crate::fabric::run_ranks_faulty;
        use grape6_fault::NetFaultPlan;
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let plan = NetFaultPlan::lossy(5, 400, 32, 1e-4);
        let p = 8;
        let run = || {
            run_ranks_faulty::<u8, CollectiveCost, _>(p, link, plan, |mut ep| {
                // Several barriers so every rank is statistically certain
                // to see at least one retransmitted incoming message.
                let mut total = CollectiveCost::default();
                for _ in 0..10 {
                    let c = barrier_measured(&mut ep).unwrap();
                    total.dt += c.dt;
                    total.messages += c.messages;
                    total.bytes += c.bytes;
                    total.retries += c.retries;
                    total.backoff_seconds += c.backoff_seconds;
                }
                total
            })
        };
        let costs = run();
        let total_retries: u64 = costs.iter().map(|c| c.retries).sum();
        assert!(total_retries > 0, "a 40%-lossy fabric must retransmit");
        for c in &costs {
            assert!(c.backoff_seconds >= 0.0);
        }
        // Deterministic replay: identical costs on every rank.
        assert_eq!(costs, run());
    }

    #[test]
    fn exhausted_retry_budget_fails_the_collective_with_a_typed_error() {
        use crate::fabric::run_ranks_faulty;
        use grape6_fault::NetFaultPlan;
        // 100% drop, 2-attempt budget: the first barrier round times out.
        let plan = NetFaultPlan::lossy(9, 1000, 2, 1e-4);
        let errs =
            run_ranks_faulty::<u8, CollectiveError, _>(2, LinkProfile::ideal(), plan, |mut ep| {
                barrier(&mut ep).unwrap_err()
            });
        for (r, e) in errs.iter().enumerate() {
            match e {
                CollectiveError::Link(le) => assert_eq!(le.to, r),
                other => panic!("rank {r}: expected Link, got {other:?}"),
            }
        }
    }

    #[test]
    fn allgather_charges_bandwidth() {
        // With a slow link, the ring must cost ≥ (p−1)·bytes/bw.
        let link = LinkProfile {
            latency: 0.0,
            bandwidth: 1.0e6,
            overhead: 0.0,
        };
        let p = 4;
        let bytes = 100_000; // 0.1 s per hop
        let clocks = run_ranks::<u8, f64, _>(p, link, move |mut ep| {
            allgather(&mut ep, 0, bytes).unwrap();
            ep.clock()
        });
        for &c in &clocks {
            assert!(c >= 0.3 - 1e-9, "clock {c} below ring lower bound");
            assert!(c < 0.5, "clock {c} above plausible ring cost");
        }
    }

    #[test]
    fn traced_collectives_record_sync_spans_over_send_recv_subspans() {
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let p = 4;
        let spans = run_ranks::<u8, Vec<grape6_trace::Span>, _>(p, link, |mut ep| {
            ep.set_tracer(grape6_trace::Tracer::enabled());
            traced(&mut ep, Phase::Sync, |ep| barrier(ep).unwrap());
            ep.take_spans()
        });
        for (r, s) in spans.iter().enumerate() {
            let syncs: Vec<_> = s.iter().filter(|x| x.phase == Phase::Sync).collect();
            assert_eq!(syncs.len(), 1, "rank {r}");
            let sync = syncs[0];
            assert!(sync.dur() > 0.0, "rank {r}");
            // ⌈log₂ 4⌉ = 2 rounds → 2 sends + 2 recvs nested inside.
            let sends = s.iter().filter(|x| x.phase == Phase::Send).count();
            let recvs = s.iter().filter(|x| x.phase == Phase::Recv).count();
            assert_eq!((sends, recvs), (2, 2), "rank {r}");
            for sub in s.iter().filter(|x| x.phase != Phase::Sync) {
                assert!(
                    sub.t0 >= sync.t0 - 1e-15 && sub.t1 <= sync.t1 + 1e-15,
                    "rank {r}: sub-span outside the collective interval"
                );
            }
            // The collective span carries the traffic counters.
            assert_eq!(sync.counters.items, 2, "rank {r}");
            assert_eq!(sync.counters.bytes, 16, "rank {r}");
        }
    }
}
