//! Point-to-point link timing.

use serde::{Deserialize, Serialize};

/// Timing of one point-to-point connection between two hosts.
///
/// `transfer(bytes) = latency + overhead + bytes / bandwidth` — the
/// standard postal model.  The three constructors carry the paper's §4.4
/// NIC measurements (latency is taken as half the measured round trip).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// One-way wire+stack latency, seconds.
    pub latency: f64,
    /// Sustained bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Fixed software cost per message (syscall, driver), seconds.
    pub overhead: f64,
}

impl LinkProfile {
    /// NS 83820: 200 µs RTT, 60 MB/s.
    pub fn ns83820() -> Self {
        Self {
            latency: 100.0e-6,
            bandwidth: 60.0e6,
            overhead: 20.0e-6,
        }
    }

    /// Netgear GA621T (Tigon 2): similar latency, 85 MB/s.
    pub fn tigon2() -> Self {
        Self {
            latency: 95.0e-6,
            bandwidth: 85.0e6,
            overhead: 20.0e-6,
        }
    }

    /// Intel 82540EM: 67 µs RTT, 105 MB/s.
    pub fn intel_82540em() -> Self {
        Self {
            latency: 33.5e-6,
            bandwidth: 105.0e6,
            overhead: 20.0e-6,
        }
    }

    /// An idealised zero-cost link (unit tests of algorithm logic).
    pub fn ideal() -> Self {
        Self {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            overhead: 0.0,
        }
    }

    /// Virtual seconds to deliver a `bytes`-byte message.
    pub fn transfer(&self, bytes: usize) -> f64 {
        self.latency + self.overhead + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_postal_model() {
        let l = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        assert!((l.transfer(0) - 1.1e-4).abs() < 1e-15);
        assert!((l.transfer(1_000_000) - (1.1e-4 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn paper_nics_ordering() {
        // Intel beats Tigon2 beats NS83820 in latency; bandwidth ordering
        // Intel > Tigon2 > NS.
        let ns = LinkProfile::ns83820();
        let tg = LinkProfile::tigon2();
        let it = LinkProfile::intel_82540em();
        assert!(it.latency < tg.latency && tg.latency < ns.latency);
        assert!(it.bandwidth > tg.bandwidth && tg.bandwidth > ns.bandwidth);
        // Small messages: dominated by latency, Intel ~2.6× faster.
        let r = ns.transfer(64) / it.transfer(64);
        assert!(r > 2.0 && r < 3.0, "ratio {r}");
    }

    #[test]
    fn ideal_link_is_free() {
        assert_eq!(LinkProfile::ideal().transfer(1 << 30), 0.0);
    }
}
