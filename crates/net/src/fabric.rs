//! The rank fabric: threads, channels, virtual clocks.
//!
//! [`run_ranks`] spawns one OS thread per rank, hands each a fully-wired
//! [`Endpoint`], runs the provided closure on every rank concurrently and
//! returns the per-rank results in rank order.  The closure does real sends
//! and receives (unbounded crossbeam channels — sends never block, receives
//! block until the matching message arrives, exactly like the TCP sockets
//! the paper used), while time is purely virtual:
//!
//! * [`Endpoint::advance`] charges local computation to the rank's clock;
//! * a receive sets the clock to
//!   `max(receiver clock, send timestamp + link transfer time)` —
//!   the receiver can never observe a message before causality allows.
//!
//! The resulting per-rank clocks are a conservative parallel-discrete-event
//! simulation of the cluster, with the actual data dependencies of the
//! algorithm enforced by the actual message flow.
//!
//! ## Unreliable links
//!
//! [`run_ranks_faulty`] additionally applies a seeded
//! [`NetFaultPlan`]: each (src, dst, seq) message is given a deterministic
//! fate — delivered first try, retransmitted after drops/corruption with
//! exponential backoff, delayed in the network, or (after `max_attempts`)
//! declared lost.  The *payload* always transits the channel (fates are
//! decided by a stateless hash, so two runs with the same seed replay the
//! identical event sequence); what the fault plan changes is virtual time
//! and the [`EndpointStats`] counters, plus [`Endpoint::recv_checked`]
//! returning [`RecvError::Lost`] when the retry budget is exhausted.  The
//! clean plan leaves every clock bit-identical to the plain fabric.
//!
//! ## Typed receive paths
//!
//! Every way a receive can fail is an observable event, not a panic:
//! [`Endpoint::recv_checked`] returns [`RecvError`] (a fault-plan loss or
//! a peer that dropped its endpoint), and [`Endpoint::recv_or_down`]
//! separates orderly departure (`Ok(None)`, after the peer's in-flight
//! traffic has drained) from link loss (`Err(LinkError)`).  The bare
//! panicking `recv` of earlier revisions is gone — every caller sees
//! typed errors.

use crossbeam::channel::{unbounded, Receiver, Sender};
use grape6_fault::{Delivery, NetFaultPlan};
use grape6_trace::{Phase, Span, SpanCounters, Tracer};

use crate::link::LinkProfile;

/// A timed message in flight.
struct TimedMsg<T> {
    sent_at: f64,
    wire_bytes: usize,
    /// Per-(src,dst) sequence number — the fault plan's replay key.
    seq: u64,
    payload: T,
}

/// Per-endpoint traffic and fault counters, readable via
/// [`Endpoint::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EndpointStats {
    /// Payload bytes this rank put on the wire.
    pub bytes_sent: u64,
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// Messages this rank successfully received.
    pub messages_received: u64,
    /// Extra transmission attempts observed on incoming messages
    /// (attempts − 1 summed over delivered messages).
    pub retransmits: u64,
    /// Incoming attempts lost to packet drops.
    pub dropped_attempts: u64,
    /// Incoming attempts lost to corruption (checksum failures).
    pub corrupt_attempts: u64,
    /// Delivered messages that suffered extra in-network delay.
    pub delayed_messages: u64,
    /// Messages whose retry budget ran out ([`LinkError`] returned).
    pub timeouts: u64,
    /// Total retransmission backoff charged to this rank's clock, seconds.
    pub backoff_seconds: f64,
}

/// A message that exhausted its retry budget (receiver-side timeout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkError {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank (the rank that observed the timeout).
    pub to: usize,
    /// Sequence number of the lost message on the (from → to) flow.
    pub seq: u64,
    /// Transmission attempts burned before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {} -> {}: message #{} lost after {} attempts",
            self.from, self.to, self.seq, self.attempts
        )
    }
}

impl std::error::Error for LinkError {}

/// Why a typed receive failed.
///
/// Both variants are events a deployed process must survive: a link whose
/// retry budget ran out, and a peer whose endpoint is gone (the rank
/// exited or died) once its in-flight traffic has drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// The fault plan exhausted the retry budget on this message.
    Lost(LinkError),
    /// The peer dropped its endpoint and its per-peer FIFO is empty.
    Down {
        /// The departed peer.
        from: usize,
        /// The rank that observed the departure.
        to: usize,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost(e) => write!(f, "{e}"),
            Self::Down { from, to } => {
                write!(f, "rank {from} is down (observed by rank {to})")
            }
        }
    }
}

impl std::error::Error for RecvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lost(e) => Some(e),
            Self::Down { .. } => None,
        }
    }
}

impl From<LinkError> for RecvError {
    fn from(e: LinkError) -> Self {
        Self::Lost(e)
    }
}

/// One rank's view of the fabric.
pub struct Endpoint<T> {
    rank: usize,
    n_ranks: usize,
    link: LinkProfile,
    plan: NetFaultPlan,
    clock: f64,
    tx: Vec<Sender<TimedMsg<T>>>,
    rx: Vec<Receiver<TimedMsg<T>>>,
    /// Next sequence number per destination rank.
    seq_out: Vec<u64>,
    stats: EndpointStats,
    tracer: Tracer,
}

impl<T: Send> Endpoint<T> {
    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the fabric.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The link profile in force.
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Current virtual time at this rank.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Total payload bytes this rank has put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.stats.bytes_sent
    }

    /// Total messages this rank has sent.
    pub fn messages_sent(&self) -> u64 {
        self.stats.messages_sent
    }

    /// All traffic and fault counters for this endpoint.
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// Flatten this endpoint's clock and counters into the checkpoint
    /// model (`f64`s travel as bit patterns).
    pub fn checkpoint_state(&self) -> grape6_ckpt::NetEndpointState {
        grape6_ckpt::NetEndpointState {
            rank: self.rank,
            clock: self.clock.to_bits(),
            bytes_sent: self.stats.bytes_sent,
            messages_sent: self.stats.messages_sent,
            messages_received: self.stats.messages_received,
            retransmits: self.stats.retransmits,
            dropped_attempts: self.stats.dropped_attempts,
            corrupt_attempts: self.stats.corrupt_attempts,
            delayed_messages: self.stats.delayed_messages,
            timeouts: self.stats.timeouts,
            backoff_seconds: self.stats.backoff_seconds.to_bits(),
        }
    }

    /// Restore the clock and counters captured by
    /// [`Self::checkpoint_state`].  Returns `false` (and changes nothing)
    /// if the state belongs to a different rank.  Message sequence numbers
    /// are *not* restored — a resumed run starts a fresh fabric, so the
    /// per-flow fault-plan replay restarts from sequence 0 exactly as the
    /// original run's did.
    pub fn restore_counters(&mut self, st: &grape6_ckpt::NetEndpointState) -> bool {
        if st.rank != self.rank {
            return false;
        }
        self.clock = f64::from_bits(st.clock);
        self.stats = EndpointStats {
            bytes_sent: st.bytes_sent,
            messages_sent: st.messages_sent,
            messages_received: st.messages_received,
            retransmits: st.retransmits,
            dropped_attempts: st.dropped_attempts,
            corrupt_attempts: st.corrupt_attempts,
            delayed_messages: st.delayed_messages,
            timeouts: st.timeouts,
            backoff_seconds: f64::from_bits(st.backoff_seconds),
        };
        true
    }

    /// Install a span sink; with [`Tracer::enabled`] every send, receive
    /// and backoff is recorded as a sub-span on this rank's virtual
    /// timeline (collective-level spans are recorded by
    /// [`crate::collectives::traced`] on top of these).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This endpoint's tracer (pause/resume, recording collective spans).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Drain the spans recorded at this endpoint.
    pub fn take_spans(&mut self) -> Vec<Span> {
        self.tracer.take()
    }

    /// Charge `dt` seconds of local computation to the clock.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot run backwards (dt = {dt})");
        self.clock += dt;
    }

    /// Force the clock to at least `t` (used when an external event — e.g.
    /// the GRAPE hardware finishing — releases this rank).
    pub fn advance_to(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Send `payload` to `to`, accounting `wire_bytes` on the wire.
    /// Non-blocking (unbounded channel), charges the send-side overhead.
    pub fn send(&mut self, to: usize, payload: T, wire_bytes: usize) {
        if !self.send_lossy(to, payload, wire_bytes) {
            panic!("peer endpoint dropped while fabric in use");
        }
    }

    /// [`Self::send`] that tolerates a departed peer: if `to` has dropped
    /// its endpoint (the rank died), the payload is silently discarded and
    /// `false` is returned.  The send-side cost is charged either way —
    /// the sender cannot know the peer is gone until the NIC has done its
    /// work.  This is the failover-safe send: survivors keep talking to a
    /// rank the [`crate::failover::RankMonitor`] has not yet declared dead
    /// without risking a panic.
    pub fn send_lossy(&mut self, to: usize, payload: T, wire_bytes: usize) -> bool {
        assert!(to != self.rank, "self-send is not a network operation");
        let t0 = self.clock;
        self.clock += self.link.overhead;
        if self.tracer.is_active() {
            self.tracer.record(Span {
                phase: Phase::Send,
                t0,
                t1: self.clock,
                track: 0,
                counters: SpanCounters {
                    items: 1,
                    bytes: wire_bytes as u64,
                    ..Default::default()
                },
            });
        }
        self.stats.bytes_sent += wire_bytes as u64;
        self.stats.messages_sent += 1;
        let seq = self.seq_out[to];
        self.seq_out[to] += 1;
        self.tx[to]
            .send(TimedMsg {
                sent_at: self.clock,
                wire_bytes,
                seq,
                payload,
            })
            .is_ok()
    }

    /// Blocking receive from `from`; advances the clock by causality plus
    /// the receive-side per-message overhead (interrupt + stack — the cost
    /// that makes coordinator-centric barriers serialise in practice).
    ///
    /// Under a fault plan, retransmission backoff and in-network delays are
    /// added to the arrival time, and a message whose retry budget runs out
    /// returns [`RecvError::Lost`]; the clock still advances to the moment
    /// the timeout was declared.  A peer that dropped its endpoint (after
    /// its in-flight traffic drained) returns [`RecvError::Down`] instead
    /// of panicking — on a lossless fabric with live peers the call is
    /// infallible and callers may `expect("lossless fabric")`.
    pub fn recv_checked(&mut self, from: usize) -> Result<T, RecvError> {
        let to = self.rank;
        let msg = self.rx[from]
            .recv()
            .map_err(|_| RecvError::Down { from, to })?;
        self.process_incoming(from, msg).map_err(RecvError::Lost)
    }

    /// Blocking receive from `from` that treats a departed peer as an
    /// observable event: returns `Ok(None)` once `from` has dropped its
    /// endpoint *and* every message it sent before dying has been consumed
    /// (per-peer FIFO drains first, so a rank is never declared gone while
    /// its traffic is still in flight).  This is the primitive the
    /// [`crate::failover::RankMonitor`] builds missed-heartbeat detection
    /// on.  A message declared lost by the fault plan is a distinct event
    /// — the peer may still be alive behind a bad link — and surfaces as
    /// `Err(LinkError)`.
    pub fn recv_or_down(&mut self, from: usize) -> Result<Option<T>, LinkError> {
        let Ok(msg) = self.rx[from].recv() else {
            return Ok(None);
        };
        self.process_incoming(from, msg).map(Some)
    }

    /// Apply causality, the fault plan and tracing to one received message.
    fn process_incoming(&mut self, from: usize, msg: TimedMsg<T>) -> Result<T, LinkError> {
        let t0 = self.clock;
        let wire = self.link.latency + msg.wire_bytes as f64 / self.link.bandwidth;
        let out = match self.plan.delivery(from as u64, self.rank as u64, msg.seq) {
            Delivery::Delivered {
                attempts,
                backoff,
                extra_delay,
                dropped,
                corrupted,
            } => {
                self.stats.retransmits += (attempts - 1) as u64;
                self.stats.dropped_attempts += dropped as u64;
                self.stats.corrupt_attempts += corrupted as u64;
                if extra_delay > 0.0 {
                    self.stats.delayed_messages += 1;
                }
                self.stats.backoff_seconds += backoff;
                let arrival = msg.sent_at + wire + backoff + extra_delay;
                self.clock = self.clock.max(arrival) + self.link.overhead;
                self.stats.messages_received += 1;
                Ok((msg.payload, attempts, backoff, msg.wire_bytes))
            }
            Delivery::Failed {
                attempts,
                backoff,
                dropped,
                corrupted,
            } => {
                self.stats.dropped_attempts += dropped as u64;
                self.stats.corrupt_attempts += corrupted as u64;
                self.stats.backoff_seconds += backoff;
                self.stats.timeouts += 1;
                // The receiver sat through every failed attempt before
                // declaring the link down.
                let deadline = msg.sent_at + wire + backoff;
                self.clock = self.clock.max(deadline) + self.link.overhead;
                Err(LinkError {
                    from,
                    to: self.rank,
                    seq: msg.seq,
                    attempts,
                })
            }
        };
        if self.tracer.is_active() {
            let (attempts, backoff, bytes) = match &out {
                Ok((_, attempts, backoff, bytes)) => (*attempts, *backoff, *bytes as u64),
                Err(e) => (e.attempts, 0.0, 0),
            };
            self.tracer.record(Span {
                phase: Phase::Recv,
                t0,
                t1: self.clock,
                track: 0,
                counters: SpanCounters {
                    items: 1,
                    bytes,
                    retries: attempts.saturating_sub(1) as u64,
                    ..Default::default()
                },
            });
            if backoff > 0.0 {
                // The retransmission tail of the wait, as its own lane.
                let t_arrive = self.clock - self.link.overhead;
                self.tracer.record(Span {
                    phase: Phase::Backoff,
                    t0: t_arrive - backoff,
                    t1: t_arrive,
                    track: 1,
                    counters: SpanCounters {
                        retries: attempts.saturating_sub(1) as u64,
                        ..Default::default()
                    },
                });
            }
        }
        out.map(|(payload, ..)| payload)
    }
}

/// Build a `p`-rank fabric and run `f` on every rank concurrently,
/// returning the per-rank results in rank order.
///
/// Panics in any rank propagate (the scope unwinds), so test assertions
/// inside rank closures behave normally.
pub fn run_ranks<T, R, F>(p: usize, link: LinkProfile, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Endpoint<T>) -> R + Sync,
{
    run_ranks_faulty(p, link, NetFaultPlan::none(), f)
}

/// [`run_ranks`] over an unreliable fabric: every endpoint carries `plan`
/// and applies it to its incoming messages.  With [`NetFaultPlan::none`]
/// this is exactly the plain fabric.
pub fn run_ranks_faulty<T, R, F>(p: usize, link: LinkProfile, plan: NetFaultPlan, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Endpoint<T>) -> R + Sync,
{
    assert!(p >= 1);
    // Wire p² channels (including unused self-channels, for simple indexing).
    let mut txs: Vec<Vec<Sender<TimedMsg<T>>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Receiver<TimedMsg<T>>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for rx_row in rxs.iter_mut() {
        for tx_col in txs.iter_mut() {
            let (tx, rx) = unbounded();
            tx_col.push(tx);
            rx_row.push(rx);
        }
    }
    let mut endpoints: Vec<Endpoint<T>> = txs
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (tx, rx))| Endpoint {
            rank,
            n_ranks: p,
            link,
            plan,
            clock: 0.0,
            tx,
            rx,
            seq_out: vec![0; p],
            stats: EndpointStats::default(),
            tracer: Tracer::disabled(),
        })
        .collect();

    let f = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .drain(..)
            .map(|ep| s.spawn(move |_| f(ep)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("rank thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ranks_pingpong_clock_advance() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let clocks = run_ranks::<u64, f64, _>(2, link, |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 42, 1000);
                let x = ep.recv_checked(1).unwrap();
                assert_eq!(x, 43);
            } else {
                let x = ep.recv_checked(0).unwrap();
                assert_eq!(x, 42);
                ep.send(0, x + 1, 1000);
            }
            ep.clock()
        });
        // One hop: send overhead 1e-5 (stamp), wire 1e-4 + 1e-5, recv
        // overhead 1e-5 ⇒ receiver at 1.3e-4; its reply send adds 1e-5.
        assert!((clocks[1] - 1.4e-4).abs() < 1e-12, "rank1 {}", clocks[1]);
        // Rank 0: sent at 1e-5; reply stamped 1.4e-4, wire 1.1e-4, recv
        // overhead 1e-5 ⇒ 2.6e-4.
        assert!((clocks[0] - 2.6e-4).abs() < 1e-12, "rank0 {}", clocks[0]);
    }

    #[test]
    fn receive_does_not_rewind_clock() {
        let link = LinkProfile::ideal();
        let clocks = run_ranks::<(), f64, _>(2, link, |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, (), 0);
            } else {
                ep.advance(5.0); // busy long past the message arrival
                ep.recv_checked(0).unwrap();
            }
            ep.clock()
        });
        assert_eq!(clocks[1], 5.0);
    }

    #[test]
    fn advance_accumulates_and_advance_to_is_monotone() {
        let clocks = run_ranks::<(), f64, _>(1, LinkProfile::ideal(), |mut ep| {
            ep.advance(1.0);
            ep.advance(0.5);
            ep.advance_to(1.0); // already past 1.0: no-op
            assert_eq!(ep.clock(), 1.5);
            ep.advance_to(2.0);
            ep.clock()
        });
        assert_eq!(clocks[0], 2.0);
    }

    #[test]
    fn byte_and_message_accounting() {
        let stats = run_ranks::<u8, (u64, u64), _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 1, 100);
                ep.send(1, 2, 200);
            } else {
                ep.recv_checked(0).unwrap();
                ep.recv_checked(0).unwrap();
            }
            (ep.bytes_sent(), ep.messages_sent())
        });
        assert_eq!(stats[0], (300, 2));
        assert_eq!(stats[1], (0, 0));
    }

    #[test]
    fn messages_from_distinct_peers_are_ordered_per_peer() {
        let order = run_ranks::<usize, Vec<usize>, _>(3, LinkProfile::ideal(), |mut ep| {
            match ep.rank() {
                0 => {
                    ep.send(2, 10, 8);
                    ep.send(2, 11, 8);
                    vec![]
                }
                1 => {
                    ep.send(2, 20, 8);
                    vec![]
                }
                _ => {
                    // Per-peer FIFO: 10 before 11; rank1's message can be
                    // taken independently.
                    let a = ep.recv_checked(0).unwrap();
                    let b = ep.recv_checked(1).unwrap();
                    let c = ep.recv_checked(0).unwrap();
                    vec![a, b, c]
                }
            }
        });
        assert_eq!(order[2], vec![10, 20, 11]);
    }

    #[test]
    #[should_panic] // the rank thread panics on the self-send assert
    fn self_send_rejected() {
        run_ranks::<(), (), _>(1, LinkProfile::ideal(), |mut ep| {
            ep.send(0, (), 0);
        });
    }

    #[test]
    fn clean_plan_is_bit_identical_to_plain_fabric() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let round = |plan: NetFaultPlan| {
            run_ranks_faulty::<u64, f64, _>(2, link, plan, |mut ep| {
                if ep.rank() == 0 {
                    ep.send(1, 42, 1000);
                    ep.recv_checked(1).unwrap();
                } else {
                    let x = ep.recv_checked(0).unwrap();
                    ep.send(0, x + 1, 1000);
                }
                ep.clock()
            })
        };
        // A plan with a nonzero seed but zero fault rates is still clean.
        let clean = NetFaultPlan {
            seed: 123,
            ..NetFaultPlan::none()
        };
        assert_eq!(round(NetFaultPlan::none()), round(clean));
    }

    #[test]
    fn lossy_link_retransmits_cost_time_and_are_counted() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let plan = NetFaultPlan::lossy(42, 300, 16, 2e-4);
        // 200 one-way messages through a 30%-lossy link.
        let run = || {
            run_ranks_faulty::<u64, (f64, EndpointStats), _>(2, link, plan, |mut ep| {
                if ep.rank() == 0 {
                    for k in 0..200 {
                        ep.send(1, k, 1000);
                    }
                } else {
                    for k in 0..200 {
                        assert_eq!(ep.recv_checked(0).unwrap(), k);
                    }
                }
                (ep.clock(), ep.stats())
            })
        };
        let a = run();
        let receiver = &a[1];
        assert!(receiver.1.retransmits > 20, "{:?}", receiver.1);
        assert_eq!(receiver.1.dropped_attempts, receiver.1.retransmits);
        assert_eq!(receiver.1.messages_received, 200);
        assert_eq!(receiver.1.timeouts, 0);
        assert!(receiver.1.backoff_seconds > 0.0);
        // The same traffic through a clean link finishes earlier.
        let clean = run_ranks::<u64, f64, _>(2, link, |mut ep| {
            if ep.rank() == 0 {
                for k in 0..200 {
                    ep.send(1, k, 1000);
                }
            } else {
                for _ in 0..200 {
                    ep.recv_checked(0).unwrap();
                }
            }
            ep.clock()
        });
        assert!(receiver.0 > clean[1], "{} vs {}", receiver.0, clean[1]);
        // Same seed ⇒ same clocks and the same counters, exactly.
        let b = run();
        assert_eq!(a[1].0, b[1].0);
        assert_eq!(a[1].1, b[1].1);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_as_link_error() {
        // 100% drop with a 3-attempt budget: every receive must time out.
        let plan = NetFaultPlan::lossy(7, 1000, 3, 1e-4);
        let link = LinkProfile::ideal();
        let out = run_ranks_faulty::<u8, Option<RecvError>, _>(2, link, plan, |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 9, 64);
                None
            } else {
                let err = ep.recv_checked(0).unwrap_err();
                assert!(ep.clock() > 0.0, "timeout must burn virtual time");
                assert_eq!(ep.stats().timeouts, 1);
                Some(err)
            }
        });
        let RecvError::Lost(e) = out[1].unwrap() else {
            panic!("expected a fault-plan loss, got {:?}", out[1]);
        };
        assert_eq!((e.from, e.to, e.seq, e.attempts), (0, 1, 0, 3));
        assert_eq!(
            e.to_string(),
            "link 0 -> 1: message #0 lost after 3 attempts"
        );
        assert_eq!(RecvError::Lost(e).to_string(), e.to_string());
    }

    #[test]
    fn departed_peer_surfaces_as_recv_error_down() {
        let out = run_ranks::<u8, Option<RecvError>, _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 5, 8);
                None // exits; its endpoint drops
            } else {
                // The buffered message arrives first (FIFO drains)…
                assert_eq!(ep.recv_checked(0).unwrap(), 5);
                // …then the departure is a typed error, not a panic.
                Some(ep.recv_checked(0).unwrap_err())
            }
        });
        assert_eq!(out[1], Some(RecvError::Down { from: 0, to: 1 }));
        assert_eq!(
            out[1].unwrap().to_string(),
            "rank 0 is down (observed by rank 1)"
        );
    }
}
