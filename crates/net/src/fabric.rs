//! The rank fabric: threads, channels, virtual clocks.
//!
//! [`run_ranks`] spawns one OS thread per rank, hands each a fully-wired
//! [`Endpoint`], runs the provided closure on every rank concurrently and
//! returns the per-rank results in rank order.  The closure does real sends
//! and receives (unbounded crossbeam channels — sends never block, receives
//! block until the matching message arrives, exactly like the TCP sockets
//! the paper used), while time is purely virtual:
//!
//! * [`Endpoint::advance`] charges local computation to the rank's clock;
//! * a receive sets the clock to
//!   `max(receiver clock, send timestamp + link transfer time)` —
//!   the receiver can never observe a message before causality allows.
//!
//! The resulting per-rank clocks are a conservative parallel-discrete-event
//! simulation of the cluster, with the actual data dependencies of the
//! algorithm enforced by the actual message flow.

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::link::LinkProfile;

/// A timed message in flight.
struct TimedMsg<T> {
    sent_at: f64,
    wire_bytes: usize,
    payload: T,
}

/// One rank's view of the fabric.
pub struct Endpoint<T> {
    rank: usize,
    n_ranks: usize,
    link: LinkProfile,
    clock: f64,
    tx: Vec<Sender<TimedMsg<T>>>,
    rx: Vec<Receiver<TimedMsg<T>>>,
    bytes_sent: u64,
    messages_sent: u64,
}

impl<T: Send> Endpoint<T> {
    /// This rank's id (0-based).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the fabric.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The link profile in force.
    pub fn link(&self) -> LinkProfile {
        self.link
    }

    /// Current virtual time at this rank.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Total payload bytes this rank has put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages this rank has sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Charge `dt` seconds of local computation to the clock.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "time cannot run backwards (dt = {dt})");
        self.clock += dt;
    }

    /// Force the clock to at least `t` (used when an external event — e.g.
    /// the GRAPE hardware finishing — releases this rank).
    pub fn advance_to(&mut self, t: f64) {
        self.clock = self.clock.max(t);
    }

    /// Send `payload` to `to`, accounting `wire_bytes` on the wire.
    /// Non-blocking (unbounded channel), charges the send-side overhead.
    pub fn send(&mut self, to: usize, payload: T, wire_bytes: usize) {
        assert!(to != self.rank, "self-send is not a network operation");
        self.clock += self.link.overhead;
        self.bytes_sent += wire_bytes as u64;
        self.messages_sent += 1;
        self.tx[to]
            .send(TimedMsg {
                sent_at: self.clock,
                wire_bytes,
                payload,
            })
            .expect("peer endpoint dropped while fabric in use");
    }

    /// Blocking receive from `from`; advances the clock by causality plus
    /// the receive-side per-message overhead (interrupt + stack — the cost
    /// that makes coordinator-centric barriers serialise in practice).
    pub fn recv(&mut self, from: usize) -> T {
        let msg = self.rx[from]
            .recv()
            .expect("peer endpoint dropped while fabric in use");
        let arrival =
            msg.sent_at + self.link.latency + msg.wire_bytes as f64 / self.link.bandwidth;
        self.clock = self.clock.max(arrival) + self.link.overhead;
        msg.payload
    }
}

/// Build a `p`-rank fabric and run `f` on every rank concurrently,
/// returning the per-rank results in rank order.
///
/// Panics in any rank propagate (the scope unwinds), so test assertions
/// inside rank closures behave normally.
pub fn run_ranks<T, R, F>(p: usize, link: LinkProfile, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Endpoint<T>) -> R + Sync,
{
    assert!(p >= 1);
    // Wire p² channels (including unused self-channels, for simple indexing).
    let mut txs: Vec<Vec<Sender<TimedMsg<T>>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut rxs: Vec<Vec<Receiver<TimedMsg<T>>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for rx_row in rxs.iter_mut() {
        for tx_col in txs.iter_mut() {
            let (tx, rx) = unbounded();
            tx_col.push(tx);
            rx_row.push(rx);
        }
    }
    let mut endpoints: Vec<Endpoint<T>> = txs
        .into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (tx, rx))| Endpoint {
            rank,
            n_ranks: p,
            link,
            clock: 0.0,
            tx,
            rx,
            bytes_sent: 0,
            messages_sent: 0,
        })
        .collect();

    let f = &f;
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .drain(..)
            .map(|ep| s.spawn(move |_| f(ep)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .expect("rank thread panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_ranks_pingpong_clock_advance() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let clocks = run_ranks::<u64, f64, _>(2, link, |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 42, 1000);
                let x = ep.recv(1);
                assert_eq!(x, 43);
            } else {
                let x = ep.recv(0);
                assert_eq!(x, 42);
                ep.send(0, x + 1, 1000);
            }
            ep.clock()
        });
        // One hop: send overhead 1e-5 (stamp), wire 1e-4 + 1e-5, recv
        // overhead 1e-5 ⇒ receiver at 1.3e-4; its reply send adds 1e-5.
        assert!((clocks[1] - 1.4e-4).abs() < 1e-12, "rank1 {}", clocks[1]);
        // Rank 0: sent at 1e-5; reply stamped 1.4e-4, wire 1.1e-4, recv
        // overhead 1e-5 ⇒ 2.6e-4.
        assert!((clocks[0] - 2.6e-4).abs() < 1e-12, "rank0 {}", clocks[0]);
    }

    #[test]
    fn receive_does_not_rewind_clock() {
        let link = LinkProfile::ideal();
        let clocks = run_ranks::<(), f64, _>(2, link, |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, (), 0);
            } else {
                ep.advance(5.0); // busy long past the message arrival
                ep.recv(0);
            }
            ep.clock()
        });
        assert_eq!(clocks[1], 5.0);
    }

    #[test]
    fn advance_accumulates_and_advance_to_is_monotone() {
        let clocks = run_ranks::<(), f64, _>(1, LinkProfile::ideal(), |mut ep| {
            ep.advance(1.0);
            ep.advance(0.5);
            ep.advance_to(1.0); // already past 1.0: no-op
            assert_eq!(ep.clock(), 1.5);
            ep.advance_to(2.0);
            ep.clock()
        });
        assert_eq!(clocks[0], 2.0);
    }

    #[test]
    fn byte_and_message_accounting() {
        let stats = run_ranks::<u8, (u64, u64), _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 1, 100);
                ep.send(1, 2, 200);
            } else {
                ep.recv(0);
                ep.recv(0);
            }
            (ep.bytes_sent(), ep.messages_sent())
        });
        assert_eq!(stats[0], (300, 2));
        assert_eq!(stats[1], (0, 0));
    }

    #[test]
    fn messages_from_distinct_peers_are_ordered_per_peer() {
        let order = run_ranks::<usize, Vec<usize>, _>(3, LinkProfile::ideal(), |mut ep| {
            match ep.rank() {
                0 => {
                    ep.send(2, 10, 8);
                    ep.send(2, 11, 8);
                    vec![]
                }
                1 => {
                    ep.send(2, 20, 8);
                    vec![]
                }
                _ => {
                    // Per-peer FIFO: 10 before 11; rank1's message can be
                    // taken independently.
                    let a = ep.recv(0);
                    let b = ep.recv(1);
                    let c = ep.recv(0);
                    vec![a, b, c]
                }
            }
        });
        assert_eq!(order[2], vec![10, 20, 11]);
    }

    #[test]
    #[should_panic] // the rank thread panics on the self-send assert
    fn self_send_rejected() {
        run_ranks::<(), (), _>(1, LinkProfile::ideal(), |mut ep| {
            ep.send(0, (), 0);
        });
    }
}
