//! Pluggable transport: the same exchange code over virtual time or real
//! sockets.
//!
//! The exchange algorithms in [`crate::exchange`] are generic over
//! [`Transport`], which moves [`Frame`]s between ranks.  Two backends:
//!
//! * [`VirtualTransport`] — borrows a virtual-time [`Endpoint`]; sends
//!   charge the link's per-message overhead and receives advance the
//!   clock by causality, exactly like every other fabric message.  The
//!   frame's [`Frame::wire_len`] (encoded bytes + synthetic pad) is what
//!   the link model charges.
//! * [`StreamTransport`] — real OS processes on TCP (loopback) or Unix
//!   domain sockets, with a filesystem rendezvous: every rank binds a
//!   listener, publishes its address under the rendezvous directory,
//!   connects to all lower ranks and accepts from all higher ranks.
//!   Frames travel length-prefixed (u64 LE); a closed stream surfaces as
//!   [`TransportError::Down`].
//!
//! The bitwise contract: both backends deliver the *identical decoded
//! frames* in the identical per-peer order (the exchange algorithms only
//! ever match sends to receives pairwise), so any state computed from
//! frame payloads is independent of the backend.  What differs is cost
//! accounting — virtual time on one side, real wall-clock on the other.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::fabric::{Endpoint, LinkError, RecvError};
use crate::wire::Frame;
use grape6_ckpt::wire::WireError;

/// A transport operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum TransportError {
    /// The virtual fault plan exhausted a message's retry budget.
    Lost(LinkError),
    /// The peer is gone (endpoint dropped / stream closed).
    Down {
        /// The departed peer.
        from: usize,
        /// The rank that observed it.
        to: usize,
    },
    /// A frame failed to decode (format bug or corrupted stream).
    Wire(WireError),
    /// A well-formed frame arrived out of protocol (wrong step or stage
    /// — the fabric is not in lockstep).
    Protocol(&'static str),
    /// An OS-level socket error (real transport only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost(e) => write!(f, "transport: {e}"),
            Self::Down { from, to } => {
                write!(f, "transport: rank {from} down (observed by {to})")
            }
            Self::Wire(e) => write!(f, "transport: bad frame: {e}"),
            Self::Protocol(e) => write!(f, "transport: protocol violation: {e}"),
            Self::Io(e) => write!(f, "transport: io: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<RecvError> for TransportError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Lost(le) => Self::Lost(le),
            RecvError::Down { from, to } => Self::Down { from, to },
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Frame movement between ranks — the only surface the exchange
/// algorithms see.
pub trait Transport {
    /// This rank's id.
    fn rank(&self) -> usize;
    /// Total ranks.
    fn n_ranks(&self) -> usize;
    /// Send one frame to `to`.  Must tolerate a departed peer (the
    /// matching receive is where the departure is observed).
    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError>;
    /// Blocking receive of one frame from `from`.
    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError>;
}

/// The virtual-time backend: a thin borrow of a fabric [`Endpoint`]
/// carrying encoded frames.  Time accounting is the endpoint's — the
/// link model charges [`Frame::wire_len`] per message, so a coalesced
/// frame pays one latency + one overhead where k separate messages would
/// pay k.
pub struct VirtualTransport<'a> {
    ep: &'a mut Endpoint<Vec<u8>>,
}

impl<'a> VirtualTransport<'a> {
    /// Wrap an endpoint for the duration of an exchange.
    pub fn new(ep: &'a mut Endpoint<Vec<u8>>) -> Self {
        Self { ep }
    }

    /// The wrapped endpoint (clock, stats, tracer).
    pub fn endpoint(&mut self) -> &mut Endpoint<Vec<u8>> {
        self.ep
    }
}

impl Transport for VirtualTransport<'_> {
    fn rank(&self) -> usize {
        self.ep.rank()
    }

    fn n_ranks(&self) -> usize {
        self.ep.n_ranks()
    }

    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        let wire = frame.wire_len();
        // Lossy: a departed peer is observed at the receive side.
        self.ep.send_lossy(to, frame.encode(), wire);
        Ok(())
    }

    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError> {
        let bytes = self.ep.recv_checked(from)?;
        Ok(Frame::decode(&bytes)?)
    }
}

/// Socket flavour for [`StreamTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// TCP over loopback.
    Tcp,
    /// Unix domain sockets.
    Uds,
}

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn reader(&mut self) -> &mut dyn Read {
        match self {
            Stream::Tcp(s) => s,
            Stream::Uds(s) => s,
        }
    }

    fn writer(&mut self) -> &mut dyn Write {
        match self {
            Stream::Tcp(s) => s,
            Stream::Uds(s) => s,
        }
    }
}

/// How long the rendezvous waits for peers before giving up.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);

/// The real-socket backend: one OS process per rank, fully connected.
///
/// Rendezvous protocol (pure filesystem, no coordinator): rank k binds a
/// listener, atomically publishes its address as `<dir>/rank<k>.addr`,
/// then *connects* to every rank below it (polling for their address
/// files) and *accepts* one connection from every rank above it.  Each
/// connector opens with an 8-byte hello (its rank, u64 LE) so the
/// acceptor knows who arrived.  Wire format: u64 LE length prefix, then
/// the encoded [`Frame`].
pub struct StreamTransport {
    rank: usize,
    n_ranks: usize,
    /// Per-peer stream, `None` at the self index and after a peer closed.
    streams: Vec<Option<Stream>>,
    /// Bytes moved, for reporting.
    bytes_sent: u64,
    messages_sent: u64,
}

impl StreamTransport {
    /// Join the mesh as `rank` of `n_ranks` via the rendezvous directory.
    pub fn connect(
        rank: usize,
        n_ranks: usize,
        dir: &Path,
        kind: StreamKind,
    ) -> Result<Self, TransportError> {
        assert!(rank < n_ranks);
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        std::fs::create_dir_all(dir).map_err(io)?;
        // Bind and publish.
        let (tcp_listener, uds_listener, addr) = match kind {
            StreamKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0").map_err(io)?;
                let a = l.local_addr().map_err(io)?.to_string();
                (Some(l), None, a)
            }
            StreamKind::Uds => {
                let sock = dir.join(format!("rank{rank}.sock"));
                let _ = std::fs::remove_file(&sock);
                let l = UnixListener::bind(&sock).map_err(io)?;
                (None, Some(l), sock.to_string_lossy().into_owned())
            }
        };
        let tmp = dir.join(format!(".rank{rank}.addr.tmp"));
        std::fs::write(&tmp, &addr).map_err(io)?;
        std::fs::rename(&tmp, dir.join(format!("rank{rank}.addr"))).map_err(io)?;

        let mut streams: Vec<Option<Stream>> = (0..n_ranks).map(|_| None).collect();
        // Connect to every lower rank (they may not have published yet).
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let peer_addr = wait_for_addr(dir, peer)?;
            let mut s = connect_with_retry(&peer_addr, kind)?;
            s.writer()
                .write_all(&(rank as u64).to_le_bytes())
                .map_err(io)?;
            *slot = Some(s);
        }
        // Accept one connection from every higher rank.
        let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
        for _ in rank + 1..n_ranks {
            let mut s = match (&tcp_listener, &uds_listener) {
                (Some(l), _) => Stream::Tcp(l.accept().map_err(io)?.0),
                (_, Some(l)) => Stream::Uds(l.accept().map_err(io)?.0),
                _ => unreachable!("one listener flavour is always bound"),
            };
            let mut hello = [0u8; 8];
            s.reader().read_exact(&mut hello).map_err(io)?;
            let peer = u64::from_le_bytes(hello) as usize;
            if peer <= rank || peer >= n_ranks || streams[peer].is_some() {
                return Err(TransportError::Io(format!(
                    "rendezvous: bogus hello from peer {peer}"
                )));
            }
            streams[peer] = Some(s);
            if Instant::now() > deadline {
                return Err(TransportError::Io("rendezvous timed out".into()));
            }
        }
        Ok(Self {
            rank,
            n_ranks,
            streams,
            bytes_sent: 0,
            messages_sent: 0,
        })
    }

    /// Payload bytes this rank put on its sockets.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Frames this rank sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

fn wait_for_addr(dir: &Path, peer: usize) -> Result<String, TransportError> {
    let path: PathBuf = dir.join(format!("rank{peer}.addr"));
    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    loop {
        match std::fs::read_to_string(&path) {
            Ok(a) if !a.is_empty() => return Ok(a),
            _ if Instant::now() > deadline => {
                return Err(TransportError::Io(format!(
                    "rendezvous: no address from rank {peer}"
                )))
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn connect_with_retry(addr: &str, kind: StreamKind) -> Result<Stream, TransportError> {
    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    loop {
        let attempt = match kind {
            StreamKind::Tcp => TcpStream::connect(addr).map(Stream::Tcp),
            StreamKind::Uds => UnixStream::connect(addr).map(Stream::Uds),
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() > deadline => {
                return Err(TransportError::Io(e.to_string()));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

impl Transport for StreamTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        assert!(to != self.rank, "self-send is not a network operation");
        let Some(s) = self.streams[to].as_mut() else {
            // Departed peer: tolerated, like Endpoint::send_lossy.
            return Ok(());
        };
        let bytes = frame.encode();
        let mut msg = Vec::with_capacity(8 + bytes.len());
        msg.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        msg.extend_from_slice(&bytes);
        match s.writer().write_all(&msg) {
            Ok(()) => {
                self.bytes_sent += bytes.len() as u64;
                self.messages_sent += 1;
                Ok(())
            }
            Err(_) => {
                // Peer hung up mid-run: drop the stream, fail soft.
                self.streams[to] = None;
                Ok(())
            }
        }
    }

    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError> {
        let down = TransportError::Down {
            from,
            to: self.rank,
        };
        let Some(s) = self.streams[from].as_mut() else {
            return Err(down);
        };
        let mut len = [0u8; 8];
        if s.reader().read_exact(&mut len).is_err() {
            self.streams[from] = None;
            return Err(down);
        }
        let n = u64::from_le_bytes(len) as usize;
        // Length sanity: a frame is never remotely this large; reject
        // before allocating on a corrupt prefix.
        if n > 1 << 30 {
            return Err(TransportError::Wire(WireError::Oversize));
        }
        let mut buf = vec![0u8; n];
        if s.reader().read_exact(&mut buf).is_err() {
            self.streams[from] = None;
            return Err(down);
        }
        Ok(Frame::decode(&buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;
    use crate::wire::JRecord;

    fn stage(step: u64, t_min: f64) -> Frame {
        Frame::Stage {
            step,
            stage: 0,
            t_min,
            records: vec![JRecord {
                index: step,
                words: vec![t_min.to_bits()],
            }],
            pad: 100,
        }
    }

    #[test]
    fn virtual_transport_moves_frames_and_charges_wire_len() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let f = stage(3, 0.25);
        let wire = f.wire_len();
        let f2 = f.clone();
        let out = run_ranks::<Vec<u8>, (f64, u64), _>(2, link, move |mut ep| {
            let mut tr = VirtualTransport::new(&mut ep);
            if tr.rank() == 0 {
                tr.send_frame(1, &f2).unwrap();
            } else {
                let got = tr.recv_frame(0).unwrap();
                assert_eq!(got, f2);
            }
            (ep.clock(), ep.bytes_sent())
        });
        // Sender charged the padded wire size, not just encoded bytes.
        assert_eq!(out[0].1, wire as u64);
        // Receiver clock: send overhead + latency + wire/bw + recv overhead.
        let expect = 1e-5 + 1e-4 + wire as f64 / 1e8 + 1e-5;
        assert!(
            (out[1].0 - expect).abs() < 1e-12,
            "{} vs {expect}",
            out[1].0
        );
    }

    #[test]
    fn stream_transport_smoke_tcp_threads() {
        // In-process smoke of the rendezvous + framing (the real
        // multi-process test lives in grape6-bench).
        let dir = std::env::temp_dir().join(format!("g6-rdv-tcp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = 3;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let mut tr = StreamTransport::connect(r, p, &dir, StreamKind::Tcp).unwrap();
                    // Everyone sends its rank-stamped frame to everyone.
                    for to in 0..p {
                        if to != r {
                            tr.send_frame(to, &stage(r as u64, r as f64)).unwrap();
                        }
                    }
                    let mut seen = Vec::new();
                    for from in 0..p {
                        if from != r {
                            seen.push(tr.recv_frame(from).unwrap());
                        }
                    }
                    (tr.bytes_sent(), seen)
                })
            })
            .collect();
        let outs: Vec<_> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        for (r, (sent, seen)) in outs.iter().enumerate() {
            assert!(*sent > 0, "rank {r}");
            let want: Vec<Frame> = (0..p)
                .filter(|&f| f != r)
                .map(|f| stage(f as u64, f as f64))
                .collect();
            assert_eq!(*seen, want, "rank {r}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_transport_smoke_uds_and_down_detection() {
        let dir = std::env::temp_dir().join(format!("g6-rdv-uds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = 2;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let mut tr = StreamTransport::connect(r, p, &dir, StreamKind::Uds).unwrap();
                    if r == 0 {
                        tr.send_frame(1, &stage(0, 0.5)).unwrap();
                        // Exit; rank 1 sees the hangup as Down.
                        None
                    } else {
                        let f = tr.recv_frame(0).unwrap();
                        assert_eq!(f, stage(0, 0.5));
                        let err = tr.recv_frame(0).unwrap_err();
                        // After the Down, sends to the dead peer fail soft.
                        tr.send_frame(0, &stage(9, 9.0)).unwrap();
                        Some(err)
                    }
                })
            })
            .collect();
        let outs: Vec<_> = hs.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(outs[1], Some(TransportError::Down { from: 0, to: 1 }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
