//! Pluggable transport: the same exchange code over virtual time or real
//! sockets.
//!
//! The exchange algorithms in [`crate::exchange`] are generic over
//! [`Transport`], which moves [`Frame`]s between ranks.  Two backends:
//!
//! * [`VirtualTransport`] — borrows a virtual-time [`Endpoint`]; sends
//!   charge the link's per-message overhead and receives advance the
//!   clock by causality, exactly like every other fabric message.  The
//!   frame's [`Frame::wire_len`] (encoded bytes + synthetic pad) is what
//!   the link model charges.
//! * [`StreamTransport`] — real OS processes on TCP (loopback) or Unix
//!   domain sockets, with a filesystem rendezvous: every rank binds a
//!   listener, publishes its nonce-stamped address under the rendezvous
//!   directory, connects to all lower ranks and accepts from all higher
//!   ranks.  Frames travel length-prefixed (u64 LE); a closed stream
//!   surfaces as [`TransportError::Down`], a silent one as
//!   [`TransportError::Timeout`] — *no receive path blocks forever*.
//!
//! The bitwise contract: both backends deliver the *identical decoded
//! frames* in the identical per-peer order (the exchange algorithms only
//! ever match sends to receives pairwise), so any state computed from
//! frame payloads is independent of the backend.  What differs is cost
//! accounting — virtual time on one side, real wall-clock on the other.
//!
//! # Deadlines
//!
//! Every blocking operation of [`StreamTransport`] carries a deadline:
//! rendezvous polls ([`StreamConfig::rendezvous_timeout`]), the hello
//! handshake, and frame receives.  A receive runs a deterministic
//! exponential-backoff budget — attempt `i` waits
//! `read_deadline * 2^i`, for [`StreamConfig::read_attempts`] attempts —
//! and then surfaces [`TransportError::Timeout`].  A timed-out receive
//! *preserves* the stream and any partially buffered frame bytes, so the
//! caller can retry (or run a recovery round) without losing data from a
//! merely-slow peer.
//!
//! # Rejoin
//!
//! Listeners stay alive for the lifetime of the transport, so a rank
//! respawned from a checkpoint can re-enter the mesh: the rejoiner binds
//! a fresh listener, publishes a *generation-tagged* address file, and
//! runs the same connect-down/accept-up protocol against the survivor
//! set ([`StreamTransport::rejoin`]); each survivor runs the mirror step
//! ([`StreamTransport::reconnect_peer`]).  The hello handshake carries
//! `(rank, nonce, generation)` so stale processes from a previous run or
//! a previous recovery generation are rejected with a typed error
//! instead of silently cross-connecting.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::fabric::{Endpoint, LinkError, RecvError};
use crate::wire::Frame;
use grape6_ckpt::wire::WireError;

/// A transport operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum TransportError {
    /// The virtual fault plan exhausted a message's retry budget.
    Lost(LinkError),
    /// The peer is gone (endpoint dropped / stream closed).
    Down {
        /// The departed peer.
        from: usize,
        /// The rank that observed it.
        to: usize,
    },
    /// The peer's stream is open but no complete frame arrived within
    /// the exponential-backoff deadline budget.  The stream (and any
    /// partial frame bytes) are preserved for a retry.
    Timeout {
        /// The silent peer.
        from: usize,
        /// The rank that timed out waiting.
        to: usize,
        /// How many doubling deadline windows were exhausted.
        attempts: u32,
    },
    /// A rendezvous artefact (address file or hello handshake) carried
    /// the wrong run nonce — a stale file or process from another run.
    RendezvousMismatch {
        /// The nonce this run was started with.
        expected: u64,
        /// The nonce found on disk / on the wire.
        found: u64,
    },
    /// A peer signalled cluster recovery where a collective frame was
    /// due.  The carried frame is the interrupting [`Frame::Recover`];
    /// the cluster layer folds it into its own recovery round.
    Interrupted {
        /// The peer that initiated recovery.
        from: usize,
        /// The recovery frame that pre-empted the expected one.
        frame: Box<Frame>,
    },
    /// A frame failed to decode (format bug or corrupted stream).
    Wire(WireError),
    /// A well-formed frame arrived out of protocol (wrong step or stage
    /// — the fabric is not in lockstep).
    Protocol(&'static str),
    /// An OS-level socket error (real transport only).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost(e) => write!(f, "transport: {e}"),
            Self::Down { from, to } => {
                write!(f, "transport: rank {from} down (observed by {to})")
            }
            Self::Timeout { from, to, attempts } => write!(
                f,
                "transport: rank {from} silent past {attempts} deadline windows \
                 (observed by {to})"
            ),
            Self::RendezvousMismatch { expected, found } => write!(
                f,
                "transport: rendezvous nonce {found:#018x} where {expected:#018x} \
                 was expected (stale run artefact)"
            ),
            Self::Interrupted { from, .. } => {
                write!(
                    f,
                    "transport: rank {from} pre-empted the collective with recovery"
                )
            }
            Self::Wire(e) => write!(f, "transport: bad frame: {e}"),
            Self::Protocol(e) => write!(f, "transport: protocol violation: {e}"),
            Self::Io(e) => write!(f, "transport: io: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<RecvError> for TransportError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Lost(le) => Self::Lost(le),
            RecvError::Down { from, to } => Self::Down { from, to },
        }
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// A byte-level framing failure on one [`FramedConn`].
///
/// This is the connection-scoped sibling of [`TransportError`]: it
/// carries no rank identity, because a framed connection (unlike a mesh
/// peer slot) may belong to an anonymous client that never introduced
/// itself.  Callers that know who the peer is map these into their own
/// error space ([`StreamTransport`] maps them to rank-addressed
/// [`TransportError`]s; the farm service maps them to client-session
/// errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameIoError {
    /// The stream hung up.  `torn` is true when it died *mid-frame* —
    /// partial bytes after a length prefix — the SIGKILL signature.
    Closed {
        /// Whether a partially received frame was lost.
        torn: bool,
    },
    /// No complete frame arrived within the deadline budget.  The
    /// stream and any partial bytes are preserved for a retry.
    Timeout {
        /// Deadline windows exhausted.
        attempts: u32,
    },
    /// A length prefix claimed more than the 1 GiB frame bound —
    /// a corrupt or hostile prefix, rejected before allocation.
    Oversize,
    /// An OS-level socket error.
    Io(String),
}

impl std::fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed { torn: true } => f.write_str("stream closed mid-frame (torn)"),
            Self::Closed { torn: false } => f.write_str("stream closed"),
            Self::Timeout { attempts } => {
                write!(f, "no frame within {attempts} deadline windows")
            }
            Self::Oversize => f.write_str("frame length prefix exceeds the 1 GiB bound"),
            Self::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for FrameIoError {}

/// Frame movement between ranks — the only surface the exchange
/// algorithms see.
pub trait Transport {
    /// This rank's id.
    fn rank(&self) -> usize;
    /// Total ranks.
    fn n_ranks(&self) -> usize;
    /// Send one frame to `to`.  Must tolerate a departed peer (the
    /// matching receive is where the departure is observed).
    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError>;
    /// Blocking receive of one frame from `from`.  Real backends bound
    /// the block with a deadline budget and surface
    /// [`TransportError::Timeout`] rather than hanging forever.
    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError>;
}

/// The virtual-time backend: a thin borrow of a fabric [`Endpoint`]
/// carrying encoded frames.  Time accounting is the endpoint's — the
/// link model charges [`Frame::wire_len`] per message, so a coalesced
/// frame pays one latency + one overhead where k separate messages would
/// pay k.
pub struct VirtualTransport<'a> {
    ep: &'a mut Endpoint<Vec<u8>>,
}

impl<'a> VirtualTransport<'a> {
    /// Wrap an endpoint for the duration of an exchange.
    pub fn new(ep: &'a mut Endpoint<Vec<u8>>) -> Self {
        Self { ep }
    }

    /// The wrapped endpoint (clock, stats, tracer).
    pub fn endpoint(&mut self) -> &mut Endpoint<Vec<u8>> {
        self.ep
    }
}

impl Transport for VirtualTransport<'_> {
    fn rank(&self) -> usize {
        self.ep.rank()
    }

    fn n_ranks(&self) -> usize {
        self.ep.n_ranks()
    }

    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        let wire = frame.wire_len();
        // Lossy: a departed peer is observed at the receive side.
        self.ep.send_lossy(to, frame.encode(), wire);
        Ok(())
    }

    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError> {
        let bytes = self.ep.recv_checked(from)?;
        Ok(Frame::decode(&bytes)?)
    }
}

/// Socket flavour for [`StreamTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKind {
    /// TCP over loopback.
    Tcp,
    /// Unix domain sockets.
    Uds,
}

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn reader(&mut self) -> &mut dyn Read {
        match self {
            Stream::Tcp(s) => s,
            Stream::Uds(s) => s,
        }
    }

    fn writer(&mut self) -> &mut dyn Write {
        match self {
            Stream::Tcp(s) => s,
            Stream::Uds(s) => s,
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Uds(s) => s.set_read_timeout(d),
        }
    }

    fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(d),
            Stream::Uds(s) => s.set_write_timeout(d),
        }
    }

    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(false),
            Stream::Uds(s) => s.set_nonblocking(false),
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    /// Non-blocking accept attempt: `Ok(Some)` on a new connection,
    /// `Ok(None)` when nobody is waiting.
    fn try_accept(&self) -> std::io::Result<Option<Stream>> {
        let s = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Stream::Tcp(s),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            Listener::Uds(l) => match l.accept() {
                Ok((s, _)) => Stream::Uds(s),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        // Accepted sockets must be blocking regardless of what they
        // inherited from the non-blocking listener.
        s.set_blocking()?;
        Ok(Some(s))
    }
}

/// Tunable deadlines and identity for a [`StreamTransport`] mesh.
///
/// Every field that was a hard-coded constant in the first cut of the
/// transport is configurable here so tests can run with millisecond
/// budgets and production runs with generous ones.  All ranks of one run
/// must share the same `nonce`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Per-run identity stamped on address files and the hello
    /// handshake; artefacts from other runs are rejected with
    /// [`TransportError::RendezvousMismatch`].
    pub nonce: u64,
    /// How long rendezvous operations (address polls, connects, accepts,
    /// hellos) wait before giving up.
    pub rendezvous_timeout: Duration,
    /// Sleep between rendezvous polls.
    pub retry_sleep: Duration,
    /// Base window of the receive deadline budget; attempt `i` waits
    /// `read_deadline * 2^i`.
    pub read_deadline: Duration,
    /// Number of doubling windows before [`TransportError::Timeout`].
    pub read_attempts: u32,
    /// Bound on a single frame write; a write that cannot complete
    /// within it drops the stream (fail-soft, like a hangup).
    pub write_deadline: Duration,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            nonce: 0,
            rendezvous_timeout: Duration::from_secs(30),
            retry_sleep: Duration::from_millis(5),
            read_deadline: Duration::from_millis(250),
            read_attempts: 3,
            write_deadline: Duration::from_secs(2),
        }
    }
}

/// One framed byte stream: a socket plus the partially received frame
/// bytes, so a deadline expiry mid-frame loses nothing.
///
/// This is the reusable half of [`StreamTransport`]: the u64-LE
/// length-prefixed framing, the deadline-budgeted buffered receive, and
/// the torn-frame classification, with no rank/mesh identity attached.
/// [`StreamTransport`] holds one per mesh peer; service frontends (the
/// farm server/client) hold one per connection accepted from a
/// [`ServiceListener`] or dialled via [`dial_service`].
#[derive(Debug)]
pub struct FramedConn {
    stream: Stream,
    rx: Vec<u8>,
}

impl FramedConn {
    fn new(stream: Stream) -> Self {
        Self {
            stream,
            rx: Vec::new(),
        }
    }

    /// Bytes buffered from a partially received frame.
    pub fn buffered(&self) -> usize {
        self.rx.len()
    }

    /// Bound every subsequent write; a write that cannot complete within
    /// the deadline fails like a hangup.
    pub fn set_write_deadline(&self, d: Duration) -> Result<(), FrameIoError> {
        self.stream
            .set_write_timeout(Some(d))
            .map_err(|e| FrameIoError::Io(e.to_string()))
    }

    /// Send one length-prefixed frame payload.
    pub fn send_payload(&mut self, payload: &[u8]) -> Result<(), FrameIoError> {
        let mut msg = Vec::with_capacity(8 + payload.len());
        msg.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        msg.extend_from_slice(payload);
        self.send_raw(&msg)
    }

    /// Write raw bytes with *no* framing.  Fault injectors use this to
    /// produce torn frames (a length prefix promising more bytes than
    /// ever arrive); everything else wants [`send_payload`].
    ///
    /// [`send_payload`]: Self::send_payload
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), FrameIoError> {
        self.stream
            .writer()
            .write_all(bytes)
            .map_err(|_| FrameIoError::Closed { torn: false })
    }

    /// One bounded receive window for a complete frame payload.  Partial
    /// bytes are buffered across calls; EOF mid-frame surfaces
    /// [`FrameIoError::Closed`] with `torn = true`.  A timeout preserves
    /// the stream and its partial bytes.
    pub fn try_recv_payload(&mut self, window: Duration) -> Result<Vec<u8>, FrameIoError> {
        let deadline = Instant::now() + window;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            // Header first: 8-byte LE length prefix.
            if self.rx.len() >= 8 {
                let n = u64::from_le_bytes(self.rx[..8].try_into().expect("8-byte slice"));
                // Length sanity: a frame is never remotely this large;
                // reject before allocating on a corrupt prefix.
                if n > 1 << 30 {
                    return Err(FrameIoError::Oversize);
                }
                let total = 8 + n as usize;
                if self.rx.len() >= total {
                    let payload = self.rx[8..total].to_vec();
                    self.rx.drain(..total);
                    return Ok(payload);
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(FrameIoError::Timeout { attempts: 1 });
            }
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                .map_err(|e| FrameIoError::Io(e.to_string()))?;
            match self.stream.reader().read(&mut chunk) {
                Ok(0) => {
                    // Hangup. Partial bytes mean the peer died mid-frame.
                    return Err(FrameIoError::Closed {
                        torn: !self.rx.is_empty(),
                    });
                }
                Ok(k) => self.rx.extend_from_slice(&chunk[..k]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    // Loop; the deadline check above decides when to stop.
                }
                Err(_) => {
                    return Err(FrameIoError::Closed {
                        torn: !self.rx.is_empty(),
                    });
                }
            }
        }
    }

    /// Receive with the exponential deadline budget: attempt `i` of
    /// `attempts` waits `base * 2^i`, then [`FrameIoError::Timeout`].
    pub fn recv_payload_deadline(
        &mut self,
        base: Duration,
        attempts: u32,
    ) -> Result<Vec<u8>, FrameIoError> {
        let mut window = base.max(Duration::from_millis(1));
        for _ in 0..attempts.max(1) {
            match self.try_recv_payload(window) {
                Err(FrameIoError::Timeout { .. }) => {
                    window = window.saturating_mul(2);
                }
                other => return other,
            }
        }
        Err(FrameIoError::Timeout {
            attempts: attempts.max(1),
        })
    }
}

/// The real-socket backend: one OS process per rank, fully connected.
///
/// Rendezvous protocol (pure filesystem, no coordinator): rank k binds a
/// listener, atomically publishes `"<nonce:016x> <addr>"` as
/// `<dir>/rank<k>.addr`, then *connects* to every rank below it (polling
/// for their address files and validating the nonce) and *accepts* one
/// connection from every rank above it.  Each connector opens with a
/// 24-byte hello (`rank`, `nonce`, `generation`, u64 LE each) so the
/// acceptor knows who arrived and from which run/recovery generation.
/// Wire format: u64 LE length prefix, then the encoded [`Frame`].
#[derive(Debug)]
pub struct StreamTransport {
    rank: usize,
    n_ranks: usize,
    kind: StreamKind,
    dir: PathBuf,
    cfg: StreamConfig,
    /// Recovery generation this rank currently speaks (stamped on
    /// hellos; bumped by the cluster layer after each recovery).
    gen: u32,
    /// Kept alive for the whole run so respawned ranks can reconnect.
    listener: Listener,
    /// Per-peer connection, `None` at the self index and after a peer
    /// closed or was closed.
    peers: Vec<Option<FramedConn>>,
    bytes_sent: u64,
    messages_sent: u64,
    recv_timeouts: u64,
    torn_frames: u64,
}

impl StreamTransport {
    /// Join the mesh as `rank` of `n_ranks` via the rendezvous directory
    /// with default deadlines and a zero nonce (single-run directories).
    pub fn connect(
        rank: usize,
        n_ranks: usize,
        dir: &Path,
        kind: StreamKind,
    ) -> Result<Self, TransportError> {
        Self::connect_with(rank, n_ranks, dir, kind, &StreamConfig::default())
    }

    /// Join the mesh with explicit deadlines and run nonce.
    pub fn connect_with(
        rank: usize,
        n_ranks: usize,
        dir: &Path,
        kind: StreamKind,
        cfg: &StreamConfig,
    ) -> Result<Self, TransportError> {
        assert!(rank < n_ranks);
        let lower: Vec<usize> = (0..rank).collect();
        let higher: Vec<usize> = (rank + 1..n_ranks).collect();
        Self::establish(rank, n_ranks, dir, kind, cfg, 0, &lower, &higher)
    }

    /// Re-enter an existing mesh after a respawn: bind a fresh listener,
    /// publish a generation-tagged address, and run the same
    /// connect-down/accept-up protocol against the *survivor* set
    /// (`alive` excludes this rank and any other dead ranks).  Each
    /// survivor must concurrently run [`Self::reconnect_peer`] with the
    /// same generation.
    pub fn rejoin(
        rank: usize,
        n_ranks: usize,
        dir: &Path,
        kind: StreamKind,
        cfg: &StreamConfig,
        gen: u32,
        alive: &[usize],
    ) -> Result<Self, TransportError> {
        assert!(rank < n_ranks && gen > 0);
        let lower: Vec<usize> = alive.iter().copied().filter(|&a| a < rank).collect();
        let higher: Vec<usize> = alive.iter().copied().filter(|&a| a > rank).collect();
        Self::establish(rank, n_ranks, dir, kind, cfg, gen, &lower, &higher)
    }

    #[allow(clippy::too_many_arguments)]
    fn establish(
        rank: usize,
        n_ranks: usize,
        dir: &Path,
        kind: StreamKind,
        cfg: &StreamConfig,
        gen: u32,
        lower: &[usize],
        higher: &[usize],
    ) -> Result<Self, TransportError> {
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        std::fs::create_dir_all(dir).map_err(io)?;
        // Bind (non-blocking, so accepts can poll against a deadline)
        // and publish the nonce-stamped address.
        let (listener, addr) = match kind {
            StreamKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0").map_err(io)?;
                l.set_nonblocking(true).map_err(io)?;
                let a = l.local_addr().map_err(io)?.to_string();
                (Listener::Tcp(l), a)
            }
            StreamKind::Uds => {
                let sock = dir.join(sock_name(rank, gen));
                let _ = std::fs::remove_file(&sock);
                let l = UnixListener::bind(&sock).map_err(io)?;
                l.set_nonblocking(true).map_err(io)?;
                (Listener::Uds(l), sock.to_string_lossy().into_owned())
            }
        };
        publish_addr(dir, rank, gen, cfg.nonce, &addr)?;

        let mut peers: Vec<Option<FramedConn>> = (0..n_ranks).map(|_| None).collect();
        // Connect to every lower peer (they may not have published yet).
        // A rejoiner dials the survivors' *original* (generation-0)
        // listeners, which are kept alive for exactly this purpose.
        for &peer in lower {
            let peer_addr = wait_for_addr(dir, peer, 0, cfg)?;
            let stream = connect_with_retry(&peer_addr, kind, cfg)?;
            stream
                .set_write_timeout(Some(cfg.write_deadline))
                .map_err(io)?;
            let mut p = FramedConn::new(stream);
            send_hello(&mut p.stream, rank, cfg.nonce, gen).map_err(io)?;
            peers[peer] = Some(p);
        }
        // Accept one connection from every higher peer.
        let deadline = Instant::now() + cfg.rendezvous_timeout;
        for _ in higher {
            let (stream, peer, _peer_gen) = accept_one(&listener, cfg, gen, deadline, |peer| {
                higher.contains(&peer) && peers[peer].is_none()
            })?;
            stream
                .set_write_timeout(Some(cfg.write_deadline))
                .map_err(io)?;
            peers[peer] = Some(FramedConn::new(stream));
        }
        Ok(Self {
            rank,
            n_ranks,
            kind,
            dir: dir.to_path_buf(),
            cfg: *cfg,
            gen,
            listener,
            peers,
            bytes_sent: 0,
            messages_sent: 0,
            recv_timeouts: 0,
            torn_frames: 0,
        })
    }

    /// Re-establish the link to a single peer that rejoined at recovery
    /// generation `gen` (the survivor half of the rejoin handshake):
    /// dial the rejoiner's generation-tagged listener if it is a lower
    /// rank, or accept its incoming connection if it is a higher one.
    /// `wait` bounds the whole operation (it covers the respawn delay,
    /// so it is usually much longer than the rendezvous timeout).
    pub fn reconnect_peer(
        &mut self,
        peer: usize,
        gen: u32,
        wait: Duration,
    ) -> Result<(), TransportError> {
        assert!(peer != self.rank && peer < self.n_ranks);
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        self.peers[peer] = None;
        let mut cfg = self.cfg;
        cfg.rendezvous_timeout = wait;
        if peer > self.rank {
            // The rejoiner dials us; accept and verify identity.
            let deadline = Instant::now() + cfg.rendezvous_timeout;
            let (stream, _, peer_gen) =
                accept_one(&self.listener, &cfg, gen, deadline, |p| p == peer)?;
            if peer_gen != gen {
                return Err(TransportError::Io(format!(
                    "rejoin: peer {peer} arrived at generation {peer_gen}, expected {gen}"
                )));
            }
            stream
                .set_write_timeout(Some(cfg.write_deadline))
                .map_err(io)?;
            self.peers[peer] = Some(FramedConn::new(stream));
        } else {
            // We dial the rejoiner's fresh generation-tagged listener.
            let addr = wait_for_addr(&self.dir, peer, gen, &cfg)?;
            let stream = connect_with_retry(&addr, self.kind, &cfg)?;
            stream
                .set_write_timeout(Some(cfg.write_deadline))
                .map_err(io)?;
            let mut p = FramedConn::new(stream);
            send_hello(&mut p.stream, self.rank, cfg.nonce, gen).map_err(io)?;
            self.peers[peer] = Some(p);
        }
        Ok(())
    }

    /// Drop the link to a peer declared dead; subsequent sends fail soft
    /// and receives surface [`TransportError::Down`] immediately.
    pub fn close_peer(&mut self, peer: usize) {
        if peer < self.peers.len() {
            self.peers[peer] = None;
        }
    }

    /// Whether a live stream to `peer` exists right now.
    pub fn is_up(&self, peer: usize) -> bool {
        peer < self.peers.len() && self.peers[peer].is_some()
    }

    /// The recovery generation stamped on outgoing hellos.
    pub fn gen(&self) -> u32 {
        self.gen
    }

    /// Bump the spoken generation (after a completed recovery).
    pub fn set_gen(&mut self, gen: u32) {
        self.gen = gen;
    }

    /// The socket flavour of this mesh.
    pub fn kind(&self) -> StreamKind {
        self.kind
    }

    /// The deadline/identity configuration in force.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Payload bytes this rank put on its sockets.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Frames this rank sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Receives that exhausted their full deadline budget.
    pub fn recv_timeouts(&self) -> u64 {
        self.recv_timeouts
    }

    /// Streams that closed mid-frame (a torn length prefix or body).
    pub fn torn_frames(&self) -> u64 {
        self.torn_frames
    }

    /// Receive with an explicit deadline budget: attempt `i` of
    /// `attempts` waits `base * 2^i`, then [`TransportError::Timeout`].
    /// A timeout leaves the stream and its partial bytes intact.
    pub fn recv_frame_deadline(
        &mut self,
        from: usize,
        base: Duration,
        attempts: u32,
    ) -> Result<Frame, TransportError> {
        let mut window = base.max(Duration::from_millis(1));
        for _ in 0..attempts.max(1) {
            match self.try_recv_within(from, window) {
                Err(TransportError::Timeout { .. }) => {
                    window = window.saturating_mul(2);
                }
                other => return other,
            }
        }
        self.recv_timeouts += 1;
        Err(TransportError::Timeout {
            from,
            to: self.rank,
            attempts: attempts.max(1),
        })
    }

    /// One bounded receive window, delegated to the peer's
    /// [`FramedConn`].  The stream survives success, timeout, and decode
    /// errors; hangup and oversize prefixes drop it.
    fn try_recv_within(&mut self, from: usize, window: Duration) -> Result<Frame, TransportError> {
        let down = TransportError::Down {
            from,
            to: self.rank,
        };
        let Some(conn) = self.peers[from].as_mut() else {
            return Err(down);
        };
        match conn.try_recv_payload(window) {
            Ok(bytes) => Frame::decode(&bytes).map_err(Into::into),
            Err(FrameIoError::Timeout { .. }) => Err(TransportError::Timeout {
                from,
                to: self.rank,
                attempts: 1,
            }),
            Err(FrameIoError::Oversize) => {
                self.peers[from] = None;
                Err(TransportError::Wire(WireError::Oversize))
            }
            Err(FrameIoError::Closed { torn }) => {
                if torn {
                    self.torn_frames += 1;
                }
                self.peers[from] = None;
                Err(down)
            }
            Err(FrameIoError::Io(e)) => Err(TransportError::Io(e)),
        }
    }
}

/// Generation-tagged rendezvous file names.  Generation 0 keeps the
/// original names so existing tooling and single-run directories are
/// unchanged.
fn addr_name(rank: usize, gen: u32) -> String {
    if gen == 0 {
        format!("rank{rank}.addr")
    } else {
        format!("rank{rank}.addr.gen{gen}")
    }
}

fn sock_name(rank: usize, gen: u32) -> String {
    if gen == 0 {
        format!("rank{rank}.sock")
    } else {
        format!("rank{rank}.gen{gen}.sock")
    }
}

/// Atomically publish `"<nonce:016x> <addr>"` under `name` (tmp +
/// rename, so a polling peer never reads a torn file).
fn publish_file(dir: &Path, name: &str, nonce: u64, addr: &str) -> Result<(), TransportError> {
    let io = |e: std::io::Error| TransportError::Io(e.to_string());
    let tmp = dir.join(format!(".{name}.tmp"));
    std::fs::write(&tmp, format!("{nonce:016x} {addr}")).map_err(io)?;
    std::fs::rename(&tmp, dir.join(name)).map_err(io)?;
    Ok(())
}

/// Atomically publish a rank's nonce-stamped address.
fn publish_addr(
    dir: &Path,
    rank: usize,
    gen: u32,
    nonce: u64,
    addr: &str,
) -> Result<(), TransportError> {
    publish_file(dir, &addr_name(rank, gen), nonce, addr)
}

/// Poll for a published address file, validating its nonce stamp.
/// `what` names the awaited party in error messages.
fn wait_for_file(
    dir: &Path,
    name: &str,
    what: &str,
    cfg: &StreamConfig,
) -> Result<String, TransportError> {
    let path: PathBuf = dir.join(name);
    let deadline = Instant::now() + cfg.rendezvous_timeout;
    loop {
        if let Ok(line) = std::fs::read_to_string(&path) {
            let mut parts = line.split_whitespace();
            let (nonce, addr) = match (parts.next(), parts.next()) {
                (Some(n), Some(a)) => (u64::from_str_radix(n, 16).ok(), a),
                _ => (None, ""),
            };
            match nonce {
                Some(found) if found == cfg.nonce && !addr.is_empty() => {
                    return Ok(addr.to_string());
                }
                Some(found) => {
                    return Err(TransportError::RendezvousMismatch {
                        expected: cfg.nonce,
                        found,
                    });
                }
                None => {
                    return Err(TransportError::Io(format!(
                        "rendezvous: malformed address file for {what}"
                    )));
                }
            }
        }
        if Instant::now() > deadline {
            return Err(TransportError::Io(format!(
                "rendezvous: no address from {what} within {:?}",
                cfg.rendezvous_timeout
            )));
        }
        std::thread::sleep(cfg.retry_sleep);
    }
}

/// Poll for a peer rank's address file, validating its nonce stamp.
fn wait_for_addr(
    dir: &Path,
    peer: usize,
    gen: u32,
    cfg: &StreamConfig,
) -> Result<String, TransportError> {
    wait_for_file(dir, &addr_name(peer, gen), &format!("rank {peer}"), cfg)
}

/// A listening socket for a *service* (many anonymous clients), as
/// opposed to the mesh's one-listener-per-rank.  Bind, publish the
/// address with [`publish_service_addr`], then poll [`try_accept`] from
/// the service loop.
///
/// [`try_accept`]: Self::try_accept
#[derive(Debug)]
pub struct ServiceListener {
    inner: Listener,
    addr: String,
}

impl ServiceListener {
    /// Bind a non-blocking listener: TCP on an ephemeral loopback port,
    /// or a UDS socket named `<service>.sock` under `dir`.
    pub fn bind(kind: StreamKind, dir: &Path, service: &str) -> Result<Self, TransportError> {
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        std::fs::create_dir_all(dir).map_err(io)?;
        let (inner, addr) = match kind {
            StreamKind::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0").map_err(io)?;
                l.set_nonblocking(true).map_err(io)?;
                let a = l.local_addr().map_err(io)?.to_string();
                (Listener::Tcp(l), a)
            }
            StreamKind::Uds => {
                let sock = dir.join(format!("{service}.sock"));
                let _ = std::fs::remove_file(&sock);
                let l = UnixListener::bind(&sock).map_err(io)?;
                l.set_nonblocking(true).map_err(io)?;
                (Listener::Uds(l), sock.to_string_lossy().into_owned())
            }
        };
        Ok(Self { inner, addr })
    }

    /// The bound address (publish it via [`publish_service_addr`]).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Non-blocking accept: `Ok(Some)` wraps the new connection in a
    /// [`FramedConn`], `Ok(None)` means nobody is waiting.
    pub fn try_accept(&self) -> Result<Option<FramedConn>, TransportError> {
        let io = |e: std::io::Error| TransportError::Io(e.to_string());
        Ok(self.inner.try_accept().map_err(io)?.map(FramedConn::new))
    }
}

/// Atomically publish a service's nonce-stamped address as
/// `<service>.addr` (same format and torn-read-free rename as the rank
/// address files).
pub fn publish_service_addr(
    dir: &Path,
    service: &str,
    nonce: u64,
    addr: &str,
) -> Result<(), TransportError> {
    let io = |e: std::io::Error| TransportError::Io(e.to_string());
    std::fs::create_dir_all(dir).map_err(io)?;
    publish_file(dir, &format!("{service}.addr"), nonce, addr)
}

/// Poll for a service's published address, validating the nonce stamp
/// exactly like the rank rendezvous ([`TransportError::RendezvousMismatch`]
/// on a stale file).
pub fn wait_for_service_addr(
    dir: &Path,
    service: &str,
    cfg: &StreamConfig,
) -> Result<String, TransportError> {
    wait_for_file(
        dir,
        &format!("{service}.addr"),
        &format!("service {service}"),
        cfg,
    )
}

/// Dial a service address (from [`wait_for_service_addr`]) with the
/// rendezvous retry budget, returning a write-deadline-bounded
/// [`FramedConn`].
pub fn dial_service(
    addr: &str,
    kind: StreamKind,
    cfg: &StreamConfig,
) -> Result<FramedConn, TransportError> {
    let stream = connect_with_retry(addr, kind, cfg)?;
    stream
        .set_write_timeout(Some(cfg.write_deadline))
        .map_err(|e| TransportError::Io(e.to_string()))?;
    Ok(FramedConn::new(stream))
}

fn connect_with_retry(
    addr: &str,
    kind: StreamKind,
    cfg: &StreamConfig,
) -> Result<Stream, TransportError> {
    let deadline = Instant::now() + cfg.rendezvous_timeout;
    loop {
        let attempt = match kind {
            StreamKind::Tcp => TcpStream::connect(addr).map(Stream::Tcp),
            StreamKind::Uds => UnixStream::connect(addr).map(Stream::Uds),
        };
        match attempt {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() > deadline => {
                return Err(TransportError::Io(e.to_string()));
            }
            Err(_) => std::thread::sleep(cfg.retry_sleep),
        }
    }
}

/// The 24-byte hello a connector opens with: rank, nonce, generation.
fn send_hello(stream: &mut Stream, rank: usize, nonce: u64, gen: u32) -> std::io::Result<()> {
    let mut hello = [0u8; 24];
    hello[..8].copy_from_slice(&(rank as u64).to_le_bytes());
    hello[8..16].copy_from_slice(&nonce.to_le_bytes());
    hello[16..24].copy_from_slice(&(gen as u64).to_le_bytes());
    stream.writer().write_all(&hello)
}

/// Accept one connection whose hello passes the nonce check and the
/// caller's rank admission predicate, bounded by `deadline`.
fn accept_one(
    listener: &Listener,
    cfg: &StreamConfig,
    _gen: u32,
    deadline: Instant,
    mut admit: impl FnMut(usize) -> bool,
) -> Result<(Stream, usize, u32), TransportError> {
    let io = |e: std::io::Error| TransportError::Io(e.to_string());
    loop {
        match listener.try_accept().map_err(io)? {
            Some(mut stream) => {
                // Bound the hello read by what is left of the deadline.
                let left = deadline.saturating_duration_since(Instant::now());
                stream
                    .set_read_timeout(Some(left.max(Duration::from_millis(1))))
                    .map_err(io)?;
                let mut hello = [0u8; 24];
                stream.reader().read_exact(&mut hello).map_err(io)?;
                let peer = u64::from_le_bytes(hello[..8].try_into().expect("8 bytes")) as usize;
                let nonce = u64::from_le_bytes(hello[8..16].try_into().expect("8 bytes"));
                let peer_gen =
                    u64::from_le_bytes(hello[16..24].try_into().expect("8 bytes")) as u32;
                if nonce != cfg.nonce {
                    return Err(TransportError::RendezvousMismatch {
                        expected: cfg.nonce,
                        found: nonce,
                    });
                }
                if !admit(peer) {
                    return Err(TransportError::Io(format!(
                        "rendezvous: bogus hello from peer {peer}"
                    )));
                }
                return Ok((stream, peer, peer_gen));
            }
            None => {
                if Instant::now() > deadline {
                    return Err(TransportError::Io(format!(
                        "rendezvous: accept timed out after {:?}",
                        cfg.rendezvous_timeout
                    )));
                }
                std::thread::sleep(cfg.retry_sleep);
            }
        }
    }
}

impl Transport for StreamTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        assert!(to != self.rank, "self-send is not a network operation");
        let Some(p) = self.peers[to].as_mut() else {
            // Departed peer: tolerated, like Endpoint::send_lossy.
            return Ok(());
        };
        let bytes = frame.encode();
        match p.send_payload(&bytes) {
            Ok(()) => {
                self.bytes_sent += bytes.len() as u64;
                self.messages_sent += 1;
                Ok(())
            }
            Err(_) => {
                // Peer hung up (or stopped draining past the write
                // deadline): drop the stream, fail soft.
                self.peers[to] = None;
                Ok(())
            }
        }
    }

    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError> {
        let (base, attempts) = (self.cfg.read_deadline, self.cfg.read_attempts);
        self.recv_frame_deadline(from, base, attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;
    use crate::wire::JRecord;

    fn stage(step: u64, t_min: f64) -> Frame {
        Frame::Stage {
            gen: 0,
            step,
            stage: 0,
            t_min,
            ckpt: 0,
            records: vec![JRecord {
                index: step,
                words: vec![t_min.to_bits()],
            }],
            pad: 100,
        }
    }

    /// Millisecond-budget config so failure paths resolve fast in tests.
    fn quick(nonce: u64) -> StreamConfig {
        StreamConfig {
            nonce,
            rendezvous_timeout: Duration::from_millis(400),
            retry_sleep: Duration::from_millis(2),
            read_deadline: Duration::from_millis(30),
            read_attempts: 2,
            write_deadline: Duration::from_millis(500),
        }
    }

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("g6-rdv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn virtual_transport_moves_frames_and_charges_wire_len() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let f = stage(3, 0.25);
        let wire = f.wire_len();
        let f2 = f.clone();
        let out = run_ranks::<Vec<u8>, (f64, u64), _>(2, link, move |mut ep| {
            let mut tr = VirtualTransport::new(&mut ep);
            if tr.rank() == 0 {
                tr.send_frame(1, &f2).expect("virtual send is infallible");
                (ep.clock(), ep.bytes_sent())
            } else {
                let got = tr.recv_frame(0).expect("frame from rank 0");
                assert_eq!(got, f2);
                (ep.clock(), ep.bytes_sent())
            }
        });
        // Sender charged the padded wire size, not just encoded bytes.
        assert_eq!(out[0].1, wire as u64);
        // Receiver clock: send overhead + latency + wire/bw + recv overhead.
        let expect = 1e-5 + 1e-4 + wire as f64 / 1e8 + 1e-5;
        assert!(
            (out[1].0 - expect).abs() < 1e-12,
            "{} vs {expect}",
            out[1].0
        );
    }

    #[test]
    fn stream_transport_smoke_tcp_threads() {
        // In-process smoke of the rendezvous + framing (the real
        // multi-process test lives in grape6-bench).
        let dir = tdir("tcp");
        let p = 3;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let mut tr = StreamTransport::connect_with(
                        r,
                        p,
                        &dir,
                        StreamKind::Tcp,
                        &StreamConfig {
                            nonce: 0x5eed,
                            ..StreamConfig::default()
                        },
                    )
                    .expect("rendezvous");
                    // Everyone sends its rank-stamped frame to everyone.
                    for to in 0..p {
                        if to != r {
                            tr.send_frame(to, &stage(r as u64, r as f64))
                                .expect("send is fail-soft");
                        }
                    }
                    let mut seen = Vec::new();
                    for from in 0..p {
                        if from != r {
                            seen.push(match tr.recv_frame(from) {
                                Ok(f) => f,
                                Err(e) => panic!("rank {r} recv from {from}: {e}"),
                            });
                        }
                    }
                    (tr.bytes_sent(), seen)
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        for (r, (sent, seen)) in outs.iter().enumerate() {
            assert!(*sent > 0, "rank {r}");
            let want: Vec<Frame> = (0..p)
                .filter(|&f| f != r)
                .map(|f| stage(f as u64, f as f64))
                .collect();
            assert_eq!(*seen, want, "rank {r}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_transport_smoke_uds_and_down_detection() {
        let dir = tdir("uds");
        let p = 2;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let mut tr =
                        StreamTransport::connect(r, p, &dir, StreamKind::Uds).expect("rendezvous");
                    if r == 0 {
                        tr.send_frame(1, &stage(0, 0.5)).expect("send");
                        // Exit; rank 1 sees the hangup as Down.
                        None
                    } else {
                        let f = tr.recv_frame(0).expect("first frame");
                        assert_eq!(f, stage(0, 0.5));
                        let err = tr.recv_frame(0).expect_err("hangup must be typed");
                        // After the Down, sends to the dead peer fail soft.
                        tr.send_frame(0, &stage(9, 9.0)).expect("fail-soft send");
                        Some(err)
                    }
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert_eq!(outs[1], Some(TransportError::Down { from: 0, to: 1 }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silent_peer_times_out_with_attempt_count_and_stream_survives() {
        let dir = tdir("silent");
        let cfg = quick(7);
        let h1 = {
            let (dir, cfg) = (dir.clone(), cfg);
            std::thread::spawn(move || {
                let mut tr = StreamTransport::connect_with(1, 2, &dir, StreamKind::Tcp, &cfg)
                    .expect("rendezvous");
                // Say nothing for a while, then deliver.
                std::thread::sleep(Duration::from_millis(250));
                tr.send_frame(0, &stage(5, 1.5)).expect("late send");
                // Hold the socket open until rank 0 has read the frame.
                let f = tr.recv_frame(0).expect("ack");
                assert_eq!(f, stage(6, 2.5));
            })
        };
        let mut tr =
            StreamTransport::connect_with(0, 2, &dir, StreamKind::Tcp, &cfg).expect("rendezvous");
        // Budget: 30ms + 60ms < 250ms of silence → typed Timeout.
        let err = tr.recv_frame(1).expect_err("silence must time out");
        assert_eq!(
            err,
            TransportError::Timeout {
                from: 1,
                to: 0,
                attempts: 2
            }
        );
        assert_eq!(tr.recv_timeouts(), 1);
        assert!(tr.is_up(1), "a timeout must not tear down the stream");
        // A patient retry gets the frame — nothing was lost.
        let f = tr
            .recv_frame_deadline(1, Duration::from_millis(200), 4)
            .expect("late frame arrives on retry");
        assert_eq!(f, stage(5, 1.5));
        tr.send_frame(1, &stage(6, 2.5)).expect("ack");
        h1.join().expect("peer thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rendezvous_accept_and_addr_waits_are_bounded() {
        // Nobody ever publishes rank 0's address: the connector gives up.
        let dir = tdir("noaddr");
        let cfg = quick(1);
        let t0 = Instant::now();
        let err = StreamTransport::connect_with(1, 2, &dir, StreamKind::Tcp, &cfg)
            .expect_err("absent peer must not hang the rendezvous");
        assert!(matches!(err, TransportError::Io(ref m) if m.contains("no address")));
        assert!(t0.elapsed() < Duration::from_secs(5));

        // Rank 0 publishes and waits for an accept that never comes.
        let dir2 = tdir("noaccept");
        let t0 = Instant::now();
        let err = StreamTransport::connect_with(0, 2, &dir2, StreamKind::Tcp, &cfg)
            .expect_err("absent connector must not hang the accept");
        assert!(matches!(err, TransportError::Io(ref m) if m.contains("accept timed out")));
        assert!(t0.elapsed() < Duration::from_secs(5));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn stale_nonce_is_a_typed_rendezvous_mismatch() {
        let dir = tdir("nonce");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A stale address file from a previous run (nonce 0xdead).
        std::fs::write(
            dir.join("rank0.addr"),
            format!("{:016x} 127.0.0.1:1", 0xdead_u64),
        )
        .expect("write stale addr");
        let err = StreamTransport::connect_with(1, 2, &dir, StreamKind::Tcp, &quick(0xbeef))
            .expect_err("stale nonce must be rejected");
        assert_eq!(
            err,
            TransportError::RendezvousMismatch {
                expected: 0xbeef,
                found: 0xdead
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_mid_frame_write_surfaces_down_not_garbage() {
        let dir = tdir("torn");
        let cfg = quick(3);
        let h1 = {
            let (dir, cfg) = (dir.clone(), cfg);
            std::thread::spawn(move || {
                let tr = StreamTransport::connect_with(1, 2, &dir, StreamKind::Uds, &cfg)
                    .expect("rendezvous");
                // Write a length prefix promising 64 bytes, deliver 3,
                // then die — simulating a SIGKILL mid-write.
                let mut tr = tr;
                if let Some(p) = tr.peers[0].as_mut() {
                    p.send_raw(&64u64.to_le_bytes()).expect("prefix");
                    p.send_raw(&[1, 2, 3]).expect("partial body");
                }
            })
        };
        let mut tr =
            StreamTransport::connect_with(0, 2, &dir, StreamKind::Uds, &cfg).expect("rendezvous");
        h1.join().expect("peer thread");
        let err = tr
            .recv_frame_deadline(1, Duration::from_millis(100), 4)
            .expect_err("torn frame must be typed");
        assert_eq!(err, TransportError::Down { from: 1, to: 0 });
        assert_eq!(tr.torn_frames(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn service_listener_rendezvous_and_framed_payloads_roundtrip() {
        for kind in [StreamKind::Tcp, StreamKind::Uds] {
            let dir = tdir(&format!("svc-{kind:?}"));
            let cfg = quick(0xfa51);
            let listener = ServiceListener::bind(kind, &dir, "farm").expect("bind");
            publish_service_addr(&dir, "farm", cfg.nonce, listener.addr()).expect("publish");
            let client = {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let addr = wait_for_service_addr(&dir, "farm", &cfg).expect("addr");
                    let mut conn = dial_service(&addr, kind, &cfg).expect("dial");
                    conn.send_payload(b"ping").expect("send");
                    let reply = conn
                        .recv_payload_deadline(Duration::from_millis(100), 4)
                        .expect("reply");
                    assert_eq!(reply, b"pong");
                })
            };
            // Poll-accept, echo the transformed payload back.
            let deadline = Instant::now() + Duration::from_secs(5);
            let mut conn = loop {
                if let Some(c) = listener.try_accept().expect("accept") {
                    break c;
                }
                assert!(Instant::now() < deadline, "no client within 5 s");
                std::thread::sleep(Duration::from_millis(2));
            };
            let got = conn
                .recv_payload_deadline(Duration::from_millis(100), 4)
                .expect("request");
            assert_eq!(got, b"ping");
            conn.send_payload(b"pong").expect("reply");
            client.join().expect("client thread");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn framed_conn_torn_frame_and_timeout_are_typed() {
        let dir = tdir("svc-torn");
        let cfg = quick(0x7042);
        let listener = ServiceListener::bind(StreamKind::Uds, &dir, "farm").expect("bind");
        publish_service_addr(&dir, "farm", cfg.nonce, listener.addr()).expect("publish");
        let client = {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let addr = wait_for_service_addr(&dir, "farm", &cfg).expect("addr");
                let mut conn = dial_service(&addr, StreamKind::Uds, &cfg).expect("dial");
                // Promise 32 bytes, deliver 3, hold the socket open a
                // moment (so the server's first bounded read is a plain
                // timeout), then die mid-frame.
                conn.send_raw(&32u64.to_le_bytes()).expect("prefix");
                conn.send_raw(&[9, 9, 9]).expect("partial");
                std::thread::sleep(Duration::from_millis(300));
            })
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut conn = loop {
            if let Some(c) = listener.try_accept().expect("accept") {
                break c;
            }
            assert!(Instant::now() < deadline, "no client within 5 s");
            std::thread::sleep(Duration::from_millis(2));
        };
        // While the client lives the partial frame is a plain timeout…
        let err = conn
            .try_recv_payload(Duration::from_millis(5))
            .expect_err("partial frame is not a payload");
        assert_eq!(err, FrameIoError::Timeout { attempts: 1 });
        client.join().expect("client thread");
        // …after it dies, the same read is a *torn* close.
        let err = conn
            .recv_payload_deadline(Duration::from_millis(50), 4)
            .expect_err("torn close is typed");
        assert_eq!(err, FrameIoError::Closed { torn: true });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejoin_reconnects_both_directions_and_moves_frames() {
        let dir = tdir("rejoin");
        let cfg = quick(11);
        let p = 3;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let (dir, cfg) = (dir.clone(), cfg);
                std::thread::spawn(move || {
                    if r == 1 {
                        // First life: connect, then vanish.
                        let tr = StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &cfg)
                            .expect("rendezvous");
                        drop(tr);
                        // Second life: rejoin at generation 1.
                        let mut tr =
                            StreamTransport::rejoin(r, p, &dir, StreamKind::Tcp, &cfg, 1, &[0, 2])
                                .expect("rejoin");
                        assert_eq!(tr.gen(), 1);
                        tr.send_frame(0, &stage(10, 0.125)).expect("send to 0");
                        tr.send_frame(2, &stage(12, 0.25)).expect("send to 2");
                        let a = tr.recv_frame(0).expect("reply from 0");
                        let b = tr.recv_frame(2).expect("reply from 2");
                        (a, b)
                    } else {
                        let mut tr =
                            StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &cfg)
                                .expect("rendezvous");
                        // Observe rank 1's death (hangup or timeout), then
                        // reconnect to its second life.
                        tr.close_peer(1);
                        tr.reconnect_peer(1, 1, Duration::from_secs(10))
                            .expect("reconnect");
                        let f = tr.recv_frame(1).expect("frame from rejoined rank");
                        tr.send_frame(1, &stage(20 + r as u64, r as f64))
                            .expect("reply");
                        (f, stage(0, 0.0))
                    }
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert_eq!(outs[0].0, stage(10, 0.125));
        assert_eq!(outs[2].0, stage(12, 0.25));
        assert_eq!(outs[1], (stage(20, 0.0), stage(22, 2.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
