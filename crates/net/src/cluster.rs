//! Surviving real rank death: the cluster supervisor.
//!
//! [`StreamTransport`] gives every blocking receive a deadline and
//! [`Wave`] tolerates heartbeats, stale generations and recovery
//! pre-emption — this module is the layer that *uses* those hooks to
//! keep a real multi-process run alive when a rank dies or stalls:
//!
//! * [`ClusterApp`] — what the supervisor drives: a step-counted
//!   computation whose per-step wave inputs are pure functions of
//!   `(original rank, step)`, with byte-exact save/restore.  Purity is
//!   the bitwise argument: after a shrink, a survivor adopting a dead
//!   rank's share reproduces the exact bits that rank would have fed the
//!   fold, and the fold itself (`f64::min` + index-keyed merge) is
//!   order-independent, so the surviving group's outcome is identical to
//!   the full group's.
//! * [`ClusterSupervisor`] — runs the blockstep loop: coordinated
//!   checkpoints every [`ClusterConfig::ckpt_every`] steps, heartbeats
//!   every [`ClusterConfig::hb_every`], one [`Wave`] per step with the
//!   last-capture epoch folded in (so every completed wave names a
//!   coordinated cut the whole group can rewind to).
//! * Recovery — on a detected death (hangup) or stall (exhausted
//!   deadline budget), the supervisor runs a three-round agreement over
//!   [`Frame::Recover`]: round 1 is a suspicion broadcast doubling as a
//!   liveness poll (a falsely suspected live rank answers and is
//!   acquitted), round 2 verifies every survivor assembled the same dead
//!   set and folds the rewind epoch, and a confirm round at the next
//!   generation seals the new group.  The dead rank is either respawned
//!   from the last coordinated checkpoint (a hangup — the harness can
//!   restart the process, which re-enters via
//!   [`ClusterSupervisor::respawned`]) or shrunk away (a stall, or a
//!   respawn that never came), its j-share redistributed by pure index
//!   arithmetic.  Everyone then rewinds to the agreed cut and replays.
//!
//! A stalled rank that wakes after being shrunk finds every peer gone
//! and a newer-generation manifest naming it dead: it exits with
//! [`ClusterError::Evicted`] instead of corrupting the run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use grape6_ckpt::wire::{Dec, Enc};
use grape6_ckpt::{Blob, CkptError};

use crate::exchange::{Wave, WaveOutcome};
use crate::failover::{Group, HeartbeatConfig, RankMonitor};
use crate::transport::{StreamConfig, StreamKind, StreamTransport, Transport, TransportError};
use crate::wire::{Frame, JRecord};

/// Blob kind tag of per-rank checkpoint files.
const RANK_BLOB: &str = "cluster-rank";
/// Blob kind tag of the recovery manifest.
const MANIFEST_BLOB: &str = "cluster-manifest";
/// Format version of both blob families.
const BLOB_VERSION: u32 = 1;
/// Checkpoint epochs kept per rank (memory and disk).  Two would cover a
/// one-step skew between ranks at the fault; three leaves margin for the
/// pipeline depth of the dissemination wave.
const KEEP_CKPTS: usize = 3;
/// The `round` value of the group-sealing confirm exchange.
const ROUND_CONFIRM: u32 = u32::MAX;

/// How a dead rank was observed to fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Open stream, no traffic past the full deadline budget.  Stalled
    /// processes are shrunk away (they may wake and must be evicted).
    Stall,
    /// The stream closed — the process is gone, so it can be respawned
    /// from the last coordinated checkpoint.
    Hangup,
}

/// What the supervisor drives: a deterministic step-counted computation.
///
/// The bitwise-recovery contract: [`ClusterApp::t_candidate`] and
/// [`ClusterApp::records`] must be pure functions of `(orank, step,
/// folded state)` — *not* of which physical rank evaluates them — and
/// [`ClusterApp::save`]/[`ClusterApp::restore`] must round-trip the
/// folded state byte-exactly.
pub trait ClusterApp {
    /// The next blockstep to run (monotone within a generation; rewound
    /// by [`Self::restore`]).
    fn step(&self) -> u64;
    /// Whether the computation is finished.
    fn is_done(&self) -> bool;
    /// Original rank `orank`'s candidate next block time at the current
    /// step.
    fn t_candidate(&self, orank: usize) -> f64;
    /// Original rank `orank`'s j-records for the current step.
    fn records(&self, orank: usize) -> Vec<JRecord>;
    /// Fold a completed wave: advance the state and the step counter.
    fn fold(&mut self, out: &WaveOutcome);
    /// Serialise the folded state (byte-exact).
    fn save(&self) -> Vec<u8>;
    /// Restore a [`Self::save`] payload (byte-exact inverse).
    fn restore(&mut self, payload: &[u8]) -> Result<(), String>;
}

/// Supervisor tuning: checkpoint/heartbeat cadence and recovery
/// deadlines.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Rendezvous directory (also holds checkpoints and the manifest).
    pub dir: PathBuf,
    /// Capture a coordinated checkpoint every this many steps (0 = only
    /// the initial one at step 0).
    pub ckpt_every: u64,
    /// Send a heartbeat round every this many steps (0 = never).
    pub hb_every: u64,
    /// Missed-heartbeat policy for the liveness monitor.
    pub hb: HeartbeatConfig,
    /// After a local suspicion, how long to drain peers for an
    /// already-running recovery before initiating one.
    pub grace: Duration,
    /// Per-peer collection window of recovery rounds 1 and 2.
    pub recover_window: Duration,
    /// How long survivors hold the door open for a respawned rank (and
    /// how long a respawned rank polls for its invitation).
    pub respawn_wait: Duration,
    /// Artificial per-step delay (gives external chaos harnesses a
    /// wall-clock window to inject faults into; 0 for full speed).
    pub step_delay: Duration,
    /// Recovery attempts before giving up on the run.
    pub max_recoveries: u32,
}

impl ClusterConfig {
    /// Defaults tuned for tests and the chaos harness; production runs
    /// should stretch every deadline.
    pub fn new(dir: &Path) -> Self {
        Self {
            dir: dir.to_path_buf(),
            ckpt_every: 8,
            hb_every: 4,
            hb: HeartbeatConfig::default(),
            grace: Duration::from_millis(300),
            recover_window: Duration::from_secs(3),
            respawn_wait: Duration::from_secs(5),
            step_delay: Duration::ZERO,
            max_recoveries: 8,
        }
    }
}

/// Why a supervised run ended abnormally.
#[derive(Debug)]
pub enum ClusterError {
    /// An unrecoverable transport failure (protocol bug, socket error).
    Transport(TransportError),
    /// Checkpoint machinery failed (I/O, corrupt blob, bad restore).
    Ckpt(String),
    /// This rank stalled, was shrunk from the group, and woke to find a
    /// newer-generation manifest naming it dead.
    Evicted {
        /// The generation the survivors moved to without us.
        gen: u32,
    },
    /// Every peer is gone and no manifest explains why.
    PeersLost,
    /// Recovery itself failed (agreement diverged, budget exhausted).
    Unrecoverable(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "cluster: {e}"),
            Self::Ckpt(e) => write!(f, "cluster: checkpoint: {e}"),
            Self::Evicted { gen } => {
                write!(f, "cluster: evicted (survivors moved to generation {gen})")
            }
            Self::PeersLost => write!(f, "cluster: every peer lost without a manifest"),
            Self::Unrecoverable(m) => write!(f, "cluster: unrecoverable: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<TransportError> for ClusterError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

impl From<CkptError> for ClusterError {
    fn from(e: CkptError) -> Self {
        Self::Ckpt(e.to_string())
    }
}

/// A [`Transport`] view of a [`StreamTransport`] restricted to a
/// survivor [`Group`]: the wave algorithms address virtual ranks
/// `0..group.len()` and this adapter translates to real ranks at the
/// wire — including on the *error* path, so failure attribution reaching
/// the supervisor is uniformly in virtual-rank space.
pub struct GroupTransport<'a> {
    tr: &'a mut StreamTransport,
    group: &'a Group,
}

impl<'a> GroupTransport<'a> {
    /// Restrict `tr` to `group` (this rank must be a member).
    pub fn new(tr: &'a mut StreamTransport, group: &'a Group) -> Self {
        assert!(
            group.contains(tr.rank()),
            "rank {} is outside its own group",
            tr.rank()
        );
        Self { tr, group }
    }
}

impl Transport for GroupTransport<'_> {
    fn rank(&self) -> usize {
        self.group.vrank(self.tr.rank()).expect("member, by new()")
    }

    fn n_ranks(&self) -> usize {
        self.group.len()
    }

    fn send_frame(&mut self, to: usize, frame: &Frame) -> Result<(), TransportError> {
        self.tr.send_frame(self.group.rank_at(to), frame)
    }

    fn recv_frame(&mut self, from: usize) -> Result<Frame, TransportError> {
        let me = self.rank();
        self.tr
            .recv_frame(self.group.rank_at(from))
            .map_err(|e| match e {
                TransportError::Down { .. } => TransportError::Down { from, to: me },
                TransportError::Timeout { attempts, .. } => TransportError::Timeout {
                    from,
                    to: me,
                    attempts,
                },
                TransportError::Interrupted { frame, .. } => {
                    TransportError::Interrupted { from, frame }
                }
                other => other,
            })
    }
}

/// The recovery manifest: what the survivors decided, published
/// atomically so a respawned (or woken-after-eviction) process can learn
/// its fate from disk alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The generation the group moved to.
    pub gen: u32,
    /// The coordinated checkpoint epoch everyone rewound to.
    pub ckpt: u64,
    /// The rank invited to respawn and rejoin, if any.
    pub rejoin: Option<usize>,
    /// The surviving ranks (excluding the rejoiner), ascending.
    pub survivors: Vec<usize>,
    /// Every rank shrunk away so far (cumulative), ascending.
    pub shrunk: Vec<usize>,
}

impl Manifest {
    fn path(dir: &Path) -> PathBuf {
        dir.join("manifest.latest.blob")
    }

    fn to_blob(&self) -> Blob {
        let mut e = Enc::new();
        e.u32(self.gen);
        e.u64(self.ckpt);
        e.u64(self.rejoin.map_or(u64::MAX, |r| r as u64));
        e.seq_size(&self.survivors);
        e.seq_size(&self.shrunk);
        Blob::new(MANIFEST_BLOB, BLOB_VERSION, e.into_bytes())
    }

    fn from_blob(b: &Blob) -> Result<Self, ClusterError> {
        let wire = |e: grape6_ckpt::wire::WireError| ClusterError::Ckpt(format!("manifest: {e}"));
        let mut d = Dec::new(&b.payload);
        let gen = d.u32().map_err(wire)?;
        let ckpt = d.u64().map_err(wire)?;
        let rejoin = match d.u64().map_err(wire)? {
            u64::MAX => None,
            r => Some(r as usize),
        };
        let survivors = d.seq_size().map_err(wire)?;
        let shrunk = d.seq_size().map_err(wire)?;
        d.finish().map_err(wire)?;
        Ok(Self {
            gen,
            ckpt,
            rejoin,
            survivors,
            shrunk,
        })
    }

    /// Publish atomically under the rendezvous directory.
    pub fn save(&self, dir: &Path) -> Result<(), ClusterError> {
        Ok(self.to_blob().save(&Self::path(dir))?)
    }

    /// Read the latest manifest, `None` if none was ever published.
    pub fn load(dir: &Path) -> Result<Option<Self>, ClusterError> {
        let path = Self::path(dir);
        if !path.exists() {
            return Ok(None);
        }
        Self::from_blob(&Blob::load(&path, MANIFEST_BLOB, BLOB_VERSION)?).map(Some)
    }
}

/// Encode a dead-set entry: orank in the high bits, fault kind in bit 0.
fn encode_dead(dead: &BTreeMap<usize, FaultKind>) -> Vec<u64> {
    dead.iter()
        .map(|(&o, &k)| ((o as u64) << 1) | u64::from(k == FaultKind::Hangup))
        .collect()
}

fn decode_dead(entries: &[u64]) -> BTreeMap<usize, FaultKind> {
    entries
        .iter()
        .map(|&e| {
            let kind = if e & 1 == 1 {
                FaultKind::Hangup
            } else {
                FaultKind::Stall
            };
            ((e >> 1) as usize, kind)
        })
        .collect()
}

/// A received recovery-round message.
#[derive(Clone, Debug)]
struct RecoverMsg {
    gen: u32,
    round: u32,
    dead: Vec<u64>,
    ckpt: u64,
}

/// Outcome of collecting one recovery message from a peer.
enum Collect {
    Got(RecoverMsg),
    /// The peer's stream closed.
    Down,
    /// The peer said nothing relevant within the window.
    Timeout,
}

/// Drain frames from `from` until a [`Frame::Recover`] at generation
/// `>= min_gen` and round `>= min_round` arrives, bounded by `window`.
/// Stage frames of the doomed wave and heartbeats are discarded; stale
/// recovery frames (older generation or an earlier round) are skipped.
fn collect_recover(
    tr: &mut StreamTransport,
    from: usize,
    min_gen: u32,
    min_round: u32,
    window: Duration,
) -> Result<Collect, ClusterError> {
    let deadline = Instant::now() + window;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Ok(Collect::Timeout);
        }
        match tr.recv_frame_deadline(from, left, 1) {
            Ok(Frame::Recover {
                gen,
                round,
                dead,
                ckpt,
            }) if gen >= min_gen && round >= min_round => {
                return Ok(Collect::Got(RecoverMsg {
                    gen,
                    round,
                    dead,
                    ckpt,
                }));
            }
            Ok(_) => {} // doomed-wave stage frame, heartbeat, stale round
            Err(TransportError::Timeout { .. }) => return Ok(Collect::Timeout),
            Err(TransportError::Down { .. }) => return Ok(Collect::Down),
            Err(e) => return Err(e.into()),
        }
    }
}

/// What a supervised run did, beyond the app's own result.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Blocksteps folded (including replays after rewinds).
    pub waves_folded: u64,
    /// Recovery attempts run.
    pub recoveries: u32,
    /// Ranks that rejoined from a checkpoint.
    pub rejoined: Vec<usize>,
    /// Ranks shrunk away for good.
    pub shrunk: Vec<usize>,
    /// The final group membership.
    pub group: Vec<usize>,
    /// Wall-clock seconds spent inside recovery.
    pub recover_seconds: f64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
    /// Receives that exhausted their deadline budget.
    pub recv_timeouts: u64,
    /// Streams that closed mid-frame.
    pub torn_frames: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Frames sent.
    pub messages_sent: u64,
}

/// How one wave ended.
enum WaveEnd {
    Done(WaveOutcome),
    Fault {
        /// Locally observed suspicions, original ranks.
        suspects: Vec<(usize, FaultKind)>,
        /// A recovery round already in flight from a peer (original
        /// rank, message) — consumed, so round-1 collection skips it.
        seed: Option<(usize, RecoverMsg)>,
    },
}

/// One recovery attempt's verdict.
enum Attempt {
    Applied,
    /// A live peer failed mid-recovery; retry with it added.
    Retry(Vec<(usize, FaultKind)>),
}

/// Drives a [`ClusterApp`] over a [`StreamTransport`], surviving rank
/// death and stalls (module docs have the full protocol).
pub struct ClusterSupervisor<A: ClusterApp> {
    tr: StreamTransport,
    app: A,
    cfg: ClusterConfig,
    orank: usize,
    n: usize,
    gen: u32,
    group: Group,
    monitor: RankMonitor,
    /// The most recent checkpoint epoch a completed wave proved every
    /// member holds — the rewind target.
    synced_ckpt: u64,
    /// This rank's own last captured epoch.
    last_capture: Option<u64>,
    /// Recent captures, newest last: `(epoch, payload)`.
    mem_ckpts: Vec<(u64, Vec<u8>)>,
    waves_folded: u64,
    recoveries: u32,
    rejoined: Vec<usize>,
    shrunk: Vec<usize>,
    recover_seconds: f64,
    heartbeats_sent: u64,
}

impl<A: ClusterApp> ClusterSupervisor<A> {
    /// Wrap a freshly connected transport (generation 0, full group).
    pub fn new(tr: StreamTransport, app: A, cfg: ClusterConfig) -> Self {
        let (orank, n) = (tr.rank(), tr.n_ranks());
        Self {
            tr,
            app,
            cfg: cfg.clone(),
            orank,
            n,
            gen: 0,
            group: Group::full(n),
            monitor: RankMonitor::new(orank, n, cfg.hb),
            synced_ckpt: 0,
            last_capture: None,
            mem_ckpts: Vec::new(),
            waves_folded: 0,
            recoveries: 0,
            rejoined: Vec::new(),
            shrunk: Vec::new(),
            recover_seconds: 0.0,
            heartbeats_sent: 0,
        }
    }

    /// Re-enter a run after a respawn: poll the manifest for this rank's
    /// rejoin invitation, restore the app from the named coordinated
    /// checkpoint, reconnect to the survivors at the manifest's
    /// generation, and seal the group with the confirm round.
    pub fn respawned(
        orank: usize,
        n: usize,
        kind: StreamKind,
        scfg: &StreamConfig,
        cfg: ClusterConfig,
        mut app: A,
    ) -> Result<Self, ClusterError> {
        // Wait for the survivors' invitation.
        let deadline = Instant::now() + cfg.respawn_wait;
        let manifest = loop {
            if let Some(m) = Manifest::load(&cfg.dir)? {
                if m.gen > 0 && m.rejoin == Some(orank) {
                    break m;
                }
            }
            if Instant::now() > deadline {
                return Err(ClusterError::Unrecoverable(
                    "respawn: no rejoin invitation in the manifest",
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        // Restore from the coordinated cut the manifest names.
        let payload = load_rank_ckpt(&cfg.dir, orank, manifest.ckpt)?;
        app.restore(&payload).map_err(ClusterError::Ckpt)?;
        // Reconnect to the survivors at the new generation.
        let mut tr = StreamTransport::rejoin(
            orank,
            n,
            &cfg.dir,
            kind,
            scfg,
            manifest.gen,
            &manifest.survivors,
        )?;
        // Confirm round: everyone (survivors and us) must agree on the
        // sealed group, rewind epoch and shrunk set.
        let confirm = Frame::Recover {
            gen: manifest.gen,
            round: ROUND_CONFIRM,
            dead: manifest.shrunk.iter().map(|&r| r as u64).collect(),
            ckpt: manifest.ckpt,
        };
        for &s in &manifest.survivors {
            tr.send_frame(s, &confirm)?;
        }
        for &s in &manifest.survivors {
            match collect_recover(&mut tr, s, manifest.gen, ROUND_CONFIRM, cfg.respawn_wait)? {
                Collect::Got(m)
                    if m.gen == manifest.gen
                        && m.ckpt == manifest.ckpt
                        && decode_plain(&m.dead) == manifest.shrunk => {}
                _ => {
                    return Err(ClusterError::Unrecoverable(
                        "respawn: confirm round diverged",
                    ))
                }
            }
        }
        let mut members = manifest.survivors.clone();
        members.push(orank);
        let group = Group::new(members);
        let mut monitor = RankMonitor::new(orank, n, cfg.hb);
        for r in 0..n {
            if !group.contains(r) {
                monitor.mark_dead(r);
            }
        }
        Ok(Self {
            tr,
            app,
            orank,
            n,
            gen: manifest.gen,
            group,
            monitor,
            synced_ckpt: manifest.ckpt,
            last_capture: Some(manifest.ckpt),
            mem_ckpts: vec![(manifest.ckpt, payload)],
            waves_folded: 0,
            recoveries: 0,
            rejoined: Vec::new(),
            shrunk: manifest.shrunk.clone(),
            recover_seconds: 0.0,
            heartbeats_sent: 0,
            cfg,
        })
    }

    /// Run to completion; returns the finished app and the run report.
    pub fn run(mut self) -> Result<(A, ClusterReport), ClusterError> {
        while !self.app.is_done() {
            if !self.cfg.step_delay.is_zero() {
                std::thread::sleep(self.cfg.step_delay);
            }
            let step = self.app.step();
            let due = match self.cfg.ckpt_every {
                0 => self.last_capture.is_none(),
                every => step.is_multiple_of(every) || self.last_capture.is_none(),
            };
            if due && self.last_capture != Some(step) {
                self.capture(step)?;
            }
            if self.cfg.hb_every > 0 && step.is_multiple_of(self.cfg.hb_every) {
                self.heartbeat_round(step);
            }
            match self.one_wave(step)? {
                WaveEnd::Done(out) => {
                    self.synced_ckpt = out.ckpt_min;
                    self.app.fold(&out);
                    self.waves_folded += 1;
                }
                WaveEnd::Fault { suspects, seed } => self.recover(suspects, seed)?,
            }
        }
        let report = ClusterReport {
            waves_folded: self.waves_folded,
            recoveries: self.recoveries,
            rejoined: self.rejoined,
            shrunk: self.shrunk,
            group: self.group.members().to_vec(),
            recover_seconds: self.recover_seconds,
            heartbeats_sent: self.heartbeats_sent,
            recv_timeouts: self.tr.recv_timeouts(),
            torn_frames: self.tr.torn_frames(),
            bytes_sent: self.tr.bytes_sent(),
            messages_sent: self.tr.messages_sent(),
        };
        Ok((self.app, report))
    }

    /// The original rank that owns original rank `o`'s share under the
    /// current group: itself while alive, otherwise a survivor picked by
    /// pure index arithmetic (stateless, so every member agrees).
    fn owner(&self, o: usize) -> usize {
        if self.group.contains(o) {
            o
        } else {
            self.group.rank_at(o % self.group.len())
        }
    }

    /// This rank's wave input: the fold over every share it owns.
    fn wave_input(&self) -> (f64, Vec<JRecord>) {
        let mut t = f64::INFINITY;
        let mut recs = Vec::new();
        for o in 0..self.n {
            if self.owner(o) == self.orank {
                t = t.min(self.app.t_candidate(o));
                recs.extend(self.app.records(o));
            }
        }
        (t, recs)
    }

    /// Send one heartbeat to every group peer (fail-soft — a dead peer's
    /// silence is what the wave deadline detects).
    fn heartbeat_round(&mut self, epoch: u64) {
        let beat = Frame::Heartbeat {
            gen: self.gen,
            epoch,
        };
        for v in 0..self.group.len() {
            let real = self.group.rank_at(v);
            if real != self.orank && self.tr.send_frame(real, &beat).is_ok() {
                self.heartbeats_sent += 1;
            }
        }
        self.monitor.advance_epoch();
    }

    /// One blockstep's wave over the current group.
    fn one_wave(&mut self, step: u64) -> Result<WaveEnd, ClusterError> {
        let vr = self.group.vrank(self.orank).expect("member of own group");
        let (t_in, recs) = self.wave_input();
        let mut w = Wave::with_meta(
            vr,
            self.group.len(),
            self.gen,
            step,
            t_in,
            self.last_capture.unwrap_or(0),
            recs,
        );
        while !w.is_complete() {
            if w.pending_partner().is_none() {
                let mut gt = GroupTransport::new(&mut self.tr, &self.group);
                w.post_stage(&mut gt, 0)?;
            }
            let res = {
                let mut gt = GroupTransport::new(&mut self.tr, &self.group);
                w.finish_stage(&mut gt)
            };
            for (vfrom, _epoch) in w.take_beats() {
                let real = self.group.rank_at(vfrom);
                self.monitor.observe_beat(real);
            }
            match res {
                Ok(()) => {}
                Err(TransportError::Timeout { from, .. }) => {
                    let real = self.group.rank_at(from);
                    if self.monitor.observe_silence(real) {
                        // Budget exhausted: before initiating recovery,
                        // drain for one already in flight (we may be the
                        // falsely suspicious one).
                        return Ok(match self.grace_drain()? {
                            Some(seed) => WaveEnd::Fault {
                                suspects: vec![],
                                seed: Some(seed),
                            },
                            None => WaveEnd::Fault {
                                suspects: vec![(real, FaultKind::Stall)],
                                seed: None,
                            },
                        });
                    }
                    // Under budget: retry the same pending stage.
                }
                Err(TransportError::Down { from, .. }) => {
                    let real = self.group.rank_at(from);
                    self.monitor.mark_dead(real);
                    return Ok(WaveEnd::Fault {
                        suspects: vec![(real, FaultKind::Hangup)],
                        seed: None,
                    });
                }
                Err(TransportError::Interrupted { from, frame }) => {
                    let real = self.group.rank_at(from);
                    if let Frame::Recover {
                        gen,
                        round,
                        dead,
                        ckpt,
                    } = *frame
                    {
                        return Ok(WaveEnd::Fault {
                            suspects: vec![],
                            seed: Some((
                                real,
                                RecoverMsg {
                                    gen,
                                    round,
                                    dead,
                                    ckpt,
                                },
                            )),
                        });
                    }
                    unreachable!("Interrupted always carries Frame::Recover");
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(WaveEnd::Done(w.outcome()))
    }

    /// Scan live peers for a recovery round already in flight, for up to
    /// the grace window.  Everything else on the streams belongs to the
    /// doomed wave and is safely discarded (the wave will be rewound).
    fn grace_drain(&mut self) -> Result<Option<(usize, RecoverMsg)>, ClusterError> {
        let deadline = Instant::now() + self.cfg.grace;
        loop {
            for v in 0..self.group.len() {
                let real = self.group.rank_at(v);
                if real == self.orank || !self.monitor.is_alive(real) {
                    continue;
                }
                match self
                    .tr
                    .recv_frame_deadline(real, Duration::from_millis(10), 1)
                {
                    Ok(Frame::Recover {
                        gen,
                        round,
                        dead,
                        ckpt,
                    }) if gen >= self.gen => {
                        return Ok(Some((
                            real,
                            RecoverMsg {
                                gen,
                                round,
                                dead,
                                ckpt,
                            },
                        )));
                    }
                    Ok(Frame::Heartbeat { .. }) => self.monitor.observe_beat(real),
                    Ok(_) => {}
                    Err(TransportError::Timeout { .. }) => {}
                    Err(TransportError::Down { .. }) => self.monitor.mark_dead(real),
                    Err(e) => return Err(e.into()),
                }
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
        }
    }

    /// Run recovery attempts until one applies or the budget runs out.
    fn recover(
        &mut self,
        mut suspects: Vec<(usize, FaultKind)>,
        mut seed: Option<(usize, RecoverMsg)>,
    ) -> Result<(), ClusterError> {
        let t0 = Instant::now();
        loop {
            self.recoveries += 1;
            if self.recoveries > self.cfg.max_recoveries {
                self.recover_seconds += t0.elapsed().as_secs_f64();
                return Err(ClusterError::Unrecoverable("recovery budget exhausted"));
            }
            match self.attempt_recovery(&suspects, seed.take())? {
                Attempt::Applied => {
                    self.recover_seconds += t0.elapsed().as_secs_f64();
                    return Ok(());
                }
                Attempt::Retry(more) => suspects = more,
            }
        }
    }

    /// One pass of the three-round recovery protocol (module docs).
    fn attempt_recovery(
        &mut self,
        suspects: &[(usize, FaultKind)],
        seed: Option<(usize, RecoverMsg)>,
    ) -> Result<Attempt, ClusterError> {
        let mut dead: BTreeMap<usize, FaultKind> = suspects.iter().copied().collect();
        let mut ckpt = self.synced_ckpt;
        // A seed message is a peer's round 1 we already consumed: fold
        // its epoch and skip that peer in our own round-1 collection.
        // Its suspicion content is ignored — round 1 is a liveness poll,
        // and a genuinely dead rank fails *our* poll independently, so
        // every member's dead set converges without trusting hearsay.
        let mut consumed: Option<usize> = None;
        if let Some((from, msg)) = seed {
            ckpt = ckpt.min(msg.ckpt);
            if msg.round == 1 {
                consumed = Some(from);
            }
        }
        // Round 1: broadcast suspicions to every group peer (suspects
        // included — a falsely suspected live rank answers and is
        // acquitted), then poll everyone.
        let r1 = Frame::Recover {
            gen: self.gen,
            round: 1,
            dead: encode_dead(&dead),
            ckpt: self.synced_ckpt,
        };
        let peers: Vec<usize> = self
            .group
            .members()
            .iter()
            .copied()
            .filter(|&r| r != self.orank)
            .collect();
        for &p in &peers {
            self.tr.send_frame(p, &r1)?;
        }
        for &p in &peers {
            if consumed == Some(p) {
                dead.remove(&p);
                continue;
            }
            match collect_recover(&mut self.tr, p, self.gen, 1, self.cfg.recover_window)? {
                Collect::Got(m) => {
                    dead.remove(&p);
                    ckpt = ckpt.min(m.ckpt);
                }
                Collect::Timeout => {
                    dead.entry(p).or_insert(FaultKind::Stall);
                }
                Collect::Down => {
                    dead.insert(p, FaultKind::Hangup);
                }
            }
        }
        let live: Vec<usize> = peers
            .iter()
            .copied()
            .filter(|p| !dead.contains_key(p))
            .collect();
        if live.is_empty() && !peers.is_empty() {
            // Everyone is gone.  Either the group recovered without us
            // (we were the stalled suspect) — the manifest says so — or
            // the run is truly lost.
            if let Some(m) = Manifest::load(&self.cfg.dir)? {
                if m.gen > self.gen && m.shrunk.contains(&self.orank) {
                    return Err(ClusterError::Evicted { gen: m.gen });
                }
            }
            return Err(ClusterError::PeersLost);
        }
        // Round 2: broadcast the assembled dead set; every member must
        // have assembled the same ranks (kinds may differ by observation
        // — a hangup seen elsewhere wins over a local stall).
        let my_dead = encode_dead(&dead);
        let r2 = Frame::Recover {
            gen: self.gen,
            round: 2,
            dead: my_dead,
            ckpt,
        };
        for &p in &live {
            self.tr.send_frame(p, &r2)?;
        }
        for &p in &live {
            match collect_recover(&mut self.tr, p, self.gen, 2, self.cfg.recover_window)? {
                Collect::Got(m) => {
                    let theirs = decode_dead(&m.dead);
                    if theirs.keys().ne(dead.keys()) {
                        return Err(ClusterError::Unrecoverable("recovery agreement diverged"));
                    }
                    for (o, k) in theirs {
                        if k == FaultKind::Hangup {
                            dead.insert(o, FaultKind::Hangup);
                        }
                    }
                    ckpt = ckpt.min(m.ckpt);
                }
                Collect::Timeout | Collect::Down => {
                    // A peer died between rounds: restart with it added.
                    let mut more: Vec<(usize, FaultKind)> =
                        dead.iter().map(|(&o, &k)| (o, k)).collect();
                    more.push((p, FaultKind::Hangup));
                    return Ok(Attempt::Retry(more));
                }
            }
        }
        self.apply_recovery(dead, ckpt, &live)
    }

    /// Decide rejoin-or-shrink, publish the manifest, reconnect or close,
    /// seal with the confirm round, and rewind.
    fn apply_recovery(
        &mut self,
        dead: BTreeMap<usize, FaultKind>,
        ckpt: u64,
        live: &[usize],
    ) -> Result<Attempt, ClusterError> {
        let new_gen = self.gen + 1;
        // The lowest hangup-dead rank gets a respawn invitation; stalls
        // are shrunk (the process still exists and must be evicted).
        let mut candidate = dead
            .iter()
            .filter(|&(_, &k)| k == FaultKind::Hangup)
            .map(|(&o, _)| o)
            .next();
        let mut survivors: Vec<usize> = live.to_vec();
        survivors.push(self.orank);
        survivors.sort_unstable();
        let mut shrunk = self.shrunk.clone();
        for &o in dead.keys() {
            if Some(o) != candidate && !shrunk.contains(&o) {
                shrunk.push(o);
            }
        }
        shrunk.sort_unstable();
        // Publish the decision *before* waiting for the respawn, so the
        // restarted process finds its invitation.  Only the leader (the
        // lowest survivor) writes; everyone computed identical content.
        let leader = survivors[0] == self.orank;
        if leader {
            Manifest {
                gen: new_gen,
                ckpt,
                rejoin: candidate,
                survivors: survivors.clone(),
                shrunk: shrunk.clone(),
            }
            .save(&self.cfg.dir)?;
        }
        for (&o, _) in dead.iter() {
            self.tr.close_peer(o);
            self.monitor.mark_dead(o);
        }
        if let Some(c) = candidate {
            if self
                .tr
                .reconnect_peer(c, new_gen, self.cfg.respawn_wait)
                .is_err()
            {
                // The respawn never came: fall back to shrinking it.
                if !shrunk.contains(&c) {
                    shrunk.push(c);
                    shrunk.sort_unstable();
                }
                candidate = None;
                if leader {
                    Manifest {
                        gen: new_gen,
                        ckpt,
                        rejoin: None,
                        survivors: survivors.clone(),
                        shrunk: shrunk.clone(),
                    }
                    .save(&self.cfg.dir)?;
                }
            }
        }
        // Seal the new group: everyone (including a rejoiner) must echo
        // the identical (generation, shrunk set, rewind epoch).
        let mut final_members = survivors.clone();
        if let Some(c) = candidate {
            final_members.push(c);
            final_members.sort_unstable();
        }
        let confirm = Frame::Recover {
            gen: new_gen,
            round: ROUND_CONFIRM,
            dead: shrunk.iter().map(|&r| r as u64).collect(),
            ckpt,
        };
        for &p in &final_members {
            if p != self.orank {
                self.tr.send_frame(p, &confirm)?;
            }
        }
        for &p in &final_members {
            if p == self.orank {
                continue;
            }
            match collect_recover(
                &mut self.tr,
                p,
                new_gen,
                ROUND_CONFIRM,
                self.cfg.respawn_wait,
            )? {
                Collect::Got(m)
                    if m.gen == new_gen && m.ckpt == ckpt && decode_plain(&m.dead) == shrunk => {}
                _ => {
                    return Err(ClusterError::Unrecoverable("confirm round diverged"));
                }
            }
        }
        // Apply: bump the generation, re-form the group, rewind.
        self.gen = new_gen;
        self.tr.set_gen(new_gen);
        self.group = Group::new(final_members);
        self.shrunk = shrunk;
        if let Some(c) = candidate {
            self.monitor.revive(c);
            if !self.rejoined.contains(&c) {
                self.rejoined.push(c);
            }
        }
        self.restore_to(ckpt)?;
        self.synced_ckpt = ckpt;
        self.last_capture = Some(ckpt);
        Ok(Attempt::Applied)
    }

    /// Capture a checkpoint of the app at `epoch` (the current step):
    /// keep it in memory and publish it on disk for a future respawn.
    fn capture(&mut self, epoch: u64) -> Result<(), ClusterError> {
        let payload = self.app.save();
        save_rank_ckpt(&self.cfg.dir, self.orank, epoch, &payload)?;
        self.mem_ckpts.retain(|(e, _)| *e != epoch);
        self.mem_ckpts.push((epoch, payload));
        while self.mem_ckpts.len() > KEEP_CKPTS {
            let (old, _) = self.mem_ckpts.remove(0);
            let _ = std::fs::remove_file(rank_ckpt_path(&self.cfg.dir, self.orank, old));
        }
        self.last_capture = Some(epoch);
        Ok(())
    }

    /// Rewind the app to checkpoint `epoch` (memory first, disk second).
    fn restore_to(&mut self, epoch: u64) -> Result<(), ClusterError> {
        let payload = match self.mem_ckpts.iter().find(|(e, _)| *e == epoch) {
            Some((_, p)) => p.clone(),
            None => load_rank_ckpt(&self.cfg.dir, self.orank, epoch)?,
        };
        self.app.restore(&payload).map_err(ClusterError::Ckpt)
    }
}

/// Decode a confirm-round payload (plain oranks, no kind bits).
fn decode_plain(entries: &[u64]) -> Vec<usize> {
    entries.iter().map(|&e| e as usize).collect()
}

fn rank_ckpt_path(dir: &Path, orank: usize, epoch: u64) -> PathBuf {
    dir.join(format!("rank{orank}.ckpt{epoch}.blob"))
}

/// Persist one rank's app state at a checkpoint epoch (epoch embedded in
/// the payload, so a mixed-up file is caught on load).
fn save_rank_ckpt(dir: &Path, orank: usize, epoch: u64, app: &[u8]) -> Result<(), ClusterError> {
    let mut payload = epoch.to_le_bytes().to_vec();
    payload.extend_from_slice(app);
    Blob::new(RANK_BLOB, BLOB_VERSION, payload)
        .save(&rank_ckpt_path(dir, orank, epoch))
        .map_err(Into::into)
}

/// Load one rank's app state, verifying the embedded epoch.
fn load_rank_ckpt(dir: &Path, orank: usize, epoch: u64) -> Result<Vec<u8>, ClusterError> {
    let blob = Blob::load(&rank_ckpt_path(dir, orank, epoch), RANK_BLOB, BLOB_VERSION)?;
    if blob.payload.len() < 8 {
        return Err(ClusterError::Ckpt("rank checkpoint too short".into()));
    }
    let found = u64::from_le_bytes(blob.payload[..8].try_into().expect("8 bytes"));
    if found != epoch {
        return Err(ClusterError::Ckpt(format!(
            "rank checkpoint epoch {found} where {epoch} was expected"
        )));
    }
    Ok(blob.payload[8..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;

    fn eat(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(FNV_PRIME)
    }

    /// A tiny wave-chained computation whose per-orank inputs are pure
    /// functions of `(orank, step, folded state)` — the contract that
    /// makes share adoption after a shrink bitwise-exact.
    struct MiniApp {
        steps: u64,
        step: u64,
        t_seed: f64,
        h: u64,
        /// Sleep once inside the fold of this step (simulates a stall).
        stall: Option<(u64, Duration)>,
    }

    impl MiniApp {
        fn new(steps: u64) -> Self {
            Self {
                steps,
                step: 0,
                t_seed: 0.5,
                h: FNV_OFFSET,
                stall: None,
            }
        }
    }

    impl ClusterApp for MiniApp {
        fn step(&self) -> u64 {
            self.step
        }

        fn is_done(&self) -> bool {
            self.step >= self.steps
        }

        fn t_candidate(&self, o: usize) -> f64 {
            self.t_seed * (1.0 + o as f64 * 0.125)
        }

        fn records(&self, o: usize) -> Vec<JRecord> {
            vec![JRecord {
                index: o as u64 * 1024 + self.step % 8,
                words: vec![self.t_candidate(o).to_bits()],
            }]
        }

        fn fold(&mut self, out: &WaveOutcome) {
            if let Some((at, d)) = self.stall {
                if self.step == at {
                    self.stall = None;
                    std::thread::sleep(d);
                }
            }
            self.h = eat(self.h, out.t_min.to_bits());
            for r in &out.merged {
                self.h = eat(self.h, r.index);
                for &w in &r.words {
                    self.h = eat(self.h, w);
                }
            }
            self.t_seed = out.t_min * 0.75 + 1e-3;
            self.step += 1;
        }

        fn save(&self) -> Vec<u8> {
            let mut e = Enc::new();
            e.u64(self.step);
            e.u64(self.t_seed.to_bits());
            e.u64(self.h);
            e.into_bytes()
        }

        fn restore(&mut self, p: &[u8]) -> Result<(), String> {
            let s = |e: grape6_ckpt::wire::WireError| e.to_string();
            let mut d = Dec::new(p);
            self.step = d.u64().map_err(s)?;
            self.t_seed = f64::from_bits(d.u64().map_err(s)?);
            self.h = d.u64().map_err(s)?;
            d.finish().map_err(s)?;
            Ok(())
        }
    }

    /// The digest a clean fault-free run folds — computed directly from
    /// the recurrence, independent of any cluster machinery, so faulted
    /// runs have an absolute bitwise reference.
    fn expected_digest(n: usize, steps: u64) -> u64 {
        let mut t_seed = 0.5f64;
        let mut h = FNV_OFFSET;
        for step in 0..steps {
            let cand = |o: usize| t_seed * (1.0 + o as f64 * 0.125);
            let t_min = (0..n).map(cand).fold(f64::INFINITY, f64::min);
            h = eat(h, t_min.to_bits());
            for o in 0..n {
                h = eat(h, o as u64 * 1024 + step % 8);
                h = eat(h, cand(o).to_bits());
            }
            t_seed = t_min * 0.75 + 1e-3;
        }
        h
    }

    fn scfg(nonce: u64) -> StreamConfig {
        StreamConfig {
            nonce,
            rendezvous_timeout: Duration::from_secs(10),
            retry_sleep: Duration::from_millis(2),
            read_deadline: Duration::from_millis(40),
            read_attempts: 2,
            write_deadline: Duration::from_secs(1),
        }
    }

    fn ccfg(dir: &Path, respawn: Duration) -> ClusterConfig {
        ClusterConfig {
            ckpt_every: 4,
            hb_every: 2,
            grace: Duration::from_millis(250),
            recover_window: Duration::from_millis(800),
            respawn_wait: respawn,
            ..ClusterConfig::new(dir)
        }
    }

    fn tdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("g6-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn manifest_dead_set_and_rank_ckpt_encodings_roundtrip() {
        let dir = tdir("codec");
        let m = Manifest {
            gen: 3,
            ckpt: 16,
            rejoin: Some(2),
            survivors: vec![0, 1, 3],
            shrunk: vec![4],
        };
        m.save(&dir).expect("save");
        assert_eq!(Manifest::load(&dir).expect("load"), Some(m));
        let none = Manifest {
            gen: 4,
            ckpt: 24,
            rejoin: None,
            survivors: vec![0, 1],
            shrunk: vec![2, 4],
        };
        none.save(&dir).expect("overwrite");
        assert_eq!(Manifest::load(&dir).expect("load"), Some(none));
        assert_eq!(Manifest::load(&tdir("codec-empty")).expect("load"), None);

        let dead: BTreeMap<usize, FaultKind> =
            [(1, FaultKind::Stall), (6, FaultKind::Hangup)].into();
        assert_eq!(decode_dead(&encode_dead(&dead)), dead);

        save_rank_ckpt(&dir, 2, 8, &[9, 9, 9]).expect("save ckpt");
        assert_eq!(
            load_rank_ckpt(&dir, 2, 8).expect("load ckpt"),
            vec![9, 9, 9]
        );
        // A wrong epoch is refused even though the file is intact.
        assert!(matches!(
            load_rank_ckpt(&dir, 2, 16),
            Err(ClusterError::Ckpt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hangup_without_respawn_shrinks_and_stays_bitwise_exact() {
        let dir = tdir("shrink");
        let p = 3;
        // Rank 2's computation ends at step 4 and its process vanishes —
        // a hangup mid-run from the survivors' point of view.  Nobody
        // respawns it, so the group shrinks after the respawn wait and
        // the survivors adopt its share.
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let tr = StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &scfg(21))
                        .expect("rendezvous");
                    let steps = if r == 2 { 4 } else { 12 };
                    ClusterSupervisor::new(
                        tr,
                        MiniApp::new(steps),
                        ccfg(&dir, Duration::from_millis(400)),
                    )
                    .run()
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        let want = expected_digest(p, 12);
        for (r, out) in outs.into_iter().enumerate() {
            let (app, rep) = out.expect("every life ends cleanly");
            if r == 2 {
                continue; // its short life saw no fault
            }
            assert_eq!(app.h, want, "rank {r} diverged from the clean run");
            assert_eq!(rep.group, vec![0, 1], "rank {r}");
            assert_eq!(rep.shrunk, vec![2], "rank {r}");
            assert!(rep.recoveries >= 1, "rank {r}");
            assert!(rep.rejoined.is_empty(), "rank {r}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_rank_respawns_from_checkpoint_and_run_stays_bitwise_exact() {
        let dir = tdir("rejoin");
        let p = 3;
        let steps = 14u64;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let cfg = ccfg(&dir, Duration::from_secs(8));
                    if r == 1 {
                        // First life dies at step 6; the "restarted
                        // process" re-enters through the manifest.
                        let tr =
                            StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &scfg(22))
                                .expect("rendezvous");
                        let _ = ClusterSupervisor::new(tr, MiniApp::new(6), cfg.clone())
                            .run()
                            .expect("short first life");
                        ClusterSupervisor::respawned(
                            r,
                            p,
                            StreamKind::Tcp,
                            &scfg(22),
                            cfg,
                            MiniApp::new(steps),
                        )
                        .expect("respawn from the manifest")
                        .run()
                    } else {
                        let tr =
                            StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &scfg(22))
                                .expect("rendezvous");
                        ClusterSupervisor::new(tr, MiniApp::new(steps), cfg).run()
                    }
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        let want = expected_digest(p, steps);
        for (r, out) in outs.into_iter().enumerate() {
            let (app, rep) = out.expect("all three lives finish");
            assert_eq!(app.h, want, "rank {r} diverged from the clean run");
            assert_eq!(rep.group, vec![0, 1, 2], "rank {r}: nobody shrunk");
            assert!(rep.shrunk.is_empty(), "rank {r}");
            if r != 1 {
                assert_eq!(rep.rejoined, vec![1], "rank {r} re-admitted the respawn");
                // The rewind target was the step-4 coordinated cut, so
                // waves 4 and 5 were folded twice: 14 + 2 replays.
                assert_eq!(rep.waves_folded, 16, "rank {r}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_rank_is_shrunk_and_evicted_on_wakeup() {
        let dir = tdir("stall");
        let p = 3;
        let hs: Vec<_> = (0..p)
            .map(|r| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    let tr = StreamTransport::connect_with(r, p, &dir, StreamKind::Tcp, &scfg(23))
                        .expect("rendezvous");
                    let mut app = MiniApp::new(12);
                    if r == 2 {
                        // Freeze mid-fold long past the miss budget.
                        app.stall = Some((5, Duration::from_millis(2500)));
                    }
                    ClusterSupervisor::new(tr, app, ccfg(&dir, Duration::from_millis(400))).run()
                })
            })
            .collect();
        let outs: Vec<_> = hs
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        let want = expected_digest(p, 12);
        for (r, out) in outs.into_iter().enumerate() {
            if r == 2 {
                // The stalled rank wakes to find the group moved on: a
                // typed eviction, not a hang or a corrupted run.
                match out {
                    Err(ClusterError::Evicted { gen }) => assert!(gen >= 1),
                    Err(other) => panic!("rank 2 should be evicted, got {other}"),
                    Ok(_) => panic!("rank 2 should be evicted, finished instead"),
                }
                continue;
            }
            let (app, rep) = out.expect("survivor");
            assert_eq!(app.h, want, "rank {r} diverged from the clean run");
            assert_eq!(rep.group, vec![0, 1], "rank {r}");
            assert_eq!(rep.shrunk, vec![2], "rank {r}");
            assert!(rep.rejoined.is_empty(), "rank {r}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
