//! Wire frames for the coalesced per-blockstep wave.
//!
//! The paper's §4.4/§6 tuning insight is that the multi-host crossover is
//! set by *per-message* costs: every TCP message pays a round-trip share
//! and a switch transit, so three separate collectives per blockstep
//! (commit barrier, next-time all-reduce, j-exchange) pay three times.
//! The coalesced schedule packs everything bound for the same partner
//! within one butterfly stage into **one** frame — one latency and one
//! switch charge instead of k — and this module defines that frame.
//!
//! Encoding is the `grape6-ckpt` little-endian format ([`Enc`]/[`Dec`]):
//! fixed layout, `f64`s as bit patterns, length-prefixed sequences with
//! allocation guards.  The same bytes travel over the virtual-time
//! fabric and the real TCP/UDS transport, which is the heart of the
//! bitwise argument: both backends decode the identical payload, so the
//! numeric state they deliver to the integrator is identical by
//! construction — the backends differ only in what a message *costs*.

use grape6_ckpt::wire::{Dec, Enc, WireError};

/// One coalesced j-update record: a particle index plus its payload words
/// (`f64` bit patterns — position, velocity, mass, whatever the producer
/// packs).  Records survive transport bitwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JRecord {
    /// Global particle index.
    pub index: u64,
    /// Payload words as bit patterns.
    pub words: Vec<u64>,
}

impl JRecord {
    /// Encoded size in bytes (index + length prefix + words).
    pub fn encoded_len(&self) -> usize {
        16 + 8 * self.words.len()
    }
}

/// A wire message.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// One stage of the coalesced per-blockstep wave: barrier sentinel
    /// (the frame itself), the sender's running all-reduce-min of the
    /// next block time, and every j-record bound for this partner —
    /// all in one message.
    Stage {
        /// Recovery generation (bumped on every cluster recovery; a
        /// receiver discards frames from older generations, which is what
        /// makes replay after a rewind immune to stale in-flight frames).
        gen: u32,
        /// Blockstep index (frames from different steps must never mix).
        step: u64,
        /// Wave stage index within the step.
        stage: u32,
        /// Sender's running minimum of the next block time.
        t_min: f64,
        /// Sender's running minimum of the last *coordinated checkpoint*
        /// step — folding the agreed cut epoch into the same allreduce
        /// that carries the block time, so every rank leaves the wave
        /// knowing the globally-consistent rewind point.
        ckpt: u64,
        /// Coalesced j-updates for this partner.
        records: Vec<JRecord>,
        /// Synthetic extra wire bytes the virtual-time backend charges on
        /// top of the encoded length (models j-payload volume without
        /// allocating it).  Travels as a number; a real transport moves
        /// only the encoded bytes.
        pad: u64,
    },
    /// Uncoalesced raw data (plain point-to-point traffic).
    Data(Vec<u8>),
    /// A liveness beat between blocksteps on the real-process transport.
    /// Piggybacked on the same streams as the wave traffic, so per-peer
    /// FIFO ordering keeps beats and stages aligned under the lockstep
    /// schedule; feeds [`RankMonitor`](crate::failover::RankMonitor).
    Heartbeat {
        /// Recovery generation the sender is in.
        gen: u32,
        /// Heartbeat round counter (the supervised blockstep index).
        epoch: u64,
    },
    /// Recovery coordination: the sender has detected (or been told of)
    /// dead ranks and proposes moving to generation `gen`.  Survivors
    /// exchange these all-to-all in a fixed number of rounds until the
    /// dead set is agreed, then rewind to the coordinated checkpoint.
    Recover {
        /// The generation being formed (current + 1 at the detector).
        gen: u32,
        /// Agreement round within this recovery (fixed schedule, so every
        /// survivor consumes exactly one frame per peer per round).
        round: u32,
        /// Ranks the sender believes dead, ascending.
        dead: Vec<u64>,
        /// The sender's last coordinated checkpoint step (all-reduced by
        /// min to pick the rewind point).
        ckpt: u64,
    },
}

const TAG_STAGE: u32 = 1;
const TAG_DATA: u32 = 2;
const TAG_HEARTBEAT: u32 = 3;
const TAG_RECOVER: u32 = 4;

impl Frame {
    /// Logical records coalesced into this frame: the barrier sentinel,
    /// the all-reduce payload, and each j-record count as one apiece —
    /// `records / messages` is the measured coalescing factor the span
    /// counters report.
    pub fn logical_records(&self) -> u64 {
        match self {
            Frame::Stage { records, .. } => 2 + records.len() as u64,
            Frame::Data(_) | Frame::Heartbeat { .. } | Frame::Recover { .. } => 1,
        }
    }

    /// Wire bytes the virtual-time backend charges for this frame: the
    /// encoded length plus the synthetic pad.
    pub fn wire_len(&self) -> usize {
        let pad = match self {
            Frame::Stage { pad, .. } => *pad as usize,
            _ => 0,
        };
        self.encoded_len() + pad
    }

    /// Exact encoded length in bytes (without the pad).
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Stage { records, .. } => {
                // tag + gen + step + stage + t_min + ckpt + pad
                // + record count + records
                4 + 4
                    + 8
                    + 4
                    + 8
                    + 8
                    + 8
                    + 8
                    + records.iter().map(JRecord::encoded_len).sum::<usize>()
            }
            Frame::Data(b) => 4 + 8 + b.len(),
            Frame::Heartbeat { .. } => 4 + 4 + 8,
            Frame::Recover { dead, .. } => 4 + 4 + 4 + 8 + 8 * dead.len() + 8,
        }
    }

    /// Encode into the little-endian wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Frame::Stage {
                gen,
                step,
                stage,
                t_min,
                ckpt,
                records,
                pad,
            } => {
                e.u32(TAG_STAGE);
                e.u32(*gen);
                e.u64(*step);
                e.u32(*stage);
                e.u64(t_min.to_bits());
                e.u64(*ckpt);
                e.u64(*pad);
                e.size(records.len());
                for r in records {
                    e.u64(r.index);
                    e.seq_u64(&r.words);
                }
            }
            Frame::Data(b) => {
                e.u32(TAG_DATA);
                e.size(b.len());
                let mut bytes = e.into_bytes();
                bytes.extend_from_slice(b);
                return bytes;
            }
            Frame::Heartbeat { gen, epoch } => {
                e.u32(TAG_HEARTBEAT);
                e.u32(*gen);
                e.u64(*epoch);
            }
            Frame::Recover {
                gen,
                round,
                dead,
                ckpt,
            } => {
                e.u32(TAG_RECOVER);
                e.u32(*gen);
                e.u32(*round);
                e.seq_u64(dead);
                e.u64(*ckpt);
            }
        }
        e.into_bytes()
    }

    /// Decode a frame, requiring full consumption of `buf`.
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        let mut d = Dec::new(buf);
        let tag = d.u32()?;
        let out = match tag {
            TAG_STAGE => {
                let gen = d.u32()?;
                let step = d.u64()?;
                let stage = d.u32()?;
                let t_min = f64::from_bits(d.u64()?);
                let ckpt = d.u64()?;
                let pad = d.u64()?;
                let n = d.size()?;
                // Each record is ≥ 16 bytes on the wire; reject a length
                // prefix the remaining payload cannot possibly hold.
                if n.checked_mul(16).ok_or(WireError::Oversize)? > d.remaining() {
                    return Err(WireError::Oversize);
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let index = d.u64()?;
                    let words = d.seq_u64()?;
                    records.push(JRecord { index, words });
                }
                Frame::Stage {
                    gen,
                    step,
                    stage,
                    t_min,
                    ckpt,
                    records,
                    pad,
                }
            }
            TAG_HEARTBEAT => Frame::Heartbeat {
                gen: d.u32()?,
                epoch: d.u64()?,
            },
            TAG_RECOVER => Frame::Recover {
                gen: d.u32()?,
                round: d.u32()?,
                dead: d.seq_u64()?,
                ckpt: d.u64()?,
            },
            TAG_DATA => {
                let n = d.size()?;
                if n > d.remaining() {
                    return Err(WireError::Oversize);
                }
                if n < d.remaining() {
                    return Err(WireError::Trailing);
                }
                return Ok(Frame::Data(buf[buf.len() - n..].to_vec()));
            }
            _ => return Err(WireError::Bool),
        };
        d.finish()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_frame_roundtrips_bitwise() {
        let f = Frame::Stage {
            gen: 2,
            step: 176,
            stage: 3,
            t_min: 0.031_25_f64,
            ckpt: 160,
            records: vec![
                JRecord {
                    index: 7,
                    words: vec![1.5_f64.to_bits(), f64::NEG_INFINITY.to_bits()],
                },
                JRecord {
                    index: 2048,
                    words: vec![],
                },
            ],
            pad: 4096,
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(f.wire_len(), f.encoded_len() + 4096);
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        // NaN t_min survives as its exact bit pattern.
        let nan = Frame::Stage {
            gen: 0,
            step: 0,
            stage: 0,
            t_min: f64::from_bits(0x7ff8_0000_0000_0001),
            ckpt: 0,
            records: vec![],
            pad: 0,
        };
        let back = Frame::decode(&nan.encode()).unwrap();
        let Frame::Stage { t_min, .. } = back else {
            panic!("wrong variant");
        };
        assert_eq!(t_min.to_bits(), 0x7ff8_0000_0000_0001);
    }

    #[test]
    fn data_frame_roundtrips_and_counts_one_record() {
        let f = Frame::Data(vec![9, 8, 7, 6, 5]);
        assert_eq!(f.logical_records(), 1);
        assert_eq!(f.wire_len(), f.encoded_len());
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        let empty = Frame::Data(vec![]);
        assert_eq!(Frame::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn heartbeat_and_recover_frames_roundtrip() {
        let hb = Frame::Heartbeat { gen: 5, epoch: 99 };
        let bytes = hb.encode();
        assert_eq!(bytes.len(), hb.encoded_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), hb);
        assert_eq!(hb.logical_records(), 1);
        assert_eq!(hb.wire_len(), hb.encoded_len());
        let rec = Frame::Recover {
            gen: 6,
            round: 1,
            dead: vec![3, 7],
            ckpt: 128,
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.encoded_len());
        assert_eq!(Frame::decode(&bytes).unwrap(), rec);
        // An empty dead set is legal (a joiner confirming membership).
        let empty = Frame::Recover {
            gen: 1,
            round: 2,
            dead: vec![],
            ckpt: 0,
        };
        assert_eq!(Frame::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn coalescing_factor_counts_sentinel_min_and_records() {
        let f = Frame::Stage {
            gen: 0,
            step: 1,
            stage: 0,
            t_min: 1.0,
            ckpt: 0,
            records: vec![
                JRecord {
                    index: 0,
                    words: vec![0],
                },
                JRecord {
                    index: 1,
                    words: vec![1],
                },
                JRecord {
                    index: 2,
                    words: vec![2],
                },
            ],
            pad: 0,
        };
        // One message, five logical records: 5× fewer messages than the
        // uncoalesced schedule for the same traffic.
        assert_eq!(f.logical_records(), 5);
    }

    #[test]
    fn truncated_and_oversize_payloads_are_typed_errors() {
        let f = Frame::Stage {
            gen: 0,
            step: 1,
            stage: 0,
            t_min: 2.0,
            ckpt: 0,
            records: vec![JRecord {
                index: 3,
                words: vec![42],
            }],
            pad: 0,
        };
        let bytes = f.encode();
        // Truncation surfaces as a typed decode error (the record's word
        // length prefix no longer fits → Oversize before any read).
        assert!(matches!(
            Frame::decode(&bytes[..bytes.len() - 1]),
            Err(WireError::Eof | WireError::Oversize)
        ));
        // A record count far beyond the payload is rejected before any
        // allocation happens.
        let mut e = Enc::new();
        e.u32(1); // stage tag
        e.u32(0); // gen
        e.u64(0); // step
        e.u32(0); // stage
        e.u64(0); // t_min
        e.u64(0); // ckpt
        e.u64(0); // pad
        e.size(usize::MAX / 32);
        assert_eq!(Frame::decode(&e.into_bytes()), Err(WireError::Oversize));
        // Unknown tags are rejected.
        let mut e = Enc::new();
        e.u32(77);
        assert!(Frame::decode(&e.into_bytes()).is_err());
        // Trailing bytes are rejected.
        let mut bytes = f.encode();
        bytes.push(0);
        assert_eq!(Frame::decode(&bytes), Err(WireError::Trailing));
    }

    #[test]
    fn every_torn_prefix_of_every_frame_is_a_typed_error() {
        // A peer that dies mid-write leaves the reader an arbitrary
        // prefix of the encoded frame.  No prefix may decode Ok (that
        // would be a silently-truncated frame smuggled into the fold) and
        // none may panic — every cut is a typed WireError.
        let frames = [
            Frame::Stage {
                gen: 3,
                step: 11,
                stage: 1,
                t_min: 0.75,
                ckpt: 8,
                records: vec![
                    JRecord {
                        index: 5,
                        words: vec![1, 2, 3],
                    },
                    JRecord {
                        index: 9,
                        words: vec![u64::MAX],
                    },
                ],
                pad: 32,
            },
            Frame::Data(vec![1, 2, 3, 4, 5, 6, 7]),
            Frame::Heartbeat { gen: 1, epoch: 42 },
            Frame::Recover {
                gen: 2,
                round: 1,
                dead: vec![0, 3],
                ckpt: 16,
            },
        ];
        for f in &frames {
            let bytes = f.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Frame::decode(&bytes[..cut]).is_err(),
                    "{f:?} cut at {cut}/{} decoded Ok",
                    bytes.len()
                );
            }
            assert_eq!(Frame::decode(&bytes).as_ref(), Ok(f));
        }
    }
}
