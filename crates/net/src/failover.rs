//! Rank failure: heartbeats, death detection, and survivor topology.
//!
//! The paper's cluster is 16 hosts on Gigabit Ethernet running for weeks;
//! a host that locks up must not take the run with it.  This module is
//! the fabric-level half of failover:
//!
//! * [`RankMonitor`] — each rank exchanges heartbeat messages with every
//!   peer it believes alive; a peer that dropped its endpoint is detected
//!   by [`Endpoint::recv_or_down`] once its in-flight traffic has
//!   drained, and declared dead after the configured missed-heartbeat
//!   timeout is charged to the survivor's clock;
//! * [`Group`] — the surviving topology: a sorted member list with
//!   rank ↔ virtual-rank translation, so collectives re-form over any
//!   (possibly non-power-of-two) survivor set;
//! * [`group_barrier`] / [`group_allgather`] — the dissemination barrier
//!   and ring all-gather restricted to a group, used by the parallel
//!   algorithms after failover.
//!
//! What this module deliberately does *not* do is touch particles: the
//! copy algorithm keeps a full replica of the system on every rank, so
//! "redistributing the dead rank's j-particles" is pure index arithmetic
//! over the new [`Group`] — and because the block floating-point force
//! reduction of §3.4 is partition-independent, the survivors' forces are
//! bitwise identical to the fault-free run's.  The integration of the two
//! lives in `grape6-parallel`'s failover algorithm.

use crate::collectives::CollectiveError;
use crate::fabric::Endpoint;
use grape6_trace::BarrierAlgo;

/// Wire size of one heartbeat message (epoch counter + framing).
pub const HEARTBEAT_BYTES: usize = 16;

/// Missed-heartbeat policy.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Nominal heartbeat period, seconds of virtual time.
    pub period: f64,
    /// Consecutive missed beats before a peer is declared dead; the
    /// detecting rank's clock is charged `period × miss_budget` — the
    /// time it sat waiting before giving up on the peer.
    pub miss_budget: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self {
            period: 1.0e-3,
            miss_budget: 3,
        }
    }
}

/// A set of live ranks: sorted members with rank ↔ virtual-rank
/// translation.  Collectives over a group address `0..len()` virtual
/// ranks and translate to real ranks at the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// A group over the given ranks (sorted, deduplicated; must be
    /// non-empty).
    pub fn new(mut members: Vec<usize>) -> Self {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a group needs at least one member");
        Self { members }
    }

    /// The full fabric `0..p` as a group.
    pub fn full(p: usize) -> Self {
        Self::new((0..p).collect())
    }

    /// Members in ascending rank order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    #[allow(clippy::len_without_is_empty)] // a group is never empty
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether `rank` is a member.
    pub fn contains(&self, rank: usize) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// This rank's virtual rank within the group, if a member.
    pub fn vrank(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// The real rank at virtual rank `v`.
    pub fn rank_at(&self, v: usize) -> usize {
        self.members[v]
    }

    /// Remove a member (no-op if absent); returns whether it was present.
    pub fn remove(&mut self, rank: usize) -> bool {
        match self.members.binary_search(&rank) {
            Ok(i) => {
                self.members.remove(i);
                assert!(!self.members.is_empty(), "last group member removed");
                true
            }
            Err(_) => false,
        }
    }
}

/// Per-rank liveness tracker.
///
/// The monitor is deliberately message-type agnostic: the caller's wire
/// type `T` multiplexes heartbeats with its data traffic, so
/// [`RankMonitor::exchange`] takes an encode closure (epoch → `T`) and a
/// decode closure (`T` → epoch).  Per-peer FIFO ordering guarantees that
/// as long as every rank alternates `exchange` with its data phase in
/// lockstep, a heartbeat receive never consumes a data message.
pub struct RankMonitor {
    me: usize,
    alive: Vec<bool>,
    /// Consecutive silent observations per peer (observation API only;
    /// reset by [`RankMonitor::observe_beat`]).
    misses: Vec<u32>,
    epoch: u64,
    cfg: HeartbeatConfig,
    timeout_seconds: f64,
}

impl RankMonitor {
    /// A monitor at rank `me` of a `p`-rank fabric, everyone presumed
    /// alive.
    pub fn new(me: usize, p: usize, cfg: HeartbeatConfig) -> Self {
        assert!(me < p);
        Self {
            me,
            alive: vec![true; p],
            misses: vec![0; p],
            epoch: 0,
            cfg,
            timeout_seconds: 0.0,
        }
    }

    /// Heartbeat rounds completed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `rank` is currently believed alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// Live ranks (including this one) as a [`Group`].
    pub fn group(&self) -> Group {
        Group::new(
            self.alive
                .iter()
                .enumerate()
                .filter_map(|(r, &a)| a.then_some(r))
                .collect(),
        )
    }

    /// Total missed-heartbeat timeout charged to this rank's clock so far
    /// — the detection cost of every death this rank observed.
    pub fn timeout_seconds(&self) -> f64 {
        self.timeout_seconds
    }

    /// Observation API, for transports that deliver heartbeats inline
    /// with data (the real [`StreamTransport`](crate::StreamTransport)
    /// cluster) rather than through a dedicated [`Self::exchange`]
    /// round: record a heartbeat (or any live traffic) seen from `rank`,
    /// clearing its silence streak.
    pub fn observe_beat(&mut self, rank: usize) {
        self.misses[rank] = 0;
    }

    /// Record one silent deadline window for `rank`.  At
    /// [`HeartbeatConfig::miss_budget`] consecutive silences the rank is
    /// declared dead — the cumulative `period × miss_budget` detection
    /// time is charged to [`Self::timeout_seconds`] — and `true` is
    /// returned.  Already-dead ranks stay dead and return `true`.
    pub fn observe_silence(&mut self, rank: usize) -> bool {
        if !self.alive[rank] {
            return true;
        }
        self.misses[rank] += 1;
        if self.misses[rank] >= self.cfg.miss_budget {
            self.alive[rank] = false;
            self.timeout_seconds += self.cfg.period * self.cfg.miss_budget as f64;
            true
        } else {
            false
        }
    }

    /// Declare `rank` dead immediately (a hangup is unambiguous — no
    /// miss budget applies, and no detection timeout is charged beyond
    /// what was already observed).
    pub fn mark_dead(&mut self, rank: usize) {
        self.alive[rank] = false;
    }

    /// Re-admit a rank that rejoined from a checkpoint.
    pub fn revive(&mut self, rank: usize) {
        self.alive[rank] = true;
        self.misses[rank] = 0;
    }

    /// Count one heartbeat epoch driven by an external schedule (the
    /// observation API's counterpart to the bump inside
    /// [`Self::exchange`]).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// One heartbeat round: send a beat to every live peer, then collect
    /// one from each.  A peer whose endpoint is gone (after its traffic
    /// drained) — or whose heartbeat the fault plan declared lost after
    /// exhausting the retry budget, which is indistinguishable from an
    /// unreachable host — is declared dead: the missed-heartbeat timeout
    /// `period × miss_budget` is charged to this rank's clock, and the
    /// peer leaves the live set.  Returns the ranks newly declared dead,
    /// in ascending order.
    ///
    /// `mk` wraps an epoch into the caller's wire type; `decode` unwraps
    /// it (returning `None` is a protocol violation — a data message where
    /// a heartbeat was due — and panics, since the lockstep schedule makes
    /// it a bug, not a fault).
    pub fn exchange<T, M, D>(&mut self, ep: &mut Endpoint<T>, mk: M, decode: D) -> Vec<usize>
    where
        T: Send,
        M: Fn(u64) -> T,
        D: Fn(T) -> Option<u64>,
    {
        self.epoch += 1;
        let peers: Vec<usize> = (0..self.alive.len())
            .filter(|&r| r != self.me && self.alive[r])
            .collect();
        for &p in &peers {
            // Lossy: the peer may already be gone without being declared.
            ep.send_lossy(p, mk(self.epoch), HEARTBEAT_BYTES);
        }
        let mut dead = Vec::new();
        for &p in &peers {
            match ep.recv_or_down(p) {
                Ok(Some(msg)) => {
                    let got =
                        decode(msg).expect("protocol violation: data where a heartbeat was due");
                    assert_eq!(
                        got, self.epoch,
                        "heartbeat epoch skew from rank {p}: the fabric is not in lockstep"
                    );
                }
                // Endpoint gone, or heartbeat lost after every retry: the
                // peer is unreachable either way — that is precisely what
                // missed-heartbeat detection exists to catch.
                Ok(None) | Err(_) => {
                    let timeout = self.cfg.period * self.cfg.miss_budget as f64;
                    ep.advance(timeout);
                    self.timeout_seconds += timeout;
                    self.alive[p] = false;
                    dead.push(p);
                }
            }
        }
        dead
    }
}

/// Dissemination barrier over a [`Group`]: ⌈log₂ m⌉ rounds among the `m`
/// members, any group size.  A rank outside the group returns
/// immediately.  Returns the algorithm that ran (always
/// [`BarrierAlgo::Dissemination`] — groups are arbitrary survivor sets).
pub fn group_barrier<T: Send + Default>(
    ep: &mut Endpoint<T>,
    group: &Group,
) -> Result<BarrierAlgo, CollectiveError> {
    let m = group.len();
    let Some(vr) = group.vrank(ep.rank()) else {
        return Ok(BarrierAlgo::Dissemination);
    };
    let mut step = 1usize;
    while step < m {
        let to = group.rank_at((vr + step) % m);
        let from = group.rank_at((vr + m - step) % m);
        ep.send_lossy(to, T::default(), 8);
        ep.recv_checked(from)?;
        step <<= 1;
    }
    Ok(BarrierAlgo::Dissemination)
}

/// Ring all-gather over a [`Group`]: every member contributes `mine`;
/// returns the contributions indexed *by member position* (index `i`
/// belongs to `group.rank_at(i)`).  A rank outside the group gets only
/// its own contribution back.
pub fn group_allgather<T: Send + Clone>(
    ep: &mut Endpoint<T>,
    group: &Group,
    mine: T,
    bytes: usize,
) -> Result<Vec<T>, CollectiveError> {
    let m = group.len();
    let Some(vr) = group.vrank(ep.rank()) else {
        return Ok(vec![mine]);
    };
    if m == 1 {
        return Ok(vec![mine]);
    }
    let right = group.rank_at((vr + 1) % m);
    let left = group.rank_at((vr + m - 1) % m);
    // Same shift/reverse/rotate dance as the full-fabric allgather, in
    // virtual-rank coordinates.
    let mut out: Vec<T> = Vec::with_capacity(m);
    out.push(mine);
    for round in 0..m - 1 {
        ep.send_lossy(right, out[round].clone(), bytes);
        out.push(ep.recv_checked(left)?);
    }
    out.reverse();
    out.rotate_right((vr + 1) % m);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;

    #[test]
    fn group_translation_and_removal() {
        let mut g = Group::new(vec![5, 0, 3, 3]);
        assert_eq!(g.members(), &[0, 3, 5]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.vrank(3), Some(1));
        assert_eq!(g.vrank(4), None);
        assert_eq!(g.rank_at(2), 5);
        assert!(g.contains(0) && !g.contains(1));
        assert!(g.remove(3));
        assert!(!g.remove(3));
        assert_eq!(g.members(), &[0, 5]);
        assert_eq!(Group::full(4).members(), &[0, 1, 2, 3]);
    }

    #[test]
    fn monitor_detects_a_dead_rank_and_charges_the_timeout() {
        let cfg = HeartbeatConfig {
            period: 1.0e-3,
            miss_budget: 3,
        };
        let out = run_ranks::<u64, Option<(Vec<usize>, f64, Group)>, _>(
            3,
            LinkProfile::ideal(),
            move |mut ep| {
                if ep.rank() == 2 {
                    // Dies before its first heartbeat.
                    return None;
                }
                let mut mon = RankMonitor::new(ep.rank(), 3, cfg);
                let dead = mon.exchange(&mut ep, |e| e, Some);
                assert!(mon.is_alive(0) && mon.is_alive(1) && !mon.is_alive(2));
                // The survivors' group still works as a topology.
                let g = mon.group();
                group_barrier(&mut ep, &g).unwrap();
                Some((dead, mon.timeout_seconds(), g))
            },
        );
        for r in 0..2 {
            let (dead, timeout, g) = out[r].clone().unwrap();
            assert_eq!(dead, vec![2], "rank {r}");
            assert_eq!(timeout, 3.0e-3, "rank {r}");
            assert_eq!(g.members(), &[0, 1], "rank {r}");
        }
        assert!(out[2].is_none());
    }

    #[test]
    fn observation_api_applies_the_miss_budget_and_supports_revival() {
        let cfg = HeartbeatConfig {
            period: 2.0e-3,
            miss_budget: 3,
        };
        let mut mon = RankMonitor::new(0, 4, cfg);
        // Two silences, then a beat: the streak resets, nobody dies.
        assert!(!mon.observe_silence(2));
        assert!(!mon.observe_silence(2));
        mon.observe_beat(2);
        assert!(!mon.observe_silence(2));
        assert!(mon.is_alive(2));
        assert_eq!(mon.timeout_seconds(), 0.0);
        // Three consecutive silences exhaust the budget.
        assert!(!mon.observe_silence(3));
        assert!(!mon.observe_silence(3));
        assert!(mon.observe_silence(3));
        assert!(!mon.is_alive(3));
        assert_eq!(mon.timeout_seconds(), 6.0e-3);
        // Dead stays dead until revived.
        assert!(mon.observe_silence(3));
        mon.revive(3);
        assert!(mon.is_alive(3));
        assert!(!mon.observe_silence(3));
        // A hangup is immediate.
        mon.mark_dead(1);
        assert_eq!(mon.group().members(), &[0, 2, 3]);
        mon.advance_epoch();
        assert_eq!(mon.epoch(), 1);
    }

    #[test]
    fn healthy_monitor_declares_nobody_dead() {
        let out = run_ranks::<u64, u64, _>(4, LinkProfile::ideal(), |mut ep| {
            let mut mon = RankMonitor::new(ep.rank(), 4, HeartbeatConfig::default());
            for _ in 0..5 {
                assert!(mon.exchange(&mut ep, |e| e, Some).is_empty());
            }
            assert_eq!(mon.timeout_seconds(), 0.0);
            mon.epoch()
        });
        assert_eq!(out, vec![5; 4]);
    }

    #[test]
    fn group_allgather_over_a_non_power_of_two_survivor_set() {
        // 5-rank fabric, rank 1 and rank 4 dead: {0, 2, 3} re-form.
        let group = Group::new(vec![0, 2, 3]);
        let g2 = group.clone();
        let out =
            run_ranks::<usize, Option<Vec<usize>>, _>(5, LinkProfile::ideal(), move |mut ep| {
                if !g2.contains(ep.rank()) {
                    return None;
                }
                let mine = ep.rank() * 10;
                let vals = group_allgather(&mut ep, &g2, mine, 8).unwrap();
                group_barrier(&mut ep, &g2).unwrap();
                Some(vals)
            });
        for &r in group.members() {
            assert_eq!(out[r].as_deref(), Some(&[0, 20, 30][..]), "rank {r}");
        }
        assert!(out[1].is_none() && out[4].is_none());
    }

    #[test]
    fn send_lossy_to_a_departed_peer_does_not_panic() {
        let flags = run_ranks::<u8, Option<bool>, _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 1 {
                return None; // endpoint dropped immediately
            }
            // The peer may or may not have exited yet; drain until the
            // channel reports it gone, then further sends must fail soft.
            while ep.recv_or_down(1).expect("lossless fabric").is_some() {}
            Some(ep.send_lossy(1, 7, 8))
        });
        assert_eq!(flags[0], Some(false));
    }

    #[test]
    fn recv_or_down_drains_buffered_traffic_before_declaring_death() {
        let out = run_ranks::<u8, Vec<u8>, _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 1 {
                ep.send(0, 10, 8);
                ep.send(0, 11, 8);
                return vec![]; // dies with two messages in flight
            }
            let mut got = Vec::new();
            while let Some(v) = ep.recv_or_down(1).expect("lossless fabric") {
                got.push(v);
            }
            got
        });
        assert_eq!(out[0], vec![10, 11]);
    }

    #[test]
    fn endpoint_counters_roundtrip_through_checkpoint_state() {
        let states = run_ranks::<u8, bool, _>(2, LinkProfile::ideal(), |mut ep| {
            if ep.rank() == 0 {
                ep.send(1, 1, 100);
                ep.advance(0.5);
            } else {
                ep.recv_checked(0).expect("lossless fabric");
            }
            let st = ep.checkpoint_state();
            assert_eq!(st.rank, ep.rank());
            assert_eq!(st.clock, ep.clock().to_bits());
            // A wrong-rank restore is refused…
            let mut other = st.clone();
            other.rank += 1;
            assert!(!ep.restore_counters(&other));
            // …the matching one reproduces clock and counters exactly.
            let before = (ep.clock().to_bits(), ep.stats());
            ep.advance(1.0);
            assert!(ep.restore_counters(&st));
            (ep.clock().to_bits(), ep.stats()) == before
        });
        assert_eq!(states, vec![true, true]);
    }
}
