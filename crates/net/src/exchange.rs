//! The coalesced per-blockstep wave: barrier + all-reduce-min +
//! j-exchange in one butterfly.
//!
//! ## Why one wave
//!
//! The PR 5 sequential schedule pays three collectives per blockstep on a
//! multi-node cluster: a commit barrier, the next-block-time all-reduce,
//! and the inter-cluster j-exchange (plus its post-barrier) — every one a
//! full ⌈log₂ p⌉-stage pattern charging per-message latency and switch
//! overhead.  But the butterfly over `p = c × h` ranks *already contains*
//! the exchange topology: with ranks numbered `ci·h + hi`, the low
//! `log₂ h` stages pair ranks within a cluster and the high `log₂ c`
//! stages pair the same host-index across clusters — exactly the
//! recursive-doubling partners of the j-exchange.  So one wave per
//! blockstep, whose frames coalesce the barrier sentinel, the running
//! min and the j-records ([`Frame::Stage`]), does the work of all three
//! collectives at a third of the message count.
//!
//! ## Split-phase overlap
//!
//! [`Wave`] is a stage-stepped state machine: [`Wave::post_stage`] only
//! *sends* the current stage's frame, [`Wave::finish_stage`] receives
//! and folds it.  Posting stage 0 before the force pass and finishing it
//! after lets the first stage's latency hide behind compute — on the
//! virtual fabric the clock has advanced past the frame's arrival by the
//! time the receive happens, so the wait is absorbed, and on a real
//! socket the kernel buffers the frame meanwhile.  The message sequence
//! is **identical** in all schedules (same frames, same per-peer order),
//! which is the bitwise argument: the folded state can not depend on
//! when the receives were executed.
//!
//! ## Determinism of the fold
//!
//! `t_min` folds through `f64::min` — associative and commutative over
//! the totally-ordered non-NaN floats, so any fold order yields the same
//! bits.  J-records merge into a map keyed by particle index; each
//! particle is updated by exactly one owner per step, so duplicates
//! (possible under the dissemination fallback, which re-forwards) are
//! bitwise-identical copies and the merged set is order-independent.

use std::collections::BTreeMap;

use grape6_trace::BarrierAlgo;

use crate::transport::{Transport, TransportError};
use crate::wire::{Frame, JRecord};

/// The folded result of a completed [`Wave`].
#[derive(Clone, Debug, PartialEq)]
pub struct WaveOutcome {
    /// Global minimum of the per-rank inputs (the next block time).
    pub t_min: f64,
    /// Global minimum of the per-rank last-captured checkpoint epochs —
    /// the most recent *coordinated* cut every rank can rewind to.
    pub ckpt_min: u64,
    /// The wave pattern that ran (butterfly, or dissemination fallback
    /// for non-power-of-two rank counts).
    pub algo: BarrierAlgo,
    /// Every rank's j-records, merged, ascending by particle index.
    pub merged: Vec<JRecord>,
    /// Frames this rank sent.
    pub messages: u64,
    /// Logical records coalesced into those frames (sentinel + min +
    /// j-records per frame) — `records / messages` is the coalescing
    /// factor.
    pub records: u64,
    /// Wire bytes this rank sent (encoded + synthetic pad).
    pub bytes: u64,
}

/// One rank's in-flight coalesced wave for one blockstep.
pub struct Wave {
    rank: usize,
    p: usize,
    /// Recovery generation this wave speaks; frames from an older
    /// generation are stale in-flight leftovers and are discarded.
    gen: u32,
    step: u64,
    algo: BarrierAlgo,
    n_stages: u32,
    /// Stages fully folded so far.
    done: u32,
    /// Receive partner of a posted-but-unfinished stage.
    pending_from: Option<usize>,
    t_min: f64,
    /// This rank's last-captured checkpoint epoch, folded via min.
    ckpt: u64,
    acc: BTreeMap<u64, JRecord>,
    /// Heartbeat observations skipped over while waiting for stage
    /// frames: `(peer, epoch)` pairs for the liveness monitor.
    beats: Vec<(usize, u64)>,
    messages: u64,
    records: u64,
    bytes: u64,
}

impl Wave {
    /// Start a wave at this rank: `t_min` is the rank's candidate next
    /// block time, `records` its j-updates for this step.  Generation
    /// and checkpoint epoch default to 0 (no recovery machinery).
    pub fn new(rank: usize, p: usize, step: u64, t_min: f64, records: Vec<JRecord>) -> Self {
        Self::with_meta(rank, p, 0, step, t_min, 0, records)
    }

    /// Start a wave carrying recovery metadata: `gen` is the current
    /// recovery generation, `ckpt` this rank's last-captured checkpoint
    /// epoch (folded via min across ranks, so the outcome names the most
    /// recent cut *everyone* holds).
    pub fn with_meta(
        rank: usize,
        p: usize,
        gen: u32,
        step: u64,
        t_min: f64,
        ckpt: u64,
        records: Vec<JRecord>,
    ) -> Self {
        assert!(p >= 1 && rank < p);
        let algo = if p.is_power_of_two() {
            BarrierAlgo::Butterfly
        } else {
            BarrierAlgo::Dissemination
        };
        let n_stages = if p > 1 {
            usize::BITS - (p - 1).leading_zeros()
        } else {
            0
        };
        let acc = records.into_iter().map(|r| (r.index, r)).collect();
        Self {
            rank,
            p,
            gen,
            step,
            algo,
            n_stages,
            done: 0,
            pending_from: None,
            t_min,
            ckpt,
            acc,
            beats: Vec::new(),
            messages: 0,
            records: 0,
            bytes: 0,
        }
    }

    /// Total stages (⌈log₂ p⌉).
    pub fn n_stages(&self) -> u32 {
        self.n_stages
    }

    /// Stages fully folded so far.
    pub fn stages_done(&self) -> u32 {
        self.done
    }

    /// Whether every stage has been folded.
    pub fn is_complete(&self) -> bool {
        self.done == self.n_stages && self.pending_from.is_none()
    }

    /// The partner a posted stage is waiting on, if any — the rank to
    /// attribute a receive failure (timeout, hangup) to.
    pub fn pending_partner(&self) -> Option<usize> {
        self.pending_from
    }

    /// Drain the heartbeat observations skipped while waiting for stage
    /// frames, for the caller's liveness monitor.
    pub fn take_beats(&mut self) -> Vec<(usize, u64)> {
        std::mem::take(&mut self.beats)
    }

    /// (send-to, receive-from) partners of stage `k`.  Butterfly pairs
    /// are symmetric (`me XOR 2^k`); dissemination sends ahead and
    /// receives from behind.
    fn partners(&self, k: u32) -> (usize, usize) {
        let dist = 1usize << k;
        match self.algo {
            BarrierAlgo::Butterfly => {
                let partner = self.rank ^ dist;
                (partner, partner)
            }
            _ => (
                (self.rank + dist) % self.p,
                (self.rank + self.p - dist) % self.p,
            ),
        }
    }

    /// Send the current stage's frame (everything accumulated so far,
    /// coalesced into one message) without waiting for the partner's.
    /// `pad` is the synthetic extra wire volume the virtual link charges
    /// for this stage (models j-payload size without allocating it).
    pub fn post_stage<T: Transport>(&mut self, tr: &mut T, pad: u64) -> Result<(), TransportError> {
        assert!(self.pending_from.is_none(), "stage already posted");
        assert!(self.done < self.n_stages, "wave already complete");
        let (to, from) = self.partners(self.done);
        let frame = Frame::Stage {
            gen: self.gen,
            step: self.step,
            stage: self.done,
            t_min: self.t_min,
            ckpt: self.ckpt,
            records: self.acc.values().cloned().collect(),
            pad,
        };
        self.messages += 1;
        self.records += frame.logical_records();
        self.bytes += frame.wire_len() as u64;
        tr.send_frame(to, &frame)?;
        self.pending_from = Some(from);
        Ok(())
    }

    /// Receive and fold the posted stage's frame.
    ///
    /// Three frame kinds can legitimately arrive ahead of the expected
    /// stage: heartbeats (liveness only — recorded for
    /// [`Self::take_beats`] and skipped), stage frames from an *older*
    /// recovery generation (stale in-flight leftovers of a rewound wave
    /// — discarded), and [`Frame::Recover`] (a peer pre-empted the
    /// collective — surfaced as [`TransportError::Interrupted`] so the
    /// cluster layer joins the recovery round).
    pub fn finish_stage<T: Transport>(&mut self, tr: &mut T) -> Result<(), TransportError> {
        let from = self.pending_from.expect("no stage posted");
        loop {
            let frame = tr.recv_frame(from)?;
            let (gen, step, stage, t_min, ckpt, records) = match frame {
                Frame::Heartbeat { epoch, .. } => {
                    self.beats.push((from, epoch));
                    continue;
                }
                f @ Frame::Recover { .. } => {
                    return Err(TransportError::Interrupted {
                        from,
                        frame: Box::new(f),
                    });
                }
                Frame::Stage {
                    gen,
                    step,
                    stage,
                    t_min,
                    ckpt,
                    records,
                    ..
                } => (gen, step, stage, t_min, ckpt, records),
                Frame::Data { .. } => {
                    return Err(TransportError::Protocol("data frame where a stage was due"));
                }
            };
            if gen < self.gen {
                // A stale frame from before the last recovery rewind.
                continue;
            }
            if gen > self.gen {
                return Err(TransportError::Protocol(
                    "stage frame from a future recovery generation",
                ));
            }
            if step != self.step {
                return Err(TransportError::Protocol(
                    "stage frame from a different blockstep",
                ));
            }
            if stage != self.done {
                return Err(TransportError::Protocol("stage frame out of order"));
            }
            self.t_min = self.t_min.min(t_min);
            self.ckpt = self.ckpt.min(ckpt);
            for r in records {
                self.acc.insert(r.index, r);
            }
            self.pending_from = None;
            self.done += 1;
            return Ok(());
        }
    }

    /// Run stages `[stages_done, until)` to completion (post + finish
    /// each).  `pads[k]` is the synthetic pad for absolute stage `k`
    /// (missing entries are 0).
    pub fn run_stages<T: Transport>(
        &mut self,
        tr: &mut T,
        until: u32,
        pads: &[u64],
    ) -> Result<(), TransportError> {
        while self.done < until.min(self.n_stages) {
            let pad = pads.get(self.done as usize).copied().unwrap_or(0);
            self.post_stage(tr, pad)?;
            self.finish_stage(tr)?;
        }
        Ok(())
    }

    /// Fold result.  Panics if the wave is incomplete — completing it is
    /// the caller's schedule's job.
    pub fn outcome(self) -> WaveOutcome {
        assert!(self.is_complete(), "wave has unfinished stages");
        WaveOutcome {
            t_min: self.t_min,
            ckpt_min: self.ckpt,
            algo: self.algo,
            merged: self.acc.into_values().collect(),
            messages: self.messages,
            records: self.records,
            bytes: self.bytes,
        }
    }
}

/// The whole wave, sequentially: post + finish every stage back to back.
/// This is the *coalesced* schedule (one collective instead of three);
/// the overlapped schedule drives [`Wave`] directly to hide stage 0
/// behind compute.
pub fn coalesced_wave<T: Transport>(
    tr: &mut T,
    step: u64,
    t_min: f64,
    records: Vec<JRecord>,
    pads: &[u64],
) -> Result<WaveOutcome, TransportError> {
    let mut w = Wave::new(tr.rank(), tr.n_ranks(), step, t_min, records);
    let n = w.n_stages();
    w.run_stages(tr, n, pads)?;
    Ok(w.outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::run_ranks;
    use crate::link::LinkProfile;
    use crate::transport::VirtualTransport;

    fn rec(index: u64, word: f64) -> JRecord {
        JRecord {
            index,
            words: vec![word.to_bits()],
        }
    }

    #[test]
    fn wave_computes_allreduce_min_and_merges_records_any_p() {
        for p in [1usize, 2, 3, 4, 6, 8, 16] {
            let out =
                run_ranks::<Vec<u8>, WaveOutcome, _>(p, LinkProfile::ideal(), move |mut ep| {
                    let r = ep.rank();
                    let mut tr = VirtualTransport::new(&mut ep);
                    coalesced_wave(
                        &mut tr,
                        42,
                        (r as f64 + 1.0) * 0.125,
                        vec![rec(r as u64, r as f64)],
                        &[],
                    )
                    .unwrap()
                });
            let want_algo = if p.is_power_of_two() {
                BarrierAlgo::Butterfly
            } else {
                BarrierAlgo::Dissemination
            };
            for (r, o) in out.iter().enumerate() {
                assert_eq!(o.t_min, 0.125, "p={p} rank {r}");
                assert_eq!(o.algo, want_algo, "p={p} rank {r}");
                // Every rank ends with every rank's record, index-sorted.
                let want: Vec<JRecord> = (0..p as u64).map(|i| rec(i, i as f64)).collect();
                assert_eq!(o.merged, want, "p={p} rank {r}");
                if p > 1 {
                    // One frame per stage, nothing more.
                    assert_eq!(o.messages, u64::from((p - 1).ilog2() + 1), "p={p}");
                }
            }
        }
    }

    #[test]
    fn one_wave_sends_fewer_messages_than_three_collectives() {
        // 4 ranks: the wave is 2 frames/rank; the sequential schedule's
        // commit barrier (2) + allreduce ring (3) + post barrier (2) is 7.
        let out = run_ranks::<Vec<u8>, WaveOutcome, _>(4, LinkProfile::ideal(), |mut ep| {
            let r = ep.rank();
            let mut tr = VirtualTransport::new(&mut ep);
            coalesced_wave(&mut tr, 0, r as f64, vec![rec(r as u64, 0.0)], &[]).unwrap()
        });
        for o in &out {
            assert_eq!(o.messages, 2);
            // Coalescing factor > 1: each frame carries sentinel + min +
            // accumulated j-records.
            assert!(o.records > o.messages, "{o:?}");
        }
    }

    #[test]
    fn split_phase_wave_is_bitwise_identical_to_sequential() {
        let link = LinkProfile {
            latency: 1e-4,
            bandwidth: 1e8,
            overhead: 1e-5,
        };
        let run = |overlap: bool| {
            run_ranks::<Vec<u8>, (WaveOutcome, f64), _>(8, link, move |mut ep| {
                let r = ep.rank();
                let t_mine = 1.0 / (r as f64 + 2.0);
                let recs = vec![rec(r as u64, t_mine)];
                let out = if overlap {
                    let mut w = Wave::new(r, 8, 7, t_mine, recs);
                    {
                        let mut tr = VirtualTransport::new(&mut ep);
                        w.post_stage(&mut tr, 64).unwrap();
                    }
                    // "Compute" while stage 0 is in flight.
                    ep.advance(5e-3);
                    let mut tr = VirtualTransport::new(&mut ep);
                    w.finish_stage(&mut tr).unwrap();
                    w.run_stages(&mut tr, 3, &[64, 64, 64]).unwrap();
                    w.outcome()
                } else {
                    let mut w = Wave::new(r, 8, 7, t_mine, recs);
                    w.run_stages(&mut VirtualTransport::new(&mut ep), 3, &[64, 64, 64])
                        .unwrap();
                    let o = w.outcome();
                    ep.advance(5e-3);
                    o
                };
                (out, ep.clock())
            })
        };
        let seq = run(false);
        let ovl = run(true);
        for (r, (s, o)) in seq.iter().zip(&ovl).enumerate() {
            // Identical folded state, bit for bit.
            assert_eq!(s.0, o.0, "rank {r}");
            // The overlapped schedule hid stage-0 latency behind the
            // compute: its clock is strictly earlier.
            assert!(o.1 < s.1, "rank {r}: {} !< {}", o.1, s.1);
        }
    }

    #[test]
    fn wave_counters_account_pads_and_coalescing() {
        let out = run_ranks::<Vec<u8>, WaveOutcome, _>(2, LinkProfile::ideal(), |mut ep| {
            let r = ep.rank();
            let mut tr = VirtualTransport::new(&mut ep);
            coalesced_wave(&mut tr, 1, 0.5, vec![rec(r as u64, 0.0)], &[1000]).unwrap()
        });
        for o in &out {
            assert_eq!(o.messages, 1);
            assert_eq!(o.records, 3); // sentinel + min + 1 j-record
            assert!(o.bytes > 1000, "pad must be charged: {o:?}");
        }
    }

    #[test]
    fn lossy_fabric_waves_are_bitwise_identical_to_lossless() {
        use crate::fabric::run_ranks_faulty;
        use grape6_fault::NetFaultPlan;
        // 40% drop with a generous retry budget: every message eventually
        // arrives, so both the back-to-back and the split-phase schedule
        // must fold the exact bits of the lossless run — retransmission
        // changes when a frame lands, never what it says.
        let link = LinkProfile {
            latency: 50.0e-6,
            bandwidth: 1.0e8,
            overhead: 10.0e-6,
        };
        let p = 8;
        let chain = move |ep: &mut crate::fabric::Endpoint<Vec<u8>>, split: bool| {
            let r = ep.rank();
            let mut outs = Vec::new();
            let mut t_seed = 0.5f64;
            for step in 0..4u64 {
                let t_mine = t_seed * (1.0 + r as f64 * 0.125);
                let recs = vec![rec(r as u64 * 8 + step, t_mine)];
                let mut tr = VirtualTransport::new(ep);
                let out = if split {
                    let mut w = Wave::new(r, p, step, t_mine, recs);
                    w.post_stage(&mut tr, 64)?;
                    w.finish_stage(&mut tr)?;
                    let n = w.n_stages();
                    w.run_stages(&mut tr, n, &[64; 8])?;
                    w.outcome()
                } else {
                    coalesced_wave(&mut tr, step, t_mine, recs, &[64; 8])?
                };
                t_seed = out.t_min * 0.75 + 1e-3;
                outs.push(out);
            }
            Ok::<_, TransportError>(outs)
        };
        let run = |plan: NetFaultPlan, split: bool| {
            run_ranks_faulty::<Vec<u8>, (Vec<WaveOutcome>, u64), _>(p, link, plan, move |mut ep| {
                let outs = chain(&mut ep, split).expect("recoverable loss");
                let retransmits = ep.stats().retransmits;
                (outs, retransmits)
            })
        };
        let lossy = NetFaultPlan::lossy(5, 400, 32, 1e-4);
        let clean = run(NetFaultPlan::none(), false);
        let lossy_seq = run(lossy, false);
        let lossy_split = run(lossy, true);
        assert!(
            lossy_seq.iter().map(|(_, r)| r).sum::<u64>() > 0,
            "a 40%-lossy fabric must retransmit"
        );
        for (r, ((c, _), ((ls, _), (lo, _)))) in clean
            .iter()
            .zip(lossy_seq.iter().zip(&lossy_split))
            .enumerate()
        {
            assert_eq!(c, ls, "rank {r}: lossy sequential diverged");
            assert_eq!(c, lo, "rank {r}: lossy split-phase diverged");
        }
    }

    #[test]
    fn exhausted_retry_budget_fails_the_wave_with_a_typed_lost_error() {
        use crate::fabric::run_ranks_faulty;
        use grape6_fault::NetFaultPlan;
        // 100% drop, 2-attempt budget: stage 0 times out on both ranks.
        let plan = NetFaultPlan::lossy(9, 1000, 2, 1e-4);
        let errs = run_ranks_faulty::<Vec<u8>, TransportError, _>(
            2,
            LinkProfile::ideal(),
            plan,
            |mut ep| {
                let mut tr = VirtualTransport::new(&mut ep);
                coalesced_wave(&mut tr, 0, 0.5, vec![], &[]).unwrap_err()
            },
        );
        for (r, e) in errs.iter().enumerate() {
            match e {
                TransportError::Lost(le) => {
                    assert_eq!(le.to, r);
                    assert_eq!(le.attempts, 2);
                }
                other => panic!("rank {r}: expected Lost, got {other:?}"),
            }
        }
    }

    #[test]
    fn mid_wave_rank_death_surfaces_as_typed_down_errors() {
        // Rank 3 completes stage 0 of the 4-rank butterfly, then dies.
        // Its stage-0 partner (rank 2) already holds its records, so the
        // fold keeps flowing through the survivors on the 0↔2 edge; only
        // rank 1, whose stage-1 partner is the corpse, observes the death
        // — as a typed Down, never a panic.
        let out = run_ranks::<Vec<u8>, Result<WaveOutcome, TransportError>, _>(
            4,
            LinkProfile::ideal(),
            |mut ep| {
                let r = ep.rank();
                let mut tr = VirtualTransport::new(&mut ep);
                let mut w = Wave::new(r, 4, 0, (r as f64 + 1.0) * 0.125, vec![rec(r as u64, 0.0)]);
                w.post_stage(&mut tr, 0)?;
                w.finish_stage(&mut tr)?;
                if r == 3 {
                    return Err(TransportError::Down { from: 3, to: 3 }); // dies here
                }
                w.run_stages(&mut tr, 2, &[])?;
                Ok(w.outcome())
            },
        );
        for r in [0usize, 2] {
            let o = out[r].as_ref().expect("survivor on the live edge");
            // Global fold still complete: rank 3's input crossed the 2↔3
            // edge in stage 0 and the 0↔2 edge in stage 1.
            assert_eq!(o.t_min, 0.125, "rank {r}");
            assert_eq!(o.merged.len(), 4, "rank {r}");
        }
        assert_eq!(
            out[1],
            Err(TransportError::Down { from: 3, to: 1 }),
            "rank 1's stage-1 partner died"
        );
    }

    #[test]
    fn wave_folds_ckpt_epoch_min_and_skips_heartbeats_and_stale_generations() {
        use crate::wire::Frame;
        let out = run_ranks::<Vec<u8>, (WaveOutcome, Vec<(usize, u64)>), _>(
            2,
            LinkProfile::ideal(),
            |mut ep| {
                let r = ep.rank();
                let mut tr = VirtualTransport::new(&mut ep);
                // Rank 0 front-runs its stage frame with a heartbeat and
                // a stale generation-0 leftover; rank 1 must skip both.
                if r == 0 {
                    tr.send_frame(1, &Frame::Heartbeat { gen: 1, epoch: 41 })
                        .expect("send");
                    tr.send_frame(
                        1,
                        &Frame::Stage {
                            gen: 0,
                            step: 7,
                            stage: 0,
                            t_min: 0.001, // would corrupt the fold if not discarded
                            ckpt: 0,
                            records: vec![],
                            pad: 0,
                        },
                    )
                    .expect("send");
                }
                let ckpt = if r == 0 { 12 } else { 9 };
                let mut w = Wave::with_meta(r, 2, 1, 7, (r as f64 + 1.0) * 0.25, ckpt, vec![]);
                w.post_stage(&mut tr, 0).expect("post");
                w.finish_stage(&mut tr).expect("finish");
                let beats = w.take_beats();
                (w.outcome(), beats)
            },
        );
        for (r, (o, _)) in out.iter().enumerate() {
            // The stale frame's 0.001 must not have leaked into the fold.
            assert_eq!(o.t_min, 0.25, "rank {r}");
            // Checkpoint epoch folds to the *oldest* capture: min(12, 9).
            assert_eq!(o.ckpt_min, 9, "rank {r}");
        }
        assert_eq!(out[1].1, vec![(0, 41)], "rank 1 observed rank 0's beat");
        assert!(out[0].1.is_empty());
    }

    #[test]
    fn recover_frame_interrupts_the_wave_with_the_carried_frame() {
        use crate::wire::Frame;
        let recover = Frame::Recover {
            gen: 1,
            round: 1,
            dead: vec![3],
            ckpt: 5,
        };
        let rec2 = recover.clone();
        let out = run_ranks::<Vec<u8>, Option<TransportError>, _>(
            2,
            LinkProfile::ideal(),
            move |mut ep| {
                let r = ep.rank();
                let mut tr = VirtualTransport::new(&mut ep);
                if r == 0 {
                    tr.send_frame(1, &rec2).expect("send");
                    None
                } else {
                    let mut w = Wave::new(1, 2, 0, 0.5, vec![]);
                    w.post_stage(&mut tr, 0).expect("post");
                    Some(w.finish_stage(&mut tr).expect_err("must interrupt"))
                }
            },
        );
        assert_eq!(
            out[1],
            Some(TransportError::Interrupted {
                from: 0,
                frame: Box::new(recover)
            })
        );
    }

    #[test]
    fn mixed_step_waves_are_a_protocol_error() {
        let errs =
            run_ranks::<Vec<u8>, Option<TransportError>, _>(2, LinkProfile::ideal(), |mut ep| {
                let r = ep.rank();
                let step = if r == 0 { 1 } else { 2 }; // skewed fabric
                let mut tr = VirtualTransport::new(&mut ep);
                coalesced_wave(&mut tr, step, 0.0, vec![], &[]).err()
            });
        for e in errs.iter() {
            assert_eq!(
                *e,
                Some(TransportError::Protocol(
                    "stage frame from a different blockstep"
                ))
            );
        }
    }
}
