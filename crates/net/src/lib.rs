//! # grape6-net — the simulated cluster interconnect
//!
//! The GRAPE-6 hosts are "Linux-running PCs … connected with Gigabit
//! Ethernets" (§2.2), and §4.4 shows the machine's parallel performance is
//! dominated by exactly this layer: round-trip latency and sustained
//! bandwidth of the NIC/driver pair, and the butterfly barrier built on
//! TCP sockets.
//!
//! This crate is that layer, as a deterministic discrete-event substrate:
//!
//! * [`link::LinkProfile`] — latency / bandwidth / per-message overhead of
//!   one point-to-point connection (constructors for the paper's three
//!   NICs);
//! * [`fabric`] — a fully-connected fabric of `p` ranks.  Each rank runs on
//!   its own OS thread and owns an [`fabric::Endpoint`]; messages travel
//!   over crossbeam channels carrying a *send timestamp* and a modelled
//!   *wire size*, and each receive advances the receiver's **virtual
//!   clock** to `max(own clock, send time + transfer time)` — conservative
//!   discrete-event simulation at rank granularity, with real payloads and
//!   real concurrency but simulated time;
//! * [`collectives`] — the operations the parallel N-body codes need:
//!   dissemination barrier (the paper's "butterfly message exchange"),
//!   binomial broadcast, ring all-gather and all-reduce, plus `_measured`
//!   variants that return a [`collectives::CollectiveCost`] breakdown.
//!
//! The fabric can also be run *unreliable*: [`fabric::run_ranks_faulty`]
//! applies a seeded [`grape6_fault::NetFaultPlan`] — deterministic drops,
//! corruption, retransmission backoff and timeouts — and every
//! [`fabric::Endpoint`] counts what happened ([`fabric::EndpointStats`]).
//!
//! On top of the point-to-point substrate sit the deployable layers:
//!
//! * [`wire`] — the little-endian [`wire::Frame`] format (built on
//!   `grape6-ckpt`'s encoder) that coalesces barrier sentinel,
//!   all-reduce payload and j-records into one message per partner;
//! * [`transport`] — the pluggable [`transport::Transport`] trait with
//!   the virtual-time endpoint as one backend and a real TCP/UDS mesh
//!   ([`transport::StreamTransport`], ranks as OS processes) as another;
//! * [`exchange`] — the coalesced per-blockstep [`exchange::Wave`]
//!   (split-phase capable, so its first stage hides behind compute),
//!   bitwise identical across schedules and backends.
//!
//! Nothing here knows about particles; `grape6-parallel` composes this
//! fabric with the machine simulator to run the paper's parallel
//! algorithms end to end.

pub mod cluster;
pub mod collectives;
pub mod exchange;
pub mod fabric;
pub mod failover;
pub mod link;
pub mod transport;
pub mod wire;

pub use cluster::{
    ClusterApp, ClusterConfig, ClusterError, ClusterReport, ClusterSupervisor, FaultKind,
    GroupTransport, Manifest,
};
pub use collectives::{CollectiveCost, CollectiveError};
pub use exchange::{coalesced_wave, Wave, WaveOutcome};
pub use fabric::{run_ranks, run_ranks_faulty, Endpoint, EndpointStats, LinkError, RecvError};
pub use failover::{group_allgather, group_barrier, Group, HeartbeatConfig, RankMonitor};
pub use link::LinkProfile;
pub use transport::{
    dial_service, publish_service_addr, wait_for_service_addr, FrameIoError, FramedConn,
    ServiceListener, StreamConfig, StreamKind, StreamTransport, Transport, TransportError,
    VirtualTransport,
};
pub use wire::{Frame, JRecord};
