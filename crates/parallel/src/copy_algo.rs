//! The copy algorithm: a full parallel Hermite integrator.
//!
//! "Each processor has the complete copy of the system… At each blockstep,
//! each processor determines which particles it updates.  After all
//! processors update their share of particles, they exchange the updated
//! particles so that all processors have the updated copy of the system"
//! (§3.2).  This is also exactly how GRAPE-6 parallelises across clusters
//! (§4.3), and its per-blockstep all-to-all exchange is the communication
//! term behind figs. 17/18.
//!
//! Because every rank holds the full system and force sums run over the
//! full j-range in index order, the parallel trajectories are
//! **bit-identical** to the serial driver's — verified in the tests, and
//! the distributed analogue of the §3.4 reproducibility property.

use grape6_core::integrator::{HermiteIntegrator, IntegratorConfig};
use grape6_core::stats::RunStats;
use grape6_net::collectives::allgather;
use grape6_net::fabric::run_ranks;
use grape6_net::link::LinkProfile;
use nbody_core::force::{DirectEngine, ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::hermite::{aarseth_dt, correct, predict, HermiteState};
use nbody_core::particle::ParticleSet;
use nbody_core::Vec3;

use crate::partition::owner_of;

/// One updated particle as shipped between ranks after a blockstep.
#[derive(Clone, Copy, Debug)]
pub struct ParticleUpdate {
    /// Global particle index.
    pub idx: usize,
    /// New position.
    pub pos: Vec3,
    /// New velocity.
    pub vel: Vec3,
    /// New acceleration.
    pub acc: Vec3,
    /// New jerk.
    pub jerk: Vec3,
    /// New snap.
    pub snap: Vec3,
    /// New crackle.
    pub crackle: Vec3,
    /// New potential.
    pub pot: f64,
    /// New particle time.
    pub t: f64,
    /// New timestep.
    pub dt: f64,
}

/// Wire size of one update (6 vectors + 3 scalars + index).
pub const UPDATE_BYTES: usize = 176;

/// Configuration of a copy-algorithm run.
#[derive(Clone, Copy, Debug)]
pub struct CopyConfig {
    /// Integrator accuracy/scheduling parameters.
    pub integ: IntegratorConfig,
    /// Host-host link profile.
    pub link: LinkProfile,
    /// Virtual cost of one pairwise force evaluation on a rank.
    pub t_pair: f64,
    /// Virtual host cost per particle step (predict/correct/bookkeeping).
    pub t_host_step: f64,
}

impl Default for CopyConfig {
    fn default() -> Self {
        Self {
            integ: IntegratorConfig::default(),
            link: LinkProfile::intel_82540em(),
            // One pairwise interaction on a GRAPE-equipped host: 57 flops
            // at the host slice's 3.94 Tflops peak.
            t_pair: 57.0 / 3.94e12,
            t_host_step: 4.0e-6,
        }
    }
}

/// Outcome of a parallel run.
pub struct CopyRunResult {
    /// Final particle state (identical on every rank; rank 0's copy).
    pub set: ParticleSet,
    /// Per-rank virtual clocks at completion.
    pub clocks: Vec<f64>,
    /// Blockstep statistics (identical on every rank; rank 0's copy).
    pub stats: RunStats,
    /// Total bytes each rank put on the wire.
    pub bytes_sent: Vec<u64>,
}

/// Where a copy-algorithm segment starts and stops — the hooks that make
/// parallel runs **checkpointable**: run a bounded number of blocksteps,
/// capture the (rank-identical) particle state, and continue later from
/// exactly that state with [`run_copy_parallel_segment`].
#[derive(Clone, Copy, Debug)]
pub struct CopySegment {
    /// `Some(t0)`: the input set is mid-run state (derivatives, per-
    /// particle times and steps already populated — e.g. restored from a
    /// checkpoint) and integration continues from time `t0` without any
    /// re-initialisation.  `None`: initialise exactly like the serial
    /// driver (startup forces + initial timesteps).
    pub resume_from: Option<f64>,
    /// Stop after this many blocksteps, even short of `t_end`.  The limit
    /// is deterministic and identical on every rank, so stopping is
    /// collective-safe.
    pub max_blocksteps: Option<u64>,
    /// Stop once the run time reaches this.
    pub t_end: f64,
}

/// Integrate `set` to `t_end` on `p` ranks with the copy algorithm.
pub fn run_copy_parallel(
    set: &ParticleSet,
    p: usize,
    t_end: f64,
    cfg: &CopyConfig,
) -> CopyRunResult {
    run_copy_parallel_segment(
        set,
        p,
        CopySegment {
            resume_from: None,
            max_blocksteps: None,
            t_end,
        },
        cfg,
    )
}

/// Integrate one bounded segment of a copy-algorithm run.
///
/// Stats count this segment only; callers stitching segments together sum
/// them.  Because every rank holds the full system and the blockstep
/// schedule is a pure function of the particle state, a run chopped into
/// segments is bit-identical to an uninterrupted one.
pub fn run_copy_parallel_segment(
    set: &ParticleSet,
    p: usize,
    seg: CopySegment,
    cfg: &CopyConfig,
) -> CopyRunResult {
    let n = set.n();
    let t_end = seg.t_end;
    let results = run_ranks::<Vec<ParticleUpdate>, (ParticleSet, RunStats, f64, u64), _>(
        p,
        cfg.link,
        |mut ep| {
            let rank = ep.rank();
            // Every rank: full copy, full engine, synchronized-identical
            // initialisation (same arithmetic as the serial driver) — or,
            // on resume, the caller's mid-run state verbatim.
            let (mut local, eps, mut t) = match seg.resume_from {
                None => {
                    let it = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.integ);
                    (it.particles().clone(), it.epsilon(), 0.0f64)
                }
                Some(t0) => (set.clone(), cfg.integ.softening.epsilon(n), t0),
            };
            let mut stats = RunStats::new();
            let eps2 = eps * eps;
            let mut engine = DirectEngine::new(n);
            for i in 0..n {
                engine.set_j_particle(i, &j_from(&local, i));
            }
            while t < t_end && seg.max_blocksteps.is_none_or(|m| stats.blocksteps < m) {
                let t_next = local.min_next_time();
                // My share of the block (owner by contiguous chunks).
                let mut updates: Vec<ParticleUpdate> = Vec::new();
                let mut my_interactions = 0u64;
                engine.set_time(t_next);
                let mut block_len = 0usize;
                for i in 0..n {
                    if local.t[i] + local.dt[i] != t_next {
                        continue;
                    }
                    block_len += 1;
                    if owner_of(n, p, i) != rank {
                        continue;
                    }
                    let dt = t_next - local.t[i];
                    let s = HermiteState {
                        pos: local.pos[i],
                        vel: local.vel[i],
                        acc: local.acc[i],
                        jerk: local.jerk[i],
                    };
                    let (pp, pv) = predict(&s, Vec3::ZERO, dt);
                    let ip = [IParticle {
                        pos: pp,
                        vel: pv,
                        eps2,
                    }];
                    let mut f = [ForceResult::default()];
                    engine.compute(&ip, &mut f);
                    my_interactions += n as u64;
                    let mut f1 = f[0];
                    if eps > 0.0 {
                        f1.pot += local.mass[i] / eps;
                    }
                    let c = correct(&s, pp, pv, &f1, dt);
                    let want = aarseth_dt(f1.acc, f1.jerk, c.snap, c.crackle, cfg.integ.eta);
                    let dt_new = cfg.integ.grid.next_step(t_next, dt, want);
                    updates.push(ParticleUpdate {
                        idx: i,
                        pos: c.pos,
                        vel: c.vel,
                        acc: f1.acc,
                        jerk: f1.jerk,
                        snap: c.snap,
                        crackle: c.crackle,
                        pot: f1.pot,
                        t: t_next,
                        dt: dt_new,
                    });
                }
                ep.advance(
                    my_interactions as f64 * cfg.t_pair + updates.len() as f64 * cfg.t_host_step,
                );
                // Exchange: every rank learns every update (the paper's
                // per-blockstep synchronisation + exchange).
                let bytes = updates.len() * UPDATE_BYTES;
                let all = allgather(&mut ep, updates, bytes.max(8)).expect("lossless fabric");
                for batch in &all {
                    for u in batch {
                        apply_update(&mut local, u);
                        engine.set_j_particle(u.idx, &j_from(&local, u.idx));
                    }
                }
                stats.record_block(block_len, t_next - t);
                t = t_next;
            }
            (local, stats, ep.clock(), ep.bytes_sent())
        },
    );
    let clocks = results.iter().map(|r| r.2).collect();
    let bytes_sent = results.iter().map(|r| r.3).collect();
    let first = results.into_iter().next().unwrap();
    CopyRunResult {
        set: first.0,
        stats: first.1,
        clocks,
        bytes_sent,
    }
}

fn apply_update(set: &mut ParticleSet, u: &ParticleUpdate) {
    set.pos[u.idx] = u.pos;
    set.vel[u.idx] = u.vel;
    set.acc[u.idx] = u.acc;
    set.jerk[u.idx] = u.jerk;
    set.snap[u.idx] = u.snap;
    set.crackle[u.idx] = u.crackle;
    set.pot[u.idx] = u.pot;
    set.t[u.idx] = u.t;
    set.dt[u.idx] = u.dt;
}

fn j_from(set: &ParticleSet, i: usize) -> JParticle {
    JParticle {
        mass: set.mass[i],
        t0: set.t[i],
        pos: set.pos[i],
        vel: set.vel[i],
        acc: set.acc[i],
        jerk: set.jerk[i],
        snap: set.snap[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::diagnostics::energy;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::softening::Softening;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plummer(n: usize) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(31))
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let n = 40;
        let set = plummer(n);
        let cfg = CopyConfig::default();
        // Serial reference.
        let mut serial = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.integ);
        serial.run_until(0.25);
        let want = serial.particles().clone();
        // 3-rank copy-algorithm run to the same time.
        let got = run_copy_parallel(&set, 3, 0.25, &cfg);
        assert_eq!(got.set.pos, want.pos, "positions must be bit-identical");
        assert_eq!(got.set.vel, want.vel);
        assert_eq!(got.set.dt, want.dt);
        assert_eq!(got.stats.particle_steps, serial.stats().particle_steps);
        assert_eq!(got.stats.blocksteps, serial.stats().blocksteps);
    }

    #[test]
    fn energy_conserved_in_parallel() {
        let n = 48;
        let set = plummer(n);
        let eps2 = Softening::Constant.epsilon2(n);
        let e0 = energy(&set, eps2);
        let out = run_copy_parallel(&set, 4, 0.25, &CopyConfig::default());
        // Particles sit at slightly different times; energy drift is still
        // bounded by the scheme's accuracy at this scale.
        let e1 = energy(&out.set, eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        assert!(err < 5e-4, "energy error {err:e}");
    }

    #[test]
    fn communication_bytes_scale_with_updates() {
        let n = 32;
        let set = plummer(n);
        let out = run_copy_parallel(&set, 2, 0.125, &CopyConfig::default());
        let total: u64 = out.bytes_sent.iter().sum();
        // Ring allgather over 2 ranks: each update crosses the wire once
        // per peer; total wire volume ≈ steps × UPDATE_BYTES × (p−1) + the
        // empty-batch sentinels.
        let lower = out.stats.particle_steps * UPDATE_BYTES as u64;
        assert!(
            total >= lower / 2,
            "wire volume {total} vs expected ≥ {}",
            lower / 2
        );
    }

    #[test]
    fn sync_dominates_for_small_systems_on_slow_links() {
        // The fig. 17/18 mechanism: per-blockstep latency ~ constant, so a
        // slow link multiplies the runtime of a small system.
        let n = 24;
        let set = plummer(n);
        let fast_cfg = CopyConfig {
            link: LinkProfile::ideal(),
            ..CopyConfig::default()
        };
        let slow_cfg = CopyConfig {
            link: LinkProfile {
                latency: 1.0e-3,
                bandwidth: 60.0e6,
                overhead: 2.0e-5,
            },
            ..CopyConfig::default()
        };
        let fast = run_copy_parallel(&set, 4, 0.125, &fast_cfg);
        let slow = run_copy_parallel(&set, 4, 0.125, &slow_cfg);
        let fast_t = fast.clocks.iter().cloned().fold(0.0, f64::max);
        let slow_t = slow.clocks.iter().cloned().fold(0.0, f64::max);
        // Identical physics…
        assert_eq!(fast.set.pos, slow.set.pos);
        // …very different virtual time.
        assert!(
            slow_t > fast_t + fast.stats.blocksteps as f64 * 1.0e-3,
            "slow {slow_t} vs fast {fast_t} over {} blocks",
            fast.stats.blocksteps
        );
    }
}
