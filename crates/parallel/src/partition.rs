//! Index partitioning shared by the parallel algorithms.

use std::ops::Range;

/// Split `0..n` into `p` contiguous chunks whose sizes differ by at most 1
/// (the first `n % p` chunks get the extra element).
pub fn chunk_ranges(n: usize, p: usize) -> Vec<Range<usize>> {
    assert!(p >= 1);
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for r in 0..p {
        let len = base + usize::from(r < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Which chunk of [`chunk_ranges`] owns index `i`.
pub fn owner_of(n: usize, p: usize, i: usize) -> usize {
    debug_assert!(i < n);
    let base = n / p;
    let extra = n % p;
    let fat = (base + 1) * extra; // indices covered by the fat chunks
    if i < fat {
        i / (base + 1)
    } else {
        extra + (i - fat) / base.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 7, 16, 100, 101, 103] {
            for p in [1usize, 2, 3, 4, 7, 16] {
                let rs = chunk_ranges(n, p);
                assert_eq!(rs.len(), p);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, n);
                // Balanced to within one element.
                let lens: Vec<usize> = rs.iter().map(|r| r.len()).collect();
                let min = lens.iter().min().unwrap();
                let max = lens.iter().max().unwrap();
                assert!(max - min <= 1, "n={n} p={p}: {lens:?}");
            }
        }
    }

    #[test]
    fn owner_matches_ranges() {
        for n in [1usize, 5, 17, 64, 101] {
            for p in [1usize, 2, 3, 5, 8] {
                let rs = chunk_ranges(n, p);
                for i in 0..n {
                    let o = owner_of(n, p, i);
                    assert!(rs[o].contains(&i), "n={n} p={p} i={i} owner={o}");
                }
            }
        }
    }
}
