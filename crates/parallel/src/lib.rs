//! # grape6-parallel — the paper's parallel N-body algorithms
//!
//! §3.2 of the paper analyses three ways to distribute an O(N²) direct-
//! summation code over a cluster, and the GRAPE-6 system design is the
//! conclusion of that analysis.  All three are implemented here over the
//! virtual-time fabric of `grape6-net`, with the same force semantics as
//! the serial code so correctness is checked by direct comparison:
//!
//! * [`copy_algo`] — the **copy** algorithm: every rank holds the complete
//!   system, integrates its own subset, and all ranks exchange the updated
//!   particles after each blockstep.  "This algorithm has been used to
//!   implement the individual timestep algorithm on distributed-memory
//!   parallel computers"; it is also exactly how GRAPE-6 parallelises
//!   *across clusters* (§4.3).  Implemented as a full parallel Hermite
//!   integrator whose trajectories are **bit-identical** to the serial
//!   driver.
//! * [`ring_algo`] — the **ring** algorithm: non-overlapping subsets; the
//!   i-particles circulate around a ring so every rank computes the force
//!   of its resident subset on every passing block.
//! * [`grid2d`] — the **2-D hybrid** algorithm of Makino (2002): ranks form
//!   an r×r grid, rank (i,j) computes forces on subset i from subset j,
//!   partial forces are reduced along columns, and updates are broadcast
//!   along rows and columns.  "The amount of communication for one node is
//!   O(N/r)… the communication speed is improved by a factor proportional
//!   to the square root of the number of processors."
//!
//! * [`partition`] — the index arithmetic shared by all three.
//! * [`failover_algo`] — the copy algorithm hardened against host death:
//!   heartbeat monitoring, survivor-group re-formation, and blockstep
//!   re-partitioning, with the continuation bitwise identical to a
//!   fault-free run (the full-replica property makes redistribution pure
//!   index arithmetic).

pub mod copy_algo;
pub mod failover_algo;
pub mod grid2d;
pub mod partition;
pub mod ring_algo;

pub use copy_algo::{
    run_copy_parallel, run_copy_parallel_segment, CopyConfig, CopyRunResult, CopySegment,
};
pub use failover_algo::{run_failover_parallel, FailoverConfig, FailoverRunResult, RankDeath};
pub use grid2d::grid2d_forces;
pub use partition::chunk_ranges;
pub use ring_algo::ring_forces;
