//! The 2-D hybrid algorithm (Makino 2002; §3.2 of the paper).
//!
//! Ranks form an r×r grid; subset `i` of the particles is replicated along
//! grid row `i` (as targets) and subset `j` along grid column `j` (as
//! sources).  Rank (i,j) computes the forces of subset `j` on subset `i`;
//! the partial forces are summed along each row onto the diagonal rank
//! (i,i), which then owns the total force on subset `i`.  Per-rank
//! communication is O(N/r) — "the communication speed is improved by a
//! factor proportional to the square root of the number of processors",
//! the key property that made the 16-board cluster topology of fig. 2
//! work.
//!
//! GRAPE-6 implements the same dataflow in *hardware* (fig. 12: boards in
//! the same row store the same particles, columns receive the same
//! i-particles, the network boards reduce); this module is the host-grid
//! software variant, used both as an algorithm reference and to validate
//! the communication model.

use grape6_net::collectives::allgather;
use grape6_net::fabric::run_ranks;
use grape6_net::link::LinkProfile;
use nbody_core::force::{pair_force, ForceResult};
use nbody_core::Vec3;

use crate::partition::chunk_ranges;

/// Wire payload: a vector of partial forces for one subset.
type Partial = Vec<ForceResult>;

/// Compute the full force vector with the r×r grid algorithm.
///
/// Returns the assembled forces (as seen by the diagonal ranks) and the
/// per-rank virtual clocks, rank-major by `(i, j) = (rank / r, rank % r)`.
pub fn grid2d_forces(
    mass: &[f64],
    pos: &[Vec3],
    vel: &[Vec3],
    eps2: f64,
    r: usize,
    link: LinkProfile,
    t_pair: f64,
) -> (Vec<ForceResult>, Vec<f64>) {
    assert!(r >= 1);
    let n = mass.len();
    let p = r * r;
    let ranges = chunk_ranges(n, r);
    let results = run_ranks::<Partial, (Option<Vec<ForceResult>>, f64), _>(p, link, |mut ep| {
        let rank = ep.rank();
        let (gi, gj) = (rank / r, rank % r);
        let targets = ranges[gi].clone();
        let sources = ranges[gj].clone();
        // Local O((N/r)²) partial computation.
        let mut partial: Partial = vec![ForceResult::default(); targets.len()];
        let mut interactions = 0u64;
        for (k, ti) in targets.clone().enumerate() {
            let out = &mut partial[k];
            for sj in sources.clone() {
                if sj == ti {
                    continue;
                }
                let (a, jr, p_) = pair_force(pos[sj] - pos[ti], vel[sj] - vel[ti], mass[sj], eps2);
                out.acc += a;
                out.jerk += jr;
                out.pot += p_;
                interactions += 1;
            }
        }
        ep.advance(interactions as f64 * t_pair);
        // Row reduction onto the diagonal rank (gi, gi).
        let diag = gi * r + gi;
        let bytes = partial.len() * 56;
        let mine = if rank != diag {
            ep.send(diag, partial, bytes);
            Vec::new() // non-diagonals contribute empty payloads below
        } else {
            let mut total = partial;
            for j in 0..r {
                if j == gi {
                    continue;
                }
                let from = gi * r + j;
                let incoming = ep.recv_checked(from).expect("lossless fabric");
                for (t, inc) in total.iter_mut().zip(&incoming) {
                    t.acc += inc.acc;
                    t.jerk += inc.jerk;
                    t.pot += inc.pot;
                }
            }
            total
        };
        // Everyone participates in the assembly allgather (only diagonal
        // payloads carry data).
        let gathered = allgather(
            &mut ep,
            mine.clone(),
            if mine.is_empty() { 8 } else { bytes },
        )
        .expect("lossless fabric");
        if rank != diag {
            return (None, ep.clock());
        }
        let mut out = vec![ForceResult::default(); n];
        for (src_rank, part) in gathered.iter().enumerate() {
            let (si, sj) = (src_rank / r, src_rank % r);
            if si != sj {
                continue;
            }
            for (k, v) in part.iter().enumerate() {
                out[ranges[si].start + k] = *v;
            }
        }
        (Some(out), ep.clock())
    });
    let clocks: Vec<f64> = results.iter().map(|(_, c)| *c).collect();
    let forces = results
        .into_iter()
        .find_map(|(f, _)| f)
        .expect("diagonal rank 0 assembles the force vector");
    (forces, clocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::direct_all;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system(n: usize) -> (Vec<f64>, Vec<Vec3>, Vec<Vec3>) {
        let s = plummer_model(n, &mut StdRng::seed_from_u64(4242));
        (s.mass, s.pos, s.vel)
    }

    #[test]
    fn matches_direct_summation() {
        let (mass, pos, vel) = system(53);
        let eps2 = 2e-4;
        let want = direct_all(&mass, &pos, &vel, eps2);
        for r in [1usize, 2, 3, 4] {
            let (got, clocks) =
                grid2d_forces(&mass, &pos, &vel, eps2, r, LinkProfile::ideal(), 1e-9);
            assert_eq!(clocks.len(), r * r);
            for i in 0..53 {
                let d = (got[i].acc - want[i].acc).norm();
                assert!(d < 1e-11, "r={r} i={i}: Δacc {d:e}");
                assert!((got[i].pot - want[i].pot).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn compute_scales_with_r_squared() {
        let (mass, pos, vel) = system(96);
        let t_pair = 1e-6;
        let slowest = |r: usize| -> f64 {
            let (_, clocks) =
                grid2d_forces(&mass, &pos, &vel, 0.0, r, LinkProfile::ideal(), t_pair);
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        let t1 = slowest(1);
        let t2 = slowest(2);
        let t4 = slowest(4);
        // Compute work per rank drops as 1/r²; the reduction/gather costs
        // are free on an ideal link.
        assert!(t1 / t2 > 3.0, "r=2 speedup {}", t1 / t2);
        assert!(t1 / t4 > 10.0, "r=4 speedup {}", t1 / t4);
    }

    #[test]
    fn per_rank_communication_is_o_n_over_r() {
        // With a pure-bandwidth link, doubling r roughly halves the wire
        // time of the reduction step on the critical path per rank pair.
        let (mass, pos, vel) = system(128);
        let link = LinkProfile {
            latency: 0.0,
            bandwidth: 1.0e6,
            overhead: 0.0,
        };
        let comm_time = |r: usize| -> f64 {
            // Disable compute cost to isolate communication.
            let (_, clocks) = grid2d_forces(&mass, &pos, &vel, 0.0, r, link, 0.0);
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        let c2 = comm_time(2);
        let c4 = comm_time(4);
        // O(N/r) per-rank payloads: the r=4 grid must not pay more than
        // the r=2 grid despite having 4× the ranks.
        assert!(
            c4 < c2 * 1.5,
            "grid comm should not blow up with r: c2={c2} c4={c4}"
        );
    }
}
