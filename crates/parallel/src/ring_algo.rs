//! The ring ("systolic") algorithm (§3.2).
//!
//! Non-overlapping subsets: "let each processor have a non-overlapping
//! subset of the system, so that one particle resides only in one
//! processor … we need to pass around the particles in the current
//! blockstep, so that each processor can calculate the forces from its own
//! particles to particles on other processors."  (Dorband, Hemsendorf &
//! Merritt 2003 is the paper's systolic reference.)
//!
//! Here the full force round is implemented: every rank's subset acts as
//! the travelling i-block; in round k each rank computes the force of its
//! resident j-subset on the block currently visiting, then forwards the
//! block (with its partial sums) to the right neighbour.  After p rounds
//! every block has visited every rank; a final all-gather assembles the
//! global force vector.

use grape6_net::collectives::allgather;
use grape6_net::fabric::{run_ranks, Endpoint};
use grape6_net::link::LinkProfile;
use nbody_core::force::{pair_force, ForceResult};
use nbody_core::Vec3;

use crate::partition::chunk_ranges;

/// A travelling i-block: global indices, phase-space data, partial forces.
#[derive(Clone, Default)]
pub struct TravellingBlock {
    idx: Vec<usize>,
    pos: Vec<Vec3>,
    vel: Vec<Vec3>,
    forces: Vec<ForceResult>,
}

impl TravellingBlock {
    fn wire_bytes(&self) -> usize {
        // idx 8 + pos 24 + vel 24 + force 56 per particle.
        self.idx.len() * 112
    }
}

/// Compute acceleration/jerk/potential on every particle with the ring
/// algorithm over `p` ranks; returns the force vector (identical content on
/// every rank; rank 0's copy is returned) and the per-rank virtual clocks.
///
/// `t_pair` is the virtual cost of one pairwise interaction on a rank.
pub fn ring_forces(
    mass: &[f64],
    pos: &[Vec3],
    vel: &[Vec3],
    eps2: f64,
    p: usize,
    link: LinkProfile,
    t_pair: f64,
) -> (Vec<ForceResult>, Vec<f64>) {
    let n = mass.len();
    let ranges = chunk_ranges(n, p);
    let results = run_ranks::<TravellingBlock, (Vec<ForceResult>, f64), _>(p, link, |mut ep| {
        let r = ep.rank();
        let mine = ranges[r].clone();
        // Start with my own subset as the travelling block.
        let mut block = TravellingBlock {
            idx: mine.clone().collect(),
            pos: mine.clone().map(|i| pos[i]).collect(),
            vel: mine.clone().map(|i| vel[i]).collect(),
            forces: vec![ForceResult::default(); mine.len()],
        };
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        for round in 0..p {
            accumulate(&mut block, &mine, mass, pos, vel, eps2, &mut ep, t_pair);
            // Forward — the last round's shift returns each block home.
            if p > 1 {
                let bytes = block.wire_bytes();
                ep.send(right, block, bytes);
                block = ep.recv_checked(left).expect("lossless fabric");
            }
            let _ = round;
        }
        // Blocks are home: assemble the global vector.
        let gathered = allgather(&mut ep, block, 112 * (n / p + 1)).expect("lossless fabric");
        let mut out = vec![ForceResult::default(); n];
        for b in &gathered {
            for (k, &gi) in b.idx.iter().enumerate() {
                out[gi] = b.forces[k];
            }
        }
        (out, ep.clock())
    });
    let clocks = results.iter().map(|(_, c)| *c).collect();
    (results.into_iter().next().unwrap().0, clocks)
}

/// One systolic compute step: my j-subset acting on the visiting block.
#[allow(clippy::too_many_arguments)]
fn accumulate(
    block: &mut TravellingBlock,
    mine: &std::ops::Range<usize>,
    mass: &[f64],
    pos: &[Vec3],
    vel: &[Vec3],
    eps2: f64,
    ep: &mut Endpoint<TravellingBlock>,
    t_pair: f64,
) {
    let mut interactions = 0u64;
    for (k, &gi) in block.idx.iter().enumerate() {
        let (bp, bv) = (block.pos[k], block.vel[k]);
        let f = &mut block.forces[k];
        for j in mine.clone() {
            if j == gi {
                continue; // the self-pair is skipped, as in the serial code
            }
            let (a, jr, p_) = pair_force(pos[j] - bp, vel[j] - bv, mass[j], eps2);
            f.acc += a;
            f.jerk += jr;
            f.pot += p_;
            interactions += 1;
        }
    }
    ep.advance(interactions as f64 * t_pair);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::force::direct_all;
    use nbody_core::ic::plummer::plummer_model;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system(n: usize) -> (Vec<f64>, Vec<Vec3>, Vec<Vec3>) {
        let s = plummer_model(n, &mut StdRng::seed_from_u64(99));
        (s.mass, s.pos, s.vel)
    }

    #[test]
    fn matches_direct_summation_for_various_p() {
        let (mass, pos, vel) = system(61); // deliberately not divisible
        let eps2 = 1e-4;
        let want = direct_all(&mass, &pos, &vel, eps2);
        for p in [1usize, 2, 3, 4, 7] {
            let (got, clocks) = ring_forces(&mass, &pos, &vel, eps2, p, LinkProfile::ideal(), 1e-9);
            assert_eq!(clocks.len(), p);
            for i in 0..61 {
                let d = (got[i].acc - want[i].acc).norm();
                assert!(d < 1e-11, "p={p} i={i}: Δacc {d:e}");
                assert!((got[i].pot - want[i].pot).abs() < 1e-11);
                assert!((got[i].jerk - want[i].jerk).norm() < 1e-11);
            }
        }
    }

    #[test]
    fn compute_time_splits_across_ranks() {
        let (mass, pos, vel) = system(64);
        let t_pair = 1e-6;
        let (_, c1) = ring_forces(&mass, &pos, &vel, 0.0, 1, LinkProfile::ideal(), t_pair);
        let (_, c4) = ring_forces(&mass, &pos, &vel, 0.0, 4, LinkProfile::ideal(), t_pair);
        let t1 = c1[0];
        let t4 = c4.iter().cloned().fold(0.0, f64::max);
        // Ideal link: 4 ranks ≈ 4× faster on the O(N²) work.
        let speedup = t1 / t4;
        assert!(speedup > 3.5 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn slow_link_shows_communication_cost() {
        let (mass, pos, vel) = system(64);
        let slow = LinkProfile {
            latency: 1e-3,
            bandwidth: 1e6,
            overhead: 0.0,
        };
        let (_, cf) = ring_forces(&mass, &pos, &vel, 0.0, 4, LinkProfile::ideal(), 1e-9);
        let (_, cs) = ring_forces(&mass, &pos, &vel, 0.0, 4, slow, 1e-9);
        let fast = cf.iter().cloned().fold(0.0, f64::max);
        let slow_t = cs.iter().cloned().fold(0.0, f64::max);
        assert!(
            slow_t > fast + 3.0e-3,
            "slow link must pay ring latency: {slow_t} vs {fast}"
        );
    }
}
