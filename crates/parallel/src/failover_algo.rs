//! The copy algorithm with rank failover.
//!
//! [`run_failover_parallel`] is [`crate::copy_algo::run_copy_parallel`]
//! hardened against host death.  Each blockstep opens with a heartbeat
//! round through a [`RankMonitor`]; a rank scheduled to die simply stops
//! participating (its thread exits and drops its endpoint), the survivors
//! detect the silence after the missed-heartbeat timeout, re-form the
//! collective topology as a (possibly non-power-of-two) [`Group`], and
//! re-partition the block over the survivor set.
//!
//! Why the continuation is **bitwise identical** to a fault-free run:
//! the copy algorithm keeps a full replica of the system on every rank,
//! so failover moves *work*, never *data* — the dead rank's share of the
//! block is recomputed by its new owners from the same replicated state,
//! with the same per-particle arithmetic (full j-range sums in index
//! order).  This is the distributed analogue of the §3.4 block-FP
//! order-independence oracle: which processor sums the forces is
//! invisible in the bits.  What failover *does* cost is virtual time —
//! the detection timeout and the survivors' larger shares — which lands
//! in the per-rank clocks and in
//! [`RunStats::recovery`](grape6_core::stats::RunStats) on every
//! survivor.

use grape6_core::integrator::HermiteIntegrator;
use grape6_core::stats::RunStats;
use grape6_net::fabric::run_ranks;
use grape6_net::failover::{group_allgather, group_barrier, HeartbeatConfig, RankMonitor};
use nbody_core::force::{DirectEngine, ForceEngine, ForceResult, IParticle, JParticle};
use nbody_core::hermite::{aarseth_dt, correct, predict, HermiteState};
use nbody_core::particle::ParticleSet;
use nbody_core::Vec3;

use crate::copy_algo::{CopyConfig, ParticleUpdate, UPDATE_BYTES};
use crate::partition::owner_of;

/// One rank's scheduled demise.
#[derive(Clone, Copy, Debug)]
pub struct RankDeath {
    /// The rank that dies.
    pub rank: usize,
    /// The blockstep at whose start it exits (before sending that step's
    /// heartbeat).
    pub at_blockstep: u64,
}

/// Wire messages of the failover algorithm: heartbeats interleaved with
/// the per-blockstep update exchange on the same per-peer FIFO channels.
#[derive(Clone, Debug)]
pub enum FailoverMsg {
    /// A liveness beat carrying the monitor epoch.
    Heartbeat(u64),
    /// One rank's updated particles for the current blockstep.
    Updates(Vec<ParticleUpdate>),
}

impl Default for FailoverMsg {
    fn default() -> Self {
        Self::Heartbeat(0)
    }
}

/// Configuration of a failover run.
#[derive(Clone, Debug, Default)]
pub struct FailoverConfig {
    /// The underlying copy-algorithm parameters.
    pub copy: CopyConfig,
    /// Missed-heartbeat policy.
    pub heartbeat: HeartbeatConfig,
    /// Scheduled rank deaths (empty = a plain, fault-free run).
    pub deaths: Vec<RankDeath>,
}

/// Outcome of a failover run.
pub struct FailoverRunResult {
    /// Final particle state (identical on every survivor; the lowest
    /// surviving rank's copy).
    pub set: ParticleSet,
    /// Blockstep statistics, including the recovery account (lowest
    /// surviving rank's copy).
    pub stats: RunStats,
    /// Per-rank virtual clocks; `None` for ranks that died.
    pub clocks: Vec<Option<f64>>,
    /// Ranks alive at the end, ascending.
    pub survivors: Vec<usize>,
    /// Deaths as observed by the lowest surviving rank:
    /// `(dead rank, blockstep at which it was declared)`.
    pub deaths_detected: Vec<(usize, u64)>,
}

/// Integrate `set` to `t_end` on `p` ranks, surviving the scheduled
/// deaths.  At least one rank must outlive the run.
pub fn run_failover_parallel(
    set: &ParticleSet,
    p: usize,
    t_end: f64,
    cfg: &FailoverConfig,
) -> FailoverRunResult {
    let n = set.n();
    let dying: Vec<usize> = cfg.deaths.iter().map(|d| d.rank).collect();
    assert!(
        (0..p).any(|r| !dying.contains(&r)),
        "every rank is scheduled to die"
    );
    type RankOut = Option<(ParticleSet, RunStats, f64, Vec<(usize, u64)>)>;
    let results = run_ranks::<FailoverMsg, RankOut, _>(p, cfg.copy.link, |mut ep| {
        let rank = ep.rank();
        let my_death = cfg
            .deaths
            .iter()
            .filter(|d| d.rank == rank)
            .map(|d| d.at_blockstep)
            .min();
        // Full replica + engine, initialised identically on every rank.
        let it = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.copy.integ);
        let mut stats = RunStats::new();
        let mut local = it.particles().clone();
        let eps = it.epsilon();
        let eps2 = eps * eps;
        let mut engine = DirectEngine::new(n);
        for i in 0..n {
            engine.set_j_particle(i, &j_from(&local, i));
        }
        let mut mon = RankMonitor::new(rank, p, cfg.heartbeat);
        let mut group = mon.group();
        let mut deaths_detected: Vec<(usize, u64)> = Vec::new();
        let mut t = 0.0f64;
        let mut blockstep = 0u64;
        while t < t_end {
            if my_death == Some(blockstep) {
                // Die silently: drop the endpoint without a word — the
                // survivors must *detect* this, not be told.
                return None;
            }
            // Heartbeat round; deaths re-form the topology before any
            // work of this blockstep is partitioned.
            let newly_dead = mon.exchange(&mut ep, FailoverMsg::Heartbeat, |m| match m {
                FailoverMsg::Heartbeat(e) => Some(e),
                FailoverMsg::Updates(_) => None,
            });
            if !newly_dead.is_empty() {
                for &d in &newly_dead {
                    deaths_detected.push((d, blockstep));
                }
                group = mon.group();
                // The detection timeout is recovery cost, visible in the
                // same account the supervisor uses.
                stats.recovery.recovery_seconds += cfg.heartbeat.period
                    * cfg.heartbeat.miss_budget as f64
                    * newly_dead.len() as f64;
                stats.recovery.redistributions += newly_dead.len() as u64;
            }
            let m = group.len();
            let my_vrank = group.vrank(rank).expect("a live rank is in its own group");
            let t_next = local.min_next_time();
            engine.set_time(t_next);
            // My share of the block: partition over the *survivor* set.
            let mut updates: Vec<ParticleUpdate> = Vec::new();
            let mut my_interactions = 0u64;
            let mut block_len = 0usize;
            for i in 0..n {
                if local.t[i] + local.dt[i] != t_next {
                    continue;
                }
                block_len += 1;
                if owner_of(n, m, i) != my_vrank {
                    continue;
                }
                let dt = t_next - local.t[i];
                let s = HermiteState {
                    pos: local.pos[i],
                    vel: local.vel[i],
                    acc: local.acc[i],
                    jerk: local.jerk[i],
                };
                let (pp, pv) = predict(&s, Vec3::ZERO, dt);
                let ip = [IParticle {
                    pos: pp,
                    vel: pv,
                    eps2,
                }];
                let mut f = [ForceResult::default()];
                engine.compute(&ip, &mut f);
                my_interactions += n as u64;
                let mut f1 = f[0];
                if eps > 0.0 {
                    f1.pot += local.mass[i] / eps;
                }
                let c = correct(&s, pp, pv, &f1, dt);
                let want = aarseth_dt(f1.acc, f1.jerk, c.snap, c.crackle, cfg.copy.integ.eta);
                let dt_new = cfg.copy.integ.grid.next_step(t_next, dt, want);
                updates.push(ParticleUpdate {
                    idx: i,
                    pos: c.pos,
                    vel: c.vel,
                    acc: f1.acc,
                    jerk: f1.jerk,
                    snap: c.snap,
                    crackle: c.crackle,
                    pot: f1.pot,
                    t: t_next,
                    dt: dt_new,
                });
            }
            ep.advance(
                my_interactions as f64 * cfg.copy.t_pair
                    + updates.len() as f64 * cfg.copy.t_host_step,
            );
            // Exchange over the survivor group only.
            let bytes = (updates.len() * UPDATE_BYTES).max(8);
            let all = group_allgather(&mut ep, &group, FailoverMsg::Updates(updates), bytes)
                .expect("lossless fabric");
            for batch in &all {
                let FailoverMsg::Updates(us) = batch else {
                    panic!("protocol violation: heartbeat where updates were due");
                };
                for u in us {
                    apply_update(&mut local, u);
                    engine.set_j_particle(u.idx, &j_from(&local, u.idx));
                }
            }
            stats.record_block(block_len, t_next - t);
            t = t_next;
            blockstep += 1;
        }
        // Final alignment so the reported clocks are comparable.
        group_barrier(&mut ep, &group).expect("lossless fabric");
        Some((local, stats, ep.clock(), deaths_detected))
    });
    let clocks: Vec<Option<f64>> = results.iter().map(|r| r.as_ref().map(|x| x.2)).collect();
    let survivors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(r, x)| x.is_some().then_some(r))
        .collect();
    let first = results
        .into_iter()
        .flatten()
        .next()
        .expect("at least one rank survives");
    FailoverRunResult {
        set: first.0,
        stats: first.1,
        clocks,
        survivors,
        deaths_detected: first.3,
    }
}

fn apply_update(set: &mut ParticleSet, u: &ParticleUpdate) {
    set.pos[u.idx] = u.pos;
    set.vel[u.idx] = u.vel;
    set.acc[u.idx] = u.acc;
    set.jerk[u.idx] = u.jerk;
    set.snap[u.idx] = u.snap;
    set.crackle[u.idx] = u.crackle;
    set.pot[u.idx] = u.pot;
    set.t[u.idx] = u.t;
    set.dt[u.idx] = u.dt;
}

fn j_from(set: &ParticleSet, i: usize) -> JParticle {
    JParticle {
        mass: set.mass[i],
        t0: set.t[i],
        pos: set.pos[i],
        vel: set.vel[i],
        acc: set.acc[i],
        jerk: set.jerk[i],
        snap: set.snap[i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grape6_net::link::LinkProfile;
    use nbody_core::diagnostics::energy;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::softening::Softening;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plummer(n: usize) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(77))
    }

    #[test]
    fn fault_free_failover_run_matches_plain_copy_algorithm() {
        let n = 32;
        let set = plummer(n);
        let cfg = FailoverConfig::default();
        let a = run_failover_parallel(&set, 3, 0.125, &cfg);
        let b = crate::copy_algo::run_copy_parallel(&set, 3, 0.125, &cfg.copy);
        assert_eq!(a.set.pos, b.set.pos);
        assert_eq!(a.set.vel, b.set.vel);
        assert_eq!(a.survivors, vec![0, 1, 2]);
        assert!(a.deaths_detected.is_empty());
        assert_eq!(a.stats.recovery.recovery_seconds, 0.0);
    }

    #[test]
    fn killing_one_of_four_ranks_keeps_the_bits_and_charges_recovery() {
        let n = 40;
        let set = plummer(n);
        let mut cfg = FailoverConfig::default();
        cfg.deaths = vec![RankDeath {
            rank: 2,
            at_blockstep: 5,
        }];
        let faulty = run_failover_parallel(&set, 4, 0.25, &cfg);
        // Detection happened, at the scheduled blockstep.
        assert_eq!(faulty.survivors, vec![0, 1, 3]);
        assert_eq!(faulty.deaths_detected, vec![(2, 5)]);
        assert!(faulty.clocks[2].is_none());
        // Recovery cost is visible in RunStats.
        assert!(faulty.stats.recovery.recovery_seconds > 0.0);
        assert_eq!(faulty.stats.recovery.redistributions, 1);
        // The continuation is bitwise identical to a fault-free run…
        let clean = FailoverConfig::default();
        let healthy = run_failover_parallel(&set, 4, 0.25, &clean);
        assert_eq!(
            faulty.set.pos, healthy.set.pos,
            "positions must match bitwise"
        );
        assert_eq!(faulty.set.vel, healthy.set.vel);
        assert_eq!(faulty.set.acc, healthy.set.acc);
        assert_eq!(faulty.set.dt, healthy.set.dt);
        assert_eq!(faulty.stats.particle_steps, healthy.stats.particle_steps);
        // …and to the serial driver.
        let mut serial = HermiteIntegrator::new(DirectEngine::new(n), set.clone(), cfg.copy.integ);
        serial.run_until(0.25);
        assert_eq!(faulty.set.pos, serial.particles().pos);
    }

    #[test]
    fn survivors_pay_for_the_dead_ranks_share_in_virtual_time() {
        let n = 36;
        let set = plummer(n);
        let mut cfg = FailoverConfig::default();
        // An ideal link isolates the compute share: on a real link the
        // *smaller* survivor ring can actually win back its extra work in
        // saved latency rounds (the fig. 17 sync-dominance effect).
        cfg.copy.link = LinkProfile::ideal();
        cfg.deaths = vec![RankDeath {
            rank: 1,
            at_blockstep: 2,
        }];
        let faulty = run_failover_parallel(&set, 3, 0.25, &cfg);
        let healthy_cfg = FailoverConfig {
            copy: cfg.copy,
            ..FailoverConfig::default()
        };
        let healthy = run_failover_parallel(&set, 3, 0.25, &healthy_cfg);
        let slow =
            |r: &FailoverRunResult| r.clocks.iter().flatten().cloned().fold(0.0f64, f64::max);
        assert!(
            slow(&faulty) > slow(&healthy),
            "two survivors doing three ranks' work must take longer ({} vs {})",
            slow(&faulty),
            slow(&healthy)
        );
    }

    #[test]
    fn losing_two_ranks_still_conserves_energy() {
        let n = 32;
        let set = plummer(n);
        let eps2 = Softening::Constant.epsilon2(n);
        let e0 = energy(&set, eps2);
        let mut cfg = FailoverConfig::default();
        cfg.deaths = vec![
            RankDeath {
                rank: 0,
                at_blockstep: 3,
            },
            RankDeath {
                rank: 3,
                at_blockstep: 8,
            },
        ];
        let out = run_failover_parallel(&set, 4, 0.25, &cfg);
        assert_eq!(out.survivors, vec![1, 2]);
        let e1 = energy(&out.set, eps2);
        let err = ((e1.total() - e0.total()) / e0.total()).abs();
        assert!(err < 5e-4, "energy error {err:e}");
    }
}
