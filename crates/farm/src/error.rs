//! Typed errors for the farm's admission and scheduling layers.
//!
//! Every rejection a tenant can see is a value, not a panic: a client
//! library can match on [`FarmError::Saturated`] and retry after the
//! suggested backoff, or on [`FarmError::QueueFull`] and stop producing.

use crate::session::{SessionId, TenantId};

/// An explicit-unit backpressure hint: when to retry a rejected
/// submission.
///
/// The farm schedules in *blocksteps* (virtual-time work quanta), so the
/// in-process admission path emits [`RetryAfter::Blocksteps`] — a
/// deterministic, load-derived count of scheduler progress that has to
/// happen before a slot frees up.  Only something that observes real
/// time can turn that into a wall-clock promise: the wire server
/// measures its own blockstep rate and converts the hint to
/// [`RetryAfter::Millis`] before it crosses the network, so a remote
/// client can sleep honestly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryAfter {
    /// Farm-wide scheduler progress (blocksteps) expected before a
    /// session slot frees up.  Unitless in wall-clock terms.
    Blocksteps(u64),
    /// Wall-clock milliseconds, converted by a server that measures its
    /// real blockstep rate.
    Millis(u64),
}

impl RetryAfter {
    /// The hint is nonzero (every saturation rejection must carry one).
    pub fn is_positive(&self) -> bool {
        match self {
            Self::Blocksteps(b) => *b > 0,
            Self::Millis(ms) => *ms > 0,
        }
    }

    /// The blockstep count, if that is the unit.
    pub fn blocksteps(&self) -> Option<u64> {
        match self {
            Self::Blocksteps(b) => Some(*b),
            Self::Millis(_) => None,
        }
    }

    /// The millisecond count, if that is the unit.
    pub fn millis(&self) -> Option<u64> {
        match self {
            Self::Millis(ms) => Some(*ms),
            Self::Blocksteps(_) => None,
        }
    }
}

impl std::fmt::Display for RetryAfter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Blocksteps(b) => write!(f, "{b} blocksteps"),
            Self::Millis(ms) => write!(f, "{ms} ms"),
        }
    }
}

/// Why the farm refused a submission or aborted a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FarmError {
    /// The farm is at its multiprogramming ceiling.  `retry_after` is a
    /// deterministic, load-derived hint with an explicit unit — see
    /// [`RetryAfter`] for who emits which.
    Saturated {
        /// Suggested backoff before resubmitting.
        retry_after: RetryAfter,
    },
    /// The tenant's bounded submission queue is full (backpressure).
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: TenantId,
        /// The per-tenant depth that was hit (the tenant's own
        /// `queue_cap` if set, the farm default otherwise).
        depth: usize,
    },
    /// The job needs more j-memory slots than one board provides; no
    /// amount of waiting will make it schedulable.
    JobTooLarge {
        /// Particles requested.
        n: usize,
        /// Slots a single (healthy) board offers.
        capacity: usize,
    },
    /// The job is malformed (too few particles, non-finite or
    /// out-of-box coordinates).  Produced by [`Job::builder`] at
    /// construction, so a [`Job`] value that exists is always valid.
    ///
    /// [`Job::builder`]: crate::Job::builder
    /// [`Job`]: crate::Job
    InvalidJob {
        /// Human-readable description of the failed check.
        reason: String,
    },
    /// The tenant id was never registered with [`Farm::register`].
    ///
    /// [`Farm::register`]: crate::Farm::register
    UnknownTenant(TenantId),
    /// The session id does not exist (or its result was already taken).
    UnknownSession(SessionId),
    /// The session exists but has not reached a terminal state yet —
    /// poll again after more scheduling.
    NotReady {
        /// The still-live session.
        session: SessionId,
    },
    /// The session finished, but by failing; there are no result
    /// particles to take.
    JobFailed {
        /// The failed session.
        session: SessionId,
        /// What killed it (deadline, pool exhaustion, cancellation…).
        reason: String,
    },
    /// Every board in the pool has been retired; the remaining live
    /// sessions cannot be placed anywhere.
    PoolExhausted,
    /// The scheduler completed a full round without granting a quantum
    /// while live sessions remain — a deadlock.  This is the typed
    /// signal the CI soak turns into a nonzero exit.
    Stalled {
        /// The scheduler round that made no progress.
        round: u64,
    },
    /// A farm or tenant configuration value is unusable (zero boards,
    /// zero quantum, zero-weight tenant…).  Produced by
    /// [`FarmConfig::builder`] and [`Farm::register`] at construction.
    ///
    /// [`FarmConfig::builder`]: crate::FarmConfig::builder
    /// [`Farm::register`]: crate::Farm::register
    InvalidConfig {
        /// Which parameter is unusable.
        reason: String,
    },
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Saturated { retry_after } => {
                write!(f, "farm saturated; retry after {retry_after}")
            }
            Self::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant} queue full (depth {depth})")
            }
            Self::JobTooLarge { n, capacity } => {
                write!(f, "job of {n} particles exceeds board capacity {capacity}")
            }
            Self::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            Self::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            Self::UnknownSession(s) => write!(f, "unknown session {s}"),
            Self::NotReady { session } => {
                write!(f, "session {session} has not finished yet")
            }
            Self::JobFailed { session, reason } => {
                write!(f, "session {session} failed: {reason}")
            }
            Self::PoolExhausted => write!(f, "every board in the pool is retired"),
            Self::Stalled { round } => {
                write!(f, "scheduler stalled at round {round} with live sessions")
            }
            Self::InvalidConfig { reason } => write!(f, "invalid farm config: {reason}"),
        }
    }
}

impl std::error::Error for FarmError {}
