//! Typed errors for the farm's admission and scheduling layers.
//!
//! Every rejection a tenant can see is a value, not a panic: a client
//! library can match on [`FarmError::Saturated`] and retry after the
//! suggested backoff, or on [`FarmError::QueueFull`] and stop producing.

use crate::session::{SessionId, TenantId};

/// Why the farm refused a submission or aborted a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FarmError {
    /// The farm is at its multiprogramming ceiling.  `retry_after` is a
    /// deterministic, load-derived estimate (virtual seconds) of when a
    /// slot should free up — it grows with the number of sessions ahead
    /// of the rejected one and with the job size.
    Saturated {
        /// Suggested virtual-time backoff before resubmitting.
        retry_after: f64,
    },
    /// The tenant's bounded submission queue is full (backpressure).
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: TenantId,
        /// The configured per-tenant depth that was hit.
        depth: usize,
    },
    /// The job needs more j-memory slots than one board provides; no
    /// amount of waiting will make it schedulable.
    JobTooLarge {
        /// Particles requested.
        n: usize,
        /// Slots a single (healthy) board offers.
        capacity: usize,
    },
    /// The job is malformed (too few particles, non-finite or
    /// out-of-box coordinates).  The reason says which check failed.
    InvalidJob {
        /// Human-readable description of the failed check.
        reason: String,
    },
    /// The tenant id was never registered with [`Farm::add_tenant`].
    ///
    /// [`Farm::add_tenant`]: crate::Farm::add_tenant
    UnknownTenant(TenantId),
    /// The session id does not exist.
    UnknownSession(SessionId),
    /// Every board in the pool has been retired; the remaining live
    /// sessions cannot be placed anywhere.
    PoolExhausted,
    /// The scheduler completed a full round without granting a quantum
    /// while live sessions remain — a deadlock.  This is the typed
    /// signal the CI soak turns into a nonzero exit.
    Stalled {
        /// The scheduler round that made no progress.
        round: u64,
    },
    /// The farm was configured with zero boards or a zero quantum.
    BadConfig {
        /// Which parameter is unusable.
        reason: String,
    },
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Saturated { retry_after } => {
                write!(f, "farm saturated; retry after {retry_after:.3e} virtual s")
            }
            Self::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant} queue full (depth {depth})")
            }
            Self::JobTooLarge { n, capacity } => {
                write!(f, "job of {n} particles exceeds board capacity {capacity}")
            }
            Self::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            Self::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            Self::UnknownSession(s) => write!(f, "unknown session {s}"),
            Self::PoolExhausted => write!(f, "every board in the pool is retired"),
            Self::Stalled { round } => {
                write!(f, "scheduler stalled at round {round} with live sessions")
            }
            Self::BadConfig { reason } => write!(f, "bad farm config: {reason}"),
        }
    }
}

impl std::error::Error for FarmError {}
