//! The networked farm frontend.
//!
//! [`FarmServer`] owns an in-process [`Farm`] and serves it to real
//! client processes over TCP or UDS, reusing the cluster transport's
//! machinery: a non-blocking `ServiceListener`, nonce-stamped address
//! rendezvous, u64-LE framed streams with bounded reads, and torn-frame
//! classification.  The loop interleaves three duties:
//!
//! 1. **accept** new connections and run the `Hello` handshake (protocol
//!    and nonce checked, tenant spec validated — failures are typed
//!    [`DenyReason`]s, never closed sockets);
//! 2. **drain** each connection's requests and answer them against the
//!    farm (`Submit`/`Query`/`Fetch`/`Cancel`/`Beat`/`Bye`);
//! 3. **schedule**: one deficit-WRR [`Farm::round`] whenever live work
//!    exists, measuring the wall cost per blockstep so saturation
//!    denials can cross the wire in honest milliseconds
//!    ([`RetryAfter::Millis`]) instead of scheduler-internal blocksteps.
//!
//! A client that vanishes — EOF, torn frame, or silence past the
//! heartbeat grace — triggers the checkpoint-eviction path: every
//! session it owns is [`Farm::detach`]ed (parked on its bitwise
//! checkpoint, board reclaimed immediately) and the connection dropped.
//! The farm keeps scheduling everyone else; nothing panics and nothing
//! hangs, which `farm_net_soak` exercises with a SIGKILLed client under
//! oversubscription and board faults.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use grape6_net::transport::{
    publish_service_addr, FrameIoError, FramedConn, ServiceListener, StreamConfig, StreamKind,
    TransportError,
};

use crate::error::{FarmError, RetryAfter};
use crate::farm::{Farm, FarmConfig};
use crate::session::{SessionId, TenantId};
use crate::stats::FarmStats;
use crate::wire::{DenyReason, FarmFrame, FARM_PROTO};

/// Why the server could not come up or keep running.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerError {
    /// The farm config was rejected.
    Farm(FarmError),
    /// Bind/publish failed.
    Transport(TransportError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Farm(e) => write!(f, "farm: {e}"),
            Self::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<FarmError> for ServerError {
    fn from(e: FarmError) -> Self {
        Self::Farm(e)
    }
}

impl From<TransportError> for ServerError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

/// Everything the frontend needs besides the farm itself.
#[derive(Clone, Debug)]
pub struct FarmServerConfig {
    /// TCP (loopback, ephemeral port) or UDS (socket under `dir`).
    pub kind: StreamKind,
    /// Rendezvous directory: the address file and any UDS socket live
    /// here.
    pub dir: PathBuf,
    /// Service name; the address is published as `<service>.addr`.
    pub service: String,
    /// Stream budgets + the run nonce clients must echo in `Hello`.
    pub stream: StreamConfig,
    /// Silence longer than this detaches a connection's sessions.
    pub heartbeat_grace: Duration,
    /// Per-connection drain window each poll (bounded read).
    pub drain_window: Duration,
    /// Wall milliseconds per blockstep assumed before the first measured
    /// scheduler round (the EWMA replaces it as rounds run).
    pub fallback_ms_per_blockstep: f64,
}

impl FarmServerConfig {
    /// Defaults: TCP, service `"farm"`, 2 s heartbeat grace, 1 ms drain
    /// window.
    pub fn new(dir: PathBuf) -> Self {
        Self {
            kind: StreamKind::Tcp,
            dir,
            service: "farm".into(),
            stream: StreamConfig::default(),
            heartbeat_grace: Duration::from_secs(2),
            drain_window: Duration::from_millis(1),
            fallback_ms_per_blockstep: 1.0,
        }
    }
}

/// When [`FarmServer::serve`] should stop.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Hard wall-clock bound on the serve loop.
    pub max_wall: Duration,
    /// After at least one client has connected: exit once there are no
    /// connections and no schedulable sessions for this long.
    pub exit_after_idle: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_wall: Duration::from_secs(60),
            exit_after_idle: Some(Duration::from_millis(500)),
        }
    }
}

/// What a serve loop did, for the bins' machine-parsable summary.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Connections accepted.
    pub accepted: u64,
    /// Handshakes completed (tenant registered).
    pub handshakes: u64,
    /// Typed `Deny` frames sent.
    pub denials: u64,
    /// Connections dropped for client death (EOF/torn/grace expiry).
    pub client_deaths: u64,
    /// Torn frames observed (peer died mid-write).
    pub torn_frames: u64,
    /// Requests answered.
    pub requests: u64,
    /// Farm counters at exit.
    pub farm: FarmStats,
}

/// One accepted connection's state.
struct Conn {
    io: FramedConn,
    /// Registered tenant, `None` until `Hello` succeeds.
    tenant: Option<TenantId>,
    /// Sessions submitted on this connection (detached if it dies).
    sessions: BTreeSet<SessionId>,
    last_heard: Instant,
    /// Marked for removal at the end of the poll.
    dead: bool,
}

/// The farm service frontend.  See the module docs for the loop.
pub struct FarmServer {
    cfg: FarmServerConfig,
    farm: Farm,
    listener: ServiceListener,
    conns: Vec<Conn>,
    report: ServeReport,
    /// EWMA of measured wall milliseconds per scheduler blockstep.
    ms_per_blockstep: f64,
    measured: bool,
}

impl FarmServer {
    /// Open the farm, bind the listener, and publish the nonce-stamped
    /// address so clients can rendezvous.
    pub fn bind(farm_cfg: FarmConfig, cfg: FarmServerConfig) -> Result<Self, ServerError> {
        let farm = Farm::open(farm_cfg)?;
        let listener = ServiceListener::bind(cfg.kind, &cfg.dir, &cfg.service)?;
        publish_service_addr(&cfg.dir, &cfg.service, cfg.stream.nonce, listener.addr())?;
        let ms = cfg.fallback_ms_per_blockstep.max(1e-6);
        Ok(Self {
            cfg,
            farm,
            listener,
            conns: Vec::new(),
            report: ServeReport::default(),
            ms_per_blockstep: ms,
            measured: false,
        })
    }

    /// The bound address (already published under the rendezvous dir).
    pub fn addr(&self) -> &str {
        self.listener.addr()
    }

    /// The farm being served (inspection).
    pub fn farm(&self) -> &Farm {
        &self.farm
    }

    /// Counters so far.
    pub fn report(&self) -> &ServeReport {
        &self.report
    }

    /// Open connections (handshaken or not).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// One service cycle: accept, drain every connection, expire silent
    /// ones, and run one scheduler round if work exists.  Returns the
    /// number of requests answered plus grants made (0 means the cycle
    /// was idle, so callers can sleep).
    pub fn poll(&mut self) -> usize {
        let mut activity = 0usize;
        while let Ok(Some(io)) = self.listener.try_accept() {
            self.report.accepted += 1;
            self.conns.push(Conn {
                io,
                tenant: None,
                sessions: BTreeSet::new(),
                last_heard: Instant::now(),
                dead: false,
            });
            activity += 1;
        }
        for i in 0..self.conns.len() {
            activity += self.drain_conn(i);
        }
        // Heartbeat grace: a handshaken connection that has gone silent
        // is presumed dead — detach its sessions, reclaim its boards.
        let grace = self.cfg.heartbeat_grace;
        for i in 0..self.conns.len() {
            if !self.conns[i].dead && self.conns[i].last_heard.elapsed() > grace {
                self.kill_conn(i);
            }
        }
        self.conns.retain(|c| !c.dead);
        if self.farm.live_sessions() > 0 {
            let t0 = Instant::now();
            let before = self.farm.stats().grants;
            // A stalled scheduler fails the affected sessions; clients
            // learn through typed JobFailed denials at fetch.
            let granted = self.farm.round().unwrap_or(0);
            if granted > 0 {
                let steps = (self.farm.stats().grants - before) * self.farm.config().quantum;
                if steps > 0 {
                    let sample = t0.elapsed().as_secs_f64() * 1e3 / steps as f64;
                    self.ms_per_blockstep = if self.measured {
                        0.8 * self.ms_per_blockstep + 0.2 * sample
                    } else {
                        sample
                    };
                    self.measured = true;
                }
            }
            activity += granted;
        }
        activity
    }

    /// Serve until the wall bound, or until idle after first contact.
    pub fn serve(&mut self, opts: ServeOptions) -> ServeReport {
        let start = Instant::now();
        let mut idle_since: Option<Instant> = None;
        while start.elapsed() < opts.max_wall {
            let activity = self.poll();
            let busy = activity > 0 || !self.conns.is_empty() || self.farm.live_sessions() > 0;
            if busy {
                idle_since = None;
            } else if self.report.accepted > 0 {
                if let Some(limit) = opts.exit_after_idle {
                    let since = *idle_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > limit {
                        break;
                    }
                }
            }
            if activity == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for i in 0..self.conns.len() {
            let _ = self.send(
                i,
                &FarmFrame::Deny {
                    seq: 0,
                    reason: DenyReason::Shutdown,
                },
            );
            self.kill_conn(i);
        }
        self.conns.clear();
        self.report.farm = self.farm.stats().clone();
        self.report.clone()
    }

    /// Drain one connection's pending frames inside the bounded window.
    fn drain_conn(&mut self, i: usize) -> usize {
        let mut handled = 0usize;
        loop {
            if self.conns[i].dead {
                return handled;
            }
            let window = if handled == 0 {
                self.cfg.drain_window
            } else {
                // More frames may be queued behind the first; give the
                // kernel a moment to surface them, but never stall the
                // scheduler on one chatty client.
                Duration::from_millis(1)
            };
            match self.conns[i].io.try_recv_payload(window) {
                Ok(payload) => {
                    self.conns[i].last_heard = Instant::now();
                    match FarmFrame::decode(&payload) {
                        Ok(frame) => {
                            self.handle(i, frame);
                            handled += 1;
                        }
                        Err(e) => {
                            // Garbage on an authenticated stream: refuse
                            // it in type and drop the connection.
                            let _ = self.send(
                                i,
                                &FarmFrame::Deny {
                                    seq: 0,
                                    reason: DenyReason::BadHello {
                                        reason: format!("undecodable frame: {e}"),
                                    },
                                },
                            );
                            self.kill_conn(i);
                            return handled;
                        }
                    }
                }
                Err(FrameIoError::Timeout { .. }) => return handled,
                Err(FrameIoError::Closed { torn }) => {
                    if torn {
                        self.report.torn_frames += 1;
                    }
                    self.kill_conn(i);
                    return handled;
                }
                Err(FrameIoError::Oversize) | Err(FrameIoError::Io(_)) => {
                    self.kill_conn(i);
                    return handled;
                }
            }
        }
    }

    /// Answer one decoded request.
    fn handle(&mut self, i: usize, frame: FarmFrame) {
        self.report.requests += 1;
        match frame {
            FarmFrame::Hello { proto, nonce, spec } => {
                if self.conns[i].tenant.is_some() {
                    self.deny(
                        i,
                        0,
                        DenyReason::BadHello {
                            reason: "duplicate Hello".into(),
                        },
                    );
                    return;
                }
                if proto != FARM_PROTO {
                    self.deny(
                        i,
                        0,
                        DenyReason::BadHello {
                            reason: format!("protocol {proto}, server speaks {FARM_PROTO}"),
                        },
                    );
                    return;
                }
                if nonce != self.cfg.stream.nonce {
                    self.deny(
                        i,
                        0,
                        DenyReason::BadHello {
                            reason: "nonce mismatch (stale rendezvous?)".into(),
                        },
                    );
                    return;
                }
                match self.farm.register(spec) {
                    Ok(tenant) => {
                        self.conns[i].tenant = Some(tenant);
                        self.report.handshakes += 1;
                        let _ = self.send(
                            i,
                            &FarmFrame::HelloAck {
                                proto: FARM_PROTO,
                                tenant,
                            },
                        );
                    }
                    Err(e) => self.deny(i, 0, DenyReason::from_error(&e)),
                }
            }
            FarmFrame::Submit {
                seq,
                t_end,
                label,
                set,
            } => {
                let Some(tenant) = self.conns[i].tenant else {
                    self.deny(
                        i,
                        seq,
                        DenyReason::BadHello {
                            reason: "Submit before Hello".into(),
                        },
                    );
                    return;
                };
                let job = crate::session::Job::builder(set)
                    .t_end(f64::from_bits(t_end))
                    .label(label)
                    .build();
                match job.and_then(|j| self.farm.submit(tenant, j)) {
                    Ok(session) => {
                        self.conns[i].sessions.insert(session);
                        let _ = self.send(i, &FarmFrame::Ticket { seq, session });
                    }
                    Err(e) => {
                        let reason = match DenyReason::from_error(&e) {
                            // The wire hint must be honest wall time: the
                            // farm thinks in blocksteps, the server knows
                            // what a blockstep costs here and now.
                            DenyReason::Saturated {
                                retry_after: RetryAfter::Blocksteps(b),
                            } => DenyReason::Saturated {
                                retry_after: RetryAfter::Millis(self.blocksteps_to_ms(b)),
                            },
                            other => other,
                        };
                        self.deny(i, seq, reason);
                    }
                }
            }
            FarmFrame::Query { session } => match self.owned_status(i, session) {
                Ok(status) => {
                    let _ = self.send(i, &FarmFrame::Status { status });
                }
                Err(reason) => self.deny(i, 0, reason),
            },
            FarmFrame::Fetch { session } => {
                if let Err(reason) = self.owned(i, session) {
                    self.deny(i, 0, reason);
                    return;
                }
                match self.farm.take_result(session) {
                    Ok(res) => {
                        let _ = self.send(
                            i,
                            &FarmFrame::Result {
                                session: res.session,
                                particles: res.particles,
                                report: res.report,
                            },
                        );
                    }
                    Err(e) => self.deny(i, 0, DenyReason::from_error(&e)),
                }
            }
            FarmFrame::Cancel { session } => {
                if let Err(reason) = self.owned(i, session) {
                    self.deny(i, 0, reason);
                    return;
                }
                match self.farm.cancel(session) {
                    Ok(status) => {
                        let _ = self.send(i, &FarmFrame::Status { status });
                    }
                    Err(e) => self.deny(i, 0, DenyReason::from_error(&e)),
                }
            }
            FarmFrame::Beat { epoch } => {
                let _ = self.send(i, &FarmFrame::Beat { epoch });
            }
            FarmFrame::Bye => {
                // Orderly goodbye: same reclamation, but not a death.
                self.close_conn(i, false);
            }
            // Server-to-client frames arriving at the server are a
            // protocol violation from a confused peer.
            FarmFrame::HelloAck { .. }
            | FarmFrame::Ticket { .. }
            | FarmFrame::Status { .. }
            | FarmFrame::Result { .. }
            | FarmFrame::Deny { .. } => {
                self.deny(
                    i,
                    0,
                    DenyReason::BadHello {
                        reason: "client sent a server-side frame".into(),
                    },
                );
            }
        }
    }

    /// Ownership check: connections only see their own sessions (a
    /// wrong-tenant probe gets the same answer as a nonexistent one, so
    /// session ids leak nothing).
    fn owned(&self, i: usize, session: SessionId) -> Result<(), DenyReason> {
        match self.conns[i].tenant {
            Some(t) if session.tenant == t => Ok(()),
            Some(_) => Err(DenyReason::UnknownSession),
            None => Err(DenyReason::BadHello {
                reason: "request before Hello".into(),
            }),
        }
    }

    fn owned_status(
        &self,
        i: usize,
        session: SessionId,
    ) -> Result<crate::session::SessionStatus, DenyReason> {
        self.owned(i, session)?;
        self.farm
            .session_status(session)
            .ok_or(DenyReason::UnknownSession)
    }

    fn blocksteps_to_ms(&self, blocksteps: u64) -> u64 {
        (blocksteps as f64 * self.ms_per_blockstep).ceil().max(1.0) as u64
    }

    fn deny(&mut self, i: usize, seq: u64, reason: DenyReason) {
        self.report.denials += 1;
        let _ = self.send(i, &FarmFrame::Deny { seq, reason });
    }

    /// Fail-soft send: an unreachable client is a dead client.
    fn send(&mut self, i: usize, frame: &FarmFrame) -> Result<(), FrameIoError> {
        let r = self.conns[i].io.send_payload(&frame.encode());
        if r.is_err() {
            self.kill_conn(i);
        }
        r
    }

    /// Client death path: detach every session this connection owns
    /// (checkpoint-eviction — boards come back immediately, checkpoints
    /// survive) and mark the connection for removal.
    fn kill_conn(&mut self, i: usize) {
        self.close_conn(i, true);
    }

    /// Shared teardown.  An `abrupt` close (EOF, torn frame, heartbeat
    /// expiry, send failure) counts as a client death; an orderly `Bye`
    /// does not — but both detach whatever sessions the tenant still
    /// owned, so the boards come back either way.
    fn close_conn(&mut self, i: usize, abrupt: bool) {
        if self.conns[i].dead {
            return;
        }
        self.conns[i].dead = true;
        if abrupt && self.conns[i].tenant.is_some() {
            self.report.client_deaths += 1;
        }
        let sessions: Vec<SessionId> = self.conns[i].sessions.iter().copied().collect();
        for sid in sessions {
            let _ = self.farm.detach(sid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{FarmClient, FarmClientError};
    use crate::farm::TenantSpec;
    use crate::session::Job;
    use crate::wire::particles_digest;
    use grape6_core::{Grape6Engine, HermiteIntegrator, IntegratorConfig};
    use grape6_net::transport::dial_service;
    use grape6_system::machine::MachineConfig;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::particle::ParticleSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit() -> MachineConfig {
        MachineConfig::builder()
            .boards(1)
            .modules_per_board(2)
            .chips_per_module(2)
            .jmem_capacity(16)
            .build()
            .unwrap()
    }

    fn ic(n: usize, seed: u64) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(seed))
    }

    fn job(n: usize, seed: u64, t_end: f64) -> Job {
        Job::builder(ic(n, seed))
            .t_end(t_end)
            .label(format!("net seed {seed}"))
            .build()
            .unwrap()
    }

    /// Same job on a dedicated healthy board, uninterrupted — the
    /// digest every wire result must match bit for bit.
    fn dedicated_digest(n: usize, seed: u64, t_end: f64) -> u64 {
        let engine = Grape6Engine::try_new(&unit(), n).unwrap();
        let mut it = HermiteIntegrator::new(engine, ic(n, seed), IntegratorConfig::default());
        it.run_until(t_end);
        particles_digest(it.particles())
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("g6-farmsrv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn server_cfg(dir: &std::path::Path, kind: StreamKind, nonce: u64) -> FarmServerConfig {
        let mut cfg = FarmServerConfig::new(dir.to_path_buf());
        cfg.kind = kind;
        cfg.stream.nonce = nonce;
        cfg.heartbeat_grace = Duration::from_millis(250);
        cfg
    }

    fn spawn_server(
        farm_cfg: FarmConfig,
        cfg: FarmServerConfig,
        opts: ServeOptions,
    ) -> std::thread::JoinHandle<ServeReport> {
        std::thread::spawn(move || {
            let mut srv = FarmServer::bind(farm_cfg, cfg).unwrap();
            srv.serve(opts)
        })
    }

    #[test]
    fn tcp_and_uds_roundtrip_bitwise_identical_to_in_process() {
        for (tag, kind) in [("tcp", StreamKind::Tcp), ("uds", StreamKind::Uds)] {
            let dir = scratch(&format!("rt-{tag}"));
            let nonce = 0x9e0 + tag.len() as u64;
            let farm_cfg = FarmConfig::builder(unit()).boards(2).build().unwrap();
            let handle = spawn_server(
                farm_cfg,
                server_cfg(&dir, kind, nonce),
                ServeOptions::default(),
            );
            let mut client = FarmClient::builder(&dir)
                .kind(kind)
                .nonce(nonce)
                .tenant(TenantSpec::new(2))
                .connect()
                .unwrap();
            let sid = client.submit(&job(16, 41, 0.25)).unwrap();
            let res = client.wait_result(sid, Duration::from_secs(30)).unwrap();
            assert_eq!(
                particles_digest(&res.particles),
                dedicated_digest(16, 41, 0.25),
                "{tag}: wire result differs from dedicated run"
            );
            assert!(res.report.completed >= 1);
            client.bye().unwrap();
            let report = handle.join().unwrap();
            assert_eq!(report.handshakes, 1);
            assert_eq!(report.farm.completed, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn saturation_crosses_the_wire_as_typed_millis() {
        let dir = scratch("sat");
        let farm_cfg = FarmConfig::builder(unit())
            .boards(1)
            .max_live_sessions(1)
            .build()
            .unwrap();
        let handle = spawn_server(
            farm_cfg,
            server_cfg(&dir, StreamKind::Tcp, 7),
            ServeOptions::default(),
        );
        let mut client = FarmClient::builder(&dir)
            .nonce(7)
            .seed(3)
            .connect()
            .unwrap();
        let first = client.submit(&job(16, 42, 0.5)).unwrap();
        // The ceiling is 1: the second submit must come back as a typed
        // Saturated denial whose hint is wall milliseconds, not
        // scheduler blocksteps.
        match client.submit(&job(12, 43, 0.125)) {
            Err(FarmClientError::Denied(DenyReason::Saturated {
                retry_after: RetryAfter::Millis(ms),
            })) => assert!(ms >= 1),
            other => panic!("expected Saturated/Millis denial, got {other:?}"),
        }
        // The backoff ladder retries deterministically and lands once
        // the first session drains.
        let res1 = client.wait_result(first, Duration::from_secs(30)).unwrap();
        assert_eq!(
            particles_digest(&res1.particles),
            dedicated_digest(16, 42, 0.5)
        );
        let second = client.submit_with_backoff(&job(12, 43, 0.125), 64).unwrap();
        let res2 = client.wait_result(second, Duration::from_secs(30)).unwrap();
        assert_eq!(
            particles_digest(&res2.particles),
            dedicated_digest(12, 43, 0.125)
        );
        client.bye().unwrap();
        let report = handle.join().unwrap();
        assert!(report.denials >= 1, "saturation never crossed the wire");
        assert_eq!(report.farm.completed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_frames_and_midhandshake_death_leave_the_server_serving() {
        let dir = scratch("torn");
        let nonce = 11;
        let farm_cfg = FarmConfig::builder(unit()).boards(1).build().unwrap();
        let handle = spawn_server(
            farm_cfg,
            server_cfg(&dir, StreamKind::Tcp, nonce),
            ServeOptions::default(),
        );
        let stream = StreamConfig {
            nonce,
            ..StreamConfig::default()
        };
        let addr = grape6_net::transport::wait_for_service_addr(&dir, "farm", &stream).unwrap();
        // Injector 1: promise an 80-byte frame, deliver 12, die.
        let mut torn = dial_service(&addr, StreamKind::Tcp, &stream).unwrap();
        let mut partial = (80u64).to_le_bytes().to_vec();
        partial.extend_from_slice(&[0xAB; 12]);
        torn.send_raw(&partial).unwrap();
        drop(torn);
        // Injector 2: connect and die before saying anything at all.
        let mute = dial_service(&addr, StreamKind::Tcp, &stream).unwrap();
        drop(mute);
        // Injector 3: a whole frame of garbage gets a typed refusal,
        // not a hangup-without-answer and not a server panic.
        let mut garbage = dial_service(&addr, StreamKind::Tcp, &stream).unwrap();
        garbage.send_payload(&[0xFF; 16]).unwrap();
        let reply = garbage
            .recv_payload_deadline(Duration::from_millis(250), 4)
            .unwrap();
        match FarmFrame::decode(&reply).unwrap() {
            FarmFrame::Deny {
                reason: DenyReason::BadHello { .. },
                ..
            } => {}
            other => panic!("expected BadHello denial, got {other:?}"),
        }
        drop(garbage);
        // A real client still gets full service afterwards.
        let mut client = FarmClient::builder(&dir).nonce(nonce).connect().unwrap();
        let sid = client.submit(&job(16, 44, 0.125)).unwrap();
        let res = client.wait_result(sid, Duration::from_secs(30)).unwrap();
        assert_eq!(
            particles_digest(&res.particles),
            dedicated_digest(16, 44, 0.125)
        );
        client.bye().unwrap();
        let report = handle.join().unwrap();
        assert!(report.torn_frames >= 1, "torn frame was not classified");
        assert_eq!(report.handshakes, 1);
        assert_eq!(report.farm.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_client_is_detached_and_the_survivor_finishes_bitwise() {
        let dir = scratch("death");
        let nonce = 13;
        // One board so the victim's residency actually blocks the
        // survivor until the detach reclaims it.
        let farm_cfg = FarmConfig::builder(unit())
            .boards(1)
            .max_live_sessions(1)
            .build()
            .unwrap();
        let handle = spawn_server(
            farm_cfg,
            server_cfg(&dir, StreamKind::Tcp, nonce),
            ServeOptions::default(),
        );
        let mut victim = FarmClient::builder(&dir).nonce(nonce).connect().unwrap();
        let _doomed = victim.submit(&job(16, 45, 64.0)).unwrap();
        // The victim goes silent past the heartbeat grace (no Bye, no
        // beats): the server must presume it dead, detach the session,
        // and reclaim the board for the survivor.
        drop(victim);
        let mut survivor = FarmClient::builder(&dir)
            .nonce(nonce)
            .seed(99)
            .connect()
            .unwrap();
        let sid = survivor
            .submit_with_backoff(&job(12, 46, 0.125), 64)
            .unwrap();
        let res = survivor.wait_result(sid, Duration::from_secs(30)).unwrap();
        assert_eq!(
            particles_digest(&res.particles),
            dedicated_digest(12, 46, 0.125)
        );
        survivor.bye().unwrap();
        let report = handle.join().unwrap();
        assert!(report.client_deaths >= 1, "victim death went unnoticed");
        assert_eq!(report.farm.detached, 1);
        assert_eq!(report.farm.completed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
