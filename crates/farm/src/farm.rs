//! The farm service: admission, fair-share scheduling, eviction, rotation.
//!
//! [`Farm`] multiplexes many tenant sessions over a shared [`BoardPool`].
//! The paper's GRAPE clusters were operated exactly this way — a handful
//! of host+board units shared by a department of simulators — and the
//! operational problems are the classic ones:
//!
//! * **admission control** — a multiprogramming ceiling plus a bounded
//!   per-tenant submission queue; everything beyond is rejected with a
//!   typed [`FarmError`] the client can act on (backpressure);
//! * **fair sharing** — a deficit weighted-round-robin scheduler grants
//!   work quanta (blocksteps) to tenants in proportion to their weight;
//! * **eviction** — when sessions outnumber boards, the least-recently
//!   granted resident session is checkpointed and parked; resuming is a
//!   bitwise-exact [`restore_migrate`] onto whatever board is free next;
//! * **board rotation** — a board that fails the known-answer self-test
//!   at activation, or on which a session's recovery ladder is
//!   exhausted, is retired from the pool; its session resumes elsewhere
//!   from its last checkpoint.
//!
//! Because checkpoints are bitwise-exact and §3.4 block-FP summation
//! makes masking and j-redistribution invisible in the force bits, a
//! tenant's final particle state is **bitwise identical** to a dedicated
//! single-tenant run — no matter how often it was evicted, migrated, or
//! replayed past a board failure.  `tests/farm_bitwise.rs` and the
//! `farm_soak` bench binary assert exactly that.
//!
//! Construction is builder-first: [`FarmConfig::builder`] validates the
//! farm geometry, [`Farm::open`] takes the result, and tenants arrive as
//! typed [`TenantSpec`]s through [`Farm::register`].  Results come back
//! through [`Farm::take_result`] as a typed [`JobResult`] — the same
//! shape the wire client returns, so in-process and networked callers
//! are interchangeable.
//!
//! Everything is driven in *virtual* time with seeded randomness (the
//! retry backoff jitter comes from the fault subsystem's deterministic
//! [`mix`]), so a farm run is reproducible bit for bit.

use std::collections::{BTreeMap, VecDeque};

use grape6_core::{
    restore_migrate, CheckpointPolicy, Grape6Engine, HermiteIntegrator, IntegratorConfig,
    RunSupervisor, SupervisorConfig,
};
use grape6_fault::rng::mix;
use grape6_fault::FaultPlan;
use grape6_model::calib::{GrapeTiming, HostProfile};
use grape6_system::machine::MachineConfig;
use grape6_trace::{HostRates, MeasuredBlockTime, Phase, Span, Tracer};
use nbody_core::force::{EngineError, ForceEngine};

use crate::error::{FarmError, RetryAfter};
use crate::pool::BoardPool;
use crate::session::{
    Job, JobResult, Session, SessionId, SessionOutcome, SessionState, SessionStatus, TenantId,
};
use crate::stats::{FarmReport, TenantReport};

/// Everything a farm needs to be built.  Obtain one through
/// [`FarmConfig::builder`], which validates at `build()`; the fields
/// stay public for inspection.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Geometry of one pool unit (typically a single board).
    pub board_machine: MachineConfig,
    /// Units in the pool.
    pub boards: usize,
    /// Fault plans for the first units (rest are healthy).
    pub board_plans: Vec<Option<FaultPlan>>,
    /// Default per-tenant bound on concurrently live sessions
    /// (backpressure); a tenant's [`TenantSpec::queue_cap`] overrides it.
    pub queue_depth: usize,
    /// Farm-wide multiprogramming ceiling (admission control).
    pub max_live_sessions: usize,
    /// Blocksteps per scheduler grant.
    pub quantum: u64,
    /// Supervisor checkpoint cadence (blocksteps).
    pub ckpt_every: u64,
    /// Default grant budget per session (`None` = no deadline); a
    /// tenant's [`TenantSpec::deadline_grants`] overrides it.
    pub deadline_grants: Option<u64>,
    /// Supervisor step failures retried (with backoff) per grant before
    /// the board is rotated out.
    pub max_grant_retries: u32,
    /// First retry backoff, virtual seconds (doubles per attempt).
    pub backoff_base: f64,
    /// Deterministic jitter added to each backoff, in permille of the
    /// exponential term.
    pub backoff_jitter_permille: u64,
    /// Integrator accuracy/scheduling parameters for every session.
    pub icfg: IntegratorConfig,
    /// Timing model charging checkpoints, reloads and self-tests.
    pub timing: GrapeTiming,
    /// Host profile for the per-tenant measured breakdown.
    pub host: HostProfile,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Record per-tenant spans (the six-term breakdown needs this).
    pub trace: bool,
}

impl FarmConfig {
    /// Defaults around one board geometry: 2 boards, queue depth 4,
    /// ceiling 8 sessions, 8-blockstep quanta and checkpoints, 2 retries.
    pub fn new(board_machine: MachineConfig) -> Self {
        Self {
            board_machine,
            boards: 2,
            board_plans: Vec::new(),
            queue_depth: 4,
            max_live_sessions: 8,
            quantum: 8,
            ckpt_every: 8,
            deadline_grants: None,
            max_grant_retries: 2,
            backoff_base: 1e-3,
            backoff_jitter_permille: 250,
            icfg: IntegratorConfig::default(),
            timing: GrapeTiming::paper_host(),
            host: HostProfile::athlon_xp_1800(),
            seed: 0,
            trace: true,
        }
    }

    /// Start building a validated config around one board geometry.
    pub fn builder(board_machine: MachineConfig) -> FarmConfigBuilder {
        FarmConfigBuilder {
            cfg: Self::new(board_machine),
        }
    }

    pub(crate) fn validate(&self) -> Result<(), FarmError> {
        for (what, bad) in [
            ("boards", self.boards == 0),
            ("quantum", self.quantum == 0),
            ("ckpt_every", self.ckpt_every == 0),
            ("queue_depth", self.queue_depth == 0),
            ("max_live_sessions", self.max_live_sessions == 0),
            ("deadline_grants", self.deadline_grants == Some(0)),
            ("max_grant_retries", self.max_grant_retries == 0),
        ] {
            if bad {
                return Err(FarmError::InvalidConfig {
                    reason: format!("{what} must be nonzero"),
                });
            }
        }
        if !(self.backoff_base.is_finite() && self.backoff_base > 0.0) {
            return Err(FarmError::InvalidConfig {
                reason: format!(
                    "backoff_base must be finite and positive, got {}",
                    self.backoff_base
                ),
            });
        }
        if self.board_plans.len() > self.boards {
            return Err(FarmError::InvalidConfig {
                reason: format!(
                    "{} board plans for {} boards",
                    self.board_plans.len(),
                    self.boards
                ),
            });
        }
        Ok(())
    }
}

/// Builder for [`FarmConfig`]: override what you need, then
/// [`build`](Self::build) to validate (typed
/// [`FarmError::InvalidConfig`] instead of a panic or a silently broken
/// farm), mirroring `MachineConfig::builder()`.
#[derive(Clone, Debug)]
pub struct FarmConfigBuilder {
    cfg: FarmConfig,
}

impl FarmConfigBuilder {
    /// Units in the pool.
    pub fn boards(mut self, boards: usize) -> Self {
        self.cfg.boards = boards;
        self
    }

    /// Fault plans for the first units (rest are healthy).
    pub fn board_plans(mut self, plans: Vec<Option<FaultPlan>>) -> Self {
        self.cfg.board_plans = plans;
        self
    }

    /// Default per-tenant bound on concurrently live sessions.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Farm-wide multiprogramming ceiling.
    pub fn max_live_sessions(mut self, ceiling: usize) -> Self {
        self.cfg.max_live_sessions = ceiling;
        self
    }

    /// Blocksteps per scheduler grant.
    pub fn quantum(mut self, quantum: u64) -> Self {
        self.cfg.quantum = quantum;
        self
    }

    /// Supervisor checkpoint cadence (blocksteps).
    pub fn ckpt_every(mut self, every: u64) -> Self {
        self.cfg.ckpt_every = every;
        self
    }

    /// Default grant budget per session (`None` = no deadline).
    pub fn deadline_grants(mut self, deadline: Option<u64>) -> Self {
        self.cfg.deadline_grants = deadline;
        self
    }

    /// Supervisor step failures retried per grant before board rotation.
    pub fn max_grant_retries(mut self, retries: u32) -> Self {
        self.cfg.max_grant_retries = retries;
        self
    }

    /// First retry backoff, virtual seconds (doubles per attempt).
    pub fn backoff_base(mut self, base: f64) -> Self {
        self.cfg.backoff_base = base;
        self
    }

    /// Deterministic backoff jitter, permille of the exponential term.
    pub fn backoff_jitter_permille(mut self, permille: u64) -> Self {
        self.cfg.backoff_jitter_permille = permille;
        self
    }

    /// Integrator accuracy/scheduling parameters for every session.
    pub fn icfg(mut self, icfg: IntegratorConfig) -> Self {
        self.cfg.icfg = icfg;
        self
    }

    /// Timing model charging checkpoints, reloads and self-tests.
    pub fn timing(mut self, timing: GrapeTiming) -> Self {
        self.cfg.timing = timing;
        self
    }

    /// Host profile for the per-tenant measured breakdown.
    pub fn host(mut self, host: HostProfile) -> Self {
        self.cfg.host = host;
        self
    }

    /// Seed for the backoff jitter stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Record per-tenant spans (the six-term breakdown needs this).
    pub fn trace(mut self, trace: bool) -> Self {
        self.cfg.trace = trace;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<FarmConfig, FarmError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// What a tenant registers with: a scheduler weight plus optional
/// per-tenant overrides of the farm defaults.  Validated by
/// [`Farm::register`] (typed [`FarmError::InvalidConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Deficit-WRR scheduler weight (must be nonzero).
    pub weight: u32,
    /// Per-tenant bound on concurrently live sessions; `None` uses the
    /// farm's `queue_depth`.
    pub queue_cap: Option<usize>,
    /// Per-session grant budget; `None` uses the farm's
    /// `deadline_grants`.
    pub deadline_grants: Option<u64>,
}

impl TenantSpec {
    /// A spec with the given weight and farm-default queue/deadline.
    pub fn new(weight: u32) -> Self {
        Self {
            weight,
            queue_cap: None,
            deadline_grants: None,
        }
    }

    /// Override the per-tenant live-session bound.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Override the per-session grant budget.
    pub fn deadline_grants(mut self, deadline: u64) -> Self {
        self.deadline_grants = Some(deadline);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), FarmError> {
        if self.weight == 0 {
            return Err(FarmError::InvalidConfig {
                reason: "tenant weight must be nonzero".into(),
            });
        }
        if self.queue_cap == Some(0) {
            return Err(FarmError::InvalidConfig {
                reason: "tenant queue_cap must be nonzero".into(),
            });
        }
        if self.deadline_grants == Some(0) {
            return Err(FarmError::InvalidConfig {
                reason: "tenant deadline_grants must be nonzero".into(),
            });
        }
        Ok(())
    }
}

/// Scheduler-side tenant bookkeeping.
struct Tenant {
    spec: TenantSpec,
    /// Deficit-WRR credit (grants owed this round).
    credit: u32,
    /// Round-robin rotation of this tenant's live sessions.
    rotation: VecDeque<SessionId>,
    /// Next per-tenant session index.
    next_index: u32,
}

/// How one grant ended.
enum GrantEnd {
    /// Reached `t_end`.
    Finished,
    /// Quantum used up; session stays resident.
    Quantum,
    /// Retries exhausted: the board is suspect.
    BoardFault(String),
}

/// Why a session could not be activated on a particular board.
enum ActivationError {
    /// The board is at fault (self-test capacity loss, hardware fault):
    /// retire it and try the next one.
    BoardUnusable(String),
    /// The session itself is broken; no board will help.
    SessionBroken(String),
}

fn classify_engine_error(e: &EngineError) -> ActivationError {
    match e {
        EngineError::InsufficientCapacity { .. } | EngineError::HardwareFault { .. } => {
            ActivationError::BoardUnusable(e.to_string())
        }
        other => ActivationError::SessionBroken(other.to_string()),
    }
}

/// The multi-tenant farm service.  See the module docs for the model.
pub struct Farm {
    cfg: FarmConfig,
    pool: BoardPool,
    tenants: BTreeMap<TenantId, Tenant>,
    sessions: BTreeMap<SessionId, Session>,
    report: FarmReport,
    /// Global grant sequence (LRU eviction key).
    grant_seq: u64,
    next_tenant: TenantId,
    /// Tenant-tagged span log (`Span::track` = tenant id).
    spans: Vec<Span>,
}

impl Farm {
    /// Open a farm over a validated config.  Fails with
    /// [`FarmError::InvalidConfig`] on unusable parameters (zero boards,
    /// zero quantum, zero queue depth…) — configs from
    /// [`FarmConfig::builder`] have already passed these checks.
    pub fn open(cfg: FarmConfig) -> Result<Self, FarmError> {
        cfg.validate()?;
        let pool = BoardPool::new(cfg.board_machine, cfg.boards, cfg.board_plans.clone());
        Ok(Self {
            cfg,
            pool,
            tenants: BTreeMap::new(),
            sessions: BTreeMap::new(),
            report: FarmReport::default(),
            grant_seq: 0,
            next_tenant: 0,
            spans: Vec::new(),
        })
    }

    /// Build a farm.
    #[deprecated(
        since = "0.1.0",
        note = "use `Farm::open` with a `FarmConfig::builder()` config"
    )]
    pub fn new(cfg: FarmConfig) -> Result<Self, FarmError> {
        Self::open(cfg)
    }

    /// Register a tenant from a validated spec.  Returns the id used in
    /// [`submit`](Self::submit).
    pub fn register(&mut self, spec: TenantSpec) -> Result<TenantId, FarmError> {
        spec.validate()?;
        let id = self.next_tenant;
        self.next_tenant += 1;
        self.tenants.insert(
            id,
            Tenant {
                spec,
                credit: 0,
                rotation: VecDeque::new(),
                next_index: 0,
            },
        );
        self.report.tenants.insert(
            id,
            TenantReport {
                weight: spec.weight,
                ..TenantReport::default()
            },
        );
        Ok(id)
    }

    /// Register a tenant with a scheduler weight (`0` is clamped to 1).
    #[deprecated(
        since = "0.1.0",
        note = "use `Farm::register` with a typed `TenantSpec`"
    )]
    pub fn add_tenant(&mut self, weight: u32) -> TenantId {
        self.register(TenantSpec::new(weight.max(1)))
            .expect("clamped weight is always valid")
    }

    /// The configuration this farm was opened with.
    pub fn config(&self) -> &FarmConfig {
        &self.cfg
    }

    /// The board pool (inspection).
    pub fn pool(&self) -> &BoardPool {
        &self.pool
    }

    /// Farm-wide counters so far.
    pub fn stats(&self) -> &crate::stats::FarmStats {
        &self.report.stats
    }

    /// Per-tenant accounting so far.
    pub fn tenant_report(&self, tenant: TenantId) -> Option<&TenantReport> {
        self.report.tenants.get(&tenant)
    }

    /// Tenant-tagged spans recorded so far (`Span::track` = tenant id).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sessions the scheduler still owes work: live and not detached.
    /// (Detached sessions hold only a checkpoint; their board is
    /// reclaimed and they do not count against the admission ceiling.)
    pub fn live_sessions(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| s.state.is_live() && !s.detached)
            .count()
    }

    /// A point-in-time snapshot of one session, `None` if unknown.
    pub fn session_status(&self, sid: SessionId) -> Option<SessionStatus> {
        self.sessions.get(&sid).map(|s| SessionStatus {
            session: sid,
            phase: s.phase(),
            blocksteps: s.blocksteps,
            resumes: s.resumes,
        })
    }

    /// Offer a job.  Checks run in order: tenant known → job fits one
    /// board ([`FarmError::JobTooLarge`]) → per-tenant queue cap
    /// ([`FarmError::QueueFull`]) → farm-wide ceiling
    /// ([`FarmError::Saturated`] with a blockstep-denominated
    /// [`RetryAfter`]).  Shape validity is the [`Job`] builder's job —
    /// a `Job` value that exists has already passed those checks.  An
    /// accepted job becomes a queued session awaiting its first grant.
    pub fn submit(&mut self, tenant: TenantId, job: Job) -> Result<SessionId, FarmError> {
        self.report.stats.submitted += 1;
        let Some(spec) = self.tenants.get(&tenant).map(|t| t.spec) else {
            self.report.stats.rejected_invalid += 1;
            return Err(FarmError::UnknownTenant(tenant));
        };
        let n = job.set.n();
        let capacity = self.pool.unit_capacity();
        if n > capacity {
            self.report.stats.rejected_invalid += 1;
            return Err(FarmError::JobTooLarge { n, capacity });
        }
        let depth = spec.queue_cap.unwrap_or(self.cfg.queue_depth);
        let tenant_live = self
            .sessions
            .values()
            .filter(|s| s.id.tenant == tenant && s.state.is_live() && !s.detached)
            .count();
        if tenant_live >= depth {
            self.report.stats.rejected_queue_full += 1;
            return Err(FarmError::QueueFull { tenant, depth });
        }
        let live = self.live_sessions();
        if live >= self.cfg.max_live_sessions {
            self.report.stats.rejected_saturated += 1;
            // Load-derived and deterministic: each excess session ahead
            // of this one still has to burn roughly a quantum of
            // scheduler progress before a slot frees up.  Blockstep-
            // denominated — only something that observes wall time (the
            // wire server) may convert it to milliseconds.
            let excess = (live + 1 - self.cfg.max_live_sessions) as u64;
            return Err(FarmError::Saturated {
                retry_after: RetryAfter::Blocksteps(excess * self.cfg.quantum),
            });
        }
        let deadline = spec.deadline_grants.or(self.cfg.deadline_grants);
        let t = self.tenants.get_mut(&tenant).expect("checked above");
        let index = t.next_index;
        t.next_index += 1;
        let sid = SessionId { tenant, index };
        t.rotation.push_back(sid);
        self.sessions.insert(
            sid,
            Session {
                id: sid,
                t_end: job.t_end,
                label: job.label,
                n,
                state: SessionState::Queued {
                    set: Box::new(job.set),
                },
                grants_used: 0,
                blocksteps: 0,
                last_grant_seq: 0,
                resumes: 0,
                deadline_grants: deadline,
                detached: false,
            },
        );
        self.report.stats.admitted += 1;
        Ok(sid)
    }

    /// Take a finished session's result: its final particles plus a
    /// snapshot of the owning tenant's accounting.  The same typed
    /// [`JobResult`] the wire client returns.
    ///
    /// * `Done` → `Ok(JobResult)`; the outcome is consumed, so a second
    ///   call returns [`FarmError::UnknownSession`];
    /// * `Failed` → [`FarmError::JobFailed`] with the reason (retained,
    ///   so repeated calls answer the same);
    /// * still live → [`FarmError::NotReady`];
    /// * never admitted → [`FarmError::UnknownSession`].
    pub fn take_result(&mut self, sid: SessionId) -> Result<JobResult, FarmError> {
        let Some(sess) = self.sessions.get(&sid) else {
            return Err(FarmError::UnknownSession(sid));
        };
        if sess.state.is_live() {
            return Err(FarmError::NotReady { session: sid });
        }
        match self.report.outcomes.get(&sid) {
            Some(SessionOutcome::Failed { reason }) => Err(FarmError::JobFailed {
                session: sid,
                reason: reason.clone(),
            }),
            Some(SessionOutcome::Completed { .. }) => {
                let Some(SessionOutcome::Completed { particles, .. }) =
                    self.report.outcomes.remove(&sid)
                else {
                    unreachable!("matched Completed above");
                };
                let report = self
                    .report
                    .tenants
                    .get(&sid.tenant)
                    .cloned()
                    .unwrap_or_default();
                Ok(JobResult {
                    session: sid,
                    particles: *particles,
                    report,
                })
            }
            // Terminal session with no outcome: the result was already
            // taken.
            None => Err(FarmError::UnknownSession(sid)),
        }
    }

    /// Detach a session whose client vanished: checkpoint-evict it if
    /// resident (the PR 6 park path — its board is reclaimed
    /// immediately), keep the checkpoint, and stop scheduling it.  The
    /// session stops counting against queues and the admission ceiling.
    /// Idempotent; terminal sessions are left as they are.
    pub fn detach(&mut self, sid: SessionId) -> Result<SessionStatus, FarmError> {
        let Some(sess) = self.sessions.get(&sid) else {
            return Err(FarmError::UnknownSession(sid));
        };
        if sess.state.is_live() && !sess.detached {
            if matches!(sess.state, SessionState::Resident { .. }) {
                self.park(sid);
            }
            let sess = self.sessions.get_mut(&sid).expect("session exists");
            sess.detached = true;
            self.report.stats.detached += 1;
        }
        Ok(self.session_status(sid).expect("session exists"))
    }

    /// Cancel a session: a live one (detached included) is finished as
    /// `Failed` with a "cancelled" reason and its board freed; a
    /// terminal one is left as it is.  Idempotent.
    pub fn cancel(&mut self, sid: SessionId) -> Result<SessionStatus, FarmError> {
        let Some(sess) = self.sessions.get(&sid) else {
            return Err(FarmError::UnknownSession(sid));
        };
        if sess.state.is_live() {
            self.finish_failed(sid, "cancelled by client".into());
            self.report.stats.cancelled += 1;
        }
        Ok(self.session_status(sid).expect("session exists"))
    }

    /// Drive every schedulable session to a terminal state and return a
    /// snapshot of the report.  Detached sessions are left parked on
    /// their checkpoints.  Outcomes stay claimable through
    /// [`take_result`](Self::take_result) afterwards.  Fails only on a
    /// scheduler deadlock ([`FarmError::Stalled`]) — board failures and
    /// deadline kills are *outcomes*, not errors.
    pub fn run(&mut self) -> Result<FarmReport, FarmError> {
        while self.live_sessions() > 0 {
            let grants = self.round()?;
            if grants == 0 && self.live_sessions() > 0 {
                return Err(FarmError::Stalled {
                    round: self.report.stats.rounds,
                });
            }
        }
        Ok(self.report.clone())
    }

    /// One deficit-WRR scheduler round: every tenant accrues `weight`
    /// credits and spends them on quanta for its live sessions, round
    /// robin.  Returns the number of quanta granted.  Public so a
    /// service loop can interleave [`submit`](Self::submit) with
    /// scheduling instead of batching everything through
    /// [`run`](Self::run).
    pub fn round(&mut self) -> Result<usize, FarmError> {
        self.report.stats.rounds += 1;
        let mut grants = 0usize;
        let tids: Vec<TenantId> = self.tenants.keys().copied().collect();
        for tid in tids {
            {
                let t = self.tenants.get_mut(&tid).expect("registered");
                t.credit += t.spec.weight;
            }
            loop {
                let t = self.tenants.get_mut(&tid).expect("registered");
                if t.credit == 0 {
                    break;
                }
                let Some(sid) = pick_live(t, &self.sessions) else {
                    // Nothing runnable: credit does not bank while idle.
                    t.credit = 0;
                    break;
                };
                t.credit -= 1;
                match self.ensure_resident(sid) {
                    Ok(true) => {
                        self.grant(sid);
                        grants += 1;
                    }
                    Ok(false) => {} // session failed during activation
                    Err(FarmError::PoolExhausted) => {
                        self.fail_all_live("board pool exhausted");
                        return Ok(grants);
                    }
                    Err(e) => return Err(e),
                }
                if self
                    .sessions
                    .get(&sid)
                    .is_some_and(|s| s.state.is_live() && !s.detached)
                {
                    self.tenants
                        .get_mut(&tid)
                        .expect("registered")
                        .rotation
                        .push_back(sid);
                }
            }
        }
        Ok(grants)
    }

    /// Make `sid` resident, evicting the least-recently-granted resident
    /// session if no board is free and retiring boards that fail
    /// activation.  `Ok(false)` means the session itself died trying.
    fn ensure_resident(&mut self, sid: SessionId) -> Result<bool, FarmError> {
        if matches!(
            self.sessions.get(&sid).map(|s| &s.state),
            Some(SessionState::Resident { .. })
        ) {
            return Ok(true);
        }
        loop {
            let slot = match self.pool.free_slot() {
                Some(i) => i,
                None => {
                    if self.pool.in_service() == 0 {
                        return Err(FarmError::PoolExhausted);
                    }
                    match self.evict_lru(sid) {
                        Some(i) => i,
                        None => return Err(FarmError::PoolExhausted),
                    }
                }
            };
            match self.activate_on(sid, slot) {
                Ok(masked) => {
                    self.pool.note_masked(slot, masked);
                    self.pool.occupy(slot, sid);
                    return Ok(true);
                }
                Err(ActivationError::BoardUnusable(detail)) => {
                    // Fault-aware rotation: the board flunked its
                    // known-answer self-test (or lost too much capacity);
                    // pull it and try the next one.
                    self.pool.retire(slot, detail);
                    self.report.stats.board_rotations += 1;
                }
                Err(ActivationError::SessionBroken(detail)) => {
                    self.finish_failed(sid, detail);
                    return Ok(false);
                }
            }
        }
    }

    /// Build (or restore) `sid`'s supervised integrator on pool `slot`.
    /// Returns the number of units the activation self-test masked.
    fn activate_on(&mut self, sid: SessionId, slot: usize) -> Result<usize, ActivationError> {
        let plan = self.pool.slots()[slot].plan.clone();
        let machine = *self.pool.machine();
        let icfg = self.cfg.icfg;
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Moving);
        let (it, resumed) = match state {
            SessionState::Queued { set } => {
                let engine = match &plan {
                    Some(p) => Grape6Engine::with_fault_plan(&machine, sess.n, p),
                    None => Grape6Engine::try_new(&machine, sess.n),
                };
                match engine.and_then(|e| HermiteIntegrator::try_new(e, (*set).clone(), icfg)) {
                    Ok(it) => (it, false),
                    Err(e) => {
                        sess.state = SessionState::Queued { set };
                        return Err(classify_engine_error(&e));
                    }
                }
            }
            SessionState::Parked { ckpt } => {
                match restore_migrate(&machine, plan.as_ref(), icfg, &ckpt) {
                    Ok(it) => (it, true),
                    Err(e) => {
                        sess.state = SessionState::Parked { ckpt };
                        return Err(match &e {
                            grape6_core::RestoreError::Engine(ee) => classify_engine_error(ee),
                            grape6_core::RestoreError::Mismatch(m) => {
                                ActivationError::SessionBroken(m.clone())
                            }
                        });
                    }
                }
            }
            other => {
                sess.state = other;
                return Err(ActivationError::SessionBroken(
                    "activation from a non-activatable state".into(),
                ));
            }
        };
        let mut it = it;
        let masked = it.engine().self_test_report().map_or(0, |r| r.masked.len());
        it.engine_mut()
            .set_timebase(self.cfg.timing.engine_timebase());
        if self.cfg.trace {
            it.engine_mut().set_tracer(Tracer::enabled());
            it.set_tracer(Tracer::enabled());
            it.set_host_rates(HostRates {
                t_block_fixed: self.cfg.host.t_block_fixed,
                t_step: self.cfg.host.t_step(sess.n as f64),
            });
        }
        let mut scfg = SupervisorConfig::for_machine(machine);
        scfg.policy = CheckpointPolicy {
            every_blocksteps: Some(self.cfg.ckpt_every),
            every_virtual_seconds: None,
        };
        scfg.plan = plan;
        scfg.timing = self.cfg.timing;
        scfg.label = format!("farm {} {}", sid, sess.label);
        let sup = RunSupervisor::new(it, scfg);
        sess.state = SessionState::Resident {
            sup: Box::new(sup),
            board: slot,
        };
        if resumed {
            sess.resumes += 1;
            self.report.stats.resumes += 1;
        }
        Ok(masked)
    }

    /// Checkpoint-evict the least-recently-granted resident session
    /// other than `protect`; returns the freed slot.
    fn evict_lru(&mut self, protect: SessionId) -> Option<usize> {
        let victim = self
            .sessions
            .values()
            .filter(|s| s.id != protect && matches!(s.state, SessionState::Resident { .. }))
            .min_by_key(|s| (s.last_grant_seq, s.id))?
            .id;
        Some(self.park(victim))
    }

    /// Resident → Parked: checkpoint (cost charged in virtual time by
    /// the supervisor), drop the engine, free the board.
    fn park(&mut self, sid: SessionId) -> usize {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Moving);
        let SessionState::Resident { mut sup, board } = state else {
            unreachable!("park() called on a non-resident session");
        };
        let ckpt = sup.checkpoint_now().clone();
        let spans = sup.integrator_mut().take_spans();
        sess.state = SessionState::Parked {
            ckpt: Box::new(ckpt),
        };
        self.pool.release(board);
        self.report.stats.evictions += 1;
        self.fold_spans(sid.tenant, spans);
        board
    }

    /// One scheduler grant: up to `quantum` supervised blocksteps, with
    /// farm-level retry + deterministic-jitter backoff around supervisor
    /// failures.  Handles completion, deadline kill, and board rotation.
    fn grant(&mut self, sid: SessionId) {
        self.grant_seq += 1;
        self.report.stats.grants += 1;
        let quantum = self.cfg.quantum;
        let max_retries = self.cfg.max_grant_retries;
        let backoff_base = self.cfg.backoff_base;
        let jitter_permille = self.cfg.backoff_jitter_permille;
        let seed = self.cfg.seed;

        let sess = self.sessions.get_mut(&sid).expect("session exists");
        sess.grants_used += 1;
        sess.last_grant_seq = self.grant_seq;
        if let Some(d) = sess.deadline_grants {
            if sess.grants_used > d {
                self.report.stats.deadline_failures += 1;
                self.finish_failed(sid, format!("deadline exceeded after {d} grants"));
                return;
            }
        }
        let t_end = sess.t_end;
        let grants_used = sess.grants_used;
        let SessionState::Resident { ref mut sup, .. } = sess.state else {
            unreachable!("grant() called on a non-resident session");
        };

        let mut steps = 0u64;
        let mut retries_local = 0u64;
        let mut backoff_local = 0.0f64;
        let end = 'quantum: loop {
            if steps >= quantum {
                break GrantEnd::Quantum;
            }
            if sup.integrator().time() >= t_end {
                break GrantEnd::Finished;
            }
            let mut attempt: u32 = 0;
            loop {
                match sup.step() {
                    Ok(_) => {
                        steps += 1;
                        break;
                    }
                    Err(e) => {
                        attempt += 1;
                        retries_local += 1;
                        // Exponential backoff with the fault subsystem's
                        // deterministic jitter: same seed, same stream.
                        let jitter = mix(
                            seed,
                            u64::from(sid.tenant),
                            u64::from(sid.index),
                            grants_used,
                            u64::from(attempt),
                        ) % (jitter_permille + 1);
                        let dur = backoff_base
                            * f64::from(1u32 << (attempt - 1).min(16))
                            * (1.0 + jitter as f64 / 1000.0);
                        backoff_local += dur;
                        let it = sup.integrator_mut();
                        let t0 = it.engine().vt();
                        it.engine_mut().set_vt(t0 + dur);
                        it.engine_mut().tracer_mut().record(Span::new(
                            Phase::Backoff,
                            t0,
                            t0 + dur,
                        ));
                        if attempt > max_retries {
                            break 'quantum GrantEnd::BoardFault(e.to_string());
                        }
                    }
                }
            }
        };
        sess.blocksteps += steps;
        self.report.stats.grant_retries += retries_local;
        self.report.stats.backoff_seconds += backoff_local;
        {
            let tr = self
                .report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered");
            tr.grants += 1;
            tr.blocksteps += steps;
        }
        let spans = sup.integrator_mut().take_spans();
        self.fold_spans(sid.tenant, spans);
        match end {
            GrantEnd::Quantum => {}
            GrantEnd::Finished => self.finish_completed(sid),
            GrantEnd::BoardFault(detail) => {
                // The supervisor's whole ladder failed repeatedly on this
                // board: park the session at its last good checkpoint and
                // pull the board from rotation.  The session resumes on
                // another board at its next grant.
                let sess = self.sessions.get_mut(&sid).expect("session exists");
                let state = std::mem::replace(&mut sess.state, SessionState::Moving);
                let SessionState::Resident { sup, board } = state else {
                    unreachable!("board fault on a non-resident session");
                };
                let ckpt = sup
                    .last_checkpoint()
                    .cloned()
                    .expect("supervisor always holds a baseline checkpoint");
                sess.state = SessionState::Parked {
                    ckpt: Box::new(ckpt),
                };
                self.pool.retire(board, detail);
                self.report.stats.board_rotations += 1;
            }
        }
    }

    /// Resident → Done: record the outcome, free the board.
    fn finish_completed(&mut self, sid: SessionId) {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Done);
        let SessionState::Resident { mut sup, board } = state else {
            unreachable!("finish_completed() on a non-resident session");
        };
        let spans = sup.integrator_mut().take_spans();
        let particles = sup.integrator().particles().clone();
        let stats = sup.integrator().stats().clone();
        self.pool.release(board);
        self.report.stats.completed += 1;
        {
            let tr = self
                .report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered");
            tr.completed += 1;
            tr.absorb_recovery(&stats.recovery);
        }
        self.report.outcomes.insert(
            sid,
            SessionOutcome::Completed {
                particles: Box::new(particles),
                stats: Box::new(stats),
            },
        );
        self.fold_spans(sid.tenant, spans);
    }

    /// Any live state → Failed: record the reason, free the board.
    fn finish_failed(&mut self, sid: SessionId, reason: String) {
        let sess = self.sessions.get_mut(&sid).expect("session exists");
        let state = std::mem::replace(&mut sess.state, SessionState::Failed);
        let mut spans = Vec::new();
        if let SessionState::Resident { mut sup, board } = state {
            spans = sup.integrator_mut().take_spans();
            let recovery = sup.integrator().stats().recovery;
            self.report
                .tenants
                .get_mut(&sid.tenant)
                .expect("tenant registered")
                .absorb_recovery(&recovery);
            self.pool.release(board);
        }
        self.report.stats.failed += 1;
        self.report
            .tenants
            .get_mut(&sid.tenant)
            .expect("tenant registered")
            .failed += 1;
        self.report
            .outcomes
            .insert(sid, SessionOutcome::Failed { reason });
        self.fold_spans(sid.tenant, spans);
    }

    fn fail_all_live(&mut self, reason: &str) {
        let live: Vec<SessionId> = self
            .sessions
            .values()
            .filter(|s| s.state.is_live())
            .map(|s| s.id)
            .collect();
        for sid in live {
            self.finish_failed(sid, reason.to_string());
        }
    }

    /// Retag a grant's spans with the tenant id and fold them into the
    /// tenant's six-term measured breakdown.
    fn fold_spans(&mut self, tenant: TenantId, mut spans: Vec<Span>) {
        if spans.is_empty() {
            return;
        }
        for s in &mut spans {
            s.track = tenant;
        }
        let mbt = MeasuredBlockTime::from_spans(&spans);
        self.report
            .tenants
            .get_mut(&tenant)
            .expect("tenant registered")
            .breakdown
            .add(&mbt);
        self.spans.extend(spans);
    }
}

/// Pop the next schedulable session from the tenant's rotation,
/// discarding finished and detached ones.
fn pick_live(t: &mut Tenant, sessions: &BTreeMap<SessionId, Session>) -> Option<SessionId> {
    while let Some(sid) = t.rotation.pop_front() {
        if sessions
            .get(&sid)
            .is_some_and(|s| s.state.is_live() && !s.detached)
        {
            return Some(sid);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody_core::ic::plummer::plummer_model;
    use nbody_core::particle::ParticleSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One-board unit: 2 modules × 2 chips × 16 j-slots = 64 slots; a
    /// dead module costs 32 of them.
    fn unit() -> MachineConfig {
        MachineConfig::builder()
            .boards(1)
            .modules_per_board(2)
            .chips_per_module(2)
            .jmem_capacity(16)
            .build()
            .unwrap()
    }

    fn ic(n: usize, seed: u64) -> ParticleSet {
        plummer_model(n, &mut StdRng::seed_from_u64(seed))
    }

    fn job(n: usize, seed: u64, t_end: f64) -> Job {
        Job::builder(ic(n, seed))
            .t_end(t_end)
            .label(format!("test seed {seed}"))
            .build()
            .unwrap()
    }

    fn bits_equal(a: &ParticleSet, b: &ParticleSet) -> bool {
        a.n() == b.n()
            && a.pos == b.pos
            && a.vel == b.vel
            && a.acc == b.acc
            && a.jerk == b.jerk
            && (0..a.n()).all(|i| a.t[i].to_bits() == b.t[i].to_bits())
            && (0..a.n()).all(|i| a.dt[i].to_bits() == b.dt[i].to_bits())
    }

    /// The reference every farm outcome must match bitwise: the same
    /// job on a dedicated healthy board, uninterrupted.
    fn dedicated(n: usize, seed: u64, t_end: f64) -> ParticleSet {
        let engine = Grape6Engine::try_new(&unit(), n).unwrap();
        let mut it = HermiteIntegrator::new(engine, ic(n, seed), IntegratorConfig::default());
        it.run_until(t_end);
        it.particles().clone()
    }

    #[test]
    fn config_builder_rejects_unusable_parameters() {
        for (what, b) in [
            ("boards", FarmConfig::builder(unit()).boards(0)),
            ("quantum", FarmConfig::builder(unit()).quantum(0)),
            ("queue_depth", FarmConfig::builder(unit()).queue_depth(0)),
            (
                "max_live_sessions",
                FarmConfig::builder(unit()).max_live_sessions(0),
            ),
            (
                "deadline_grants",
                FarmConfig::builder(unit()).deadline_grants(Some(0)),
            ),
            (
                "backoff_base",
                FarmConfig::builder(unit()).backoff_base(f64::NAN),
            ),
        ] {
            match b.build() {
                Err(FarmError::InvalidConfig { reason }) => {
                    assert!(reason.contains(what), "{what}: {reason}")
                }
                other => panic!("{what}: expected InvalidConfig, got {other:?}"),
            }
        }
        let ok = FarmConfig::builder(unit())
            .boards(3)
            .quantum(4)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!((ok.boards, ok.quantum, ok.seed), (3, 4, 9));
    }

    #[test]
    fn tenant_spec_validation_is_typed() {
        let cfg = FarmConfig::builder(unit()).build().unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        for spec in [
            TenantSpec::new(0),
            TenantSpec::new(1).queue_cap(0),
            TenantSpec {
                weight: 1,
                queue_cap: None,
                deadline_grants: Some(0),
            },
        ] {
            match farm.register(spec) {
                Err(FarmError::InvalidConfig { .. }) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        let t = farm
            .register(TenantSpec::new(2).queue_cap(1).deadline_grants(64))
            .unwrap();
        assert_eq!(farm.tenant_report(t).unwrap().weight, 2);
    }

    #[test]
    fn job_builder_validates_at_construction() {
        let mut lonely = ParticleSet::with_capacity(1);
        lonely.push(1.0, [0.0; 3].into(), [0.0; 3].into());
        match Job::builder(lonely).t_end(0.125).build() {
            Err(FarmError::InvalidJob { reason }) => assert!(reason.contains("2 particles")),
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        match Job::builder(ic(8, 1)).t_end(-1.0).build() {
            Err(FarmError::InvalidJob { reason }) => assert!(reason.contains("t_end")),
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        match Job::builder(ic(8, 1)).build() {
            Err(FarmError::InvalidJob { .. }) => {} // t_end never set
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        let j = job(8, 1, 0.125);
        assert_eq!((j.n(), j.t_end()), (8, 0.125));
        assert_eq!(j.label(), "test seed 1");
    }

    #[test]
    fn admission_typed_rejections() {
        let cfg = FarmConfig::builder(unit())
            .max_live_sessions(2)
            .queue_depth(1)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let t1 = farm.register(TenantSpec::new(1)).unwrap();
        let t2 = farm.register(TenantSpec::new(1)).unwrap();

        assert!(farm.submit(t0, job(8, 1, 0.125)).is_ok());
        // Per-tenant queue bound fires before the global ceiling.
        match farm.submit(t0, job(8, 2, 0.125)) {
            Err(FarmError::QueueFull { tenant, depth }) => {
                assert_eq!((tenant, depth), (t0, 1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(farm.submit(t1, job(8, 3, 0.125)).is_ok());
        // Farm-wide ceiling with a positive, blockstep-denominated hint.
        match farm.submit(t2, job(8, 4, 0.125)) {
            Err(FarmError::Saturated { retry_after }) => {
                assert!(retry_after.is_positive());
                assert!(retry_after.blocksteps().is_some());
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
        match farm.submit(t2, job(128, 6, 0.125)) {
            Err(FarmError::JobTooLarge { n, capacity }) => {
                assert_eq!((n, capacity), (128, 64));
            }
            other => panic!("expected JobTooLarge, got {other:?}"),
        }
        match farm.submit(99, job(8, 7, 0.125)) {
            Err(FarmError::UnknownTenant(99)) => {}
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
        let stats = farm.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected_queue_full, 1);
        assert_eq!(stats.rejected_saturated, 1);
        // Malformed jobs never reach submit any more (Job::builder
        // catches them), so only UnknownTenant and JobTooLarge count.
        assert_eq!(stats.rejected_invalid, 2);
    }

    #[test]
    fn per_tenant_queue_cap_overrides_farm_default() {
        let cfg = FarmConfig::builder(unit())
            .queue_depth(4)
            .max_live_sessions(8)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let narrow = farm.register(TenantSpec::new(1).queue_cap(1)).unwrap();
        assert!(farm.submit(narrow, job(8, 1, 0.125)).is_ok());
        match farm.submit(narrow, job(8, 2, 0.125)) {
            Err(FarmError::QueueFull { depth, .. }) => assert_eq!(depth, 1),
            other => panic!("expected QueueFull at the tenant cap, got {other:?}"),
        }
    }

    #[test]
    fn single_session_matches_dedicated_run() {
        let cfg = FarmConfig::builder(unit()).boards(1).build().unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let sid = farm.submit(t0, job(16, 42, 0.25)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed());
        let res = farm.take_result(sid).unwrap();
        assert_eq!(res.session, sid);
        assert!(res.report.completed >= 1);
        assert!(bits_equal(&res.particles, &dedicated(16, 42, 0.25)));
        // The result is consumed: a second take is UnknownSession.
        match farm.take_result(sid) {
            Err(FarmError::UnknownSession(s)) => assert_eq!(s, sid),
            other => panic!("expected UnknownSession on re-take, got {other:?}"),
        }
    }

    #[test]
    fn take_result_is_typed_for_every_lifecycle_stage() {
        let cfg = FarmConfig::builder(unit()).boards(1).build().unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let ghost = SessionId {
            tenant: t0,
            index: 99,
        };
        match farm.take_result(ghost) {
            Err(FarmError::UnknownSession(s)) => assert_eq!(s, ghost),
            other => panic!("expected UnknownSession, got {other:?}"),
        }
        let sid = farm.submit(t0, job(16, 5, 0.25)).unwrap();
        match farm.take_result(sid) {
            Err(FarmError::NotReady { session }) => assert_eq!(session, sid),
            other => panic!("expected NotReady while queued, got {other:?}"),
        }
        farm.run().unwrap();
        assert!(farm.take_result(sid).is_ok());
    }

    #[test]
    fn cancel_finishes_a_live_session_and_is_idempotent() {
        let cfg = FarmConfig::builder(unit()).boards(1).build().unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let sid = farm.submit(t0, job(16, 13, 4.0)).unwrap();
        farm.round().unwrap();
        let st = farm.cancel(sid).unwrap();
        assert_eq!(st.phase, crate::session::SessionPhase::Failed);
        assert_eq!(farm.stats().cancelled, 1);
        assert_eq!(farm.live_sessions(), 0);
        // Idempotent: a second cancel neither errors nor double-counts.
        let st = farm.cancel(sid).unwrap();
        assert_eq!(st.phase, crate::session::SessionPhase::Failed);
        assert_eq!(farm.stats().cancelled, 1);
        match farm.take_result(sid) {
            Err(FarmError::JobFailed { reason, .. }) => assert!(reason.contains("cancelled")),
            other => panic!("expected JobFailed after cancel, got {other:?}"),
        }
    }

    #[test]
    fn detach_reclaims_the_board_and_stops_scheduling() {
        // Two boards, two resident sessions.  Detach the first: its
        // board frees immediately (checkpoint-eviction), the second
        // completes bitwise, and run() terminates with the detached
        // session still parked on its checkpoint.
        let cfg = FarmConfig::builder(unit())
            .boards(2)
            .quantum(4)
            .ckpt_every(4)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let t1 = farm.register(TenantSpec::new(1)).unwrap();
        let victim = farm.submit(t0, job(16, 31, 4.0)).unwrap();
        let survivor = farm.submit(t1, job(12, 32, 0.125)).unwrap();
        farm.round().unwrap();
        let st = farm.detach(victim).unwrap();
        assert_eq!(st.phase, crate::session::SessionPhase::Detached);
        assert_eq!(farm.stats().detached, 1);
        assert!(
            farm.pool().free_slot().is_some(),
            "board reclaimed on detach"
        );
        assert_eq!(farm.live_sessions(), 1, "detached does not count");
        let report = farm.run().unwrap();
        assert_eq!(report.stats.completed, 1);
        let got = farm.take_result(survivor).unwrap();
        assert!(bits_equal(&got.particles, &dedicated(12, 32, 0.125)));
        // The victim is parked, not lost, and a later cancel reaps it.
        assert_eq!(
            farm.session_status(victim).unwrap().phase,
            crate::session::SessionPhase::Detached
        );
        farm.cancel(victim).unwrap();
        assert!(matches!(
            farm.take_result(victim),
            Err(FarmError::JobFailed { .. })
        ));
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let mut cfg = FarmConfig::new(unit());
        cfg.boards = 1;
        let mut farm = Farm::new(cfg).unwrap();
        let t0 = farm.add_tenant(0); // clamped to weight 1
        let sid = farm.submit(t0, job(16, 42, 0.25)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed());
        let got = report.outcomes[&sid].particles().unwrap();
        assert!(bits_equal(got, &dedicated(16, 42, 0.25)));
    }

    #[test]
    fn eviction_and_resume_stay_bitwise_identical() {
        // Three sessions share ONE board: every grant for a non-resident
        // session evicts the current occupant.
        let cfg = FarmConfig::builder(unit())
            .boards(1)
            .quantum(4)
            .ckpt_every(4)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let tenants: Vec<TenantId> = (0..3)
            .map(|_| farm.register(TenantSpec::new(1)).unwrap())
            .collect();
        let mut sids = Vec::new();
        for (k, &t) in tenants.iter().enumerate() {
            sids.push((k, farm.submit(t, job(12, 100 + k as u64, 0.125)).unwrap()));
        }
        let report = farm.run().unwrap();
        assert!(report.all_completed(), "failed: {:?}", report.stats);
        assert!(report.stats.evictions >= 2, "stats: {:?}", report.stats);
        assert!(report.stats.resumes >= 2, "stats: {:?}", report.stats);
        for (k, sid) in sids {
            let got = farm.take_result(sid).unwrap();
            assert!(
                bits_equal(&got.particles, &dedicated(12, 100 + k as u64, 0.125)),
                "session {sid} diverged from its dedicated run"
            );
        }
    }

    #[test]
    fn power_on_self_test_failure_rotates_board() {
        // Board 0 powers on with a dead module: 32 of 64 slots gone, so
        // a 48-particle session cannot fit and the board is retired at
        // first activation.  The session completes on board 1.
        let cfg = FarmConfig::builder(unit())
            .boards(2)
            .board_plans(vec![Some(FaultPlan::none().with_dead_module(0, 0))])
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let sid = farm.submit(t0, job(48, 7, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed());
        assert_eq!(report.stats.board_rotations, 1);
        assert_eq!(farm.pool().in_service(), 1);
        assert!(farm.pool().slots()[0].retired_reason.is_some());
        let got = farm.take_result(sid).unwrap();
        assert!(bits_equal(&got.particles, &dedicated(48, 7, 0.125)));
    }

    #[test]
    fn midrun_board_death_rotates_and_resumes_bitwise() {
        // Board 0 loses a module mid-run.  With 48 particles the
        // redistribution cannot fit on the surviving 32 slots, the
        // supervisor ladder is exhausted, and the farm parks the session
        // at its last checkpoint, retires the board, and resumes on
        // board 1 — with the particle bits of an uninterrupted run.
        let cfg = FarmConfig::builder(unit())
            .boards(2)
            .board_plans(vec![Some(
                FaultPlan::none().with_midrun_death(vec![0, 0], 40),
            )])
            .ckpt_every(4)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let sid = farm.submit(t0, job(48, 11, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert!(report.all_completed(), "stats: {:?}", report.stats);
        assert!(
            report.stats.board_rotations >= 1,
            "stats: {:?}",
            report.stats
        );
        assert!(report.stats.resumes >= 1, "stats: {:?}", report.stats);
        assert!(report.stats.grant_retries >= 1, "stats: {:?}", report.stats);
        assert!(report.stats.backoff_seconds > 0.0);
        let got = farm.take_result(sid).unwrap();
        assert!(bits_equal(&got.particles, &dedicated(48, 11, 0.125)));
    }

    #[test]
    fn deadline_kills_slow_session() {
        let cfg = FarmConfig::builder(unit())
            .boards(1)
            .deadline_grants(Some(2))
            .quantum(2)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        let sid = farm.submit(t0, job(16, 9, 4.0)).unwrap();
        let report = farm.run().unwrap();
        assert_eq!(report.stats.deadline_failures, 1);
        assert_eq!(report.stats.failed, 1);
        match farm.take_result(sid) {
            Err(FarmError::JobFailed { reason, .. }) => assert!(reason.contains("deadline")),
            other => panic!("expected JobFailed with a deadline reason, got {other:?}"),
        }
    }

    #[test]
    fn tenant_deadline_overrides_farm_default() {
        // Farm default has no deadline; the tenant sets a 2-grant budget
        // and a long job dies by it.
        let cfg = FarmConfig::builder(unit())
            .boards(1)
            .quantum(2)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm
            .register(TenantSpec::new(1).deadline_grants(2))
            .unwrap();
        let sid = farm.submit(t0, job(16, 9, 4.0)).unwrap();
        let report = farm.run().unwrap();
        assert_eq!(report.stats.deadline_failures, 1);
        match farm.take_result(sid) {
            Err(FarmError::JobFailed { reason, .. }) => assert!(reason.contains("deadline")),
            other => panic!("expected JobFailed, got {other:?}"),
        }
    }

    #[test]
    fn pool_exhaustion_fails_sessions_gracefully() {
        // Every board is missing a module; 48-particle jobs fit nowhere.
        let cfg = FarmConfig::builder(unit())
            .boards(2)
            .board_plans(vec![
                Some(FaultPlan::none().with_dead_module(0, 0)),
                Some(FaultPlan::none().with_dead_module(0, 1)),
            ])
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        farm.submit(t0, job(48, 3, 0.125)).unwrap();
        let report = farm.run().unwrap();
        assert_eq!(report.stats.completed, 0);
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.board_rotations, 2);
        assert!(report
            .outcomes
            .values()
            .all(|o| matches!(o, SessionOutcome::Failed { .. })));
    }

    #[test]
    fn weighted_round_robin_is_proportional() {
        // Drive rounds by hand: while both tenants are live, grants
        // accrue exactly in weight proportion (3:1).
        let cfg = FarmConfig::builder(unit())
            .boards(2)
            .quantum(2)
            .build()
            .unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let light = farm.register(TenantSpec::new(1)).unwrap();
        let heavy = farm.register(TenantSpec::new(3)).unwrap();
        farm.submit(light, job(12, 21, 0.5)).unwrap();
        farm.submit(heavy, job(12, 22, 0.5)).unwrap();
        let mut checked = 0;
        while farm.live_sessions() == 2 {
            farm.round().unwrap();
            let g_light = farm.tenant_report(light).unwrap().grants;
            let g_heavy = farm.tenant_report(heavy).unwrap().grants;
            if farm.live_sessions() == 2 {
                assert_eq!(g_heavy, 3 * g_light, "round-by-round WRR proportion");
                checked += 1;
            }
        }
        assert!(checked > 0, "never observed both tenants live");
        // Drain the survivor.
        let report = farm.run().unwrap();
        assert!(report.all_completed());
    }

    #[test]
    fn per_tenant_breakdown_accumulates() {
        let cfg = FarmConfig::builder(unit()).boards(1).build().unwrap();
        let mut farm = Farm::open(cfg).unwrap();
        let t0 = farm.register(TenantSpec::new(1)).unwrap();
        farm.submit(t0, job(16, 5, 0.125)).unwrap();
        let report = farm.run().unwrap();
        let tr = &report.tenants[&t0];
        assert!(tr.blocksteps > 0);
        assert!(tr.breakdown.total() > 0.0, "breakdown: {:?}", tr.breakdown);
        assert!(tr.recovery.checkpoints_taken >= 1);
        // Every recorded span carries the tenant's track id.
        assert!(!farm.spans().is_empty());
        assert!(farm.spans().iter().all(|s| s.track == t0));
    }
}
